# Developer entry points. `make check` is the gate CI runs.

PYTHON ?= python

.PHONY: check test bench bench-smoke bench-report example serve-smoke \
    docs-check lint typecheck

test:
	$(PYTHON) -m pytest -x -q

# Smoke: one cheap micro-benchmark file on tiny settings, just to prove the
# benchmark harness and the sim engine wire up (full runs: `make bench`).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_micro_primitives.py -q \
	    --benchmark-disable-gc --benchmark-min-rounds=1 \
	    --benchmark-warmup=off

bench:
	$(PYTHON) -m pytest benchmarks -q

# Trend gate: run the tracer-overhead benchmark (which also gates the
# obs layer's cost and appends to bench_history/), then fail on any
# metric >20% worse than its rolling median.  Fresh checkouts pass
# trivially — histories younger than --min-prior runs are ungated.
bench-report:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_obs_overhead.py
	PYTHONPATH=src $(PYTHON) -m repro bench report --check

example:
	PYTHONPATH=src $(PYTHON) examples/congest_simulation.py

# Serving smoke: the throughput gate (>=5x vs the naive baseline, writes
# BENCH_serve_throughput.json) plus a 10s zipf loadgen burst against a
# spawned sharded server asserting zero protocol errors (CI serve-smoke).
serve-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve_throughput.py
	PYTHONPATH=src $(PYTHON) -m repro loadgen --spawn --spawn-workers 2 \
	    --duration 10 --size 80 --topologies 6 --concurrency 4 --check

# Docs gate: relative links in docs/ + README resolve; modules, public
# classes and public functions in repro.sim / repro.core / repro.fast
# carry docstrings (the CI docs job runs the same script).
docs-check:
	$(PYTHON) tools/check_docs.py

# Static-analysis gate: AST rules over src/repro + tools (determinism,
# asyncio-safety, registry/protocol consistency, exception contract,
# hygiene, typed-def).  Exits non-zero on any unbaselined finding or
# stale baseline entry; see docs/ARCHITECTURE.md "Static analysis layer".
lint:
	$(PYTHON) -m tools.lint

# Typed-core mypy gate (repro.core / repro.runtime / repro.serve.protocol,
# see mypy.ini).  Skips with a notice where mypy is not installed; CI
# installs mypy and enforces it on both matrix Pythons.
typecheck:
	$(PYTHON) tools/run_mypy.py

check: test bench-smoke bench-report example docs-check lint typecheck
	@echo "check: OK"
