# Developer entry points. `make check` is the gate CI runs.

PYTHON ?= python

.PHONY: check test bench bench-smoke example

test:
	$(PYTHON) -m pytest -x -q

# Smoke: one cheap micro-benchmark file on tiny settings, just to prove the
# benchmark harness and the sim engine wire up (full runs: `make bench`).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_micro_primitives.py -q \
	    --benchmark-disable-gc --benchmark-min-rounds=1 \
	    --benchmark-warmup=off

bench:
	$(PYTHON) -m pytest benchmarks -q

example:
	PYTHONPATH=src $(PYTHON) examples/congest_simulation.py

check: test bench-smoke example
	@echo "check: OK"
