"""Regenerate the paper's figures (1-4) from real algorithm runs.

    python examples/paper_figures.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from bench_f01_figures import run_figures  # noqa: E402


def main() -> None:
    print(run_figures())


if __name__ == "__main__":
    main()
