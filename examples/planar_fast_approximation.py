"""Theorem 1.2 on a planar network: shortcut time beats sqrt(n) time.

On planar (and bounded-genus / bounded-treewidth) networks the shortcut
framework supports tree aggregations in O~(D) rounds instead of
O~(D + sqrt n).  This script runs the O(log n)-approximation on a grid,
shows the measured shortcut quality per provider, and contrasts it with a
long-and-skinny network where the generic sqrt(n) construction takes over.

    python examples/planar_fast_approximation.py
"""

from __future__ import annotations

import math

import networkx as nx

from repro.graphs import grid_graph, lollipop_2ec
from repro.shortcuts import (
    SizeThresholdShortcuts,
    TreeRestrictedShortcuts,
    mst_fragment_partition,
    shortcut_two_ecss,
)


def quality_report(g: nx.Graph, name: str) -> None:
    n = g.number_of_nodes()
    d = nx.diameter(g)
    partition = mst_fragment_partition(g, max(2, math.isqrt(n)), seed=1)
    print(f"\n{name}: n={n}, D={d}, sqrt(n)={math.isqrt(n)}, "
          f"{len(partition)} parts")
    for provider in (TreeRestrictedShortcuts(), SizeThresholdShortcuts()):
        a = provider.assign(g, partition)
        print(f"  {provider.name:16s} alpha={a.alpha:4d}  beta={a.beta:4d}  "
              f"alpha+beta={a.alpha + a.beta:4d}  (vs D={d}, D+sqrt n={d + math.isqrt(n)})")


def main() -> None:
    grid = grid_graph(16, 16, seed=2)
    quality_report(grid, "planar grid 16x16")

    skinny = lollipop_2ec(16, 240, seed=2)
    quality_report(skinny, "lollipop (clique + long cycle)")

    print("\nrunning the O(log n)-approximation (Theorem 1.2) on the grid:")
    res = shortcut_two_ecss(grid, seed=5)
    print("  " + res.summary())
    print(f"  set-cover phases: {res.aug.phases}, accepted samples: {res.aug.accepts}")
    print(f"  quality vs ln(n) regime: weight {res.aug.weight:.1f}, "
          f"ln(n)+1 = {res.aug.log_bound:.2f}")


if __name__ == "__main__":
    main()
