"""Network-design scenario: a fiber backbone that survives any single cut.

The paper's motivating setting (Section 1): leasing each fiber link has a
cost; we want the cheapest subset of links that keeps every pair of sites
connected even when one link fails.  This script

1. lays out 80 sites in the plane with distance-proportional link costs,
2. designs a backbone with the (5+eps)-approximation,
3. *fails every backbone link in turn* and verifies connectivity survives,
4. compares against the MST (which dies on its first failure) and against
   the classical 3-approximation baseline.

    python examples/resilient_backbone.py
"""

from __future__ import annotations

import networkx as nx

import repro
from repro.baselines.arborescence import kt_tecss_3approx
from repro.graphs import random_geometric_2ec


def survives_any_single_failure(g: nx.Graph) -> bool:
    for edge in list(g.edges()):
        g.remove_edge(*edge)
        ok = nx.is_connected(g)
        g.add_edge(*edge)
        if not ok:
            return False
    return True


def main() -> None:
    sites = random_geometric_2ec(80, seed=3)
    print(f"{sites.number_of_nodes()} sites, {sites.number_of_edges()} "
          f"candidate fiber routes, total cost {sites.size(weight='weight'):.2f}")

    result = repro.approximate_two_ecss(sites, eps=0.5)
    backbone = nx.Graph()
    backbone.add_nodes_from(sites.nodes())
    backbone.add_edges_from(result.edges)

    mst = nx.minimum_spanning_tree(sites)
    print(f"\nMST cost:       {mst.size(weight='weight'):.2f}  "
          f"(survives single failure: {survives_any_single_failure(mst)})")
    print(f"backbone cost:  {result.weight:.2f}  "
          f"(survives single failure: {survives_any_single_failure(backbone)})")

    baseline = kt_tecss_3approx(sites)
    print(f"3-approx (FJ/KT baseline): {baseline.weight:.2f}")
    print(f"buy everything:            {sites.size(weight='weight'):.2f}")

    print(f"\ncertified: within {result.certified_ratio:.2f}x of the optimal backbone")
    assert survives_any_single_failure(backbone)
    assert not survives_any_single_failure(mst)


if __name__ == "__main__":
    main()
