"""Quickstart: approximate a minimum-weight 2-edge-connected backbone.

Builds a random weighted network, runs the paper's (5+eps)-approximation,
and prints the certified quality of the run.

    python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

import repro
from repro.graphs import cycle_with_chords, is_two_edge_connected


def main() -> None:
    # A 60-vertex network: a ring plus random chords, uniform random costs.
    network = cycle_with_chords(60, extra=30, seed=7)
    print(f"network: {network.number_of_nodes()} nodes, "
          f"{network.number_of_edges()} links, "
          f"total cost {network.size(weight='weight'):.1f}")

    result = repro.approximate_two_ecss(network, eps=0.5)

    print(result.summary())
    print(f"  kept {len(result.edges)} of {network.number_of_edges()} links")
    print(f"  MST alone costs {result.mst_weight:.1f} but survives no failure;")
    print(f"  the backbone adds {result.augmentation.weight:.1f} for 2-edge-connectivity")

    backbone = nx.Graph()
    backbone.add_nodes_from(network.nodes())
    backbone.add_edges_from(result.edges)
    assert is_two_edge_connected(backbone)
    print("  verified: the backbone is 2-edge-connected")

    # Every run carries its own certificate (Lemma 3.1's dual bound):
    lb = result.certified_lower_bound
    print(f"  certified: OPT >= {lb:.1f}, so this run is within "
          f"{result.certified_ratio:.2f}x of optimal "
          f"(guarantee: {result.guarantee:.2f}x)")


if __name__ == "__main__":
    main()
