"""Run genuine CONGEST node programs on the message-passing simulator.

Every message is bandwidth-checked (O(log n) bits per edge per round) and
round counts are measured, not modeled: BFS finishes in eccentricity
rounds, tree aggregation in height rounds, and the Borůvka MST matches the
centralized MST weight while reporting its real phase/round usage.

    python examples/congest_simulation.py
"""

from __future__ import annotations

import networkx as nx

from repro.graphs import cycle_with_chords
from repro.model import BoruvkaMST, DistributedBFS, Network, TreeAggregate


def main() -> None:
    g = cycle_with_chords(48, 20, seed=11)
    net = Network(g, words_per_edge=4)
    print(f"network: n={net.n}, m={g.number_of_edges()}, "
          f"bandwidth={net.words_per_edge} words/edge/round")

    stats = net.run(DistributedBFS(0))
    dist, parent = DistributedBFS.results(net)
    ecc = nx.eccentricity(g, 0)
    print(f"\nBFS from node 0: {stats.rounds} rounds "
          f"(eccentricity {ecc}), {stats.messages} messages")

    # Aggregate the total 'load' up the BFS tree.
    net.reset_state()
    inputs = [(float(v % 7),) for v in range(net.n)]
    agg = TreeAggregate(parent, 0, inputs, lambda a, b: (a[0] + b[0],))
    stats = net.run(agg)
    total = TreeAggregate.result(net, 0)[0]
    print(f"convergecast sum over BFS tree: {total:.0f} in {stats.rounds} rounds")
    assert total == sum(v % 7 for v in range(net.n))

    out = BoruvkaMST(Network(g)).run()
    expected = nx.minimum_spanning_tree(g).size(weight="weight")
    print(f"\nBoruvka MST: weight {out.weight:.2f} "
          f"(centralized: {expected:.2f}), {out.phases} phases, "
          f"{out.stats.rounds} measured rounds, {out.stats.messages} messages")
    assert abs(out.weight - expected) < 1e-9


if __name__ == "__main__":
    main()
