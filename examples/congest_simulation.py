"""Run genuine CONGEST node programs on the batched simulation engine.

Every message is bandwidth-checked (O(log n) bits per edge per round) and
round counts are measured, not modeled: BFS finishes in eccentricity
rounds, tree aggregation in height rounds, and the Borůvka MST matches the
centralized MST weight while reporting its real phase/round usage.  The
run finishes with the engine's party pieces: a differential check against
the legacy per-node oracle, the ≥3x batched speedup, and a failure-
injection scenario that severs an edge mid-broadcast.

    python examples/congest_simulation.py
"""

from __future__ import annotations

import time

import networkx as nx

from repro.graphs import cycle_with_chords, grid_graph
from repro.model import BoruvkaMST, DistributedBFS, Network, TreeAggregate
from repro.sim import BatchedNetwork, FailurePlan


def main() -> None:
    g = cycle_with_chords(48, 20, seed=11)
    net = BatchedNetwork(g, words_per_edge=4, trace=True)
    print(f"network: n={net.n}, m={g.number_of_edges()}, "
          f"bandwidth={net.words_per_edge} words/edge/round, "
          f"scheduler={net.scheduler.name}")

    stats = net.run(DistributedBFS(0))
    dist, parent = DistributedBFS.results(net)
    ecc = nx.eccentricity(g, 0)
    busiest = max(net.trace, key=lambda r: r.messages)
    print(f"\nBFS from node 0: {stats.rounds} rounds "
          f"(eccentricity {ecc}), {stats.messages} messages; "
          f"busiest round sent {busiest.messages} msgs, "
          f"stepped {busiest.stepped}/{net.n} nodes")

    # Aggregate the total 'load' up the BFS tree.
    net.reset_state()
    inputs = [(float(v % 7),) for v in range(net.n)]
    agg = TreeAggregate(parent, 0, inputs, lambda a, b: (a[0] + b[0],))
    stats = net.run(agg)
    total = TreeAggregate.result(net, 0)[0]
    print(f"convergecast sum over BFS tree: {total:.0f} in {stats.rounds} rounds")
    assert total == sum(v % 7 for v in range(net.n))

    out = BoruvkaMST(BatchedNetwork(g)).run()
    expected = nx.minimum_spanning_tree(g).size(weight="weight")
    print(f"\nBoruvka MST: weight {out.weight:.2f} "
          f"(centralized: {expected:.2f}), {out.phases} phases, "
          f"{out.stats.rounds} measured rounds, {out.stats.messages} messages")
    assert abs(out.weight - expected) < 1e-9

    # Differential: the legacy per-node loop is the reference oracle.
    big = grid_graph(45, 45, seed=7)
    t0 = time.perf_counter()
    s_legacy = Network(big).run(DistributedBFS(0))
    t_legacy = time.perf_counter() - t0
    t0 = time.perf_counter()
    s_batched = BatchedNetwork(big).run(DistributedBFS(0))
    t_batched = time.perf_counter() - t0
    assert s_legacy == s_batched
    print(f"\ndifferential BFS on {big.number_of_nodes()}-node grid: "
          f"identical stats ({s_batched.rounds} rounds, "
          f"{s_batched.messages} msgs); legacy {t_legacy*1e3:.0f} ms, "
          f"batched {t_batched*1e3:.0f} ms "
          f"({t_legacy/t_batched:.1f}x speedup)")

    # Failure injection: sever a cycle edge; BFS routes the long way round.
    ring = nx.cycle_graph(12)
    for _, _, d in ring.edges(data=True):
        d["weight"] = 1.0
    plan = FailurePlan().fail(0, 1)
    lossy = BatchedNetwork(ring, failures=plan)
    lossy_stats = lossy.run(DistributedBFS(0))
    dist, _ = DistributedBFS.results(lossy)
    print(f"\nfailure injection on a 12-cycle with edge (0,1) down: "
          f"dist(1)={dist[1]} (clean: 1), {lossy_stats.dropped} messages dropped")
    assert dist[1] == 11


if __name__ == "__main__":
    main()
