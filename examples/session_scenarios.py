"""Session reuse: 100 weight scenarios on one topology, one cached plan.

The operational question behind k-ECSS-style workloads: the *topology* of
a network is fixed (fiber in the ground), but link costs move — congestion
pricing, maintenance windows, failure surcharges.  A
:class:`repro.runtime.session.SolverSession` validates and normalizes the
topology once, then solves every cost scenario through ``solve_many``,
reusing the per-topology plan; the results are bit-identical to calling
``repro.approximate_two_ecss`` from scratch per scenario.

    python examples/session_scenarios.py
"""

from __future__ import annotations

import random
import time

import repro
from repro.graphs import cycle_with_chords


def main() -> None:
    network = cycle_with_chords(120, extra=60, seed=11)
    print(f"network: {network.number_of_nodes()} nodes, "
          f"{network.number_of_edges()} links")

    session = repro.SolverSession(network, backend="auto")
    base = session.solve(eps=0.5)
    print(f"baseline backbone: weight {base.weight:.1f} "
          f"(certified ratio {base.certified_ratio:.2f})")

    # 100 cost scenarios: every link's cost jitters around its baseline.
    rng = random.Random(0)
    edge_list = session.handle.edge_list
    baseline = dict(zip(edge_list, session.handle.weights))
    scenarios = []
    for _ in range(100):
        scenarios.append(repro.SolveQuery(
            eps=0.5,
            weights={e: baseline[e] * rng.uniform(0.8, 1.25)
                     for e in edge_list},
        ))

    t0 = time.perf_counter()
    results = session.solve_many(scenarios)
    elapsed = time.perf_counter() - t0

    weights = [r.weight for r in results]
    print(f"solved {len(results)} weight scenarios in {elapsed:.2f}s "
          f"({1e3 * elapsed / len(results):.1f} ms/scenario)")
    print(f"backbone cost across scenarios: min {min(weights):.1f}, "
          f"max {max(weights):.1f}")

    # Reuse bookkeeping: topology work happened once, per-scenario plans
    # were built per distinct weight column (LRU-bounded).
    print(f"session stats: {session.stats()}")

    # Spot-check the bit-identity contract against the one-shot API.
    probe = scenarios[0]
    fresh = network.copy()
    for u, v, data in fresh.edges(data=True):
        data["weight"] = probe.weights[(u, v)]
    one_shot = repro.approximate_two_ecss(fresh, eps=0.5, backend="auto")
    assert one_shot.edges == results[0].edges
    assert one_shot.weight == results[0].weight
    print("  verified: scenario 0 is bit-identical to the one-shot API")


if __name__ == "__main__":
    main()
