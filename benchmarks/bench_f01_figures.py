"""F1–F4 — regenerate the paper's figures from real runs.

* Figures 1/2: the layering of a tree and a tree edge's two petals;
* Figure 3: a dependent (local below, global above) anchor pair;
* Figure 4: 3-covered edges and the cleaning phase's removals.

The renders are written to ``benchmarks/out/figures.txt``; the assertions
check that each figure's structure actually occurred (the stress instance
is chosen so the cleaning phase fires).
"""

import random

from repro.analysis.figures import (
    render_anchor_dependencies,
    render_cleaning_cases,
    render_layering,
    render_petals_example,
)
from repro.analysis.tables import write_report
from repro.core.instance import TAPInstance
from repro.core.tap import solve_virtual_tap
from repro.decomp.petals import PetalOracle
from repro.trees.rooted import RootedTree


def _figure_tree() -> RootedTree:
    # A small bushy tree like the paper's Figure 1.
    parent = [-1, 0, 0, 1, 1, 2, 3, 3, 4, 5, 5, 6, 8, 9, 9]
    return RootedTree(parent, 0)


def _stress_instance():
    # seed chosen so the run demonstrably triggers the cleaning phase
    rng = random.Random(12)
    n = 80
    parent = [-1] + [v - 1 for v in range(1, n)]  # a path: long layer paths
    tree = RootedTree(parent, 0)
    links = []
    for _ in range(160):
        dec = rng.randrange(1, n)
        anc = rng.randrange(0, dec)
        links.append((dec, anc, rng.uniform(1, 100)))
    links.append((n - 1, 0, 500.0))
    return TAPInstance.from_links(tree, links, segment_size=4)


def run_figures() -> str:
    sections = []

    tree = _figure_tree()
    inst_small = TAPInstance.from_links(
        tree, [(11, 0, 1.0), (12, 1, 1.0), (13, 2, 1.0), (14, 0, 1.0), (7, 0, 1.0), (10, 0, 1.0)]
    )
    sections.append("=== Figure 1/2 (left): layering of a tree ===")
    sections.append(render_layering(tree, inst_small.layering))
    oracle = PetalOracle(
        inst_small.ops, inst_small.layering, [e.pair for e in inst_small.edges]
    )
    t_example = 5
    sections.append("=== Figure 1/2 (right): the two petals of a tree edge ===")
    sections.append(
        render_petals_example(
            inst_small,
            t_example,
            [e.eid for e in inst_small.edges],
            oracle.higher(t_example),
            oracle.lower(t_example),
        )
    )

    inst = _stress_instance()
    fwd, rev = solve_virtual_tap(inst, eps=0.2, variant="improved", segmented=True)
    sections.append("=== Figure 3: dependent anchors (local below, global above) ===")
    sections.append(render_anchor_dependencies(inst, rev))
    sections.append("=== Figure 4: 3-covered edges fixed by the cleaning phase ===")
    sections.append(render_cleaning_cases(inst, fwd, rev))
    return "\n".join(sections)


def test_figures(benchmark):
    text = benchmark.pedantic(run_figures, rounds=1, iterations=1)
    write_report("figures", text)
    print("\n" + text)
    assert "layering" in text
    assert "higher petal" in text
    # Figure 4 only exists when cleaning fired; the stress instance ensures it.
    assert "cleaning removals: 0" not in text
    assert "Claim 4.15 structure (deeper=local, upper=global): True" in text
