"""The k-ECSS sweep benchmark: one topology, rising connectivity targets.

Runs the sweep engine over a dense seeded Erdős–Rényi instance for
``k in {2, 3, 4}`` (``repro.analysis.sweep`` with the ``ks`` axis), records
per-``k`` weight, guarantee, certified ratio, and solve time, and gates on
the layer's two contracts:

* **monotonicity** — a (k+1)-ECSS contains a k-ECSS's obligations, so the
  selected weight must not decrease as ``k`` rises;
* **small-n optimality band** — at ``n = 12`` the heuristic weight must sit
  within its per-run ``guarantee`` of the
  :func:`repro.baselines.exact_milp.exact_k_ecss_milp` optimum for every
  ``k``.

The record lands in ``BENCH_k_sweep.json`` at the repo root (uploaded as a
CI artifact by the ``k-ecss`` job).  Also runnable directly (no pytest) to
refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_k_sweep.py
"""

from __future__ import annotations

import json
import os
import platform
import random
import tempfile
import time

import networkx as nx

from history import append_history

KS = (2, 3, 4)
SWEEP_N = 48
MILP_N = 12
SEED = 1
EPS = 0.5

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_k_sweep.json",
)


def _dense_instance(n: int, seed: int) -> nx.Graph:
    """A seeded weighted G(n, p) with edge connectivity >= max(KS)."""
    rng = random.Random(seed)
    for attempt in range(200):
        g = nx.gnp_random_graph(n, 0.5 if n <= 16 else 0.25,
                                seed=seed * 1000 + attempt)
        if g.number_of_edges() and nx.edge_connectivity(g) >= max(KS):
            for u, v in sorted(g.edges()):
                g[u][v]["weight"] = round(rng.uniform(1.0, 20.0), 3)
            return g
    raise AssertionError(f"no {max(KS)}-connected instance at n={n}")


def run_k_sweep_benchmark() -> dict:
    """Sweep k in KS, differential-check small n, write the JSON record."""
    from repro.analysis.sweep import run_sweep
    from repro.baselines.exact_milp import exact_k_ecss_milp
    from repro.core.k_ecss import approximate_k_ecss, assert_k_edge_connected

    # The sweep grid: one dense family at SWEEP_N, every k, fresh cache so
    # the recorded solve_s columns are real compute, not cache reads.
    t0 = time.perf_counter()
    report = run_sweep(
        families=["erdos_renyi"],
        sizes=[SWEEP_N],
        seeds=[SEED],
        eps_values=[EPS],
        ks=list(KS),
        workers=0,
        cache_dir=tempfile.mkdtemp(prefix="bench_k_sweep_"),
        write_outputs=False,
    )
    sweep_s = time.perf_counter() - t0
    rows = {row["k"]: row for row in report.rows}
    assert sorted(rows) == sorted(KS), f"sweep returned ks {sorted(rows)}"
    weights = [rows[k]["weight"] for k in KS]
    assert all(a <= b + 1e-9 for a, b in zip(weights, weights[1:])), (
        f"k-ECSS weight decreased along {KS}: {weights}"
    )

    # Small-n differential gate: heuristic within guarantee of the MILP.
    g = _dense_instance(MILP_N, SEED)
    differential = []
    for k in KS:
        res = approximate_k_ecss(g, k)
        assert_k_edge_connected(g, res.edges, k)
        opt = exact_k_ecss_milp(g, k)
        ratio = res.weight / opt.weight
        assert opt.weight <= res.weight + 1e-9
        assert res.weight <= res.guarantee * opt.weight + 1e-9, (
            f"k={k}: weight {res.weight} above guarantee "
            f"{res.guarantee} x optimum {opt.weight}"
        )
        differential.append({
            "k": k,
            "weight": round(res.weight, 4),
            "optimum": round(opt.weight, 4),
            "ratio_to_optimum": round(ratio, 4),
            "guarantee": round(res.guarantee, 4),
        })

    record = {
        "benchmark": "k_sweep",
        "instance": {"family": "erdos_renyi", "n": SWEEP_N, "seed": SEED,
                     "eps": EPS},
        "python": platform.python_version(),
        "sweep_total_s": round(sweep_s, 4),
        "rows": [
            {
                "k": k,
                "weight": round(rows[k]["weight"], 4),
                "guarantee": round(rows[k]["guarantee"], 4),
                "certified_ratio": round(rows[k]["certified_ratio"], 4),
                "solve_s": round(rows[k]["solve_s"], 4),
            }
            for k in KS
        ],
        "milp_differential": {"n": MILP_N, "rows": differential},
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("k_sweep", record)
    return record


def test_bench_k_sweep(benchmark):
    record = benchmark.pedantic(run_k_sweep_benchmark, rounds=1, iterations=1)
    per_k = ", ".join(
        f"k={r['k']}: w={r['weight']} ({r['solve_s']}s)"
        for r in record["rows"]
    )
    print(f"\nk sweep n={SWEEP_N}: {per_k} -> {BENCH_PATH}")


if __name__ == "__main__":
    rec = run_k_sweep_benchmark()
    print(json.dumps(rec, indent=2))
