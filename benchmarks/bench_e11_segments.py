"""E11 — Section 4.2.1: O(sqrt n) segments of diameter O(sqrt n).

Measured: segment count / sqrt(n) and max segment diameter / sqrt(n) across
families and sizes.  Expected shape: both ratios bounded by small constants
uniformly in n.
"""

from repro.analysis.experiments import e11_segments

from conftest import run_experiment


def test_e11_segments(benchmark):
    rows = run_experiment(benchmark, e11_segments, "e11_segments")
    for r in rows:
        assert r["segments/sqrt_n"] <= 4.0
        assert r["max_diam/sqrt_n"] <= 3.5
