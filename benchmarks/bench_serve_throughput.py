"""The n=2000 serving-throughput benchmark: batched+sharded vs naive.

Boots two real HTTP servers (the full stack: asyncio transport, protocol
parsing, micro-batching, topology-sharded worker processes) and drives
both with the same zipf-skewed repeated-reweight traffic over two n=2000
Erdős–Rényi topologies:

* **batched** — ``mode="session"``: topology-affine shards keep warm
  :class:`repro.runtime.session.SolverSession` objects, concurrent
  requests coalesce into ``solve_many`` batches, weight scenarios hit the
  plan LRU;
* **naive** — ``mode="per-request"``: every request builds a fresh
  ``GraphHandle`` + session from the raw payload, exactly what a service
  without the runtime layer's reuse would do.

Both sides are measured at steady state (topologies registered and the
scenario plans warm for the batched server; the naive server has no warm
state to give, by definition) through identical wire requests, and the
batched side's responses are asserted **bit-identical** to one-shot
:func:`repro.core.tecss.approximate_two_ecss` calls on the reweighted
graphs.  The speedup gate (``MIN_SPEEDUP``) is enforced here and in CI;
results land in ``BENCH_serve_throughput.json`` at the repo root.

Also runnable directly (no pytest) to refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import random
import time

from history import append_history

N = 2000
SEEDS = (1, 2)
EPS = 0.5
SCENARIOS = 2          # weight columns cycled per topology
ZIPF_S = 1.1
CONCURRENCY = 4
WORKERS = 2            # topology shards (worker processes)
BATCHED_REQUESTS = 40
NAIVE_REQUESTS = 4     # projected up: the naive side is ~20x slower
MIN_SPEEDUP = 5.0

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve_throughput.json",
)


def _build_traffic():
    """Two n=2000 topologies, scenario weight columns, a zipf request mix."""
    from repro.graphs.families import make_family_instance
    from repro.serve.protocol import graph_payload

    topologies = []
    for seed in SEEDS:
        graph = make_family_instance("erdos_renyi", N, seed=seed)
        payload = graph_payload(graph)
        base = [w for _, _, w in payload["edges"]]
        jitter = random.Random(f"serve-bench:{seed}")
        columns = [
            [w * jitter.uniform(0.8, 1.25) for w in base]
            for _ in range(SCENARIOS)
        ]
        topologies.append({"graph": graph, "payload": payload,
                           "columns": columns, "key": None})
    # The zipf mix: topology 0 is hot, scenarios cycle per topology.
    rng = random.Random("serve-bench:mix")
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(topologies))]
    picks = rng.choices(
        range(len(topologies)), weights=weights,
        k=max(BATCHED_REQUESTS, NAIVE_REQUESTS) * 2,
    )
    return topologies, picks


async def _drive(port: int, bodies: list[dict], concurrency: int) -> float:
    """Closed-loop: issue ``bodies`` over ``concurrency`` keep-alive
    connections; returns the wall seconds.  Any error response aborts the
    benchmark loudly."""
    from repro.serve.loadgen import HttpClient

    queue: asyncio.Queue = asyncio.Queue()
    for body in bodies:
        queue.put_nowait(body)

    async def worker() -> None:
        client = HttpClient("127.0.0.1", port)
        try:
            while True:
                try:
                    body = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, payload = await client.request(
                    "POST", "/v1/solve", body
                )
                assert status == 200 and "error" not in payload, (
                    f"serve error during benchmark: {payload}"
                )
        finally:
            await client.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return time.perf_counter() - t0


async def _measure(mode: str, topologies, picks, requests: int) -> dict:
    """Boot a server in ``mode``, warm it, and time the request mix."""
    from repro.serve.app import ServeApp, ServeConfig
    from repro.serve.loadgen import HttpClient
    from repro.serve.server import HttpServer

    config = ServeConfig(
        workers=WORKERS, mode=mode, max_batch=8, max_delay_ms=2.0,
        max_plans=2 * SCENARIOS + 1,
    )
    server = HttpServer(ServeApp(config), port=0)
    await server.start()
    try:
        client = HttpClient("127.0.0.1", server.port)
        # Registration + warmup (untimed): ship each topology's graph and
        # touch every scenario column once.  The naive server rebuilds
        # everything per request anyway — warmup gives it its best case
        # too (warm processes, registered payloads).
        warm = []
        for topo in topologies:
            status, payload = await client.request(
                "POST", "/v1/solve",
                {"graph": topo["payload"], "eps": EPS},
            )
            assert status == 200, f"registration failed: {payload}"
            topo["key"] = payload["topology"]
            if mode == "session":
                for column in topo["columns"]:
                    warm.append({
                        "topology": topo["key"], "weights": column,
                        "eps": EPS,
                    })
        await client.close()
        if warm:
            await _drive(server.port, warm, CONCURRENCY)

        bodies = [
            {
                "topology": topologies[pick]["key"],
                "weights": topologies[pick]["columns"][
                    i % len(topologies[pick]["columns"])
                ],
                "eps": EPS,
            }
            for i, pick in enumerate(picks[:requests])
        ]
        wall_s = await _drive(server.port, bodies, CONCURRENCY)

        sample = None
        if mode == "session":
            # One representative response for the bit-identity assertion.
            client = HttpClient("127.0.0.1", server.port)
            status, sample = await client.request(
                "POST", "/v1/solve", bodies[0]
            )
            assert status == 200, f"sample solve failed: {sample}"
            await client.close()
        return {"wall_s": wall_s, "requests": requests,
                "rps": requests / wall_s, "sample": sample,
                "sample_body": bodies[0]}
    finally:
        await server.aclose()


def _assert_bit_identical(topologies, measured: dict) -> None:
    """The sampled wire response must equal the one-shot payload."""
    import networkx as nx

    from repro.core.tecss import approximate_two_ecss
    from repro.serve.protocol import result_to_payload

    body = measured["sample_body"]
    topo = next(t for t in topologies if t["key"] == body["topology"])
    graph = topo["graph"]
    reweighted = nx.Graph()
    reweighted.add_nodes_from(graph.nodes())
    for (u, v, _), w in zip(graph.edges(data=True), body["weights"]):
        reweighted.add_edge(u, v, weight=w)
    want = result_to_payload(
        approximate_two_ecss(reweighted, eps=EPS, backend="auto")
    )
    assert measured["sample"]["result"] == want, (
        "served result diverged from the one-shot API at n=2000 — the "
        "wire bit-identity contract is broken"
    )


def run_serve_throughput_benchmark() -> dict:
    """Measure batched vs naive serving, check identity, write the JSON."""
    topologies, picks = _build_traffic()

    async def main() -> tuple[dict, dict]:
        batched = await _measure("session", topologies, picks,
                                 BATCHED_REQUESTS)
        naive = await _measure("per-request", topologies, picks,
                               NAIVE_REQUESTS)
        return batched, naive

    batched, naive = asyncio.run(main())
    _assert_bit_identical(topologies, batched)

    speedup = batched["rps"] / naive["rps"]
    record = {
        "benchmark": "serve_throughput",
        "instance": {
            "family": "erdos_renyi", "n": N, "seeds": list(SEEDS),
            "m": [len(t["payload"]["edges"]) for t in topologies],
            "eps": EPS,
        },
        "traffic": {
            "topologies": len(topologies), "zipf_s": ZIPF_S,
            "scenarios_per_topology": SCENARIOS,
            "concurrency": CONCURRENCY, "workers": WORKERS,
        },
        "python": platform.python_version(),
        "batched": {
            "mode": "session", "requests": batched["requests"],
            "wall_s": round(batched["wall_s"], 4),
            "throughput_rps": round(batched["rps"], 4),
        },
        "naive": {
            "mode": "per-request", "requests": naive["requests"],
            "wall_s": round(naive["wall_s"], 4),
            "throughput_rps": round(naive["rps"], 4),
        },
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("serve_throughput", record)
    # Enforce the gate here so both entry points (pytest and the CI job's
    # direct invocation) fail loudly.
    assert speedup >= MIN_SPEEDUP, (
        f"serve throughput speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x gate"
    )
    return record


def test_bench_serve_throughput(benchmark):
    record = benchmark.pedantic(
        run_serve_throughput_benchmark, rounds=1, iterations=1
    )
    print(
        f"\nserve throughput n={N}: batched "
        f"{record['batched']['throughput_rps']} rps vs naive "
        f"{record['naive']['throughput_rps']} rps -> "
        f"{record['speedup']}x (gate {MIN_SPEEDUP}x) -> {BENCH_PATH}"
    )
    assert record["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    rec = run_serve_throughput_benchmark()
    print(json.dumps(rec, indent=2))
