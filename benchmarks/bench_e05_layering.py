"""E5 — Claim 4.7: the layering has O(log n) layers.

Measured: layer count against log2(#leaves) across families and sizes.
Expected shape: layers <= log2(leaves) + 2 everywhere, with the constant
visibly below 1.5 (the contraction halves leaves per round).
"""

from repro.analysis.experiments import e05_layering

from conftest import run_experiment


def test_e05_layering(benchmark):
    rows = run_experiment(benchmark, e05_layering, "e05_layering")
    for r in rows:
        assert r["layers"] <= r["log2_leaves"] + 2
    # growth within a family is logarithmic: quadrupling n adds O(1) layers
    by_family = {}
    for r in rows:
        by_family.setdefault(r["family"], []).append(r)
    for family, frows in by_family.items():
        frows.sort(key=lambda r: r["n"])
        for a, b in zip(frows, frows[1:]):
            assert b["layers"] - a["layers"] <= 3
