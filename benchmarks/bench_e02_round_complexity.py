"""E2 — Theorem 1.1 rounds: O((D + sqrt n) log^2 n / eps).

Measured: Level-M modeled rounds (the paper's own per-primitive prices fed
with the run's actual iteration/epoch counts) divided by the Theorem 1.1
bound.  Expected shape: the ratio stays bounded (and well below 1) as n
grows, on every family — i.e. the implementation's round usage scales no
faster than the theorem.
"""

from repro.analysis.experiments import e02_round_complexity
from repro.analysis.metrics import power_law_fit

from conftest import run_experiment


def test_e02_round_complexity(benchmark):
    rows = run_experiment(benchmark, e02_round_complexity, "e02_round_complexity")
    assert all(r["modeled_rounds"] <= r["thm11_bound"] for r in rows)
    # scaling: within each family the rounds/bound ratio must not blow up
    by_family = {}
    for r in rows:
        by_family.setdefault(r["family"], []).append(r)
    for family, frows in by_family.items():
        ratios = [r["rounds/bound"] for r in frows]
        assert max(ratios) <= 3 * min(ratios) + 0.2, (
            f"{family}: rounds/bound ratios diverge: {ratios}"
        )
        # quantitative shape: modeled rounds grow sublinearly in n (the
        # sqrt(n) * polylog regime), never linearly like the O(h_MST)
        # baseline would on hub_cycle
        frows.sort(key=lambda r: r["n"])
        _, exponent = power_law_fit(
            [r["n"] for r in frows], [r["modeled_rounds"] for r in frows]
        )
        assert exponent <= 0.95, f"{family}: rounds scale like n^{exponent:.2f}"
    # and the algorithm always costs at least the known lower bound
    assert all(r["modeled_rounds"] >= r["lower_bound"] for r in rows)
