"""E7 — Theorem 1.2: the shortcut-based O(log n) algorithm.

Two tables:

* the end-to-end algorithm per family: measured shortcut-pass cost
  (``alpha+beta+gamma`` summed over hierarchy levels), iteration counts and
  solution weight against sequential greedy;
* provider quality on sqrt(n)-part MST partitions: tree-restricted
  shortcuts vs the generic size-threshold construction.  Expected shape —
  the paper's regime table: on planar/bounded-genus/treewidth families
  (grid, torus, k-tree, theta) tree-restricted quality stays within a
  polylog factor of D, while on the long-skinny ``lollipop`` the generic
  sqrt(n) regime takes over.
"""

import math

from repro.analysis.experiments import e07_shortcut_algorithm, e07_shortcut_quality

from conftest import run_experiment


def test_e07_shortcut_algorithm(benchmark):
    rows = run_experiment(benchmark, e07_shortcut_algorithm, "e07_shortcut_algorithm")
    # the parallel cover never loses more than a small factor to greedy
    assert all(r["aug/greedy"] <= 6.0 for r in rows)
    assert all(r["iters"] >= 1 for r in rows)


def test_e07_shortcut_quality(benchmark):
    rows = run_experiment(benchmark, e07_shortcut_quality, "e07_shortcut_quality")
    by_family = {r["family"]: r for r in rows}
    for fam in ("grid", "torus", "theta"):
        if fam in by_family:
            r = by_family[fam]
            n = r["n"]
            polylog = math.log2(n) ** 2
            assert r["tree-restricted:a+b"] <= r["D"] * polylog, (
                f"{fam}: tree-restricted quality {r['tree-restricted:a+b']} "
                f"not within D * log^2 n = {r['D'] * polylog:.0f}"
            )
    # the generic construction respects its O(D + sqrt n) promise everywhere
    for r in rows:
        assert r["size-threshold:a+b"] <= 4 * (r["D"] + math.sqrt(r["n"])) + 8
