"""E13 — the batched CONGEST engine (repro.sim) vs the legacy oracle.

Measured: identical RunStats between the legacy per-node ``Network`` and
``BatchedNetwork`` on every instance (the differential guarantee), the
wall-clock speedup of the batched engine, and the measured rounds staying
under the Level-M price of one aggregate and the Theorem 1.1 envelope.
Expected shape: stats always equal, speedup growing with n and >= 3x on
the largest instances.
"""

from repro.analysis.experiments import e13_sim_engine

from conftest import run_experiment


def test_e13_sim_engine(benchmark):
    rows = run_experiment(benchmark, e13_sim_engine, "e13_sim_engine")
    assert all(r["stats_equal"] for r in rows)
    assert all(r["within_price"] for r in rows)
    assert all(r["within_thm11"] for r in rows)
    # the acceptance-criterion regime: on high-diameter instances the idle
    # regions are large and the event-driven engine must clear 3x; on
    # message-dense low-diameter families both engines are validation-bound
    # and we only require no regression (with slack for timer noise)
    big_grid = [r for r in rows if r["family"] == "grid" and r["n"] >= 800]
    assert big_grid and all(r["speedup"] >= 3 for r in big_grid), [
        (r["family"], r["n"], round(r["speedup"], 1)) for r in rows
    ]
    assert all(r["speedup"] >= 0.8 for r in rows), [
        (r["family"], r["n"], round(r["speedup"], 1)) for r in rows
    ]
