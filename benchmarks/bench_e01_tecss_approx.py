"""E1 — Theorem 1.1 quality: (5+eps)-approximate weighted 2-ECSS.

Paper claim: the returned subgraph weighs at most ``(5 + eps) OPT``.
Measured: ratio against the exact MILP optimum on small instances and
against the certified lower bound ``max(w(MST), dual/2)`` on larger ones.
Expected shape: every ratio is far below the guarantee (typically < 2).
"""

from repro.analysis.experiments import e01_tecss_approx

from conftest import run_experiment


def test_e01_tecss_approx(benchmark):
    rows = run_experiment(benchmark, e01_tecss_approx, "e01_tecss_approx")
    assert rows, "experiment produced no rows"
    assert all(r["within"] for r in rows)
    # the guarantee is never violated, and small instances stay well inside
    for r in rows:
        assert r["ratio_vs_opt"] <= r["guarantee"] + 1e-6
