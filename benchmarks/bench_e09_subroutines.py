"""E9 — Lemma 5.4 (XOR detection) and Lemma 5.5 (cover counting).

Paper claims: the XOR detector never reports an uncovered edge as covered
(one-sided), errs on covered edges with probability 2^-(10 log n), and the
light-edge LCA counting is exact.  Measured over hundreds of random edge
sets: zero false positives (guaranteed), zero observed false negatives (the
theoretical rate at n=150 is ~2^-80), zero counting errors.
"""

from repro.analysis.experiments import e09_subroutines

from conftest import run_experiment


def test_e09_subroutines(benchmark):
    rows = run_experiment(benchmark, e09_subroutines, "e09_subroutines")
    r = rows[0]
    assert r["xor_false_positive"] == 0  # deterministic one-sidedness
    assert r["xor_false_negative"] == 0  # w.h.p. — rate ~ 2^-80 here
    assert r["lemma55_count_errors"] == 0
