"""The 2000-node scenario-batch benchmark: vectorized vs looped solving.

The Monte-Carlo traffic shape: one topology, ``SCENARIOS`` weight
columns, each a scale-up perturbation of a few **non-tree** edges (so
every scenario provably shares the baseline MST — the batched path's
best case, and the realistic one: cost drift on backup links).  The
scenario loop (:meth:`~repro.runtime.session.SolverSession.solve_many`)
pays the forward phase once per scenario; the vectorized path
(:meth:`~repro.runtime.session.SolverSession.solve_batch_vectorized`)
runs one ``(scenarios × edges)`` forward pass per tree group.

The looped total is *projected*: the per-scenario time is the minimum
over ``LOOP_SAMPLES`` individually timed solves, multiplied by
``SCENARIOS``.  Taking the minimum favors the looped side, so the
reported speedup is an underestimate and the ``MIN_SPEEDUP`` gate stays
honest without a CI run spending minutes on the loop.  The sampled
scenarios' results are asserted field-identical between the two paths
(the full bit-identity contract lives in
``tests/test_scenario_batch.py``).

Writes ``BENCH_scenario_batch.json`` (CI artifact, gated ≥5x) and
appends to ``bench_history/scenario_batch.jsonl``.  Also runnable
directly:

    PYTHONPATH=src python benchmarks/bench_scenario_batch.py
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import random
import time

from history import append_history

from repro.graphs.families import make_family_instance
from repro.runtime import SolveQuery, SolverSession

N = 2000
SEED = 1
EPS = 0.5
SCENARIOS = 100
LOOP_SAMPLES = 5
PERTURBED_EDGES = 20
MIN_SPEEDUP = 5.0

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scenario_batch.json",
)


def _fields_equal(a, b) -> bool:
    """Recursive dataclass-field equality (the bit-identity check)."""
    if type(a) is not type(b):
        return False
    if dataclasses.is_dataclass(a):
        return all(
            _fields_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    return a == b


def _scenario_columns(session: SolverSession) -> list[list[float]]:
    """``SCENARIOS`` scale-up perturbations of non-tree edges."""
    from repro.runtime.batch import stable_kruskal_mst

    handle = session.handle
    mst = set(stable_kruskal_mst(handle, handle.weights))
    nontree = [i for i, e in enumerate(handle.edges) if e not in mst]
    rng = random.Random(SEED + 7)
    base = list(handle.weights)
    columns = []
    for _ in range(SCENARIOS):
        column = list(base)
        for i in rng.sample(nontree, min(PERTURBED_EDGES, len(nontree))):
            column[i] = column[i] * rng.uniform(1.0, 3.0)
        columns.append(column)
    return columns


def run_scenario_batch_benchmark() -> dict:
    """Time vectorized vs looped scenarios, check identity, write the JSON."""
    graph = make_family_instance("erdos_renyi", N, seed=SEED)
    session = SolverSession(graph, backend="fast")
    columns = _scenario_columns(session)
    queries = [
        SolveQuery(eps=EPS, validate=False, weights=column)
        for column in columns
    ]

    # Warm the topology caches (graph diameter, base plan) so both sides
    # measure steady state: the looped side's projection takes the
    # minimum over its samples, which already excludes one-time costs.
    # Two queries, because a singleton group falls back to the scalar
    # path by design.
    session.solve_batch_vectorized(queries[:2])

    # Looped baseline: per-scenario minimum over the first LOOP_SAMPLES
    # (fresh session so its plan cache cannot subsidize the loop).
    looped_session = SolverSession(graph, backend="fast", max_plans=2)
    loop_per_scenario_s = float("inf")
    loop_results = []
    for query in queries[:LOOP_SAMPLES]:
        t0 = time.perf_counter()
        loop_results.append(looped_session.solve_many([query])[0])
        loop_per_scenario_s = min(
            loop_per_scenario_s, time.perf_counter() - t0
        )

    # Vectorized: all scenarios through one call (includes every build).
    # Minimum of two runs — symmetric with the looped side's
    # min-over-samples, so machine noise cancels out of the ratio.
    vectorized_total_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        results = session.solve_batch_vectorized(queries)
        vectorized_total_s = min(
            vectorized_total_s, time.perf_counter() - t0
        )

    for got, expected in zip(results[:LOOP_SAMPLES], loop_results):
        assert _fields_equal(got, expected), (
            "vectorized scenario diverged from the looped solve — the "
            "bit-identity contract is broken"
        )
    stats = session.stats()
    assert stats["vectorized_batches"] >= 1, "the batched path never engaged"
    assert stats["scalar_fallback"] == 0, "scenarios fell back to the loop"

    loop_total_s = loop_per_scenario_s * SCENARIOS
    speedup = loop_total_s / vectorized_total_s
    record = {
        "benchmark": "scenario_batch",
        "instance": {"family": "erdos_renyi", "n": N, "seed": SEED,
                     "m": graph.number_of_edges(), "eps": EPS},
        "scenarios": SCENARIOS,
        "perturbed_edges": PERTURBED_EDGES,
        "loop_samples": LOOP_SAMPLES,
        "python": platform.python_version(),
        "loop_s_per_scenario": round(loop_per_scenario_s, 4),
        "loop_total_s_projected": round(loop_total_s, 4),
        "vectorized_total_s": round(vectorized_total_s, 4),
        "vectorized_s_per_scenario": round(
            vectorized_total_s / SCENARIOS, 4
        ),
        "vectorized_batches": stats["vectorized_batches"],
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "weight_scenario_0": results[0].weight,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("scenario_batch", record)
    assert speedup >= MIN_SPEEDUP, (
        f"scenario-batch speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x gate"
    )
    return record


def test_bench_scenario_batch(benchmark):
    record = benchmark.pedantic(
        run_scenario_batch_benchmark, rounds=1, iterations=1
    )
    print(
        f"\nscenario batch n={N}: loop "
        f"{record['loop_s_per_scenario']*1e3:.0f} ms/scenario, vectorized "
        f"{record['vectorized_s_per_scenario']*1e3:.0f} ms/scenario, "
        f"{SCENARIOS} scenarios speedup {record['speedup']}x -> {BENCH_PATH}"
    )
    assert record["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    rec = run_scenario_batch_benchmark()
    print(json.dumps(rec, indent=2))
