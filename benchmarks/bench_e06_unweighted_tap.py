"""E6 — Section 3.6.1: unweighted TAP, 2-approx on G' / 4-approx on G.

Measured: the augmentation size against the MIS certificate (a true lower
bound on OPT of G') and, on small instances, against the exact MILP optimum
on G.  Expected: ratio on G' <= 2 always; ratio on G <= 4.
"""

from math import isnan

from repro.analysis.experiments import e06_unweighted

from conftest import run_experiment


def test_e06_unweighted_tap(benchmark):
    rows = run_experiment(benchmark, e06_unweighted, "e06_unweighted_tap")
    assert all(r["within_2"] for r in rows)
    for r in rows:
        if not isnan(r["ratio_on_g"]):
            assert r["ratio_on_g"] <= 4 + 1e-9
