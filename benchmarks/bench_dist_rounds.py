"""Measured-rounds-vs-model artifact for the distributed pipeline.

Runs :func:`repro.dist.distributed_two_ecss` across graph families and
sizes, asserts bit-identity with ``backend="reference"`` and that every
per-primitive measured/priced ratio stays within the documented constant
(:data:`repro.dist.RATIO_BOUND`), and records the full rounds-vs-model
table in ``BENCH_dist_rounds.json`` at the repo root — uploaded by CI
alongside ``BENCH_tap_backends.json``.

Also runnable directly (no pytest) to refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_dist_rounds.py
"""

from __future__ import annotations

import json
import os
import platform

from history import append_history

from repro.analysis.tables import rounds_vs_model_table, write_report
from repro.core.tecss import approximate_two_ecss
from repro.dist import RATIO_BOUND, distributed_two_ecss
from repro.graphs.families import make_family_instance

FAMILIES = ("cycle_chords", "erdos_renyi", "grid", "theta", "hub_cycle",
            "caterpillar")
SIZES = (30, 60)
SEED = 1
EPS = 0.5

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dist_rounds.json",
)


def run_dist_rounds_benchmark() -> dict:
    """Measure each family/size cell; check identity and ratio bounds."""
    record: dict = {
        "benchmark": "dist_rounds",
        "eps": EPS,
        "seed": SEED,
        "ratio_bound": RATIO_BOUND,
        "python": platform.python_version(),
        "cells": [],
    }
    worst = 0.0
    runs = []
    for family in FAMILIES:
        for n in SIZES:
            graph = make_family_instance(family, n, seed=SEED)
            dist = distributed_two_ecss(graph, eps=EPS)
            runs.append(dist)
            ref = approximate_two_ecss(graph, eps=EPS, backend="reference")
            assert dist.result.edges == ref.edges, (
                f"{family}/n={n}: distributed pipeline diverged from reference"
            )
            assert dist.result.weight == ref.weight
            assert dist.within_bound, (
                f"{family}/n={n}: ratio {dist.max_ratio:.2f} exceeds "
                f"the {RATIO_BOUND}x bound"
            )
            worst = max(worst, dist.max_ratio)
            record["cells"].append(
                {
                    "family": family,
                    "n": dist.n,
                    "D": dist.diameter,
                    "measured_rounds": dist.measured_rounds,
                    "priced_rounds": dist.priced_rounds,
                    "max_ratio": round(dist.max_ratio, 3),
                    "primitives": [
                        {
                            "primitive": row["primitive"],
                            "runs": row["runs"],
                            "measured_rounds": row["measured_rounds"],
                            "priced_rounds": round(row["priced_rounds"], 2),
                            "ratio": round(row["ratio"], 3),
                        }
                        for row in dist.comparison
                    ],
                }
            )
    record["worst_ratio"] = round(worst, 3)
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("dist_rounds", record)
    # Human-readable twin of the JSON artifact, under benchmarks/out/.
    write_report("dist_rounds", rounds_vs_model_table(runs, title="dist_rounds"))
    return record


def test_bench_dist_rounds(benchmark):
    """Benchmark-harness entry point (one measured pass, gate enforced)."""
    record = benchmark.pedantic(run_dist_rounds_benchmark, rounds=1, iterations=1)
    print(
        f"\ndist rounds: {len(record['cells'])} cells, worst ratio "
        f"{record['worst_ratio']}x (bound {RATIO_BOUND}x) -> {BENCH_PATH}"
    )
    assert record["worst_ratio"] <= RATIO_BOUND


if __name__ == "__main__":
    rec = run_dist_rounds_benchmark()
    print(json.dumps(rec, indent=2))
