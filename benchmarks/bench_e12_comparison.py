"""E12 — the paper's positioning (Section 1.1): best of both worlds.

On small-diameter / tall-MST networks (``hub_cycle``: D = 2, h_MST ~ n):

* quality: our (5+eps) output vs the 3-approx of [4] (realized by the
  classical Frederickson-JaJa/Khuller-Thurimella baseline) and the
  O(log n)-greedy regime of [8] — all close in practice;
* rounds: the modeled round count of Theorem 1.1 stays polylog x (D +
  sqrt n), while [4]'s O(h_MST) term is linear in n — the gap the paper's
  first contribution closes.
"""

from repro.analysis.experiments import e12_comparison

from conftest import run_experiment


def test_e12_comparison(benchmark):
    rows = run_experiment(benchmark, e12_comparison, "e12_comparison")
    for r in rows:
        # quality: we stay within the guarantee band of the baselines
        assert r["w_ours(5+eps)"] <= 5.5 / 3.0 * r["w_CHD17(3)"] + 1e-6
        assert r["w_ours(5+eps)"] <= r["w_all_edges"] + 1e-6
        # round regime: h_MST is ~n, so the [4]-style bound must exceed the
        # sqrt(n)-scaling of ours by a widening margin
        assert r["h_MST"] >= r["n"] // 2
        assert r["rounds_CHD17~h"] >= r["h_MST"]
