"""The 2000-node TAP backend benchmark: reference loops vs fast kernels.

Runs :func:`repro.core.tap.approximate_tap` on the canonical 2000-node
Erdős–Rényi instance with both backends, asserts that the augmentations are
bit-identical, and records the wall-clock comparison in
``BENCH_tap_backends.json`` at the repo root (the acceptance artifact; CI
uploads it as a workflow artifact).  The speedup gate asserts the
kernelized backend is at least 5x faster.

Also runnable directly (no pytest) to refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_tap_backends.py
"""

from __future__ import annotations

import json
import os
import platform
import time

from history import append_history

from repro.analysis.experiments import _links_of
from repro.core.tap import approximate_tap
from repro.graphs.families import make_family_instance

N = 2000
SEED = 1
EPS = 0.5
ROUNDS = 3
MIN_SPEEDUP = 5.0

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_tap_backends.json",
)


def _instance():
    graph = make_family_instance("erdos_renyi", N, seed=SEED)
    _, tree, links = _links_of(graph)
    return tree, links


def _time_backend(tree, links, backend: str, validate: bool) -> tuple[float, object]:
    best = float("inf")
    res = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        res = approximate_tap(
            tree, links, eps=EPS, validate=validate, backend=backend
        )
        best = min(best, time.perf_counter() - t0)
    return best, res


def run_backend_benchmark() -> dict:
    """Time both backends, check bit-identity, and write the BENCH json."""
    tree, links = _instance()
    record: dict = {
        "benchmark": "tap_backends",
        "instance": {"family": "erdos_renyi", "n": N, "seed": SEED,
                     "links": len(links), "eps": EPS},
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "results": {},
    }
    for validate in (False, True):
        ref_s, ref = _time_backend(tree, links, "reference", validate)
        fast_s, fast = _time_backend(tree, links, "fast", validate)
        assert fast.links == ref.links and fast.weight == ref.weight, (
            "backends diverged — the differential contract is broken"
        )
        key = "validated" if validate else "raw"
        record["results"][key] = {
            "reference_s": round(ref_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(ref_s / fast_s, 2),
            "weight": ref.weight,
        }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("tap_backends", record)
    # Enforce the gate here so both entry points (pytest and the CI docs
    # job's direct `python benchmarks/bench_tap_backends.py`) fail loudly
    # on a performance regression.
    raw_speedup = record["results"]["raw"]["speedup"]
    assert raw_speedup >= MIN_SPEEDUP, (
        f"fast backend speedup {raw_speedup}x below the {MIN_SPEEDUP}x gate"
    )
    return record


def test_bench_tap_backends(benchmark):
    record = benchmark.pedantic(run_backend_benchmark, rounds=1, iterations=1)
    raw = record["results"]["raw"]
    print(
        f"\nTAP n={N}: reference {raw['reference_s']*1e3:.0f} ms, "
        f"fast {raw['fast_s']*1e3:.0f} ms, speedup {raw['speedup']}x "
        f"-> {BENCH_PATH}"
    )
    assert raw["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    rec = run_backend_benchmark()
    print(json.dumps(rec, indent=2))
