"""Tracing-overhead benchmark: spans must be near-free, on or off.

Two gates, both written to ``BENCH_obs_overhead.json`` and appended to
``bench_history/obs_overhead.jsonl``:

* **disabled** — with tracing off every instrumentation point is one
  tracer attribute check returning the shared no-op span.  Measured
  directly: the per-call cost of a disabled ``obs.span()`` context,
  times the spans one solve actually emits, must stay under
  ``MAX_DISABLED_FRACTION`` (2%) of the solve itself.
* **enabled** — with tracing on (real ``Span`` objects, perf_counter
  reads, tree linkage) the median end-to-end solve must stay within
  ``MAX_ENABLED_RATIO`` (1.10x) of the disabled median.

Samples are interleaved disabled/enabled so drift (thermal, cache,
background load) hits both sides equally; medians come from
:func:`history.sample_stats`.  Also runnable directly:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import os
import platform
import time

from history import append_history, sample_stats

from repro import obs
from repro.graphs.families import make_family_instance
from repro.runtime import SolveQuery, SolverSession

N = 500
SEED = 3
EPS = 0.5
SAMPLES = 7
NOOP_CALLS = 200_000
MAX_ENABLED_RATIO = 1.10
MAX_DISABLED_FRACTION = 0.02

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs_overhead.json",
)


def _solve_once(session: SolverSession) -> float:
    """One timed steady-state solve (plan cached, full TAP run)."""
    query = SolveQuery(eps=EPS, validate=False)
    t0 = time.perf_counter()
    session.solve_many([query])
    return time.perf_counter() - t0


def _spans_per_solve(session: SolverSession) -> int:
    """How many spans one solve emits (size of the traced tree)."""
    previous = obs.set_tracer(obs.Tracer(enabled=True))
    try:
        session.solve_many([SolveQuery(eps=EPS, validate=False)])
        roots = obs.get_tracer().drain()
    finally:
        obs.set_tracer(previous)
    return sum(1 for root in roots for _ in root.walk())


def _noop_span_cost_s() -> float:
    """Per-call cost of an instrumentation point while tracing is off."""
    previous = obs.set_tracer(obs.Tracer(enabled=False))
    try:
        t0 = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with obs.span("bench.noop"):
                pass
        return (time.perf_counter() - t0) / NOOP_CALLS
    finally:
        obs.set_tracer(previous)


def run_obs_overhead_benchmark() -> dict:
    """Measure both gates, write the JSON artifact, append history."""
    graph = make_family_instance("erdos_renyi", N, seed=SEED)
    session = SolverSession(graph, backend="fast")
    # Warm: plan build + first-solve costs stay out of both sides.
    _solve_once(session)

    disabled: list[float] = []
    enabled: list[float] = []
    previous = obs.set_tracer(obs.Tracer(enabled=False))
    try:
        for _ in range(SAMPLES):
            obs.disable()
            disabled.append(_solve_once(session))
            obs.enable()
            enabled.append(_solve_once(session))
            obs.get_tracer().clear()
    finally:
        obs.set_tracer(previous)

    disabled_stats = sample_stats(disabled)
    enabled_stats = sample_stats(enabled)
    ratio = enabled_stats["median"] / disabled_stats["median"]

    spans = _spans_per_solve(session)
    noop_cost_s = _noop_span_cost_s()
    disabled_fraction = spans * noop_cost_s / disabled_stats["median"]

    record = {
        "benchmark": "obs_overhead",
        "instance": {"family": "erdos_renyi", "n": N, "seed": SEED,
                     "m": graph.number_of_edges(), "eps": EPS},
        "samples": SAMPLES,
        "python": platform.python_version(),
        "disabled_solve_s": disabled_stats,
        "enabled_solve_s": enabled_stats,
        "enabled_ratio": round(ratio, 4),
        "max_enabled_ratio_gate": MAX_ENABLED_RATIO,
        "spans_per_solve": spans,
        "noop_span_cost_us": round(noop_cost_s * 1e6, 4),
        "disabled_overhead_fraction": round(disabled_fraction, 6),
        "max_disabled_fraction_gate": MAX_DISABLED_FRACTION,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("obs_overhead", record)
    assert disabled_fraction <= MAX_DISABLED_FRACTION, (
        f"disabled tracing costs {disabled_fraction * 100:.2f}% of a solve "
        f"({spans} spans x {noop_cost_s * 1e6:.2f}us), above the "
        f"{MAX_DISABLED_FRACTION * 100:.0f}% gate"
    )
    assert ratio <= MAX_ENABLED_RATIO, (
        f"enabled tracing is {ratio:.3f}x the disabled solve, above the "
        f"{MAX_ENABLED_RATIO}x gate"
    )
    return record


def test_bench_obs_overhead(benchmark):
    record = benchmark.pedantic(
        run_obs_overhead_benchmark, rounds=1, iterations=1
    )
    print(
        f"\nobs overhead n={N}: disabled "
        f"{record['disabled_solve_s']['median'] * 1e3:.1f} ms/solve, "
        f"enabled ratio {record['enabled_ratio']}x "
        f"(gate {MAX_ENABLED_RATIO}x), {record['spans_per_solve']} spans at "
        f"{record['noop_span_cost_us']}us no-op -> {BENCH_PATH}"
    )
    assert record["enabled_ratio"] <= MAX_ENABLED_RATIO


if __name__ == "__main__":
    rec = run_obs_overhead_benchmark()
    print(json.dumps(rec, indent=2))
