"""Append-only benchmark history: one timestamped JSONL line per run.

The ``BENCH_*.json`` files at the repo root are *snapshots* — each run
overwrites the last, so a slow drift that stays above a gate is
invisible.  Every benchmark runner therefore also appends its record to
``bench_history/<name>.jsonl`` through :func:`append_history`: an
append-only log of ``{...record, "at": <UTC ISO>, "benchmark": <name>,
"commit": <git sha>, "host": <hostname>}`` lines that the trend tooling
(``python -m repro bench report``, backed by :mod:`repro.obs.report`)
reads without re-running anything.  History files are per-machine
working data (the directory is gitignored); CI uploads them next to the
snapshots.

The stamps are applied **after** the record is spread, so a record that
happens to carry an ``at``/``benchmark``/``commit``/``host`` key cannot
silently masquerade as a different run (regression-tested in
``tests/test_bench_report.py``).

Benchmarks that take repeated samples summarize them through
:func:`sample_stats` — median ± IQR instead of a single shot — so the
history carries spread, not just a point.

Import note: the benchmarks are run both as scripts
(``python benchmarks/bench_X.py``) and under pytest — in both cases this
directory is on ``sys.path`` (script dir / pytest rootdir insertion), so
a plain ``import history`` works without packaging.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time

__all__ = ["HISTORY_DIR", "append_history", "git_commit", "sample_stats"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HISTORY_DIR = os.path.join(_REPO_ROOT, "bench_history")


def git_commit() -> "str | None":
    """The current commit's short sha, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def sample_stats(samples: "list[float]") -> "dict[str, float]":
    """Median ± IQR summary of repeated measurements.

    Returns ``{"n", "median", "iqr", "min", "max"}`` — the shape trend
    reporting expects (``median`` trends; ``iqr`` shows spread).
    """
    if not samples:
        raise ValueError("sample_stats needs at least one sample")
    ordered = sorted(samples)
    n = len(ordered)

    def quantile(q: float) -> float:
        # Linear interpolation between closest ranks (numpy's default).
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return {
        "n": float(n),
        "median": quantile(0.5),
        "iqr": quantile(0.75) - quantile(0.25),
        "min": ordered[0],
        "max": ordered[-1],
    }


def append_history(name: str, record: dict) -> str:
    """Append one benchmark record to ``bench_history/<name>.jsonl``.

    Stamps the record with the current UTC time (``at``), the benchmark
    name, the git commit and the hostname — *after* spreading the
    record, so the stamps always win over colliding record keys.
    Creates the directory on first use and returns the history file's
    path.  Records are written as one compact JSON line each, so the
    file is greppable and loads line by line.
    """
    os.makedirs(HISTORY_DIR, exist_ok=True)
    entry = {
        **record,
        "at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": name,
        "commit": git_commit(),
        "host": socket.gethostname(),
    }
    path = os.path.join(HISTORY_DIR, f"{name}.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return path
