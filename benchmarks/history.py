"""Append-only benchmark history: one timestamped JSONL line per run.

The ``BENCH_*.json`` files at the repo root are *snapshots* — each run
overwrites the last, so a slow drift that stays above a gate is
invisible.  Every benchmark runner therefore also appends its record to
``bench_history/<name>.jsonl`` through :func:`append_history`: an
append-only log of ``{"at": <UTC ISO>, "benchmark": <name>, ...record}``
lines that trend tooling (ROADMAP item 5's ``bench report``) can read
without re-running anything.  History files are per-machine working data
(the directory is gitignored); CI uploads them next to the snapshots.

Import note: the benchmarks are run both as scripts
(``python benchmarks/bench_X.py``) and under pytest — in both cases this
directory is on ``sys.path`` (script dir / pytest rootdir insertion), so
a plain ``import history`` works without packaging.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["HISTORY_DIR", "append_history"]

HISTORY_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench_history",
)


def append_history(name: str, record: dict) -> str:
    """Append one benchmark record to ``bench_history/<name>.jsonl``.

    Stamps the record with the current UTC time (``at``) and the
    benchmark name, creates the directory on first use, and returns the
    history file's path.  Records are written as one compact JSON line
    each, so the file is greppable and loads line by line.
    """
    os.makedirs(HISTORY_DIR, exist_ok=True)
    entry = {
        "at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": name,
        **record,
    }
    path = os.path.join(HISTORY_DIR, f"{name}.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return path
