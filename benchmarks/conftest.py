"""Shared helper for the experiment benchmarks.

Every benchmark runs its experiment once under pytest-benchmark timing
(``pedantic`` with a single round — the experiments are macro-benchmarks),
asserts the paper-claim *shape* on the resulting rows, and writes the table
to ``benchmarks/out/<name>.txt`` — the files EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_report


def run_experiment(benchmark, fn, name: str, **kwargs):
    rows = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    table = format_table(rows, title=name)
    write_report(name, table)
    print("\n" + table)
    return rows
