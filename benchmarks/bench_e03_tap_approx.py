"""E3 — Theorem 4.19: weighted TAP quality.

Two measurements:

* ``(2 + eps)`` on the *virtual* instance — checked against the **exact**
  optimum of G' computed by the Edmonds-arborescence solver, at sizes far
  beyond the MILP (this is the sharp version of the claim, since the
  remaining factor 2 of Theorem 4.19 is the worst-case virtual-split loss);
* ``(4 + eps)`` on the original instance, against the MILP optimum.
"""

from repro.analysis.experiments import e03_tap_approx, e03_tap_vs_milp

from conftest import run_experiment


def test_e03_tap_on_virtual_graph(benchmark):
    rows = run_experiment(benchmark, e03_tap_approx, "e03_tap_on_gprime")
    assert all(r["within"] for r in rows)
    assert all(r["ratio_on_gprime"] <= r["bound_2+eps"] + 1e-9 for r in rows)


def test_e03_tap_vs_milp(benchmark):
    rows = run_experiment(benchmark, e03_tap_vs_milp, "e03_tap_vs_milp")
    assert all(r["within"] for r in rows)
