"""Micro-benchmarks: timing of the core primitives (pytest-benchmark proper).

These are conventional wall-clock benchmarks (multiple rounds) of the
building blocks, useful for tracking performance regressions of the library
itself — they complement the experiment macro-benches, which measure the
*algorithmic* quantities (rounds, ratios).
"""

import random

from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.reverse import reverse_delete
from repro.decomp.layering import Layering
from repro.decomp.petals import PetalOracle
from repro.decomp.segments import SegmentDecomposition
from repro.graphs import grid_graph
from repro.model.network import Network
from repro.model.programs import DistributedBFS
from repro.sim import BatchedNetwork, RandomGossip
from repro.trees.pathops import TreePathOps
from repro.trees.rooted import RootedTree


def _tree(n=1000, seed=0):
    rng = random.Random(seed)
    parent = [-1] + [rng.randrange(v) for v in range(1, n)]
    return RootedTree(parent, 0)


def _instance(n=600, m=1200, seed=1):
    rng = random.Random(seed)
    tree = _tree(n, seed)
    links = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            links.append((u, v, rng.uniform(1, 100)))
    for leaf in tree.leaves():
        links.append((leaf, 0, rng.uniform(50, 200)))
    return TAPInstance.from_links(tree, links)


def test_bench_layering(benchmark):
    tree = _tree(2000)
    benchmark(lambda: Layering(tree))


def test_bench_segments(benchmark):
    tree = _tree(2000)
    benchmark(lambda: SegmentDecomposition(tree))


def test_bench_pathops_coverage(benchmark):
    tree = _tree(1500)
    rng = random.Random(2)
    ops = TreePathOps(tree)
    paths = []
    for _ in range(3000):
        dec = rng.randrange(1, tree.n)
        anc = tree.ancestor_at_depth(dec, rng.randrange(tree.depth[dec]))
        paths.append((dec, anc))
    benchmark(lambda: ops.coverage_counts(paths))


def test_bench_petal_oracle(benchmark):
    inst = _instance()
    pairs = [e.pair for e in inst.edges]

    def build_and_query():
        oracle = PetalOracle(inst.ops, inst.layering, pairs)
        return [oracle.petals_of(t) for t in inst.tree.tree_edges()]

    benchmark(build_and_query)


def test_bench_forward_phase(benchmark):
    inst = _instance()
    benchmark.pedantic(lambda: forward_phase(inst, eps=0.5), rounds=2, iterations=1)


def test_bench_full_tap(benchmark):
    inst = _instance(n=400, m=800)

    def full():
        fwd = forward_phase(inst, eps=0.5)
        return reverse_delete(inst, fwd, validate=False)

    benchmark.pedantic(full, rounds=2, iterations=1)


# -- CONGEST engine micro-benchmarks ------------------------------------
# The legacy/batched pair on the same 2000+-node workload is the
# regression tripwire for the ISSUE-1 acceptance criterion (>= 3x).

_SIM_GRID = (45, 45)  # 2025 nodes


def test_bench_congest_legacy_bfs_2000(benchmark):
    g = grid_graph(*_SIM_GRID, seed=1)
    benchmark.pedantic(
        lambda: Network(g).run(DistributedBFS(0)), rounds=2, iterations=1
    )


def test_bench_congest_batched_bfs_2000(benchmark):
    g = grid_graph(*_SIM_GRID, seed=1)
    benchmark.pedantic(
        lambda: BatchedNetwork(g).run(DistributedBFS(0)), rounds=2, iterations=1
    )


def test_bench_congest_batched_gossip(benchmark):
    g = grid_graph(*_SIM_GRID, seed=2)
    benchmark.pedantic(
        lambda: BatchedNetwork(g).run(RandomGossip(seed=3)),
        rounds=2,
        iterations=1,
    )
