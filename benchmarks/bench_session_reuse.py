"""The 2000-node session-reuse benchmark: shared plan vs one-shot rebuilds.

Solves the canonical 2000-node Erdős–Rényi instance ``REPEATS`` times
through one :class:`repro.runtime.session.SolverSession` (the plan —
validation, normalization, MST, virtual graph, diameter — is built once
and reused) and compares the wall clock against the one-shot API, which
rebuilds everything per call.  Results are asserted bit-identical, the
comparison lands in ``BENCH_session_reuse.json`` at the repo root (a CI
artifact), and the gate requires the session to be at least
``MIN_SPEEDUP``× faster.

The one-shot total is *projected*: the per-call time is measured as the
minimum over ``ONE_SHOT_SAMPLES`` full calls and multiplied by
``REPEATS``.  Taking the minimum favors the one-shot side (its projected
total is a lower bound on the real total), so the reported speedup is an
*underestimate* — the gate stays honest without spending ~2 minutes of CI
on 50 identical rebuilds.

Also runnable directly (no pytest) to refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_session_reuse.py
"""

from __future__ import annotations

import json
import os
import platform
import time

from history import append_history

from repro.core.tecss import approximate_two_ecss
from repro.graphs.families import make_family_instance
from repro.runtime import SolveQuery, SolverSession

N = 2000
SEED = 1
EPS = 0.5
REPEATS = 50
ONE_SHOT_SAMPLES = 3
MIN_SPEEDUP = 3.0

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_session_reuse.json",
)


def run_session_reuse_benchmark() -> dict:
    """Time session reuse vs one-shot, check bit-identity, write the JSON."""
    graph = make_family_instance("erdos_renyi", N, seed=SEED)

    # One-shot: full rebuild per call; keep the fastest observed call.
    one_shot_s = float("inf")
    reference = None
    for _ in range(ONE_SHOT_SAMPLES):
        t0 = time.perf_counter()
        reference = approximate_two_ecss(graph, eps=EPS, backend="fast")
        one_shot_s = min(one_shot_s, time.perf_counter() - t0)

    # Session: one plan, REPEATS solves (includes the plan build).
    t0 = time.perf_counter()
    session = SolverSession(graph, backend="fast")
    results = session.solve_many([SolveQuery(eps=EPS)] * REPEATS)
    session_total_s = time.perf_counter() - t0

    for res in results:
        assert res.edges == reference.edges and res.weight == reference.weight, (
            "session result diverged from the one-shot API — the "
            "bit-identity contract is broken"
        )
    assert session.stats()["plans_built"] == 1, "plan was rebuilt mid-session"

    one_shot_total_s = one_shot_s * REPEATS
    speedup = one_shot_total_s / session_total_s
    record = {
        "benchmark": "session_reuse",
        "instance": {"family": "erdos_renyi", "n": N, "seed": SEED,
                     "m": graph.number_of_edges(), "eps": EPS},
        "repeats": REPEATS,
        "one_shot_samples": ONE_SHOT_SAMPLES,
        "python": platform.python_version(),
        "one_shot_s_per_call": round(one_shot_s, 4),
        "one_shot_total_s_projected": round(one_shot_total_s, 4),
        "session_total_s": round(session_total_s, 4),
        "session_s_per_solve": round(session_total_s / REPEATS, 4),
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "weight": reference.weight,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("session_reuse", record)
    # Enforce the gate here so both entry points (pytest and the CI job's
    # direct `python benchmarks/bench_session_reuse.py`) fail loudly.
    assert speedup >= MIN_SPEEDUP, (
        f"session reuse speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
    return record


def test_bench_session_reuse(benchmark):
    record = benchmark.pedantic(run_session_reuse_benchmark, rounds=1,
                                iterations=1)
    print(
        f"\nsession reuse n={N}: one-shot {record['one_shot_s_per_call']*1e3:.0f} "
        f"ms/call, session {record['session_s_per_solve']*1e3:.0f} ms/solve, "
        f"{REPEATS} solves speedup {record['speedup']}x -> {BENCH_PATH}"
    )
    assert record["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    rec = run_session_reuse_benchmark()
    print(json.dumps(rec, indent=2))
