"""E10 — Lemma 4.12: O(log n / eps) iterations per forward epoch.

Measured: the worst per-epoch iteration count across seeds for each eps,
against the proof's bound log_{1+eps}(n) + 2, plus the maximum dual
constraint ratio (must stay <= 1 + eps).
"""

from repro.analysis.experiments import e10_forward_iterations

from conftest import run_experiment


def test_e10_forward_iterations(benchmark):
    rows = run_experiment(benchmark, e10_forward_iterations, "e10_forward_iters")
    for r in rows:
        assert r["max_iters_per_epoch"] <= r["lemma412_bound"]
        assert r["dual_ok(<=1+eps)"]
    # smaller eps => more iterations (the 1/eps dependence is real)
    iters = [r["max_iters_per_epoch"] for r in rows]  # eps ascending
    assert iters[0] >= iters[-1]
