"""The 2000-node incremental re-solve benchmark: sparse deltas vs columns.

Drives the drift workload the ``/v1/delta`` route exists for: ``TICKS``
re-solves of the canonical 2000-node Erdős–Rényi instance, each tick
re-pricing ``CHANGE_FRACTION`` of the edges within ±1% of their baseline
weight — the slow-drift regime (link latencies wobbling, not links being
re-planned) where the maintained tree mostly survives and swap-edge
maintenance touches O(k · tree-path) state instead of O(m).

Two measurements, both against a baseline session fed the equivalent
*full* weight column — the best the service could do before the
incremental path existed:

* **re-plan** — the cost of getting a solve-ready
  :class:`~repro.runtime.plan.SolverPlan` for the tick's weights (sparse
  derivation vs full rebuild of MST, links and the kernel instance).
  This is the path the delta machinery replaces, and the ``MIN_SPEEDUP``
  (≥10x) gate applies to it.
* **end-to-end** — the full ``session.solve`` wall clock.  Both sides
  pay the identical per-query TAP phases (forward primal-dual +
  reverse delete) on top of their plan, so this ratio is structurally
  smaller; it is reported, asserted bit-identical tick by tick, and
  gated at ``MIN_E2E_SPEEDUP`` (≥3x).

Every tick asserts the delta result equals the full-column result field
for field, the comparison lands in ``BENCH_delta_resolve.json`` at the
repo root (a CI artifact), and both gates are enforced in the pytest
wrapper and the ``__main__`` entry alike.

Both sides get untimed warmup ticks (the shared base-plan build plus one
drift tick to absorb first-use lazies such as the pair index), so the
comparison isolates steady-state per-tick cost, not bootstrapping.
``validate=False`` matches the serving configuration this path targets:
re-validating 2-edge-connectivity per tick would dominate both sides
with identical cost and only dilute the measured difference.

Also runnable directly (no pytest) to refresh the JSON:

    PYTHONPATH=src python benchmarks/bench_delta_resolve.py
"""

from __future__ import annotations

import gc
import json
import os
import platform
import random
import time

from history import append_history

from repro.graphs.families import make_family_instance
from repro.runtime import SolverSession
from repro.runtime.registry import resolve_compute

N = 2000
SEED = 1
EPS = 0.5
TICKS = 12
CHANGE_FRACTION = 0.01
JITTER = 0.01
MIN_SPEEDUP = 10.0
MIN_E2E_SPEEDUP = 3.0

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_delta_resolve.json",
)


def _drift_ticks(graph, ticks, fraction, seed):
    """Seeded per-tick diffs: ``(sparse mapping, full column)`` pairs.

    Each diff is relative to the *baseline* weights (the ``/v1/delta``
    contract), so the sparse mapping and the patched column describe the
    same weight scenario by construction.
    """
    rng = random.Random(seed)
    edges = list(graph.edges())
    base = [graph[u][v]["weight"] for u, v in edges]
    k = max(1, round(fraction * len(edges)))
    out = []
    for _ in range(ticks):
        chosen = rng.sample(range(len(edges)), k)
        column = list(base)
        sparse = {}
        for i in chosen:
            column[i] = base[i] * rng.uniform(1 - JITTER, 1 + JITTER)
            sparse[edges[i]] = column[i]
        out.append((sparse, column))
    return out


def _materialize(plan, flavor):
    """Touch everything a ``validate=False`` solve reads off the plan."""
    plan.instance(flavor)
    plan.mst_weight
    plan.diameter


def _warm(session, warmup_tick):
    """Base-plan build plus one drift tick to absorb first-use lazies."""
    sparse, column = warmup_tick
    session.solve(eps=EPS, validate=False)
    session.solve(eps=EPS, validate=False, weights=column)


def run_delta_resolve_benchmark() -> dict:
    """Time delta re-solves vs full-column re-solves; write the JSON."""
    graph = make_family_instance("erdos_renyi", N, seed=SEED)
    warmup, *ticks = _drift_ticks(
        graph, TICKS + 1, CHANGE_FRACTION, seed=SEED
    )
    flavor = resolve_compute("fast")

    # ---- pass 1: end-to-end solves, bit-identity asserted per tick ----
    delta_session = SolverSession(graph, backend="fast")
    column_session = SolverSession(graph, backend="fast")
    _warm(delta_session, warmup)
    _warm(column_session, warmup)
    delta_session.solve(
        eps=EPS, validate=False, weights_delta=warmup[0]
    )

    gc.collect()
    delta_s = column_s = 0.0
    for sparse, column in ticks:
        t0 = time.perf_counter()
        got = delta_session.solve(eps=EPS, validate=False,
                                  weights_delta=sparse)
        delta_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        want = column_session.solve(eps=EPS, validate=False, weights=column)
        column_s += time.perf_counter() - t0
        assert got.edges == want.edges and got.weight == want.weight, (
            "delta re-solve diverged from the full-column path — the "
            "bit-identity contract is broken"
        )
        assert got.mst_edges == want.mst_edges
        assert got.mst_weight == want.mst_weight

    stats = delta_session.stats()
    assert stats["delta_requests"] == TICKS + 1
    assert stats["delta_fallbacks"] == 0, (
        "1%-of-edges drift diffs should never hit the full-rebuild fallback"
    )

    # ---- pass 2: re-plan cost (plan solve-ready, no TAP query) ----
    delta_session = SolverSession(graph, backend="fast")
    column_session = SolverSession(graph, backend="fast")
    _warm(delta_session, warmup)
    _warm(column_session, warmup)
    _materialize(delta_session.plan(None, warmup[0]), flavor)

    gc.collect()
    replan_delta_s = replan_column_s = 0.0
    for sparse, column in ticks:
        t0 = time.perf_counter()
        _materialize(delta_session.plan(None, sparse), flavor)
        replan_delta_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        _materialize(column_session.plan(column, None), flavor)
        replan_column_s += time.perf_counter() - t0

    e2e_speedup = column_s / delta_s
    replan_speedup = replan_column_s / replan_delta_s
    record = {
        "benchmark": "delta_resolve",
        "instance": {"family": "erdos_renyi", "n": N, "seed": SEED,
                     "m": graph.number_of_edges(), "eps": EPS},
        "ticks": TICKS,
        "change_fraction": CHANGE_FRACTION,
        "jitter": JITTER,
        "changed_edges_per_tick": max(
            1, round(CHANGE_FRACTION * graph.number_of_edges())
        ),
        "python": platform.python_version(),
        "replan_column_s_per_tick": round(replan_column_s / TICKS, 4),
        "replan_delta_s_per_tick": round(replan_delta_s / TICKS, 4),
        "replan_speedup": round(replan_speedup, 2),
        "min_replan_speedup_gate": MIN_SPEEDUP,
        "e2e_column_s_per_tick": round(column_s / TICKS, 4),
        "e2e_delta_s_per_tick": round(delta_s / TICKS, 4),
        "e2e_speedup": round(e2e_speedup, 2),
        "min_e2e_speedup_gate": MIN_E2E_SPEEDUP,
        "delta_tree_reuses": stats["delta_tree_reuses"],
        "delta_tree_swaps": stats["delta_tree_swaps"],
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    append_history("delta_resolve", record)
    # Enforce the gates here so both entry points (pytest and the CI
    # job's direct `python benchmarks/bench_delta_resolve.py`) fail
    # loudly.
    assert replan_speedup >= MIN_SPEEDUP, (
        f"delta re-plan speedup {replan_speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x gate"
    )
    assert e2e_speedup >= MIN_E2E_SPEEDUP, (
        f"end-to-end delta speedup {e2e_speedup:.2f}x below the "
        f"{MIN_E2E_SPEEDUP}x gate"
    )
    return record


def test_bench_delta_resolve(benchmark):
    record = benchmark.pedantic(run_delta_resolve_benchmark, rounds=1,
                                iterations=1)
    print(
        f"\ndelta re-solve n={N}: re-plan "
        f"{record['replan_column_s_per_tick']*1e3:.0f} -> "
        f"{record['replan_delta_s_per_tick']*1e3:.0f} ms/tick "
        f"({record['replan_speedup']}x), end-to-end "
        f"{record['e2e_column_s_per_tick']*1e3:.0f} -> "
        f"{record['e2e_delta_s_per_tick']*1e3:.0f} ms/tick "
        f"({record['e2e_speedup']}x, "
        f"{record['changed_edges_per_tick']} edges/tick changed) "
        f"-> {BENCH_PATH}"
    )
    assert record["replan_speedup"] >= MIN_SPEEDUP
    assert record["e2e_speedup"] >= MIN_E2E_SPEEDUP


if __name__ == "__main__":
    rec = run_delta_resolve_benchmark()
    print(json.dumps(rec, indent=2))
