"""E8 — Theorems 5.1/5.2/5.3: the tree tools in shortcut time.

Measured: hierarchy depth vs log2(n) (the O(log n) levels the recursion
relies on), the number of batched partwise operations, correctness of the
descendants'/ancestors' sums, and the <= log2(n) light-edge list bound of
the distributed heavy-light decomposition.
"""

import math

from repro.analysis.experiments import e08_shortcut_tools

from conftest import run_experiment


def test_e08_shortcut_tools(benchmark):
    rows = run_experiment(benchmark, e08_shortcut_tools, "e08_shortcut_tools")
    assert all(r["correct"] for r in rows)
    for r in rows:
        assert r["levels"] <= r["log2_n"] + 3
        assert r["max_light_list"] <= math.log2(r["n"]) + 1
        # constant number of partwise ops per level per aggregate call
        assert r["partwise_ops"] <= 12 * r["levels"]
