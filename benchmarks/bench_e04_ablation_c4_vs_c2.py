"""E4 — ablation: Section 3.5 (c=4) vs Section 4.6 (c=2).

Paper claim: the improved reverse-delete covers every positive-dual edge at
most 2 times (4 for the basic variant), turning the (9+eps) guarantee into
(5+eps).  Measured: the max coverage over positive-dual edges per variant
(must respect 4 / 2), cleaning-phase activations, and the weight ratio
basic/improved (expected >= 1 in aggregate: fewer petals = lighter covers).
"""

from repro.analysis.experiments import e04_ablation

from conftest import run_experiment


def test_e04_ablation(benchmark):
    rows = run_experiment(benchmark, e04_ablation, "e04_ablation_c4_vs_c2")
    assert all(r["maxcov_basic(<=4)"] <= 4 for r in rows)
    assert all(r["maxcov_improved(<=2)"] <= 2 for r in rows)
    # the improved variant is never dramatically heavier, and is lighter on
    # average (per the coverage discipline)
    improvements = [r["improvement"] for r in rows]
    assert sum(improvements) / len(improvements) >= 0.99
