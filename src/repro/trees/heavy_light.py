"""Heavy-light decomposition of a rooted tree.

Two notions of "heavy" are supported:

* ``"max-child"`` (default) — the classic decomposition: the edge to the
  child with the largest subtree is heavy.  Every non-leaf vertex has exactly
  one heavy child and every root path crosses at most ``log2(n)`` light edges.
* ``"majority"`` — the paper's Definition 5.3: the edge ``{v, u}`` to child
  ``u`` is heavy iff ``|T_u| > |T_v| / 2``.  A vertex may have no heavy child;
  the ``<= log2(n)`` light-edge bound still holds.

Heavy paths receive contiguous positions in a base array (head first), which
is what the batch path operations in :mod:`repro.trees.pathops` rely on.
"""

from __future__ import annotations

from typing import Iterator

from repro.trees.rooted import RootedTree

__all__ = ["HeavyLightDecomposition"]


class HeavyLightDecomposition:
    """Heavy-light decomposition with array positions for path queries.

    Attributes
    ----------
    head : list[int]
        ``head[v]`` is the topmost vertex of the heavy path containing ``v``.
    pos : list[int]
        Position of ``v`` in the base array; vertices of one heavy path are
        contiguous and descending (the head has the smallest position).
    heavy_child : list[int]
        The heavy child of each vertex (``-1`` if none).
    """

    __slots__ = ("tree", "mode", "heavy_child", "head", "pos", "order_by_pos")

    def __init__(self, tree: RootedTree, mode: str = "max-child") -> None:
        if mode not in ("max-child", "majority"):
            raise ValueError(f"unknown mode {mode!r}")
        self.tree = tree
        self.mode = mode
        n = tree.n
        size = tree.subtree_sizes()

        heavy = [-1] * n
        for v in range(n):
            kids = tree.children[v]
            if not kids:
                continue
            best = max(kids, key=lambda c: (size[c], -c))
            if mode == "max-child":
                heavy[v] = best
            else:
                if 2 * size[best] > size[v]:
                    heavy[v] = best

        head = [0] * n
        pos = [0] * n
        order_by_pos = [0] * n
        counter = 0
        # Iterate vertices in preorder; assign each heavy-path head a
        # contiguous block by walking its heavy chain.
        assigned = [False] * n
        for v in tree.order:
            if assigned[v]:
                continue
            # v is the head of a new heavy path.
            u = v
            while u != -1:
                assigned[u] = True
                head[u] = v
                pos[u] = counter
                order_by_pos[counter] = u
                counter += 1
                u = heavy[u]

        self.heavy_child = heavy
        self.head = head
        self.pos = pos
        self.order_by_pos = order_by_pos

    # ------------------------------------------------------------------

    def is_heavy_edge(self, v: int) -> bool:
        """Is the tree edge ``{v, parent(v)}`` heavy?  (``v`` must not be root.)"""
        p = self.tree.parent[v]
        return p >= 0 and self.heavy_child[p] == v

    def light_edges_on_root_path(self, v: int) -> list[int]:
        """Light edges (child ids) on the path from ``v`` to the root, top first."""
        out = []
        t = self.tree
        while v != t.root:
            h = self.head[v]
            if h == t.root:
                break
            # h is the head of its heavy path, so the edge {h, parent(h)}
            # is light by construction.
            out.append(h)
            v = t.parent[h]
        out.reverse()
        return out

    def num_light_on_root_path(self, v: int) -> int:
        """Number of light edges on the root-to-``v`` path (``O(log n)``)."""
        return len(self.light_edges_on_root_path(v))

    def heavy_paths(self) -> Iterator[list[int]]:
        """Iterate over the heavy paths, each as a top-down vertex list."""
        seen = [False] * self.tree.n
        for v in self.tree.order:
            if seen[v]:
                continue
            path = []
            u = v
            while u != -1:
                seen[u] = True
                path.append(u)
                u = self.heavy_child[u]
            yield path

    def vertical_ranges(self, dec: int, anc: int) -> Iterator[tuple[int, int]]:
        """Contiguous position ranges covering the tree edges on ``dec -> anc``.

        ``anc`` must be a weak ancestor of ``dec``.  Yields inclusive
        ``(lo, hi)`` ranges over positions of child vertices of the edges on
        the chain; there are at most ``O(log n)`` ranges.
        """
        t = self.tree
        head = self.head
        pos = self.pos
        v = dec
        while head[v] != head[anc]:
            h = head[v]
            yield (pos[h], pos[v])
            v = t.parent[h]
        if v != anc:
            yield (pos[anc] + 1, pos[v])
