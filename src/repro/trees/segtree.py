"""Minimal segment-tree structures for batch path operations.

Only the operations needed by the TAP algorithm are provided:

* :class:`RangeChmin` — range "update with min", point query.  Used to let
  every tree edge learn the minimum of a value over all non-tree edges that
  cover it (the centralized counterpart of the paper's Claim 4.6 aggregate).
* :class:`RangeAddPoint` — range add, point query, via a Fenwick tree over
  range-update/point-query differences.  Used for coverage counting.

Values for :class:`RangeChmin` can be any comparable objects (tuples are the
common case, carrying tie-breaking edge ids).
"""

from __future__ import annotations

from typing import Any

__all__ = ["RangeChmin", "RangeAddPoint", "INF"]

INF = float("inf")


class RangeChmin:
    """Range chmin / point query over ``n`` slots.

    The structure stores a "pending minimum" at each internal node; a point
    query takes the min of the pending values on the root-to-leaf path.  No
    push-down is needed because we never do range *queries*.
    """

    __slots__ = ("n", "size", "data", "identity")

    def __init__(self, n: int, identity: Any = INF) -> None:
        self.n = n
        size = 1
        while size < max(1, n):
            size *= 2
        self.size = size
        self.identity = identity
        self.data: list[Any] = [identity] * (2 * size)

    def update(self, lo: int, hi: int, value: Any) -> None:
        """Apply ``x -> min(x, value)`` to every slot in ``[lo, hi]`` inclusive."""
        if lo > hi:
            return
        l = lo + self.size
        r = hi + self.size + 1
        data = self.data
        ident = self.identity
        while l < r:
            if l & 1:
                if data[l] is ident or value < data[l]:
                    data[l] = value
                l += 1
            if r & 1:
                r -= 1
                if data[r] is ident or value < data[r]:
                    data[r] = value
            l >>= 1
            r >>= 1

    def query(self, i: int) -> Any:
        """Current minimum applied to slot ``i`` (identity if untouched)."""
        node = i + self.size
        data = self.data
        ident = self.identity
        best = data[node]
        node >>= 1
        while node:
            x = data[node]
            if x is not ident and (best is ident or x < best):
                best = x
            node >>= 1
        return best


class RangeAddPoint:
    """Range add / point query via a Fenwick tree on differences."""

    __slots__ = ("n", "bit")

    def __init__(self, n: int) -> None:
        self.n = n
        self.bit = [0.0] * (n + 1)

    def _add(self, i: int, delta: float) -> None:
        i += 1
        while i <= self.n:
            self.bit[i] += delta
            i += i & (-i)

    def add(self, lo: int, hi: int, delta: float) -> None:
        """Add ``delta`` to every slot in ``[lo, hi]`` inclusive."""
        if lo > hi:
            return
        self._add(lo, delta)
        if hi + 1 < self.n:
            self._add(hi + 1, -delta)

    def query(self, i: int) -> float:
        """Current value at slot ``i``."""
        total = 0.0
        i += 1
        while i > 0:
            total += self.bit[i]
            i -= i & (-i)
        return total
