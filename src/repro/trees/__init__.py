"""Rooted-tree substrates: LCA, heavy-light decomposition, path operations."""

from repro.trees.rooted import RootedTree
from repro.trees.lca_labels import LcaLabeling
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.pathops import TreePathOps

__all__ = [
    "RootedTree",
    "LcaLabeling",
    "HeavyLightDecomposition",
    "TreePathOps",
]
