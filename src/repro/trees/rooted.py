"""A rooted tree with O(1) ancestor tests and O(log n) LCA queries.

This is the workhorse data structure of the whole library.  Vertices are the
integers ``0 .. n-1``.  Throughout the library a *tree edge* ``{v, parent(v)}``
is identified with its child endpoint ``v`` (so the set of tree edges is the
set of non-root vertices), matching the paper's implicit convention.

The class is built iteratively (no recursion), so it handles path-shaped trees
with hundreds of thousands of vertices.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import NotATreeError

__all__ = ["RootedTree"]


class RootedTree:
    """An immutable rooted tree on vertices ``0 .. n-1``.

    Parameters
    ----------
    parent:
        ``parent[v]`` is the parent of ``v``; the root's entry must be ``-1``
        (or the root itself).
    root:
        The root vertex.

    Attributes
    ----------
    n : int
        Number of vertices.
    root : int
        The root.
    parent : list[int]
        Parent of each vertex (``-1`` for the root).
    children : list[list[int]]
        Children lists, in ascending vertex order (deterministic).
    depth : list[int]
        Depth of each vertex; the root has depth 0.
    order : list[int]
        A DFS preorder of the vertices (parents before children).
    tin, tout : list[int]
        Euler/DFS intervals: ``u`` is a (weak) ancestor of ``v`` iff
        ``tin[u] <= tin[v] < tout[u]``.
    """

    __slots__ = (
        "n",
        "root",
        "parent",
        "children",
        "depth",
        "order",
        "tin",
        "tout",
        "_up",
        "_subtree_size",
        "height",
    )

    def __init__(self, parent: Sequence[int], root: int) -> None:
        n = len(parent)
        if not 0 <= root < n:
            raise NotATreeError(f"root {root} out of range for n={n}")
        par = list(parent)
        if par[root] not in (-1, root):
            raise NotATreeError("root must have parent -1 (or itself)")
        par[root] = -1
        children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(par):
            if v == root:
                continue
            if not 0 <= p < n:
                raise NotATreeError(f"vertex {v} has invalid parent {p}")
            children[p].append(v)

        depth = [-1] * n
        order: list[int] = []
        tin = [0] * n
        tout = [0] * n
        depth[root] = 0
        timer = 0
        # Iterative DFS computing preorder, depths and Euler intervals.
        work: list[tuple[int, bool]] = [(root, False)]
        while work:
            v, done = work.pop()
            if done:
                tout[v] = timer
                continue
            tin[v] = timer
            timer += 1
            order.append(v)
            work.append((v, True))
            for c in reversed(children[v]):
                if depth[c] != -1:
                    raise NotATreeError("parent structure contains a cycle")
                depth[c] = depth[v] + 1
                work.append((c, False))
        if len(order) != n:
            raise NotATreeError(
                f"parent structure is not connected: reached {len(order)} of {n}"
            )

        self.n = n
        self.root = root
        self.parent = par
        self.children = children
        self.depth = depth
        self.order = order
        self.tin = tin
        self.tout = tout
        self.height = max(depth)
        self._up: list[list[int]] | None = None
        self._subtree_size: list[int] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]], root: int = 0) -> "RootedTree":
        """Build a rooted tree from an undirected edge list."""
        adj: list[list[int]] = [[] for _ in range(n)]
        count = 0
        for u, v in edges:
            adj[u].append(v)
            adj[v].append(u)
            count += 1
        if count != n - 1:
            raise NotATreeError(f"expected {n - 1} edges, got {count}")
        parent = [-1] * n
        seen = [False] * n
        seen[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for w in adj[u]:
                if not seen[w]:
                    seen[w] = True
                    parent[w] = u
                    stack.append(w)
        if not all(seen):
            raise NotATreeError("edge list is not connected")
        return cls(parent, root)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def is_ancestor(self, u: int, v: int) -> bool:
        """Return True iff ``u`` is a weak ancestor of ``v`` (``u == v`` counts)."""
        return self.tin[u] <= self.tin[v] < self.tout[u]

    def is_strict_ancestor(self, u: int, v: int) -> bool:
        """Return True iff ``u`` is a proper ancestor of ``v``."""
        return u != v and self.is_ancestor(u, v)

    def tree_edges(self) -> Iterator[int]:
        """Iterate over tree edges, identified by their child vertex."""
        r = self.root
        return (v for v in range(self.n) if v != r)

    def leaves(self) -> list[int]:
        """All leaves of the tree."""
        return [v for v in range(self.n) if not self.children[v]]

    def is_junction(self, v: int) -> bool:
        """A *junction* is a vertex with more than one child (paper, Sec. 3.2)."""
        return len(self.children[v]) > 1

    def subtree_sizes(self) -> list[int]:
        """``sizes[v]`` = number of vertices in the subtree rooted at ``v``."""
        if self._subtree_size is None:
            size = [1] * self.n
            for v in reversed(self.order):
                p = self.parent[v]
                if p >= 0:
                    size[p] += size[v]
            self._subtree_size = size
        return self._subtree_size

    # ------------------------------------------------------------------
    # LCA via binary lifting
    # ------------------------------------------------------------------

    def _lift_table(self) -> list[list[int]]:
        if self._up is None:
            n = self.n
            logn = max(1, (max(1, self.height)).bit_length())
            up = [self.parent[:]]
            up[0][self.root] = self.root
            for k in range(1, logn + 1):
                prev = up[k - 1]
                up.append([prev[prev[v]] for v in range(n)])
            self._up = up
        return self._up

    def ancestor_at_depth(self, v: int, d: int) -> int:
        """Return the ancestor of ``v`` at depth ``d`` (``d <= depth[v]``)."""
        if d > self.depth[v] or d < 0:
            raise ValueError(f"vertex {v} has depth {self.depth[v]} < {d}")
        up = self._lift_table()
        delta = self.depth[v] - d
        k = 0
        while delta:
            if delta & 1:
                v = up[k][v]
            delta >>= 1
            k += 1
        return v

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        if self.is_ancestor(u, v):
            return u
        if self.is_ancestor(v, u):
            return v
        up = self._lift_table()
        # Lift the deeper vertex to the shallower depth, then lift both.
        if self.depth[u] > self.depth[v]:
            u, v = v, u
        if self.depth[v] > self.depth[u]:
            v = self.ancestor_at_depth(v, self.depth[u])
        for table in reversed(up):
            if table[u] != table[v]:
                u, v = table[u], table[v]
        return self.parent[u]

    # ------------------------------------------------------------------
    # Vertical paths and coverage
    # ------------------------------------------------------------------

    def chain(self, dec: int, anc: int) -> Iterator[int]:
        """Tree edges (child-vertex ids) on the vertical path ``dec -> anc``.

        ``anc`` must be a weak ancestor of ``dec``; yields ``dec`` first and
        the child of ``anc`` last.
        """
        v = dec
        while v != anc:
            yield v
            v = self.parent[v]
            if v == -1:
                raise ValueError(f"{anc} is not an ancestor of {dec}")

    def covers_vertical(self, dec: int, anc: int, t: int) -> bool:
        """Does the vertical non-tree edge ``{dec, anc}`` cover tree edge ``t``?

        Precondition: ``anc`` is a weak ancestor of ``dec``.  Tree edge ``t``
        (child vertex) is covered iff ``t`` lies on the chain from ``dec`` up
        to ``anc``, i.e. iff ``t`` is a weak ancestor of ``dec`` that is
        strictly deeper than ``anc``.
        """
        return self.depth[t] > self.depth[anc] and self.is_ancestor(t, dec)

    def path_vertices(self, u: int, v: int) -> list[int]:
        """All vertices on the (unique) tree path between ``u`` and ``v``."""
        w = self.lca(u, v)
        left = []
        x = u
        while x != w:
            left.append(x)
            x = self.parent[x]
        right = []
        x = v
        while x != w:
            right.append(x)
            x = self.parent[x]
        return left + [w] + right[::-1]

    def path_edges(self, u: int, v: int) -> list[int]:
        """Tree edges (child ids) on the tree path between ``u`` and ``v``."""
        w = self.lca(u, v)
        out = []
        for x in (u, v):
            while x != w:
                out.append(x)
                x = self.parent[x]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedTree(n={self.n}, root={self.root}, height={self.height})"
