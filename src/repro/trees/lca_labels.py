"""An LCA labelling scheme: compute LCAs from two short labels alone.

The paper (Section 4.1) relies on the labelling scheme of Alstrup et al. to
let the two endpoints of a non-tree edge compute the label of their LCA
locally.  We implement a functionally equivalent scheme built from the
heavy-light decomposition, in the spirit of the paper's own Theorem 5.3:

* the label of ``v`` stores ``v``, its depth, and the (at most ``log2 n``)
  light edges on its root path, each as ``(child, parent, child_depth)``;
* the LCA of ``u`` and ``v`` is recovered from the two labels by taking the
  longest common prefix of the light-edge lists and then comparing the entry
  depths of the two continuations.

Labels are ``O(log^2 n)`` bits (measured by :meth:`LcaLabeling.label_bits`),
slightly larger than Alstrup et al.'s ``O(log n)`` bits but supporting exactly
the operations the algorithms need: LCA, ancestor tests, and depth
comparisons, all *from labels only*.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.rooted import RootedTree

__all__ = ["LcaLabel", "LcaLabeling"]


class LcaLabel(NamedTuple):
    """The label of a single vertex.

    ``light`` lists the light edges on the root path, top-most first, as
    ``(child, parent, child_depth)`` triples.
    """

    vertex: int
    depth: int
    light: tuple[tuple[int, int, int], ...]


class LcaLabeling:
    """Assigns every vertex an :class:`LcaLabel` and answers label-only queries."""

    __slots__ = ("tree", "hld", "_labels")

    def __init__(self, tree: RootedTree, hld: HeavyLightDecomposition | None = None) -> None:
        self.tree = tree
        self.hld = hld if hld is not None else HeavyLightDecomposition(tree)
        labels: list[LcaLabel] = [None] * tree.n  # type: ignore[list-item]
        # Build labels in preorder so each vertex extends its parent's list.
        lights: list[tuple[tuple[int, int, int], ...]] = [()] * tree.n
        for v in tree.order:
            p = tree.parent[v]
            if p < 0:
                lights[v] = ()
            elif self.hld.is_heavy_edge(v):
                lights[v] = lights[p]
            else:
                lights[v] = lights[p] + ((v, p, tree.depth[v]),)
            labels[v] = LcaLabel(v, tree.depth[v], lights[v])
        self._labels = labels

    def label(self, v: int) -> LcaLabel:
        """The precomputed :class:`LcaLabel` of vertex ``v``."""
        return self._labels[v]

    def label_bits(self, v: int) -> int:
        """Size of the label in bits, counting each stored integer as a word."""
        word = max(1, (self.tree.n - 1).bit_length())
        lab = self._labels[v]
        return word * (2 + 3 * len(lab.light))

    def max_label_bits(self) -> int:
        """Largest label size over all vertices (the scheme's bit bound)."""
        return max(self.label_bits(v) for v in range(self.tree.n))

    # ------------------------------------------------------------------
    # Label-only queries (no access to the tree)
    # ------------------------------------------------------------------

    @staticmethod
    def lca_from_labels(a: LcaLabel, b: LcaLabel) -> int:
        """Return the LCA vertex of the two labelled vertices.

        Only the information inside the two labels is consulted, mirroring
        the distributed setting where the endpoints of a non-tree edge know
        just their own labels.
        """
        la, lb = a.light, b.light
        j = 0
        limit = min(len(la), len(lb))
        while j < limit and la[j] == lb[j]:
            j += 1
        # Candidate entry points into the last shared heavy path.
        if j < len(la):
            cand_a = (la[j][2] - 1, la[j][1])  # (depth of parent endpoint, parent)
        else:
            cand_a = (a.depth, a.vertex)
        if j < len(lb):
            cand_b = (lb[j][2] - 1, lb[j][1])
        else:
            cand_b = (b.depth, b.vertex)
        return min(cand_a, cand_b)[1]

    @staticmethod
    def is_ancestor_from_labels(a: LcaLabel, b: LcaLabel) -> bool:
        """Is ``a``'s vertex a weak ancestor of ``b``'s vertex (labels only)?"""
        return LcaLabeling.lca_from_labels(a, b) == a.vertex

    def lca(self, u: int, v: int) -> int:
        """Convenience: LCA via labels (cross-checked against the tree in tests)."""
        return self.lca_from_labels(self._labels[u], self._labels[v])
