"""Batch operations on vertical tree paths.

These are the centralized counterparts of the paper's aggregate-function
machinery (Claims 4.5 and 4.6): in the distributed algorithm every non-tree
edge learns an aggregate of the tree edges it covers, and every tree edge
learns an aggregate of the non-tree edges covering it, in ``O(D + sqrt(n))``
rounds.  Here the same information flows are computed centrally in
near-linear time:

* *edge -> covered path* sums use ancestor prefix sums (``O(n + m)``);
* *tree edge <- covering edges* minima use heavy-light decomposition plus a
  range-chmin segment tree (``O((n + m) log^2 n)``);
* coverage counts use the vertical-path difference trick (``O(n + m)``).

A vertical path is given as ``(dec, anc)`` with ``anc`` a weak ancestor of
``dec``; it covers the tree edges (child ids) on the chain from ``dec`` up to
``anc`` exclusive.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.rooted import RootedTree
from repro.trees.segtree import INF, RangeAddPoint, RangeChmin

__all__ = ["TreePathOps", "ChminResult"]


class ChminResult:
    """Point-query view over a finished batch of path-chmin updates."""

    __slots__ = ("_st", "_pos", "identity")

    def __init__(self, st: RangeChmin, pos: Sequence[int], identity: Any) -> None:
        self._st = st
        self._pos = pos
        self.identity = identity

    def get(self, v: int) -> Any:
        """The minimum value over all updates whose path covers tree edge ``v``.

        Returns the identity if no update covers ``v``.
        """
        return self._st.query(self._pos[v])

    def covered(self, v: int) -> bool:
        """Whether some update covers ``v`` (its value is not the identity)."""
        return self.get(v) != self.identity


class TreePathOps:
    """Batch vertical-path aggregation over one rooted tree."""

    __slots__ = ("tree", "hld")

    def __init__(self, tree: RootedTree, hld: HeavyLightDecomposition | None = None) -> None:
        self.tree = tree
        self.hld = hld if hld is not None else HeavyLightDecomposition(tree)

    # ------------------------------------------------------------------
    # Edge -> aggregate over the tree edges it covers
    # ------------------------------------------------------------------

    def ancestor_sums(self, values: Sequence[float]) -> list[float]:
        """Prefix sums down the tree.

        ``values[v]`` is the value of tree edge ``v`` (the root's entry is
        ignored).  Returns ``cum`` with ``cum[v]`` = sum of ``values`` over
        the tree edges on the chain from ``v`` up to the root.
        """
        t = self.tree
        cum = [0.0] * t.n
        for v in t.order:
            p = t.parent[v]
            if p >= 0:
                cum[v] = cum[p] + values[v]
        return cum

    @staticmethod
    def path_sum(cum: Sequence[float], dec: int, anc: int) -> float:
        """Sum of the edge values on the vertical path ``(dec, anc)``."""
        return cum[dec] - cum[anc]

    def path_sums(
        self, values: Sequence[float], paths: Iterable[tuple[int, int]]
    ) -> list[float]:
        """Vectorized :meth:`path_sum` for many ``(dec, anc)`` paths."""
        cum = self.ancestor_sums(values)
        return [cum[dec] - cum[anc] for dec, anc in paths]

    # ------------------------------------------------------------------
    # Tree edge <- aggregate over covering edges
    # ------------------------------------------------------------------

    def chmin_over_paths(
        self, updates: Iterable[tuple[int, int, Any]], identity: Any = INF
    ) -> ChminResult:
        """Batch chmin: every tree edge learns the min value among the
        vertical paths that cover it.

        ``updates`` yields ``(dec, anc, value)``; values must be mutually
        comparable (tuples carrying tie-breaker ids are typical).
        """
        st = RangeChmin(self.tree.n, identity=identity)
        ranges = self.hld.vertical_ranges
        for dec, anc, value in updates:
            for lo, hi in ranges(dec, anc):
                st.update(lo, hi, value)
        return ChminResult(st, self.hld.pos, identity)

    def add_over_paths(self, updates: Iterable[tuple[int, int, float]]) -> list[float]:
        """Batch add: returns per-tree-edge totals of deltas over covering paths.

        Uses the vertical difference trick: add at ``dec``, subtract at
        ``anc``, then take subtree sums.  ``O(n + #updates)``.
        """
        t = self.tree
        acc = [0.0] * t.n
        for dec, anc, delta in updates:
            acc[dec] += delta
            acc[anc] -= delta
        # Subtree sums: children are processed before parents, so when ``v``
        # is reached its accumulator is final.
        for v in reversed(t.order):
            p = t.parent[v]
            if p >= 0:
                acc[p] += acc[v]
        return acc

    def coverage_counts(self, paths: Iterable[tuple[int, int]]) -> list[int]:
        """How many of the given vertical paths cover each tree edge."""
        counts = self.add_over_paths((dec, anc, 1.0) for dec, anc in paths)
        return [int(round(c)) for c in counts]

    # ------------------------------------------------------------------
    # Fenwick-backed incremental coverage (used by the reverse-delete phase)
    # ------------------------------------------------------------------

    def make_coverage_counter(self) -> "CoverageCounter":
        """A fresh :class:`CoverageCounter` bound to this tree's HLD."""
        return CoverageCounter(self)


class CoverageCounter:
    """Incrementally maintained coverage counts over tree edges.

    Supports adding/removing vertical paths and querying the number of live
    paths covering a tree edge, all in ``O(log^2 n)``.
    """

    __slots__ = ("_ops", "_bit")

    def __init__(self, ops: TreePathOps) -> None:
        self._ops = ops
        self._bit = RangeAddPoint(ops.tree.n)

    def add_path(self, dec: int, anc: int, delta: int = 1) -> None:
        """Add ``delta`` to every tree edge on the vertical path ``dec -> anc``."""
        for lo, hi in self._ops.hld.vertical_ranges(dec, anc):
            self._bit.add(lo, hi, float(delta))

    def remove_path(self, dec: int, anc: int) -> None:
        """Remove one previously added ``dec -> anc`` path."""
        self.add_path(dec, anc, -1)

    def count(self, v: int) -> int:
        """Number of live paths covering the tree edge above ``v``."""
        return int(round(self._bit.query(self._ops.hld.pos[v])))

    def is_covered(self, v: int) -> bool:
        """Whether at least one live path covers the tree edge above ``v``."""
        return self.count(v) > 0
