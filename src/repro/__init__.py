"""repro — reproduction of Dory & Ghaffari (PODC 2019).

Distributed approximation of minimum-weight 2-edge-connected spanning
subgraphs: a deterministic ``(5+eps)``-approximation in near-optimal
``O~(D + sqrt(n))`` CONGEST rounds, plus an ``O(log n)``-approximation
running in low-congestion-shortcut time.

Public API highlights:

>>> import repro
>>> g = repro.graphs.cycle_with_chords(50, 20, seed=1)
>>> result = repro.approximate_two_ecss(g, eps=0.5)
>>> result.certified_ratio <= result.guarantee
True
"""

from repro import graphs
from repro.core.k_ecss import approximate_k_ecss
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss
from repro.core.unweighted import unweighted_tap
from repro.dist import distributed_two_ecss
from repro.runtime import SolveQuery, SolverSession

__version__ = "1.8.0"

__all__ = [
    "SolveQuery",
    "SolverSession",
    "approximate_k_ecss",
    "approximate_tap",
    "approximate_two_ecss",
    "distributed_two_ecss",
    "unweighted_tap",
    "graphs",
    "__version__",
]
