"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The more specific subclasses signal the
pre-condition that failed (e.g. the input graph is not 2-edge-connected) or an
internal invariant of the paper's algorithm that was violated (which would
indicate a bug, not a user error).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphFormatError(ReproError, ValueError):
    """The input graph is malformed (missing weights, self loops, ...).

    Also a :class:`ValueError`: format problems are bad argument values,
    and callers that guard generic ``except ValueError`` (e.g. the serving
    layer's request translation) should catch these too.
    """


class NotConnectedError(ReproError):
    """The input graph is not connected."""


class NotTwoEdgeConnectedError(ReproError):
    """The input graph has a bridge, so no 2-ECSS / TAP solution exists."""


class NotKEdgeConnectedError(ReproError):
    """The input graph has edge connectivity below ``k``, so no k-ECSS exists.

    Raised by the k-ECSS layer (``k >= 3``); the ``k = 2`` entry points keep
    raising :class:`NotTwoEdgeConnectedError` so existing callers and the
    serving layer's error mapping are unchanged.
    """


class NotATreeError(ReproError):
    """The supplied edge set does not form a spanning tree."""


class InvariantViolation(ReproError):
    """An invariant proven in the paper failed at runtime.

    This signals an implementation bug (or a genuine gap in the paper);
    it is raised only when validation is enabled.
    """


class SolverError(ReproError):
    """An exact solver (MILP / brute force) failed or hit its limits."""


class SimulationError(ReproError):
    """The CONGEST simulator detected a protocol violation.

    The most common cause is a node program sending a message that exceeds
    the per-edge bandwidth of the model.
    """
