"""Basic CONGEST node programs: BFS, flood-min, tree broadcast, aggregates.

Each program is a small state machine over the per-node ``ctx.state`` dict;
all coordination happens through messages, and the measured round counts
match the textbook bounds (BFS: eccentricity of the root; tree broadcast /
convergecast: tree height; flood-min: diameter of the flooded subgraph).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.model.network import Context, Payload

__all__ = ["DistributedBFS", "FloodMin", "TreeBroadcast", "TreeAggregate"]


class DistributedBFS:
    """Breadth-first search from a root; every node learns (dist, parent).

    After the run, ``ctx.state`` holds ``dist`` and ``parent`` (-1 for the
    root and unreached nodes).  Measured rounds = eccentricity of the root
    (+1 for the final silent round).
    """

    def __init__(self, root: int) -> None:
        self.root = root

    def setup(self, ctx: Context) -> None:
        if ctx.node == self.root:
            ctx.state.update(dist=0, parent=-1, announced=False)
        else:
            ctx.state.update(dist=None, parent=-1, announced=True)

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        st = ctx.state
        if st["dist"] is None:
            offers = [(payload[0], sender) for sender, payload in inbox.items()]
            if offers:
                d, parent = min(offers)
                st["dist"] = d + 1
                st["parent"] = parent
                st["announced"] = False
        if st["dist"] is not None and not st["announced"]:
            st["announced"] = True
            return {u: (st["dist"],) for u in ctx.neighbors}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        return not ctx.state["announced"]

    @staticmethod
    def results(network) -> tuple[list[int], list[int]]:
        dist = [c.state["dist"] for c in network.contexts]
        parent = [c.state["parent"] for c in network.contexts]
        return dist, parent


class FloodMin:
    """Every node learns the minimum value in its *active* component.

    ``values[v]`` is the start value (any comparable tuple); ``active[v]``
    lists the incident edges (neighbor ids) the flood may use.  Measured
    rounds = component diameter + O(1).  This is the engine behind leader
    election and Borůvka fragment relabeling.
    """

    def __init__(
        self,
        values: Sequence[tuple],
        active: Mapping[int, Sequence[int]],
    ) -> None:
        self.values = values
        self.active = active

    def setup(self, ctx: Context) -> None:
        ctx.state.update(best=tuple(self.values[ctx.node]), dirty=True)

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        st = ctx.state
        for payload in inbox.values():
            if payload < st["best"]:
                st["best"] = tuple(payload)
                st["dirty"] = True
        if st["dirty"]:
            st["dirty"] = False
            return {u: st["best"] for u in self.active.get(ctx.node, ())}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        return ctx.state["dirty"]

    @staticmethod
    def results(network) -> list[tuple]:
        return [c.state["best"] for c in network.contexts]


class TreeBroadcast:
    """The root pushes a value down a tree; rounds = tree height."""

    def __init__(self, parent: Sequence[int], root: int, value: tuple) -> None:
        self.parent = parent
        self.root = root
        self.value = value
        self.children: dict[int, list[int]] = {}
        for v, p in enumerate(parent):
            if p >= 0 and v != root:
                self.children.setdefault(p, []).append(v)

    def setup(self, ctx: Context) -> None:
        if ctx.node == self.root:
            ctx.state.update(value=self.value, sent=False)
        else:
            ctx.state.update(value=None, sent=True)

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        st = ctx.state
        if st["value"] is None:
            for payload in inbox.values():
                st["value"] = tuple(payload)
                st["sent"] = False
        if st["value"] is not None and not st["sent"]:
            st["sent"] = True
            return {c: st["value"] for c in self.children.get(ctx.node, ())}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        return not ctx.state["sent"]

    @staticmethod
    def results(network) -> list[tuple | None]:
        return [c.state["value"] for c in network.contexts]


class TreeAggregate:
    """Convergecast: the root learns ``combine`` of all node inputs.

    Every node waits for all of its children, combines their values with its
    own input, and forwards one message to its parent; rounds = tree height.
    The combiner must be commutative/associative with O(1)-word outputs
    (sum, min, max, xor — exactly the aggregates of Claims 4.5/4.6).
    """

    def __init__(
        self,
        parent: Sequence[int],
        root: int,
        inputs: Sequence[tuple],
        combine: Callable[[tuple, tuple], tuple],
    ) -> None:
        self.parent = parent
        self.root = root
        self.inputs = inputs
        self.combine = combine
        self.child_count = [0] * len(parent)
        for v, p in enumerate(parent):
            if p >= 0 and v != root:
                self.child_count[p] += 1

    def setup(self, ctx: Context) -> None:
        ctx.state.update(
            acc=tuple(self.inputs[ctx.node]),
            waiting=self.child_count[ctx.node],
            sent=False,
        )

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        st = ctx.state
        for payload in inbox.values():
            st["acc"] = self.combine(st["acc"], tuple(payload))
            st["waiting"] -= 1
        if st["waiting"] == 0 and not st["sent"] and ctx.node != self.root:
            st["sent"] = True
            return {self.parent[ctx.node]: st["acc"]}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        return ctx.state["waiting"] > 0 or (
            not ctx.state["sent"] and ctx.node != self.root
        )

    @staticmethod
    def result(network, root: int) -> tuple:
        return network.contexts[root].state["acc"]
