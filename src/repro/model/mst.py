"""Distributed minimum spanning tree: synchronous Borůvka over the simulator.

Each phase (at most ``log2 n`` of them):

1. one round of fragment-id exchange with neighbors — each node then knows
   which incident edges leave its fragment and proposes its cheapest one;
2. a flood-min *inside each fragment* (over the fragment's tree edges)
   agrees on the fragment's minimum-weight outgoing edge (MWOE);
3. MWOEs are added to the tree, and a flood-min over tree+MWOE edges
   relabels every merged component with its minimum old fragment id.

All three steps are genuine message-level programs; the reported rounds are
the measured sum.  Phase *barriers* between steps are provided by the
harness (a standard synchronizer assumption, noted in DESIGN.md): the paper
charges Kutten–Peleg's ``O(D + sqrt(n) log* n)`` for its MST step, which this
simpler Borůvka does not match on pathological graphs — the Level-M round
model therefore prices MST with the Kutten–Peleg formula, while this program
validates correctness of a fully distributed MST computation.

Edge weights are compared as ``(w, min(u,v), max(u,v))``, making the MST
unique; the result provably matches the centralized MST weight (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import SimulationError
from repro.model.network import Network, RunStats
from repro.model.programs import FloodMin

__all__ = ["BoruvkaMST", "MstOutcome"]

_INF = (float("inf"), -1, -1)


@dataclass
class MstOutcome:
    edges: list[tuple[int, int]]
    weight: float
    phases: int
    stats: RunStats = field(default_factory=RunStats)


class BoruvkaMST:
    """Runs Borůvka phases on a :class:`~repro.model.network.Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network

    def run(self, max_phases: int | None = None) -> MstOutcome:
        net = self.network
        g = net.graph
        n = net.n
        if n == 0:
            raise SimulationError("empty network")
        limit = max_phases if max_phases is not None else n.bit_length() + 2

        def edge_key(u: int, v: int) -> tuple:
            return (float(g[u][v]["weight"]), min(u, v), max(u, v))

        frag = list(range(n))
        tree_adj: dict[int, set[int]] = {v: set() for v in range(n)}
        chosen: set[tuple[int, int]] = set()
        stats = RunStats()
        phases = 0

        while phases < limit:
            if len({frag[v] for v in range(n)}) == 1:
                break
            phases += 1
            # Step 1 (1 round): learn neighbors' fragment ids.  The exchange
            # is a fixed single round; we account for it directly.
            stats.rounds += 1
            stats.messages += 2 * g.number_of_edges()

            # Each node's proposal: its cheapest outgoing edge.
            proposals = []
            for v in range(n):
                best = _INF
                for u in g.neighbors(v):
                    if frag[u] != frag[v]:
                        key = edge_key(v, u)
                        if key < best:
                            best = key
                proposals.append(best)

            # Step 2: fragment-wide flood-min over fragment tree edges.
            flood = FloodMin(
                values=proposals,
                active={v: sorted(tree_adj[v]) for v in range(n)},
            )
            net.reset_state()
            stats.merge(net.run(flood))
            mwoe = FloodMin.results(net)

            # Add the agreed MWOEs (each fragment contributes one).
            per_fragment: dict[int, tuple] = {}
            for v in range(n):
                if mwoe[v] != _INF:
                    per_fragment.setdefault(frag[v], mwoe[v])
            new_edges = set()
            for _, (w, a, b) in per_fragment.items():
                new_edges.add((a, b))
            if not new_edges:
                raise SimulationError("graph is disconnected; no MST exists")
            for a, b in new_edges:
                if (a, b) not in chosen:
                    chosen.add((a, b))
                    tree_adj[a].add(b)
                    tree_adj[b].add(a)

            # Step 3: relabel merged components by flooding the min fragment id.
            flood2 = FloodMin(
                values=[(frag[v],) for v in range(n)],
                active={v: sorted(tree_adj[v]) for v in range(n)},
            )
            net.reset_state()
            stats.merge(net.run(flood2))
            frag = [FloodMin.results(net)[v][0] for v in range(n)]

        if len({frag[v] for v in range(n)}) != 1:
            raise SimulationError("Boruvka did not converge; disconnected input?")

        weight = sum(float(g[a][b]["weight"]) for a, b in chosen)
        return MstOutcome(
            edges=sorted(tuple(sorted(e)) for e in chosen),
            weight=weight,
            phases=phases,
            stats=stats,
        )
