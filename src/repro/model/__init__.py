"""A synchronous CONGEST-model simulator and node programs.

The paper's model (Section 2): communication proceeds in synchronous rounds;
per round each vertex may send ``O(log n)`` bits over each incident edge.
:class:`~repro.model.network.Network` enforces exactly that — messages are
measured in *words* (one word = one ``O(log n)``-bit integer/float) and a
program sending more than the per-edge budget raises
:class:`~repro.exceptions.SimulationError`.

Node programs included: BFS (diameter / BFS trees), flood-min (leader
election and fragment relabeling), tree broadcast and convergecast
(aggregates), and a Borůvka-style distributed MST built from these.

Round counts reported by these programs are *measured*, not modeled — this
is fidelity Level S of DESIGN.md, used to validate the Level-M cost model of
:mod:`repro.core.rounds`.

This package's :class:`~repro.model.network.Network` is the *reference
oracle*: the simplest auditable implementation of the model, stepping every
node every round.  Production runs use the batched engine in
:mod:`repro.sim` (same programs, same ``Context``/``RunStats``, same
enforcement, pluggable schedulers and failure injection); differential
tests in ``tests/test_sim_differential.py`` pin the two together
bit-for-bit.
"""

from repro.model.network import Network, NodeProgram, RunStats
from repro.model.programs import (
    DistributedBFS,
    FloodMin,
    TreeAggregate,
    TreeBroadcast,
)
from repro.model.mst import BoruvkaMST

__all__ = [
    "Network",
    "NodeProgram",
    "RunStats",
    "DistributedBFS",
    "FloodMin",
    "TreeAggregate",
    "TreeBroadcast",
    "BoruvkaMST",
]
