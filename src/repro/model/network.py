"""The synchronous message-passing network with bandwidth enforcement.

A :class:`NodeProgram` is instantiated per run and driven round by round:

* ``setup(node, ctx)`` is called once per node before round 1;
* ``step(node, ctx, inbox) -> outbox`` is called every round with the
  messages delivered this round (``inbox``: neighbor -> payload) and returns
  the messages to send (``outbox``: neighbor -> payload).

Payloads are tuples of numbers; their length in *words* must not exceed the
per-edge budget (CONGEST allows ``O(log n)`` bits = O(1) words per round).
The network runs until global quiescence (no messages sent and no node asks
to continue) or ``max_rounds``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from numbers import Number
from typing import Mapping, Protocol

import networkx as nx

from repro.exceptions import SimulationError

__all__ = ["Network", "NodeProgram", "RunStats", "Context"]

Payload = tuple


@dataclass
class Context:
    """What a node is allowed to know locally (Section 2 of the paper)."""

    node: int
    neighbors: tuple[int, ...]
    edge_weights: Mapping[int, float]
    n: int

    # Scratch space for the program's per-node state.
    state: dict = field(default_factory=dict)


class NodeProgram(Protocol):  # pragma: no cover - structural type only
    def setup(self, ctx: Context) -> None: ...

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]: ...

    def wants_to_continue(self, ctx: Context) -> bool: ...


@dataclass
class RunStats:
    """Measured statistics of one ``run``: counted rounds, messages sent,
    the widest payload, quiescence, and (batched engine only) the number
    of messages lost to failure injection in *this* run."""

    rounds: int = 0
    messages: int = 0
    max_words: int = 0
    quiescent: bool = False
    dropped: int = 0

    def merge(self, other: "RunStats") -> None:
        """Fold a later phase's stats into this one (phases run back to back)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.max_words = max(self.max_words, other.max_words)
        self.quiescent = other.quiescent
        self.dropped += other.dropped


class Network:
    """A CONGEST network over an undirected weighted graph (0..n-1 nodes).

    .. deprecated:: 1.2
        ``Network`` is the *legacy reference engine*, kept as the semantic
        oracle for the differential suites
        (``tests/test_sim_differential.py`` pins the two engines
        bit-for-bit) and reachable via the registered ``legacy`` network
        backend.  New code should use
        :class:`repro.sim.engine.BatchedNetwork` — same programs, same
        ``Context``/``RunStats``, same enforcement, plus schedulers,
        failure injection and traces.  Instantiating it emits a
        :class:`DeprecationWarning`.
    """

    def __init__(self, graph: nx.Graph, words_per_edge: int = 4) -> None:
        warnings.warn(
            "repro.model.network.Network is the legacy reference engine, "
            "kept as the differential-test oracle; use "
            "repro.sim.engine.BatchedNetwork (or the registered 'batched' "
            "network backend) for new code",
            DeprecationWarning,
            stacklevel=2,
        )
        self.graph = graph
        self.n = graph.number_of_nodes()
        if set(graph.nodes()) != set(range(self.n)):
            raise SimulationError("network nodes must be 0..n-1")
        self.words_per_edge = words_per_edge
        self.contexts = [
            Context(
                node=v,
                neighbors=tuple(sorted(graph.neighbors(v))),
                edge_weights={
                    u: float(graph[v][u].get("weight", 1.0))
                    for u in graph.neighbors(v)
                },
                n=self.n,
            )
            for v in range(self.n)
        ]

    def reset_state(self) -> None:
        for ctx in self.contexts:
            ctx.state = {}

    def _check_payload(self, sender: int, receiver: int, payload: Payload) -> int:
        if not isinstance(payload, tuple):
            raise SimulationError(
                f"node {sender} sent a non-tuple payload to {receiver}"
            )
        for x in payload:
            if not isinstance(x, Number):
                raise SimulationError(
                    f"node {sender} sent non-numeric word {x!r} to {receiver}"
                )
        words = len(payload)
        if words > self.words_per_edge:
            raise SimulationError(
                f"node {sender} sent {words} words to {receiver}; the CONGEST "
                f"budget is {self.words_per_edge} words (O(log n) bits)"
            )
        return words

    def run(self, program: NodeProgram, max_rounds: int | None = None) -> RunStats:
        """Drive the program to quiescence; returns measured statistics."""
        limit = max_rounds if max_rounds is not None else 20 * self.n + 50
        for ctx in self.contexts:
            program.setup(ctx)
        stats = RunStats()
        inboxes: list[dict[int, Payload]] = [{} for _ in range(self.n)]
        for _ in range(limit):
            outboxes: list[dict[int, Payload]] = []
            any_message = False
            for ctx in self.contexts:
                out = program.step(ctx, inboxes[ctx.node]) or {}
                for receiver, payload in out.items():
                    if receiver not in ctx.edge_weights:
                        raise SimulationError(
                            f"node {ctx.node} sent to non-neighbor {receiver}"
                        )
                    words = self._check_payload(ctx.node, receiver, payload)
                    stats.messages += 1
                    stats.max_words = max(stats.max_words, words)
                    any_message = True
                outboxes.append(out)
            if not any_message and not any(
                program.wants_to_continue(ctx) for ctx in self.contexts
            ):
                stats.quiescent = True
                break
            stats.rounds += 1
            inboxes = [{} for _ in range(self.n)]
            for ctx, out in zip(self.contexts, outboxes):
                for receiver, payload in out.items():
                    inboxes[receiver][ctx.node] = payload
        return stats
