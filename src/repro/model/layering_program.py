"""Distributed layering over the CONGEST simulator (Claim 4.10, Level S).

Computes the junction-path layering of a tree by genuine message passing,
one contraction round per layer:

* **down-sweep**: every alive vertex convergecasts, over the alive tree
  edges, whether the alive subtree below it contains a junction (a vertex
  with two or more alive children);
* **decision**: the edge ``(v, parent v)`` joins the current layer iff
  ``v``'s alive subtree is junction-free — exactly the centralized rule;
* **removal**: layered edges leave the alive set; the process repeats until
  no alive edges remain.

Rounds are measured: each layer costs one convergecast pass over the alive
tree (``<= height`` rounds), so the total is ``O(L * height)``.  The paper's
Claim 4.10 achieves ``O(L * (D + sqrt n))`` using the segment decomposition;
this program is the height-bound variant that validates the *object* (the
layer numbers agree with :class:`repro.decomp.layering.Layering` — tested),
while the Level-M model prices the layering step with the paper's formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.model.network import Context, Payload, RunStats
from repro.sim.engine import BatchedNetwork

__all__ = ["DistributedLayering", "run_distributed_layering"]


class _JunctionSweep:
    """One convergecast: each alive vertex learns (alive children count is
    implicit) whether its alive subtree contains a junction."""

    def __init__(self, parent, alive_edge, alive_children):
        self.parent = parent
        self.alive_edge = alive_edge  # per vertex: is edge (v, parent) alive
        self.alive_children = alive_children  # per vertex: list of alive children

    def setup(self, ctx: Context) -> None:
        kids = self.alive_children[ctx.node]
        ctx.state.update(
            waiting=len(kids),
            has_junction=len(kids) >= 2,
            sent=False,
        )

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        st = ctx.state
        for payload in inbox.values():
            st["waiting"] -= 1
            st["has_junction"] = st["has_junction"] or bool(payload[0])
        if (
            st["waiting"] == 0
            and not st["sent"]
            and self.alive_edge[ctx.node]
        ):
            st["sent"] = True
            return {self.parent[ctx.node]: (1 if st["has_junction"] else 0,)}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        return ctx.state["waiting"] > 0 or (
            not ctx.state["sent"] and self.alive_edge[ctx.node]
        )


@dataclass
class DistributedLayering:
    layer: list[int]
    num_layers: int
    stats: RunStats


def run_distributed_layering(tree_graph: nx.Graph, parent: list[int], root: int) -> DistributedLayering:
    """Run the layering over a tree-shaped :class:`Network`.

    ``tree_graph`` must contain exactly the tree edges; ``parent`` gives the
    orientation.  Returns measured round statistics alongside the layers.

    Runs on the batched CONGEST engine
    (:class:`~repro.sim.engine.BatchedNetwork`); the legacy
    :class:`~repro.model.network.Network` produces identical rounds and
    layers (the engines are differentially pinned) but is deprecated for
    non-oracle use.
    """
    net = BatchedNetwork(tree_graph, words_per_edge=2)
    n = net.n
    alive_edge = [v != root for v in range(n)]
    layer = [0] * n
    stats = RunStats()
    current = 0
    remaining = sum(alive_edge)
    while remaining > 0:
        current += 1
        alive_children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            if alive_edge[v]:
                alive_children[parent[v]].append(v)
        sweep = _JunctionSweep(parent, alive_edge, alive_children)
        net.reset_state()
        stats.merge(net.run(sweep))
        # Decision is local: v's own subtree verdict excludes v's own
        # junction status at v itself — "junction in the subtree rooted at v"
        # includes v, so recombine: subtree(v) junction-free iff v has <= 1
        # alive child and no child subtree contains a junction.
        verdict = [net.contexts[v].state["has_junction"] for v in range(n)]
        newly = [v for v in range(n) if alive_edge[v] and not verdict[v]]
        for v in newly:
            layer[v] = current
            alive_edge[v] = False
        remaining -= len(newly)
        if not newly:  # pragma: no cover - every round layers the leaf paths
            raise AssertionError("distributed layering stalled")
    return DistributedLayering(layer=layer, num_layers=current, stats=stats)
