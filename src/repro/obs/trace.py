"""``Span``/``Tracer`` structured tracing (see the package docstring).

Design notes, in the order they matter:

* **One attribute check when disabled.**  Call sites use the module
  helpers :func:`span` / :func:`timer` / :func:`traced`; each reads the
  installed tracer once and tests its ``enabled`` flag before doing any
  other work.  Disabled, :func:`span` returns the shared
  :data:`NOOP_SPAN` singleton (empty ``__enter__``/``__exit__``, no
  allocation, no contextvar writes), so instrumentation is safe on hot
  paths — the bound is measured and gated in
  ``benchmarks/bench_obs_overhead.py``.
* **Parent linkage via contextvars.**  Entering a span sets a
  context-local "current span" and appends itself to the previous
  one's children.  Because asyncio tasks each run in a copy of the
  creating context, concurrent serve requests build independent trees
  even though they share one tracer; plain threads start fresh (their
  spans become roots), which is exactly right for the inline worker
  pool.
* **Process-portable trees.**  :meth:`Span.to_dict` /
  :meth:`Span.from_dict` round-trip through JSON-safe dicts so worker
  processes can return completed trees with their results
  (``repro.serve.workers.solve_batch_payload``) and the router can merge
  them into response ``timings`` blocks and ``/metrics`` aggregates.
* **Wall clock on purpose.**  Durations come from the monotonic
  ``perf_counter``; the *start* timestamp is ``time.time()`` so Chrome
  trace events line up across processes.  This module is the scoped
  ``det-wallclock`` lint exemption — solver code still cannot read the
  wall clock.
"""

from __future__ import annotations

import contextvars
import functools
import json
import os
import threading
import time
from typing import Any, Callable, Iterator, TypeVar

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Timer",
    "Tracer",
    "annotate",
    "chrome_events",
    "current_span",
    "disable",
    "enable",
    "get_tracer",
    "phase_totals",
    "set_tracer",
    "span",
    "timer",
    "traced",
    "write_chrome_trace",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Context-local current span — the parent for the next span entered in
#: this task/thread.  Shared by every tracer so the linkage survives a
#: tracer swap mid-request.
_CURRENT: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One named, timed region with attributes and child spans.

    Use as a context manager (normally via :func:`span` so the disabled
    fast path applies).  ``duration_s`` is valid after exit;
    ``start_s`` is a wall-clock epoch timestamp taken at entry.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start_s",
        "duration_s",
        "_t0",
        "_token",
        "_parent",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        attrs: "dict[str, Any] | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list[Span] = []
        self.start_s = 0.0
        self.duration_s = 0.0
        self._t0 = 0.0
        self._token: "contextvars.Token[Span | None] | None" = None
        self._parent: "Span | None" = None
        self._tracer = tracer

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self so it chains inside ``with``."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._parent = _CURRENT.get()
        if self._parent is not None:
            self._parent.children.append(self)
        self._token = _CURRENT.set(self)
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._parent is None and self._tracer is not None:
            self._tracer._collect_root(self)
        return False

    def walk(self) -> "Iterator[Span]":
        """Yield this span and every descendant, depth-first."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe tree (the cross-process wire form)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "Span":
        """Rebuild a span tree produced by :meth:`to_dict`."""
        node = cls(str(payload.get("name", "?")))
        node.start_s = float(payload.get("start_s", 0.0))
        node.duration_s = float(payload.get("duration_s", 0.0))
        attrs = payload.get("attrs")
        if isinstance(attrs, dict):
            node.attrs = dict(attrs)
        for child in payload.get("children", ()):
            if isinstance(child, dict):
                node.children.append(cls.from_dict(child))
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled.

    It never touches the contextvar, so a disabled region adds no span
    context for anything beneath it — asserted in ``tests/test_obs.py``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span factory plus a bounded collection of completed root trees.

    ``enabled`` is the single gate every helper checks.  Completed
    *root* spans (no parent at entry) are kept — up to ``max_roots``,
    then counted in ``dropped`` — so long-lived processes (the serve
    router) cannot grow without bound; per-request consumers read their
    root directly and never need the backlog.
    """

    __slots__ = ("enabled", "max_roots", "roots", "dropped")

    def __init__(self, enabled: bool = True, max_roots: int = 4096) -> None:
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.dropped = 0

    def span(self, name: str, **attrs: Any) -> "Span | _NoopSpan":
        """A new span under the context-local parent (or :data:`NOOP_SPAN`)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(name, attrs or None, tracer=self)

    def _collect_root(self, root: "Span") -> None:
        if len(self.roots) < self.max_roots:
            self.roots.append(root)
        else:
            self.dropped += 1

    def drain(self) -> "list[Span]":
        """Return and clear the collected root spans."""
        roots, self.roots = self.roots, []
        return roots

    def clear(self) -> None:
        """Drop all collected roots and reset the drop counter."""
        self.roots = []
        self.dropped = 0


#: The installed tracer.  Module-global (not a contextvar) on purpose:
#: enabling tracing is a process-level decision, while *nesting* is
#: context-local via ``_CURRENT``.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The currently installed tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer``; returns the previously installed one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable(max_roots: int = 4096) -> Tracer:
    """Install and return a fresh enabled tracer."""
    tracer = Tracer(enabled=True, max_roots=max_roots)
    set_tracer(tracer)
    return tracer


def disable() -> Tracer:
    """Install a disabled tracer; returns the replaced one."""
    return set_tracer(Tracer(enabled=False))


def span(name: str, **attrs: Any) -> "Span | _NoopSpan":
    """A span from the installed tracer (the standard call-site helper)."""
    tracer = _TRACER
    if not tracer.enabled:
        return NOOP_SPAN
    return Span(name, attrs or None, tracer=tracer)


def current_span() -> "Span | None":
    """The context-local open span, if tracing has entered one."""
    return _CURRENT.get()


def annotate(**attrs: Any) -> None:
    """Attach attributes to the current open span (no-op without one)."""
    open_span = _CURRENT.get()
    if open_span is not None:
        open_span.attrs.update(attrs)


def traced(name: "str | None" = None) -> "Callable[[_F], _F]":
    """Decorator form: wrap a function call in a span named ``name``.

    Disabled tracing falls straight through to the wrapped function.
    """

    def wrap(fn: _F) -> _F:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            tracer = _TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with Span(label, None, tracer=tracer):
                return fn(*args, **kwargs)

        return inner  # type: ignore[return-value]

    return wrap


class Timer:
    """A span that *always* measures, even while tracing is disabled.

    Legacy timing consumers (``SolverPlan.build_times``, serve metrics)
    need a duration unconditionally; ``Timer`` gives them one from a
    single source — when tracing is enabled the same measurement also
    becomes the span's duration, so ``build_times`` and span trees can
    never disagree.
    """

    __slots__ = ("name", "duration_s", "_t0", "_span")

    def __init__(self, name: str, attrs: "dict[str, Any] | None") -> None:
        self.name = name
        self.duration_s = 0.0
        self._t0 = 0.0
        tracer = _TRACER
        self._span = (
            Span(name, attrs, tracer=tracer) if tracer.enabled else None
        )

    def __enter__(self) -> "Timer":
        if self._span is not None:
            self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span.duration_s = self.duration_s
        return False


def timer(name: str, **attrs: Any) -> Timer:
    """An always-measuring :class:`Timer` (span included when enabled)."""
    return Timer(name, attrs or None)


def phase_totals(
    spans: "Iterator[Span] | list[Span]",
    into: "dict[str, list[float]] | None" = None,
) -> "dict[str, list[float]]":
    """Aggregate ``{name: [count, total_seconds]}`` over span trees.

    This is the reduction behind the ``/metrics`` per-phase breakdown
    and the response ``timings`` block; ``into`` accumulates across
    calls.
    """
    totals = into if into is not None else {}
    for root in spans:
        for node in root.walk():
            slot = totals.get(node.name)
            if slot is None:
                totals[node.name] = [1, node.duration_s]
            else:
                slot[0] += 1
                slot[1] += node.duration_s
    return totals


def chrome_events(
    spans: "list[Span]",
    pid: "int | None" = None,
    tid: "int | None" = None,
) -> "list[dict[str, Any]]":
    """Flatten span trees to Chrome trace-event ``X`` (complete) events.

    Timestamps are wall-clock microseconds, so trees recorded in
    different processes interleave correctly on one timeline.
    """
    use_pid = os.getpid() if pid is None else pid
    use_tid = threading.get_ident() if tid is None else tid
    events: list[dict[str, Any]] = []
    for root in spans:
        for node in root.walk():
            event: dict[str, Any] = {
                "name": node.name,
                "cat": "repro",
                "ph": "X",
                "ts": node.start_s * 1e6,
                "dur": node.duration_s * 1e6,
                "pid": use_pid,
                "tid": use_tid,
            }
            if node.attrs:
                event["args"] = node.attrs
            events.append(event)
    return events


def write_chrome_trace(path: str, spans: "list[Span]") -> int:
    """Write span trees as a Chrome trace-event JSON array (one event
    per line, loadable in ``chrome://tracing`` / Perfetto); returns the
    event count."""
    events = chrome_events(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[\n")
        for i, event in enumerate(events):
            suffix = ",\n" if i + 1 < len(events) else "\n"
            fh.write(json.dumps(event, separators=(",", ":")) + suffix)
        fh.write("]\n")
    return len(events)
