"""Observability layer: structured tracing and benchmark trend reporting.

``repro.obs`` is the stdlib-only substrate every perf claim in this repo
reports through (ROADMAP item 5).  It has two halves:

* :mod:`repro.obs.trace` — ``Span``/``Tracer`` structured tracing with
  context-manager and decorator APIs.  Parent linkage propagates through
  a :mod:`contextvars` variable, so nesting is correct under
  ``repro.serve``'s asyncio loop (each task sees its own span stack) and
  span trees serialize to plain dicts so worker processes can ship them
  back alongside results.  When tracing is disabled (the default) the
  instrumented call sites cost one attribute check and return a shared
  no-op span — see ``BENCH_obs_overhead.json`` for the measured bound.
* :mod:`repro.obs.report` — trend tables and rolling-median regression
  gates over the ``bench_history/*.jsonl`` records that
  ``benchmarks/history.py`` appends, exposed as
  ``python -m repro bench report [--check]``.

Import note: this package imports nothing from the rest of ``repro``, so
any layer (``runtime``, ``fast``, ``serve``, the CLI) can instrument
itself without cycles.  It is the one package allowed to read the wall
clock (Chrome trace timestamps are epoch-based); the ``det-wallclock``
lint rule carves it out explicitly.
"""

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Timer,
    Tracer,
    annotate,
    chrome_events,
    current_span,
    disable,
    enable,
    get_tracer,
    phase_totals,
    set_tracer,
    span,
    timer,
    traced,
    write_chrome_trace,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Timer",
    "Tracer",
    "annotate",
    "chrome_events",
    "current_span",
    "disable",
    "enable",
    "get_tracer",
    "phase_totals",
    "set_tracer",
    "span",
    "timer",
    "traced",
    "write_chrome_trace",
]
