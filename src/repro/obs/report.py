"""Benchmark trend tables and rolling-median regression gates.

The static gates inside each benchmark (``assert speedup >= 3.0``)
protect the *claim*; they cannot see a slow drift that stays above the
floor.  This module reads the append-only ``bench_history/*.jsonl``
records (``benchmarks/history.py``) and compares each benchmark's
latest run against the **rolling median of its prior runs**, metric by
metric — ``python -m repro bench report`` renders the trend table, and
``--check`` turns any >20% (configurable) regression into a non-zero
exit, which CI's ``observability`` job enforces.

Metric direction is inferred from the name: durations/latencies
(``*_s``, ``*_ms``, ``latency``, ``elapsed`` …) regress *upward*;
rates and ratios (``speedup``, ``throughput``, ``rps`` …) regress
*downward*; anything unrecognized is reported but never gated.  Gating
also requires a minimum number of prior samples so a second-ever run on
a different machine cannot fail spuriously.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "MetricTrend",
    "check_trends",
    "compute_trends",
    "load_history",
    "metric_direction",
    "render_report",
]

#: Substrings marking a metric where smaller is better.
_LOWER_TOKENS = (
    "latency",
    "elapsed",
    "duration",
    "seconds",
    "wait",
    "_time",
    "time_",
    "overhead",
    "rounds",
)

#: Substrings marking a metric where larger is better.
_HIGHER_TOKENS = ("speedup", "throughput", "rps", "ops_per", "rate")


def metric_direction(key: str) -> "str | None":
    """``"lower"`` / ``"higher"`` is better, or ``None`` (ungated)."""
    k = key.lower()
    if any(tok in k for tok in _HIGHER_TOKENS):
        return "higher"
    if k.endswith("_s") or k.endswith("_ms") or k.endswith("_us"):
        return "lower"
    if any(tok in k for tok in _LOWER_TOKENS):
        return "lower"
    return None


#: History-stamp keys that are never metrics.
_STAMP_KEYS = frozenset({"at", "benchmark", "commit", "host", "samples"})


def _flatten(record: "dict[str, Any]", prefix: str = "") -> "dict[str, float]":
    """Dotted-key numeric leaves of a (possibly nested) record."""
    out: dict[str, float] = {}
    for key, value in record.items():
        if not prefix and key in _STAMP_KEYS:
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{dotted}."))
    return out


def load_history(history_dir: str) -> "dict[str, list[dict[str, Any]]]":
    """All ``*.jsonl`` histories as ``{benchmark: [record, ...]}``.

    Records keep file (append) order — the trend baseline is positional,
    not timestamp-sorted, so clock skew between machines cannot reorder
    a history.  Unparseable lines are skipped rather than fatal: a
    half-written line from a crashed run must not wedge reporting.
    """
    histories: dict[str, list[dict[str, Any]]] = {}
    if not os.path.isdir(history_dir):
        return histories
    for fname in sorted(os.listdir(history_dir)):
        if not fname.endswith(".jsonl"):
            continue
        records: list[dict[str, Any]] = []
        with open(os.path.join(history_dir, fname), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue
                if isinstance(payload, dict):
                    records.append(payload)
        if records:
            histories[fname[: -len(".jsonl")]] = records
    return histories


@dataclass
class MetricTrend:
    """One metric of one benchmark: latest value vs its rolling median."""

    benchmark: str
    metric: str
    latest: float
    direction: "str | None"
    prior_median: "float | None" = None
    prior_count: int = 0
    #: Signed fractional change vs the prior median, oriented so that
    #: positive always means *worse* (regression), whatever the
    #: direction.  ``None`` without a usable baseline.
    regression: "float | None" = None
    gated: bool = False
    samples: "dict[str, float] | None" = field(default=None, repr=False)

    @property
    def failed(self) -> bool:
        """Did this metric regress past the gate threshold?"""
        return self.gated and self.regression is not None


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compute_trends(
    histories: "dict[str, list[dict[str, Any]]]",
    *,
    window: int = 10,
    threshold: float = 0.20,
    min_prior: int = 3,
) -> "list[MetricTrend]":
    """Latest-vs-rolling-median trends for every metric in ``histories``.

    ``window`` bounds how many *prior* runs feed the median;
    ``threshold`` is the fractional regression that flips a trend to
    failed; metrics with fewer than ``min_prior`` prior samples (or no
    inferable direction) are reported ungated.
    """
    trends: list[MetricTrend] = []
    for name in sorted(histories):
        records = histories[name]
        latest = _flatten(records[-1])
        prior = [_flatten(r) for r in records[:-1]]
        for metric in sorted(latest):
            value = latest[metric]
            prior_values = [p[metric] for p in prior if metric in p]
            prior_values = prior_values[-window:]
            trend = MetricTrend(
                benchmark=name,
                metric=metric,
                latest=value,
                direction=metric_direction(metric),
                prior_count=len(prior_values),
            )
            if prior_values:
                trend.prior_median = _median(prior_values)
            if (
                trend.direction is not None
                and trend.prior_median is not None
                and len(prior_values) >= min_prior
                and trend.prior_median > 0
            ):
                if trend.direction == "lower":
                    change = value / trend.prior_median - 1.0
                else:
                    change = 1.0 - value / trend.prior_median
                if change > threshold:
                    trend.regression = change
                    trend.gated = True
                else:
                    trend.gated = True
                    trend.regression = None
            trends.append(trend)
    return trends


def check_trends(trends: "Iterable[MetricTrend]") -> "list[MetricTrend]":
    """The failing subset of ``trends`` (empty means the gate passes)."""
    return [t for t in trends if t.failed]


def _fmt(value: "float | None") -> str:
    if value is None:
        return "-"
    if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
        return f"{value:.3e}"
    return f"{value:.4g}"


def render_report(
    trends: "list[MetricTrend]", *, threshold: float = 0.20
) -> str:
    """Plain-text trend table, one section per benchmark."""
    if not trends:
        return "bench report: no history found (run some benchmarks first)"
    lines: list[str] = []
    failures = check_trends(trends)
    by_bench: dict[str, list[MetricTrend]] = {}
    for trend in trends:
        by_bench.setdefault(trend.benchmark, []).append(trend)
    header = (
        f"{'metric':<40} {'latest':>12} {'median':>12} "
        f"{'n':>3} {'dir':>6} {'status':>10}"
    )
    for bench in sorted(by_bench):
        lines.append(f"== {bench} ==")
        lines.append(header)
        for trend in by_bench[bench]:
            if trend.failed and trend.regression is not None:
                status = f"FAIL +{trend.regression * 100.0:.0f}%"
            elif trend.gated:
                status = "ok"
            else:
                status = "ungated"
            lines.append(
                f"{trend.metric:<40} {_fmt(trend.latest):>12} "
                f"{_fmt(trend.prior_median):>12} {trend.prior_count:>3} "
                f"{trend.direction or '-':>6} {status:>10}"
            )
        lines.append("")
    lines.append(
        f"{len(failures)} regression(s) past the "
        f"{threshold * 100.0:.0f}% rolling-median gate "
        f"across {len(by_bench)} benchmark(s)."
    )
    return "\n".join(lines)
