"""``repro.runtime`` — the plan/query seam: cache topology, batch queries.

The paper's pipeline is a chain of per-topology artifacts (MST, rooted
tree, Euler/LCA labels, HLD, layering, segments, kernel arrays) consumed
by per-query phases (forward primal-dual, reverse-delete, certificates).
The one-shot API rebuilt everything from a raw ``nx.Graph`` on every call;
this package separates the two halves so repeated solves on one topology —
weight reassignments, eps/variant sweeps, failure scenarios — pay for the
plan once:

* :class:`~repro.runtime.handle.GraphHandle` — immutable CSR-backed
  normalized graph; validation, normalization and diameter are computed
  once per *topology* and shared across ``reweight`` variants;
* :class:`~repro.runtime.plan.SolverPlan` — the weight-dependent
  artifacts (MST, links, ``TAPInstance`` per compute flavor), built
  lazily, each exactly once;
* :class:`~repro.runtime.session.SolverSession` — ``solve`` /
  ``solve_many`` over an LRU of plans, returning results **bit-identical**
  to the one-shot API (which is now a thin wrapper over a fresh session);
* :mod:`~repro.runtime.registry` — the
  :class:`~repro.runtime.registry.BackendSpec` registry unifying the old
  ``backend=``/``engine=`` strings into registered execution backends
  with capability flags (``vectorized``, ``message-level``,
  ``failure-injection``, …) and one-line unknown-name errors.

Quick use::

    from repro.runtime import SolverSession, SolveQuery

    session = SolverSession(graph, backend="fast")
    base = session.solve(eps=0.5)                    # builds the plan
    swept = session.solve_many(
        [SolveQuery(eps=e) for e in (0.1, 0.25, 0.5, 1.0)]
    )                                                # reuses the plan

This is the architectural seam the scaling layers plug into: the serving
subsystem (:mod:`repro.serve`) shards topologies across worker processes
and coalesces concurrent requests into ``solve_many`` batches on warm
sessions; :meth:`~repro.runtime.session.SolverSession.stats` exposes the
plan-cache accounting (hits/misses/evictions, per-phase build times) its
``/metrics`` route and ``python -m repro sweep --debug`` surface.
"""

from repro.runtime.handle import GraphHandle
from repro.runtime.plan import SolverPlan
from repro.runtime.registry import (
    BackendSpec,
    UnknownBackendError,
    backend_names,
    get_backend,
    register_backend,
    registered,
    registered_payload,
    resolve_compute,
)
from repro.runtime.session import SolveQuery, SolverSession

__all__ = [
    "BackendSpec",
    "GraphHandle",
    "SolveQuery",
    "SolverPlan",
    "SolverSession",
    "UnknownBackendError",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered",
    "registered_payload",
    "resolve_compute",
]
