"""SolverSession: many queries, one plan — the batch-solve entry point.

A session binds one :class:`~repro.runtime.handle.GraphHandle` to a small
LRU cache of :class:`~repro.runtime.plan.SolverPlan` objects (one per
weight assignment) and exposes:

* :meth:`SolverSession.solve` — one 2-ECSS query (``eps``, ``variant``,
  compute backend, engine, optional weight reassignment, optional failure
  plan) — or a k-ECSS query via ``k > 2`` (:mod:`repro.core.k_ecss`),
  gated on the ``k-ecss`` backend capability — reusing every plan
  artifact a previous solve already built;
* :meth:`SolverSession.solve_many` — a batch of :class:`SolveQuery`
  records (or kwargs dicts) solved in order against the shared plan cache,
  the API the scenario sweeps (:mod:`repro.analysis.sweep`) and the
  session-reuse benchmark drive.

**Bit-identity contract.**  A session solve returns exactly what the
one-shot API returns for the same parameters — same edges, weights, duals,
guarantees, certificates, logs.  The one-shot functions
(:func:`repro.core.tecss.approximate_two_ecss`,
:func:`repro.dist.pipeline.distributed_two_ecss`) are thin wrappers that
build a fresh single-use session/plan, so "one-shot vs session" is
precisely "rebuild-per-call vs reuse" — held by the seeded fuzz suite in
``tests/test_runtime_session.py`` across every registered backend.

Execution is routed through the backend registry
(:mod:`repro.runtime.registry`): ``backend`` names a *compute* entry
(``reference``/``fast``/``auto``), ``engine`` an *engine* entry
(``local``/``sim``); unknown names raise a one-line
:class:`~repro.runtime.registry.UnknownBackendError` listing what is
registered, and failure injection is gated on the engine's
``failure-injection`` capability flag instead of a hard-coded name.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping, Sequence

import networkx as nx

from repro import obs
from repro.core.instance import TAPInstance
from repro.core.k_ecss import MAX_K
from repro.core.tap import assemble_tap_result, solve_virtual_tap
from repro.core.tecss import assemble_two_ecss, nontree_links
from repro.runtime.handle import GraphHandle
from repro.runtime.plan import SolverPlan
from repro.runtime.registry import get_backend, resolve_compute
from repro.trees.rooted import RootedTree

__all__ = ["SolveQuery", "SolverSession"]


def _check_k(k: object) -> None:
    """Validate a query's ``k``: an int (not a bool) in ``2..MAX_K``."""
    if isinstance(k, bool) or not isinstance(k, int):
        raise ValueError(f"k must be an int, got {k!r}")
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if k > MAX_K:
        raise ValueError(f"k={k} exceeds the supported maximum k={MAX_K}")


@dataclass(frozen=True)
class SolveQuery:
    """One solve request for :meth:`SolverSession.solve_many`.

    ``weights`` optionally reassigns edge weights for this query (see
    :meth:`repro.runtime.handle.GraphHandle.reweight` for accepted
    shapes); ``failures`` is a :class:`~repro.sim.failures.FailurePlan`
    for engines with the ``failure-injection`` capability.  ``backend``
    and ``engine`` default to the session's own defaults when ``None``.
    ``k`` is the target edge connectivity (default 2; values above 2 need
    the ``k-ecss`` capability on both the compute backend and the engine
    and return a :class:`~repro.core.result.KEcssResult`).
    """

    eps: float = 0.25
    variant: str = "improved"
    segmented: bool = True
    validate: bool = True
    backend: str | None = None
    engine: str | None = None
    weights: object = field(default=None, compare=False)
    weights_delta: object = field(default=None, compare=False)
    failures: object = field(default=None, compare=False)
    simulate_mst: bool = False
    k: int = 2


class SolverSession:
    """Reusable solving context for one topology (see module docstring).

    Parameters
    ----------
    graph:
        The input graph (any hashable labels, ``weight`` attributes) or a
        prebuilt :class:`~repro.runtime.handle.GraphHandle`.  Validation
        and normalization happen here, once.
    backend, engine:
        Session defaults for queries that leave theirs ``None``.
    words_per_edge, scheduler:
        CONGEST engine knobs forwarded to message-level (``sim``) solves.
    max_plans:
        Size of the per-weights plan LRU; reweighted scenarios beyond the
        cap evict the least recently used plan (the handle's
        topology-level caches are never evicted).
    delta_max_fraction, delta_max_swaps:
        Guard rails for the delta re-solve path: diffs larger than
        ``delta_max_fraction`` of the edges — or maintenance runs
        exceeding ``delta_max_swaps`` tree swaps (default: one per changed
        edge, the provable maximum) — fall back to a full plan rebuild.
    """

    def __init__(
        self,
        graph: nx.Graph | GraphHandle,
        backend: str = "reference",
        engine: str = "local",
        words_per_edge: int = 4,
        scheduler: Any = None,
        max_plans: int = 8,
        delta_max_fraction: float = 0.05,
        delta_max_swaps: int | None = None,
    ) -> None:
        self.handle = (
            graph if isinstance(graph, GraphHandle)
            else GraphHandle.from_graph(graph)
        )
        self.default_backend = backend
        self.default_engine = engine
        self.words_per_edge = words_per_edge
        self.scheduler = scheduler
        self.max_plans = max(1, max_plans)
        self.delta_max_fraction = delta_max_fraction
        self.delta_max_swaps = delta_max_swaps
        self._plans: "OrderedDict[str, SolverPlan]" = OrderedDict()
        self._counters = {
            "solves": 0, "plans_built": 0, "plan_hits": 0,
            "plan_evictions": 0, "delta_requests": 0, "delta_tree_reuses": 0,
            "delta_tree_swaps": 0, "delta_fallbacks": 0,
            "vectorized_batches": 0, "scalar_fallback": 0,
        }
        self._evicted_build_times: dict[str, float] = {}
        # The base plan is pinned outside the LRU: every delta derives
        # from it, so eviction must never force a full rebuild of it.
        self._base_plan: SolverPlan | None = None

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------

    def plan(
        self,
        weights: "Sequence | Mapping | None" = None,
        weights_delta: "Mapping | None" = None,
    ) -> SolverPlan:
        """The cached plan for this topology under ``weights`` (LRU).

        ``weights=None`` means the handle's own weight column;
        ``weights_delta`` instead applies a sparse ``{edge: new_weight}``
        diff against the session's **base** weights (idempotent and
        order-independent, so coalesced/retried delta requests are safe)
        and derives the plan incrementally from the pinned base plan (see
        :meth:`SolverPlan.from_delta`).  Plans are keyed by the
        weight-column fingerprint, so two equal reassignments — or two
        equal diffs — share one plan.
        """
        if weights_delta is not None:
            if weights is not None:
                raise ValueError(
                    "pass either weights or weights_delta, not both"
                )
            return self._delta_plan(weights_delta)
        handle = self.handle if weights is None else self.handle.reweight(weights)
        key = handle.weights_key
        plan = self._plans.get(key)
        if plan is None:
            plan = SolverPlan(handle)
            self._insert_plan(key, plan)
        else:
            self._counters["plan_hits"] += 1
        self._plans.move_to_end(key)
        if key == self.handle.weights_key and self._base_plan is None:
            self._base_plan = plan
        return plan

    def base_plan(self) -> SolverPlan:
        """The pinned plan for the session's own weight column.

        Built on first use and kept alive independently of the LRU —
        every delta derivation reads its tree and instances, so evicting
        it would silently reintroduce full rebuilds.
        """
        if self._base_plan is None:
            self.plan(None)  # builds and pins
        return self._base_plan

    def _delta_plan(self, changed: "Mapping") -> SolverPlan:
        """Resolve, derive, and cache the plan for one sparse diff."""
        self._counters["delta_requests"] += 1
        handle = self.handle.reweight_delta(changed)
        if handle is self.handle:
            # No effective change: the diff restated base weights.
            self._counters["delta_tree_reuses"] += 1
            return self.plan(None)
        key = handle.weights_key
        plan = self._plans.get(key)
        if plan is None:
            plan = SolverPlan.from_delta(
                self.base_plan(), handle,
                max_fraction=self.delta_max_fraction,
                max_swaps=self.delta_max_swaps,
            )
            mode = plan.delta_info["mode"]
            counter = {
                "reused": "delta_tree_reuses",
                "swapped": "delta_tree_swaps",
                "fallback": "delta_fallbacks",
            }[mode]
            self._counters[counter] += 1
            self._insert_plan(key, plan)
        else:
            self._counters["plan_hits"] += 1
        self._plans.move_to_end(key)
        return plan

    def _insert_plan(self, key: str, plan: SolverPlan) -> None:
        """Insert a freshly built plan and evict past the LRU cap."""
        self._plans[key] = plan
        self._counters["plans_built"] += 1
        while len(self._plans) > self.max_plans:
            _, evicted = self._plans.popitem(last=False)
            self._counters["plan_evictions"] += 1
            if evicted is self._base_plan:
                # Still pinned and still accumulating build times; its
                # accounting stays live in stats() instead of freezing.
                continue
            # Keep the evicted plan's build-time accounting: stats()
            # reports total seconds spent building artifacts, not just
            # the seconds still resident in the LRU.
            for phase, secs in evicted.build_times.items():
                self._evicted_build_times[phase] = (
                    self._evicted_build_times.get(phase, 0.0) + secs
                )

    def stats(self) -> dict:
        """Plan-cache and build-time accounting for this session.

        Returns a fresh dict with the lifetime counters (``solves``,
        ``plans_built``, ``plan_hits``, ``plan_misses`` — equal to
        ``plans_built`` — and ``plan_evictions``; the delta-path
        counters ``delta_requests``, ``delta_tree_reuses``,
        ``delta_tree_swaps``, ``delta_fallbacks``; and the batch-path
        pair ``vectorized_batches`` / ``scalar_fallback`` counting how
        :meth:`solve_batch_vectorized` routed its queries), the cache
        occupancy
        (``plans_cached`` / ``max_plans``), and ``build_times_s``: wall
        seconds per build phase (``mst``, ``links``, ``diameter``,
        ``instance:<flavor>``, and their incremental ``<phase>:delta``
        counterparts) summed across every plan this session ever built,
        evicted plans included.  Surfaced by the serving layer's
        ``/metrics`` route and ``python -m repro sweep --debug``.
        """
        build_times = dict(self._evicted_build_times)
        live = list(self._plans.values())
        if self._base_plan is not None and self._base_plan not in live:
            live.append(self._base_plan)  # pinned past its LRU eviction
        for plan in live:
            for phase, secs in plan.build_times.items():
                build_times[phase] = build_times.get(phase, 0.0) + secs
        return {
            **self._counters,
            "plan_misses": self._counters["plans_built"],
            "plans_cached": len(self._plans),
            "max_plans": self.max_plans,
            "build_times_s": build_times,
        }

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------

    def solve(
        self,
        eps: float = 0.25,
        variant: str = "improved",
        segmented: bool = True,
        validate: bool = True,
        backend: str | None = None,
        engine: str | None = None,
        weights: "Sequence | Mapping | None" = None,
        weights_delta: "Mapping | None" = None,
        failures: Any = None,
        simulate_mst: bool = False,
        k: int = 2,
    ) -> Any:
        """Solve one query against the cached plan.

        ``weights_delta`` is the sparse counterpart of ``weights``: a
        ``{edge: new_weight}`` diff against the session's base weights,
        served by the incremental plan-derivation path (see
        :meth:`plan`) with bit-identical results.

        ``k`` is the target edge connectivity.  The default ``k=2`` takes
        exactly the existing 2-ECSS path; ``k > 2`` (up to
        :data:`repro.core.k_ecss.MAX_K`) runs the iterated augmentation
        rounds of :mod:`repro.core.k_ecss` on top of the same plan
        artifacts and is gated on the ``k-ecss`` capability of both the
        resolved compute backend and the engine (the ``sim`` engine does
        not carry it).

        Returns a :class:`~repro.core.result.TwoEcssResult` for the
        ``local`` engine with ``k=2``, a
        :class:`~repro.core.result.KEcssResult` for ``k > 2``, and a
        :class:`~repro.dist.pipeline.DistTwoEcssResult` for ``sim`` —
        for ``k=2``, exactly the objects the corresponding one-shot
        functions return, bit-identical field by field.
        """
        return self._solve_query(SolveQuery(
            eps=eps, variant=variant, segmented=segmented,
            validate=validate, backend=backend, engine=engine,
            weights=weights, weights_delta=weights_delta,
            failures=failures, simulate_mst=simulate_mst, k=k,
        ))

    def _solve_query(
        self,
        query: SolveQuery,
        plan_cache: "dict[object, SolverPlan] | None" = None,
    ) -> Any:
        """Solve one parsed query (the body of :meth:`solve`).

        ``plan_cache`` is :meth:`solve_many`'s batch-local weight-
        fingerprint map: queries whose weight inputs hash equal share one
        resolved plan without re-paying the reweight + key computation
        (LRU ``plan_hits`` accounting is preserved for such hits).
        """
        backend = (
            query.backend if query.backend is not None
            else self.default_backend
        )
        engine = (
            query.engine if query.engine is not None
            else self.default_engine
        )
        eps, variant = query.eps, query.variant
        segmented, validate = query.segmented, query.validate
        failures, simulate_mst, k = query.failures, query.simulate_mst, query.k
        spec = get_backend("engine", engine)
        if failures is not None and not spec.has("failure-injection"):
            raise ValueError(
                f"failure injection requires an engine with the "
                f"'failure-injection' capability (e.g. 'sim'); "
                f"got {engine!r}"
            )
        _check_k(k)
        if k != 2:
            if not spec.has("k-ecss"):
                raise ValueError(
                    f"k={k} requires an engine with the 'k-ecss' "
                    f"capability (e.g. 'local'); got {engine!r}"
                )
            compute_spec = get_backend("compute", resolve_compute(backend))
            if not compute_spec.has("k-ecss"):
                raise ValueError(
                    f"k={k} requires a compute backend with the 'k-ecss' "
                    f"capability; got {backend!r}"
                )
        self._counters["solves"] += 1
        with obs.span("session.solve", engine=engine, k=k):
            plan: SolverPlan | None = None
            token = (
                self._weights_token(query) if plan_cache is not None else None
            )
            if token is not None and plan_cache is not None:
                plan = plan_cache.get(token)
                if plan is not None:
                    self._counters["plan_hits"] += 1
            if plan is None:
                plan = self.plan(query.weights, query.weights_delta)
                if token is not None and plan_cache is not None:
                    plan_cache[token] = plan
            if engine == "sim":
                from repro.dist.pipeline import distributed_two_ecss

                return distributed_two_ecss(
                    None,
                    eps=eps,
                    variant=variant,
                    segmented=segmented,
                    validate=validate,
                    words_per_edge=self.words_per_edge,
                    scheduler=self.scheduler,
                    failures=failures,
                    plan=plan,
                )
            flavor = resolve_compute(backend)
            if k == 2:
                return self._solve_local(
                    plan, eps, variant, segmented, validate, flavor,
                    simulate_mst,
                )
            return self._solve_k(
                plan, k, eps, variant, segmented, validate, flavor,
                simulate_mst,
            )

    def _solve_k(
        self,
        plan: SolverPlan,
        k: int,
        eps: float,
        variant: str,
        segmented: bool,
        validate: bool,
        flavor: str,
        simulate_mst: bool,
    ) -> Any:
        """The k > 2 path: round-2 base solve + memoized augmentation rounds.

        The base 2-ECSS runs through :meth:`_solve_local` (same plan
        artifacts, same bit-identity), its normalized edge set seeds the
        plan's :meth:`~repro.runtime.plan.SolverPlan.k_rounds` memo, and
        :func:`repro.core.k_ecss.assemble_k_ecss` stitches the rounds into
        a :class:`~repro.core.result.KEcssResult` (with the final min-cut
        certificate when ``validate`` is on).
        """
        from repro.core.k_ecss import assemble_k_ecss

        base = self._solve_local(
            plan, eps, variant, segmented, validate, flavor, simulate_mst
        )
        base_edges = set(plan.mst_edges)
        base_edges.update(
            tuple(sorted(link)) for link in base.augmentation.links
        )
        rounds = plan.k_rounds(
            k, base_edges, eps=eps, variant=variant, segmented=segmented,
            flavor=flavor, validate=validate,
        )
        return assemble_k_ecss(
            plan.g if validate else None,
            plan.nodes, base, base_edges, rounds, k,
            validate=validate, diameter=plan.diameter, n=plan.handle.n,
            degree_bound=plan.k_degree_bound(k),
        )

    def _solve_local(
        self,
        plan: SolverPlan,
        eps: float,
        variant: str,
        segmented: bool,
        validate: bool,
        flavor: str,
        simulate_mst: bool,
    ) -> Any:
        """The centralized solve path over a plan's shared instance."""
        mst_simulation = None
        tree, mst_edges, inst = plan.tree, plan.mst_edges, None
        if simulate_mst:
            from repro.model.mst import BoruvkaMST
            from repro.sim.engine import BatchedNetwork

            outcome = BoruvkaMST(BatchedNetwork(plan.g)).run()
            mst_simulation = outcome.stats
            if outcome.edges != mst_edges:  # pragma: no cover - unique MST
                # Provably unreachable (lexicographic tie-break), but if a
                # Borůvka bug ever produced a different tree, reproduce the
                # one-shot semantics exactly: solve on *its* tree.
                tree = RootedTree.from_edges(
                    plan.handle.n, outcome.edges, root=0
                )
                mst_edges = outcome.edges
                links = nontree_links(plan.g, set(mst_edges))
                inst = TAPInstance.from_links(tree, links, backend=flavor)
        if inst is None:
            inst = plan.instance(flavor)
        with obs.span("solve.tap", backend=flavor):
            fwd, rev = solve_virtual_tap(
                inst, eps=eps, variant=variant, segmented=segmented,
                validate=validate, backend=flavor,
            )
        with obs.span("solve.assemble"):
            tap = assemble_tap_result(
                inst, fwd, rev, eps=eps, variant=variant,
                segmented=segmented, validate=validate, backend=flavor,
            )
            # Only validation walks the nx.Graph; every other input is on
            # the plan, so a validate=False solve never materializes the
            # graph — an O(m) build the delta path must not pay per tick.
            return assemble_two_ecss(
                plan.g if (validate or simulate_mst) else None,
                plan.nodes, mst_edges, tap,
                validate=validate, mst_simulation=mst_simulation,
                diameter=plan.diameter,
                mst_weight=(
                    plan.mst_weight if mst_edges is plan.mst_edges else None
                ),
                n=plan.handle.n,
            )

    @staticmethod
    def _coerce_query(query: "SolveQuery | Mapping") -> SolveQuery:
        """Parse one :meth:`solve_many` entry into a :class:`SolveQuery`.

        Mappings with unknown keys raise a one-line :class:`ValueError`
        naming the offending keys and the valid fields, instead of the
        raw ``TypeError`` that ``SolveQuery(**mapping)`` would surface.
        """
        if isinstance(query, Mapping):
            valid = [f.name for f in fields(SolveQuery)]
            unknown = sorted(str(key) for key in query if key not in valid)
            if unknown:
                raise ValueError(
                    f"unknown SolveQuery field(s) {', '.join(unknown)}; "
                    f"valid fields: {', '.join(valid)}"
                )
            return SolveQuery(**query)
        return query

    @staticmethod
    def _weights_token(query: SolveQuery) -> object | None:
        """A hashable fingerprint of the query's weight inputs, or ``None``.

        Two queries with equal tokens resolve to the same plan, so
        :meth:`solve_many` shares one plan lookup across them.  ``None``
        (no safe fingerprint) means "resolve through :meth:`plan`".
        """
        try:
            if query.weights_delta is not None:
                delta = query.weights_delta
                if isinstance(delta, Mapping):
                    return ("delta", frozenset(delta.items()))
                return None
            weights = query.weights
            if weights is None:
                return ("base",)
            if isinstance(weights, Mapping):
                return ("map", frozenset(weights.items()))
            return ("col", tuple(weights))
        except TypeError:  # unhashable / non-iterable: let plan() decide
            return None

    def solve_many(self, queries: Iterable[SolveQuery | Mapping]) -> list:
        """Solve a batch of queries in order against the shared plan cache.

        Each query is a :class:`SolveQuery` or a kwargs mapping (unknown
        mapping keys raise a one-line error naming the valid fields);
        results come back in input order.  Queries whose weight inputs
        fingerprint equal share one plan lookup — and any query with the
        same weight column still hits the same LRU plan — so a
        100-scenario eps/weight sweep builds each plan's artifacts
        exactly once.
        """
        results = []
        plan_cache: dict[object, SolverPlan] = {}
        with obs.span("session.solve_many") as sp:
            for query in queries:
                results.append(
                    self._solve_query(self._coerce_query(query), plan_cache)
                )
            sp.set(queries=len(results))
        return results

    def _vectorizable(self, query: SolveQuery) -> bool:
        """Whether a query can join a scenario-vectorized kernel batch.

        The batched path covers the bread-and-butter scenario sweep:
        local engine, ``k=2``, dense-or-default weights, no failure
        plan, no MST simulation, and a compute backend resolving to
        ``fast``.  Anything else — including a backend whose resolution
        raises — falls back to the scalar path, which reproduces the
        scalar error semantics exactly.
        """
        if query.k != 2 or query.simulate_mst:
            return False
        if query.failures is not None or query.weights_delta is not None:
            return False
        engine = (
            query.engine if query.engine is not None
            else self.default_engine
        )
        if engine != "local":
            return False
        backend = (
            query.backend if query.backend is not None
            else self.default_backend
        )
        try:
            return resolve_compute(backend) == "fast"
        except Exception:
            return False

    def solve_batch_vectorized(
        self, queries: Iterable[SolveQuery | Mapping]
    ) -> list:
        """Solve a batch with compatible queries fused into kernel passes.

        Queries that agree on ``(eps, variant, segmented, validate)`` and
        are :meth:`_vectorizable` run as one scenario-axis kernel batch
        (:mod:`repro.runtime.batch`): one MST/instance structure per
        distinct tree and a single ``(scenarios × edges)`` forward phase,
        bit-identical per scenario to the looped :meth:`solve_many`.
        Everything else — sim engine, ``k > 2``, failure plans, sparse
        deltas, non-fast backends, and singleton groups — transparently
        falls back to the scalar path.  Results come back in input order;
        the ``vectorized_batches`` / ``scalar_fallback`` counters (see
        :meth:`stats`) record the routing.
        """
        parsed = [self._coerce_query(query) for query in queries]
        results: list[Any] = [None] * len(parsed)
        groups: "OrderedDict[tuple, list[int]]" = OrderedDict()
        scalars: list[int] = []
        for i, query in enumerate(parsed):
            if self._vectorizable(query):
                key = (
                    query.eps, query.variant, query.segmented,
                    query.validate,
                )
                groups.setdefault(key, []).append(i)
            else:
                scalars.append(i)
        for key in [k for k, idxs in groups.items() if len(idxs) < 2]:
            scalars.extend(groups.pop(key))
        scalars.sort()
        with obs.span(
            "session.solve_batch",
            queries=len(parsed), vectorized=len(parsed) - len(scalars),
            scalar=len(scalars),
        ):
            if scalars:
                self._counters["scalar_fallback"] += len(scalars)
                plan_cache: dict[object, SolverPlan] = {}
                for i in scalars:
                    results[i] = self._solve_query(parsed[i], plan_cache)
            if groups:
                from repro.runtime.batch import solve_scenario_group

                for (
                    eps, variant, segmented, validate,
                ), idxs in groups.items():
                    self._counters["vectorized_batches"] += 1
                    self._counters["solves"] += len(idxs)
                    group_results = solve_scenario_group(
                        self, [parsed[i] for i in idxs],
                        eps=eps, variant=variant, segmented=segmented,
                        validate=validate,
                    )
                    for i, result in zip(idxs, group_results):
                        results[i] = result
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverSession(n={self.handle.n}, m={self.handle.m}, "
            f"plans={len(self._plans)}, solves={self._counters['solves']})"
        )
