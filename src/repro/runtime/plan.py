"""The per-topology solver plan: compute the reusable artifacts once.

The Dory–Ghaffari pipeline is a chain of artifacts that depend only on the
graph and its weights — never on the query parameters (``eps``, ``variant``,
``segmented``, ``validate``) a solve is issued with:

===========================  =====================================  ========
artifact                     module                                 depends
===========================  =====================================  ========
validation + normalization   :mod:`repro.graphs.validation`         topology
diameter (result metadata)   :class:`~repro.runtime.handle.GraphHandle`  topology
MST + rooted tree            :func:`repro.core.tecss.rooted_mst`    weights
non-tree candidate links     :func:`repro.core.tecss.nontree_links` weights
virtual edges + ``G'``       :class:`repro.core.instance.TAPInstance`  weights
Euler/LCA labels, HLD        :mod:`repro.trees` (via the instance)  weights
layering, segments           :mod:`repro.decomp` (via the instance) weights
tree/instance numpy arrays   :mod:`repro.fast.treearrays`           weights
===========================  =====================================  ========

A :class:`SolverPlan` owns the weight-dependent rows for one
:class:`~repro.runtime.handle.GraphHandle`, building each lazily and
exactly once; the topology-only rows live on the handle itself and are
shared across :meth:`~repro.runtime.handle.GraphHandle.reweight` variants.
The phases that *do* depend on query parameters (forward primal-dual,
reverse-delete, certificates) run per solve in
:class:`~repro.runtime.session.SolverSession` on top of a plan.  The
k-ECSS augmentation rounds (:mod:`repro.core.k_ecss`) sit in between:
they depend on the query's ``eps``/``variant``/``segmented``/flavor but
are deterministic given those, so :meth:`SolverPlan.k_rounds` memoizes
them per parameter key — coalesced identical ``k``-queries recompute no
Gomory–Hu trees, and a ``k=4`` query extends a cached ``k=3`` answer.

Every consumer of a plan instance must treat it as immutable; code that
needs to inject state (the measured-ops facade of
:mod:`repro.dist.pipeline`) takes a :meth:`private_instance` copy instead.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Callable, Iterable

import networkx as nx

from repro import obs
from repro.core.instance import TAPInstance
from repro.core.tecss import nontree_links, rooted_mst
from repro.runtime.handle import GraphHandle
from repro.runtime.registry import resolve_compute
from repro.trees.rooted import RootedTree

__all__ = ["SolverPlan"]


def _links_from_handle(
    handle: GraphHandle, mst_set: set[tuple[int, int]]
) -> list[tuple[int, int, float]]:
    """:func:`nontree_links` from the handle's flat arrays, no nx.Graph.

    ``handle.edges`` preserves the graph's edge-iteration order and the
    weight objects are the same, so the output is identical tuple for
    tuple — including the ``float()`` casts — while skipping the O(m)
    ``nx.Graph`` materialization the delta path must avoid.
    """
    out = []
    for (u, v), w in zip(handle.edges, handle.weights):
        key = (u, v) if u < v else (v, u)
        if key not in mst_set:
            out.append((key[0], key[1], float(w)))
    return out


def _links_from_parent(
    parent: "SolverPlan",
    handle: GraphHandle,
    swaps: "Iterable[tuple[tuple[int, int], tuple[int, int]]]",
) -> list[tuple[int, int, float]]:
    """``parent.links`` patched to the child's weights and swapped edges.

    Links are the handle's edges minus the tree edges, in edge-iteration
    order — so a ``k``-edge diff with ``s`` swaps turns the parent's list
    into the child's with ``k`` weight patches, ``s`` deletions (edges
    that entered the tree) and ``s`` ordered insertions (edges that left
    it), instead of an O(m) re-filter.  Output is tuple-for-tuple what
    :func:`_links_from_handle` builds on the child handle.
    """
    from bisect import bisect_left

    pair_index = handle._pair_index
    links = list(parent.links)
    positions = list(parent._link_edge_pos)
    link_pos = parent._link_pos
    for i, w in handle.delta_changes.items():
        u, v = handle.edges[i]
        key = (u, v) if u < v else (v, u)
        at = link_pos.get(key)
        if at is not None:
            links[at] = (key[0], key[1], float(w))
    for outkey, inkey in swaps:
        at = bisect_left(positions, pair_index[inkey])
        del links[at]
        del positions[at]
        pos = pair_index[outkey]
        at = bisect_left(positions, pos)
        links.insert(
            at, (outkey[0], outkey[1], float(handle.weights[pos]))
        )
        positions.insert(at, pos)
    return links


class SolverPlan:
    """Cached per-(topology, weights) artifacts of the 2-ECSS pipeline.

    Everything is lazy: a plan used only for its MST never builds virtual
    edges; a reference-only session never builds the numpy arrays.
    ``instance_builds`` counts how many :class:`TAPInstance` constructions
    actually happened — the reuse tests and the session-reuse benchmark
    read it to prove work is *not* repeated.
    """

    def __init__(self, handle: GraphHandle) -> None:
        self.handle = handle
        self._instances: dict[str, TAPInstance] = {}
        self.instance_builds = 0
        #: Wall-clock seconds spent building each artifact, keyed by phase
        #: name (``mst``, ``links``, ``diameter``, ``instance:<flavor>``).
        #: Delta-derived plans use ``<phase>:delta`` keys so the savings
        #: are visible side by side with full builds in ``stats()`` and
        #: ``/metrics``.  Lazily-built artifacts record exactly one entry
        #: on first use;
        #: :meth:`repro.runtime.session.SolverSession.stats` aggregates
        #: these across the plan LRU (evicted plans included).
        self.build_times: dict[str, float] = {}
        #: For plans built by :meth:`from_delta`: how the diff was applied
        #: (``mode`` is ``reused`` / ``swapped`` / ``fallback``, plus
        #: ``changed`` / ``swaps`` counts and a fallback ``reason``).
        #: ``None`` for plans built from scratch.
        self.delta_info: dict | None = None
        self._links_builder = None
        self._delta_parent: SolverPlan | None = None
        #: k-ECSS augmentation-round memo, keyed by the query parameters
        #: the rounds depend on (``eps``, ``variant``, ``segmented``,
        #: flavor, ``validate``).  Rounds for ``j = 3..k`` are computed
        #: lazily and *extended* on demand — a ``k=4`` query after a
        #: ``k=3`` one reuses round 3 and only computes round 4.
        self._k_rounds: dict[tuple, dict] = {}
        self._k_degree_bounds: dict[int, float] = {}

    def _timed(self, phase: str, build: Callable[[], Any]) -> Any:
        """Run ``build()`` and record its duration under ``phase``.

        Timing goes through :func:`repro.obs.timer`, so one measurement
        feeds both the legacy ``build_times`` dict (the ``stats()`` /
        ``/metrics`` schema) and — when tracing is enabled — a
        ``plan.<phase>`` span nested under whatever solve is running.
        """
        with obs.timer("plan." + phase) as clock:
            value = build()
        self.build_times[phase] = clock.duration_s
        return value

    @classmethod
    def for_graph(cls, graph: nx.Graph) -> "SolverPlan":
        """Build a plan straight from a (possibly unlabeled) ``nx.Graph``."""
        return cls(GraphHandle.from_graph(graph))

    @classmethod
    def from_delta(
        cls,
        parent: "SolverPlan",
        handle: GraphHandle,
        max_fraction: float = 0.05,
        max_swaps: int | None = None,
    ) -> "SolverPlan":
        """Derive a plan for a :meth:`GraphHandle.reweight_delta` handle.

        Instead of rebuilding every weight-dependent artifact, the diff is
        replayed over ``parent``'s MST with the swap rules of
        :mod:`repro.runtime.delta`; what survives depends on what changed:

        * **tree unchanged** (no swap fired) — the parent's rooted tree,
          layering, segments, HLD and kernel tree-arrays are shared
          object-for-object; only the weight columns are patched
          (``mst:delta`` / ``links:delta`` / ``instance:<flavor>:delta``
          build phases, each orders of magnitude below a full build);
        * **tree swapped** — the maintained tree seeds ``mst`` (still no
          Kruskal run), links derive from the handle's arrays, but
          instances rebuild from scratch (they embed the tree);
        * **fallback** — diffs above ``max_fraction`` of the edges, or a
          swap budget overrun, degrade to a plain full-rebuild plan.

        The derived plan is bit-identical to ``SolverPlan(handle)`` in
        everything a solve reads — held by the differential suite in
        ``tests/test_delta_resolve.py``.
        """
        from repro.runtime.delta import DeltaFallback, maintain_mst

        changes = handle.delta_changes
        if handle.delta_base is None or (
            handle.delta_base.weights_key != parent.handle.weights_key
        ):
            raise ValueError(
                "from_delta needs the plan of the handle's delta base"
            )
        plan = cls(handle)
        plan._delta_parent = parent
        info = {"changed": len(changes), "swaps": 0}
        plan.delta_info = info
        limit = max(1, int(max_fraction * handle.m))
        if len(changes) > limit:
            info.update(mode="fallback", reason=f"diff > {limit} edges")
            return plan
        try:
            outcome = plan._timed(
                "mst:delta",
                lambda: maintain_mst(
                    handle, parent.tree, parent.mst_edges, max_swaps=max_swaps
                ),
            )
        except DeltaFallback as exc:
            plan.build_times.pop("mst:delta", None)
            info.update(mode="fallback", reason=str(exc))
            return plan
        info["swaps"] = len(outcome.swaps)
        info["mode"] = "reused" if not outcome.changed_tree else "swapped"
        plan.__dict__["_mst"] = (outcome.tree, outcome.mst_edges)
        pair_index = handle._pair_index
        plan.__dict__["mst_weight"] = sum(
            handle.weights[pair_index[e]] for e in outcome.mst_edges
        )
        # Links never need the nx.Graph: splice the parent's list when it
        # is already materialized (O(k + s) instead of O(m)), else replay
        # nontree_links from the handle's flat arrays (same edge order,
        # same float() casts — identical output either way).
        if "links" in parent.__dict__:
            swaps = outcome.swaps
            plan._links_builder = lambda: _links_from_parent(
                parent, handle, swaps
            )
        else:
            mst_set = set(outcome.mst_edges)
            plan._links_builder = lambda: _links_from_handle(
                handle, mst_set
            )
        return plan

    # ------------------------------------------------------------------
    # weight-dependent artifacts (computed once per plan)
    # ------------------------------------------------------------------

    @property
    def g(self) -> nx.Graph:
        """The normalized ``0..n-1`` graph (owned by the handle)."""
        return self.handle.graph

    @property
    def nodes(self) -> list:
        """Normalized-id -> original-label mapping (owned by the handle)."""
        return self.handle.nodes

    @property
    def diameter(self) -> int:
        """Topology diameter under the result-metadata rule (see handle)."""
        if "diameter" not in self.handle._shared:
            # First computation for this topology: attribute the cost here
            # (reweighted handles share the cache, so later plans see none).
            return self._timed("diameter", lambda: self.handle.diameter)
        return self.handle.diameter

    @cached_property
    def _mst(self) -> tuple[RootedTree, list[tuple]]:
        return self._timed("mst", lambda: rooted_mst(self.g))

    @property
    def tree(self) -> RootedTree:
        """The MST rooted at 0 (deterministic lexicographic tie-break)."""
        return self._mst[0]

    @property
    def mst_edges(self) -> list[tuple]:
        """The MST edge list, sorted — exactly :func:`rooted_mst`'s output."""
        return self._mst[1]

    @cached_property
    def mst_weight(self) -> float:
        """Total MST weight (a certified lower bound on OPT)."""
        g = self.g
        return sum(g[u][v]["weight"] for u, v in self.mst_edges)

    @cached_property
    def links(self) -> list[tuple[int, int, float]]:
        """The candidate links: every non-MST edge as ``(u, v, weight)``."""
        if self._links_builder is not None:
            return self._timed("links:delta", self._links_builder)
        return self._timed(
            "links", lambda: nontree_links(self.g, set(self.mst_edges))
        )

    @cached_property
    def _link_pos(self) -> dict[tuple[int, int], int]:
        """Link key -> position in :attr:`links` (delta-derivation index)."""
        return {(u, v): i for i, (u, v, _) in enumerate(self.links)}

    @cached_property
    def _link_edge_pos(self) -> list[int]:
        """Handle edge position of each link, ascending (delta-derivation).

        Links preserve edge-iteration order, so this column is sorted —
        :func:`_links_from_parent` bisects it to splice swapped edges in
        and out at the right rank.
        """
        pair_index = self.handle._pair_index
        return [pair_index[(u, v)] for u, v, _ in self.links]

    @cached_property
    def _link_weight_column(self) -> Any:
        """Per-link float64 weights (numpy; delta-derivation base column)."""
        from repro.fast import require_numpy

        np = require_numpy()
        return np.asarray([w for _, _, w in self.links], dtype=np.float64)

    # ------------------------------------------------------------------
    # k-ECSS rounds
    # ------------------------------------------------------------------

    @cached_property
    def _k_candidates(self) -> list[tuple[int, int, float]]:
        """Every edge as a sorted ``(u, v, weight)`` triple, edge order.

        The k-ECSS rounds' candidate pool: unlike :attr:`links` it keeps
        the MST edges too (a later round may re-add nothing, but the
        Gomory–Hu contraction needs every ``G``-edge as a potential
        class-crossing link).
        """
        return [
            ((u, v, float(w)) if u < v else (v, u, float(w)))
            for (u, v), w in zip(self.handle.edges, self.handle.weights)
        ]

    def k_rounds(
        self,
        k: int,
        base_edges: set,
        eps: float,
        variant: str,
        segmented: bool,
        flavor: str,
        validate: bool,
    ) -> list[dict]:
        """The augmentation-round records for ``j = 3..k`` (memoized).

        ``base_edges`` is the round-2 output (MST + TAP links) as
        normalized sorted pairs — a pure function of the memo key on this
        plan's weights, so the cached rounds stay valid across queries.
        Each round runs once per key and is shared by every later query
        with the same parameters and ``k' >= j``; build time is recorded
        under ``kecss:<j>`` phases.
        """
        from repro.core.k_ecss import augment_round

        key = (eps, variant, segmented, flavor, validate)
        entry = self._k_rounds.get(key)
        if entry is None:
            entry = {"chosen": set(base_edges), "rounds": []}
            self._k_rounds[key] = entry
        while len(entry["rounds"]) < k - 2:
            j = 3 + len(entry["rounds"])
            record = self._timed(
                f"kecss:{j}",
                lambda: augment_round(
                    self.handle.n, entry["chosen"], self._k_candidates,
                    j, k, eps=eps, variant=variant, segmented=segmented,
                    validate=validate, backend=flavor,
                ),
            )
            entry["rounds"].append(record)
        return entry["rounds"][: k - 2]

    def k_degree_bound(self, k: int) -> float:
        """Memoized :func:`repro.core.k_ecss.degree_lower_bound` for ``k``."""
        bound = self._k_degree_bounds.get(k)
        if bound is None:
            from repro.core.k_ecss import degree_lower_bound

            bound = degree_lower_bound(self.handle.n, self._k_candidates, k)
            self._k_degree_bounds[k] = bound
        return bound

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def instance(self, backend: str = "reference") -> TAPInstance:
        """The shared :class:`TAPInstance` for one compute flavor.

        ``backend`` is resolved through the registry (``"auto"`` allowed);
        one instance per concrete flavor is built and cached — the fast
        flavor carries its pre-seeded
        :class:`~repro.fast.treearrays.InstanceArrays`, the reference one
        its lazily built path operations.  Callers must not mutate the
        returned instance (use :meth:`private_instance` for that).
        """
        flavor = resolve_compute(backend)
        inst = self._instances.get(flavor)
        if inst is None:
            if self._can_derive_instance():
                inst = self._timed(
                    f"instance:{flavor}:delta",
                    lambda: self._derive_instance(flavor),
                )
            else:
                inst = self._timed(
                    f"instance:{flavor}",
                    lambda: TAPInstance.from_links(
                        self.tree, self.links, backend=flavor
                    ),
                )
            self._instances[flavor] = inst
            self.instance_builds += 1
        return inst

    def _can_derive_instance(self) -> bool:
        """Derivation needs an unchanged tree and a live parent plan."""
        return (
            self._delta_parent is not None
            and self.delta_info is not None
            and self.delta_info.get("mode") == "reused"
        )

    def _derive_instance(self, flavor: str) -> TAPInstance:
        """Clone the parent's instance with only the weight column patched.

        Valid only when the maintained tree is the parent's tree object
        (``mode == "reused"``): the virtual-edge structure (dec/anc pairs,
        originating links, eids) is a pure function of tree + non-tree
        edge *set*, which is unchanged — so the parent's layering, HLD,
        segments and :class:`~repro.fast.treearrays.TreeArrays` are shared
        and only weights are rewritten, producing the same objects field
        for field as a fresh ``from_links`` build on the patched links.
        """
        from repro.core.virtual_graph import VirtualEdgeColumns

        parent = self._delta_parent
        parent_inst = parent.instance(flavor)
        changed = {
            tuple(sorted(self.handle.edges[i])): float(w)
            for i, w in self.handle.delta_changes.items()
        }
        if isinstance(parent_inst.edges, VirtualEdgeColumns):
            cols = parent_inst.edges
            link_pos = parent._link_pos
            link_w = parent._link_weight_column.copy()
            for pair, w in changed.items():
                pos = link_pos.get(pair)
                if pos is not None:
                    link_w[pos] = w
            edges = VirtualEdgeColumns(
                cols.dec, cols.anc, link_w[cols.link_of], cols.link_of,
                cols._links, cols._origins,
            )
            inst = TAPInstance(
                parent_inst.tree, edges, parent_inst.segment_size
            )
            if "arrays" in parent_inst.__dict__:
                # Same tree, same virtual-edge structure: the parent's
                # kernel arrays carry over with just the weight column
                # swapped (incl. the nearest-in-layer cache).
                inst.__dict__["arrays"] = parent_inst.arrays.reweighted(
                    edges.weight
                )
        else:
            edges = [
                e if e.origin not in changed
                else e._replace(weight=changed[e.origin])
                for e in parent_inst.edges
            ]
            inst = TAPInstance(
                parent_inst.tree, edges, parent_inst.segment_size
            )
        for name in ("layering", "hld", "segments"):
            if name in parent_inst.__dict__:
                inst.__dict__[name] = parent_inst.__dict__[name]
        return inst

    def private_instance(self, backend: str = "reference") -> TAPInstance:
        """A fresh instance sharing the immutable artifacts, none of the
        injectable state.

        The distributed pipeline replaces ``inst.ops`` with its
        :class:`~repro.dist.ops.MeasuredOps` facade; doing that to the
        shared instance would leak a dead network into later solves.  The
        copy (see :meth:`repro.core.instance.TAPInstance.fresh_copy`)
        shares the tree, edges, layering, HLD, segments and coverage of
        the shared instance but keeps its own ``ops`` slot.
        """
        return self.instance(backend).fresh_copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = sorted(self._instances)
        return (
            f"SolverPlan(n={self.handle.n}, m={self.handle.m}, "
            f"instances={built or 'none'})"
        )
