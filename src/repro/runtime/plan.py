"""The per-topology solver plan: compute the reusable artifacts once.

The Dory–Ghaffari pipeline is a chain of artifacts that depend only on the
graph and its weights — never on the query parameters (``eps``, ``variant``,
``segmented``, ``validate``) a solve is issued with:

===========================  =====================================  ========
artifact                     module                                 depends
===========================  =====================================  ========
validation + normalization   :mod:`repro.graphs.validation`         topology
diameter (result metadata)   :class:`~repro.runtime.handle.GraphHandle`  topology
MST + rooted tree            :func:`repro.core.tecss.rooted_mst`    weights
non-tree candidate links     :func:`repro.core.tecss.nontree_links` weights
virtual edges + ``G'``       :class:`repro.core.instance.TAPInstance`  weights
Euler/LCA labels, HLD        :mod:`repro.trees` (via the instance)  weights
layering, segments           :mod:`repro.decomp` (via the instance) weights
tree/instance numpy arrays   :mod:`repro.fast.treearrays`           weights
===========================  =====================================  ========

A :class:`SolverPlan` owns the weight-dependent rows for one
:class:`~repro.runtime.handle.GraphHandle`, building each lazily and
exactly once; the topology-only rows live on the handle itself and are
shared across :meth:`~repro.runtime.handle.GraphHandle.reweight` variants.
The phases that *do* depend on query parameters (forward primal-dual,
reverse-delete, certificates) run per solve in
:class:`~repro.runtime.session.SolverSession` on top of a plan.

Every consumer of a plan instance must treat it as immutable; code that
needs to inject state (the measured-ops facade of
:mod:`repro.dist.pipeline`) takes a :meth:`private_instance` copy instead.
"""

from __future__ import annotations

import time
from functools import cached_property

import networkx as nx

from repro.core.instance import TAPInstance
from repro.core.tecss import nontree_links, rooted_mst
from repro.runtime.handle import GraphHandle
from repro.runtime.registry import resolve_compute
from repro.trees.rooted import RootedTree

__all__ = ["SolverPlan"]


class SolverPlan:
    """Cached per-(topology, weights) artifacts of the 2-ECSS pipeline.

    Everything is lazy: a plan used only for its MST never builds virtual
    edges; a reference-only session never builds the numpy arrays.
    ``instance_builds`` counts how many :class:`TAPInstance` constructions
    actually happened — the reuse tests and the session-reuse benchmark
    read it to prove work is *not* repeated.
    """

    def __init__(self, handle: GraphHandle) -> None:
        self.handle = handle
        self._instances: dict[str, TAPInstance] = {}
        self.instance_builds = 0
        #: Wall-clock seconds spent building each artifact, keyed by phase
        #: name (``mst``, ``links``, ``diameter``, ``instance:<flavor>``).
        #: Lazily-built artifacts record exactly one entry on first use;
        #: :meth:`repro.runtime.session.SolverSession.stats` aggregates
        #: these across the plan LRU (evicted plans included).
        self.build_times: dict[str, float] = {}

    def _timed(self, phase: str, build):
        """Run ``build()`` and record its wall-clock under ``phase``."""
        t0 = time.perf_counter()
        value = build()
        self.build_times[phase] = time.perf_counter() - t0
        return value

    @classmethod
    def for_graph(cls, graph: nx.Graph) -> "SolverPlan":
        """Build a plan straight from a (possibly unlabeled) ``nx.Graph``."""
        return cls(GraphHandle.from_graph(graph))

    # ------------------------------------------------------------------
    # weight-dependent artifacts (computed once per plan)
    # ------------------------------------------------------------------

    @property
    def g(self) -> nx.Graph:
        """The normalized ``0..n-1`` graph (owned by the handle)."""
        return self.handle.graph

    @property
    def nodes(self) -> list:
        """Normalized-id -> original-label mapping (owned by the handle)."""
        return self.handle.nodes

    @property
    def diameter(self) -> int:
        """Topology diameter under the result-metadata rule (see handle)."""
        if "diameter" not in self.handle.__dict__:
            # First computation for this topology: attribute the cost here
            # (reweighted handles share the cache, so later plans see none).
            return self._timed("diameter", lambda: self.handle.diameter)
        return self.handle.diameter

    @cached_property
    def _mst(self) -> tuple[RootedTree, list[tuple]]:
        return self._timed("mst", lambda: rooted_mst(self.g))

    @property
    def tree(self) -> RootedTree:
        """The MST rooted at 0 (deterministic lexicographic tie-break)."""
        return self._mst[0]

    @property
    def mst_edges(self) -> list[tuple]:
        """The MST edge list, sorted — exactly :func:`rooted_mst`'s output."""
        return self._mst[1]

    @cached_property
    def mst_weight(self) -> float:
        """Total MST weight (a certified lower bound on OPT)."""
        g = self.g
        return sum(g[u][v]["weight"] for u, v in self.mst_edges)

    @cached_property
    def links(self) -> list[tuple[int, int, float]]:
        """The candidate links: every non-MST edge as ``(u, v, weight)``."""
        return self._timed(
            "links", lambda: nontree_links(self.g, set(self.mst_edges))
        )

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def instance(self, backend: str = "reference") -> TAPInstance:
        """The shared :class:`TAPInstance` for one compute flavor.

        ``backend`` is resolved through the registry (``"auto"`` allowed);
        one instance per concrete flavor is built and cached — the fast
        flavor carries its pre-seeded
        :class:`~repro.fast.treearrays.InstanceArrays`, the reference one
        its lazily built path operations.  Callers must not mutate the
        returned instance (use :meth:`private_instance` for that).
        """
        flavor = resolve_compute(backend)
        inst = self._instances.get(flavor)
        if inst is None:
            inst = self._timed(
                f"instance:{flavor}",
                lambda: TAPInstance.from_links(
                    self.tree, self.links, backend=flavor
                ),
            )
            self._instances[flavor] = inst
            self.instance_builds += 1
        return inst

    def private_instance(self, backend: str = "reference") -> TAPInstance:
        """A fresh instance sharing the immutable artifacts, none of the
        injectable state.

        The distributed pipeline replaces ``inst.ops`` with its
        :class:`~repro.dist.ops.MeasuredOps` facade; doing that to the
        shared instance would leak a dead network into later solves.  The
        copy (see :meth:`repro.core.instance.TAPInstance.fresh_copy`)
        shares the tree, edges, layering, HLD, segments and coverage of
        the shared instance but keeps its own ``ops`` slot.
        """
        return self.instance(backend).fresh_copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = sorted(self._instances)
        return (
            f"SolverPlan(n={self.handle.n}, m={self.handle.m}, "
            f"instances={built or 'none'})"
        )
