"""The execution-backend registry: one namespace for every way to run a solve.

Before this layer existed, "how do I execute this?" was three unrelated
string arguments threaded through the codebase:

* ``backend="reference" | "fast" | "auto"`` on the solver entry points
  (which numeric kernels run the phases) — validated ad hoc by
  :func:`repro.fast.resolve_backend`;
* ``engine="local" | "sim"`` on :func:`repro.analysis.sweep.run_sweep`
  (centralized solver vs the message-level pipeline) — validated by an
  inline ``if``;
* ``engine="batched" | "legacy"`` on
  :class:`repro.sim.runner.ScenarioRunner` (which CONGEST network
  implementation steps the node programs) — validated by an ``if`` chain.

This module registers all of them as :class:`BackendSpec` entries under
three *kinds* — ``"compute"``, ``"engine"``, ``"network"`` — each carrying
**capability flags** (``vectorized``, ``message-level``,
``failure-injection``, ``k-ecss``, …) so callers can select by capability
instead of hard-coding names, and unknown names fail with a one-line error
listing what *is* registered.  The ``k-ecss`` flag gates the iterated
augmentation rounds of :mod:`repro.core.k_ecss`: compute flavors and
engines carrying it accept ``k > 2`` queries
(:meth:`repro.runtime.session.SolverSession.solve` rejects ``k > 2`` on
anything else, e.g. the ``sim`` engine).  :func:`register_backend` is the
extension point future backends (sharded plans, async serving) plug into;
the CLI (``python -m repro backends``) prints the live table.

Resolution helpers:

* :func:`resolve_compute` — normalizes a compute name to the concrete
  kernel flavor (``"reference"`` or ``"fast"``), following alias entries
  such as ``"auto"`` and enforcing each spec's ``requires`` hook (e.g.
  numpy for ``"fast"``);
* :func:`get_backend` / :func:`backend_names` / :func:`registered` — plain
  lookups, shared by the CLI, the sweep engine, the scenario runner, and
  :class:`repro.runtime.session.SolverSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fast import HAVE_NUMPY, require_numpy

__all__ = [
    "KINDS",
    "BackendSpec",
    "UnknownBackendError",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered",
    "registered_payload",
    "resolve_compute",
]

#: The registry's namespaces: numeric kernels, solve pipelines, networks.
KINDS = ("compute", "engine", "network")


class UnknownBackendError(ValueError):
    """An unregistered backend name (subclasses ``ValueError`` so existing
    ``except ValueError`` call sites keep working)."""


@dataclass(frozen=True)
class BackendSpec:
    """One registered execution backend.

    ``kind`` scopes the name (``"compute"``, ``"engine"`` or
    ``"network"``); ``capabilities`` are free-form flags callers can gate
    on (the stock ones are documented in :func:`registered` output and
    ``docs/PAPER_MAP.md``).  ``resolves_to`` makes the entry an *alias*: a
    callable returning the concrete name to resolve next (``"auto"`` uses
    this to pick ``fast`` when numpy is importable).  ``requires`` runs at
    resolution time and raises when the backend cannot execute here
    (``"fast"`` uses it for the numpy check).  ``factory`` is the
    behavior hook for ``network`` entries: a callable
    ``(graph, words_per_edge, scheduler, failures) -> network``.
    """

    name: str
    kind: str
    description: str
    capabilities: frozenset = field(default_factory=frozenset)
    resolves_to: Callable[[], str] | None = None
    requires: Callable[[], object] | None = None
    factory: Callable | None = None

    def has(self, capability: str) -> bool:
        """Whether this backend declares the given capability flag."""
        return capability in self.capabilities


_REGISTRY: dict[tuple[str, str], BackendSpec] = {}


def register_backend(spec: BackendSpec, replace: bool = False) -> BackendSpec:
    """Register a backend; duplicate names are an error unless ``replace``."""
    if spec.kind not in KINDS:
        raise ValueError(f"backend kind must be one of {KINDS}; got {spec.kind!r}")
    key = (spec.kind, spec.name)
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"{spec.kind} backend {spec.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[key] = spec
    return spec


def unregister_backend(kind: str, name: str) -> None:
    """Remove a registered backend (tests and plugin teardown)."""
    _REGISTRY.pop((kind, name), None)


def backend_names(kind: str) -> tuple[str, ...]:
    """The registered names of one kind, sorted for stable error messages."""
    return tuple(sorted(n for k, n in _REGISTRY if k == kind))


def registered(kind: str | None = None) -> tuple[BackendSpec, ...]:
    """All registered specs (of one kind, or every kind), sorted by name."""
    specs = [
        spec
        for (k, _), spec in sorted(_REGISTRY.items())
        if kind is None or k == kind
    ]
    return tuple(specs)


def registered_payload(kind: str | None = None) -> list[dict]:
    """The registry as JSON-safe dicts (machine-readable, stable order).

    One dict per spec — ``kind``, ``name``, sorted ``capabilities``,
    ``description``, and ``alias`` (whether the entry resolves to another
    name).  Shared by ``python -m repro backends --json``, the serving
    layer's ``/backends`` route, and the load generator, so the three
    always agree on the schema.
    """
    return [
        {
            "kind": spec.kind,
            "name": spec.name,
            "capabilities": sorted(spec.capabilities),
            "description": spec.description,
            "alias": spec.resolves_to is not None,
        }
        for spec in registered(kind)
    ]


def get_backend(kind: str, name: str) -> BackendSpec:
    """Look up one backend; unknown names get a one-line listing error."""
    spec = _REGISTRY.get((kind, name))
    if spec is None:
        known = ", ".join(backend_names(kind)) or "<none>"
        raise UnknownBackendError(
            f"unknown {kind} backend {name!r}; registered {kind} "
            f"backends: {known}"
        )
    return spec


def resolve_compute(name: str) -> str:
    """Resolve a compute-backend name to its concrete kernel flavor.

    Follows alias entries (``"auto"``) and runs each spec's ``requires``
    hook, so ``resolve_compute("fast")`` raises the numpy error early and
    ``resolve_compute("auto")`` degrades to ``"reference"`` without numpy.
    """
    spec = get_backend("compute", name)
    seen = {spec.name}
    while spec.resolves_to is not None:
        target = spec.resolves_to()
        if target in seen:  # pragma: no cover - registration bug guard
            raise ValueError(f"compute backend alias cycle at {target!r}")
        seen.add(target)
        spec = get_backend("compute", target)
    if spec.requires is not None:
        spec.requires()
    return spec.name


def _make_batched(
    graph: Any,
    words_per_edge: int,
    scheduler: Any = None,
    failures: Any = None,
) -> Any:
    """Factory for the ``batched`` network backend (CSR engine)."""
    from repro.sim.engine import BatchedNetwork

    return BatchedNetwork(
        graph, words_per_edge, scheduler=scheduler, failures=failures
    )


def _make_legacy(
    graph: Any,
    words_per_edge: int,
    scheduler: Any = None,
    failures: Any = None,
) -> Any:
    """Factory for the ``legacy`` network backend (per-node oracle loop)."""
    from repro.model.network import Network

    return Network(graph, words_per_edge)


def _register_defaults() -> None:
    """Register the in-tree backends (idempotent at import time)."""
    register_backend(BackendSpec(
        name="reference",
        kind="compute",
        description="per-edge Python loops; the auditable baseline",
        capabilities=frozenset({"portable", "auditable", "k-ecss"}),
    ))
    register_backend(BackendSpec(
        name="fast",
        kind="compute",
        description="vectorized numpy kernels (repro.fast), bit-identical",
        capabilities=frozenset({"vectorized", "k-ecss"}),
        requires=require_numpy,
    ))
    register_backend(BackendSpec(
        name="auto",
        kind="compute",
        description="alias: fast when numpy is importable, else reference",
        capabilities=frozenset({"alias"}),
        resolves_to=lambda: "fast" if HAVE_NUMPY else "reference",
    ))
    register_backend(BackendSpec(
        name="local",
        kind="engine",
        description="centralized solver on the cached SolverPlan",
        capabilities=frozenset({"plan-reuse", "batch-queries", "k-ecss"}),
    ))
    register_backend(BackendSpec(
        name="sim",
        kind="engine",
        description=(
            "full 2-ECSS pipeline message-level on the batched CONGEST "
            "engine (repro.dist.pipeline)"
        ),
        capabilities=frozenset({
            "plan-reuse", "batch-queries", "message-level",
            "measured-rounds", "failure-injection",
        }),
    ))
    register_backend(BackendSpec(
        name="batched",
        kind="network",
        description="CSR + event-driven scheduler engine (repro.sim)",
        capabilities=frozenset({
            "event-driven", "failure-injection", "trace", "csr",
        }),
        factory=_make_batched,
    ))
    register_backend(BackendSpec(
        name="legacy",
        kind="network",
        description=(
            "per-node reference loop (repro.model.network), the semantic "
            "oracle for differential tests"
        ),
        capabilities=frozenset({"oracle"}),
        factory=_make_legacy,
    ))


_register_defaults()
