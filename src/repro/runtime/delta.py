"""Swap-edge MST maintenance for sparse reweights (the delta-solve core).

:func:`repro.core.tecss.rooted_mst` computes the MST with networkx's
Kruskal, whose tie-break is fully deterministic: edges are *stably* sorted
by weight in the graph's edge-iteration order — which
:attr:`repro.runtime.handle.GraphHandle.edges` preserves from the input —
so the effective comparison key of edge ``i`` is the lexicographic pair
``(weight_i, i)`` and the MST is unique under it.  That uniqueness is what
makes incremental maintenance *exact*: this module replays a sparse weight
diff one edge at a time, applying the classic swap rules under the same
``(weight, position)`` key, and provably lands on the tree a fresh
stable-Kruskal run would produce.

For a single edge ``i`` changing ``w -> w'`` there are four cases:

* **tree edge, decrease** — the tree is unchanged (its key only got
  smaller, every cut it was minimal for it still is);
* **non-tree edge, increase** — unchanged (its key only got bigger);
* **non-tree edge, decrease** — let ``t*`` be the tree edge with the
  lexicographically *largest* ``(w, pos)`` key on the tree path between
  ``i``'s endpoints; swap ``i`` in and ``t*`` out iff
  ``(w', i) < (w(t*), t*)`` (the cycle rule);
* **tree edge, increase** — let ``f*`` be the non-tree edge with the
  lexicographically *smallest* key crossing the cut that removing ``i``
  opens; swap iff ``(w', i) > (w(f*), f*)`` (the cut rule).

Each step performs at most one swap, so a ``k``-edge diff costs at most
``k`` swaps; the changes are applied in ascending edge position (any fixed
order works — after each step the invariant "current tree is the stable
Kruskal of the current weights" is restored).  Crossing-edge queries run
vectorized over the tree's Euler intervals when numpy is present
(:func:`repro.fast.kernels.min_weight_crossing`) and as an exact Python
scan otherwise — or when integer weights exceed float64's exact range,
where a float comparison could mis-rank candidates.

:class:`DeltaFallback` signals "rebuild from scratch instead"; the caller
(:meth:`repro.runtime.plan.SolverPlan.from_delta`) also refuses large
diffs before calling in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any, Iterable, Sequence

from repro import obs
from repro.runtime.handle import GraphHandle
from repro.trees.rooted import RootedTree

try:  # numpy is optional project-wide
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bakes numpy in
    _np = None

__all__ = ["DeltaFallback", "DeltaOutcome", "maintain_mst"]

#: Integer weights beyond this magnitude are not exactly representable as
#: float64; the vectorized crossing query then switches to the Python scan.
_FLOAT_EXACT_INT = 1 << 53


class DeltaFallback(Exception):
    """Raised when incremental maintenance should yield to a full rebuild."""


@dataclass
class DeltaOutcome:
    """The result of :func:`maintain_mst` for one sparse diff.

    ``mst_edges`` is sorted exactly like :func:`~repro.core.tecss.rooted_mst`
    output; ``tree`` is the parent's :class:`RootedTree` object when
    ``changed_tree`` is false (so every tree-derived artifact can be
    shared) and a freshly rooted tree otherwise.  ``swaps`` records
    ``(removed, added)`` edge pairs for observability.
    """

    changed_tree: bool
    tree: RootedTree
    mst_edges: list[tuple[int, int]]
    swaps: list[tuple[tuple[int, int], tuple[int, int]]] = field(
        default_factory=list
    )


class _CrossingIndex:
    """Full-edge candidate arrays for cut-rule queries, built once per diff.

    The endpoint arrays are immutable for the whole :func:`maintain_mst`
    call; the weight column is patched in place as changes are applied and
    a boolean non-tree mask absorbs each swap in O(1) (flip two entries).
    Queries slice the candidate view out with fancy indexing — O(m) numpy,
    microseconds at ``m ~ 10^4`` — instead of the O(m)-*Python* rebuild a
    per-swap reconstruction would cost.  Only the Euler labels are
    re-extracted when the tree object changes.
    """

    def __init__(
        self,
        handle: GraphHandle,
        weights: "Sequence",
        tset: "set[tuple[int, int]]",
        pair_index: "dict[tuple[int, int], int]",
        use_numpy: bool,
    ) -> None:
        self.edges = handle.edges
        self.tset = tset  # live reference: maintain_mst mutates it on swap
        self.use_numpy = use_numpy
        if use_numpy:
            self.a, self.b = handle._endpoint_arrays
            self.w = _np.fromiter(
                weights, dtype=_np.float64, count=len(self.edges)
            )
            self.nontree = _np.ones(len(self.edges), dtype=bool)
            for key in tset:
                self.nontree[pair_index[key]] = False
            self.tree_obj = None
            self.tin = None
            self.tout = None
            self._pos = None
            self._pos_a = None
            self._pos_b = None

    def bind(self, tree: RootedTree) -> None:
        """Cache the tree's Euler labels as arrays (numpy path only)."""
        if self.use_numpy and self.tree_obj is not tree:
            self.tree_obj = tree
            self.tin = _np.asarray(tree.tin, dtype=_np.int64)
            self.tout = _np.asarray(tree.tout, dtype=_np.int64)

    def update_weight(self, j: int, w: Any) -> None:
        """Patch edge ``j``'s weight after a processed change."""
        if self.use_numpy:
            self.w[j] = w

    def apply_swap(self, out_pos: int, in_pos: int) -> None:
        """Record a swap: ``out_pos`` leaves the tree, ``in_pos`` enters."""
        if self.use_numpy:
            self.nontree[out_pos] = True
            self.nontree[in_pos] = False
            self._pos = None  # candidate view is stale

    def global_min(self, weights: "Sequence") -> "tuple[Any, int] | None":
        """Lex-min ``(weight, position)`` over *all* non-tree edges.

        A lower bound on any crossing query — the cut rule uses it to
        skip the (far costlier) crossing scan whenever even the globally
        lightest non-tree edge cannot beat the changed tree edge.
        """
        if self.use_numpy:
            masked = _np.where(self.nontree, self.w, _np.inf)
            j = int(masked.argmin())  # first occurrence == lex-min
            return (weights[j], j)
        best = None
        for j, (u, v) in enumerate(self.edges):
            if ((u, v) if u < v else (v, u)) in self.tset:
                continue
            cand = (weights[j], j)
            if best is None or cand < best:
                best = cand
        return best

    def min_crossing(
        self, tree: RootedTree, cut_child: int, weights: "Sequence"
    ) -> "int | None":
        """Lex-min ``(weight, position)`` non-tree edge crossing the cut.

        The cut separates ``subtree(cut_child)`` from the rest.  Returns
        the edge position or ``None`` when no candidate crosses.
        """
        if self.use_numpy:
            from repro.fast.kernels import min_weight_crossing

            self.bind(tree)
            if self._pos is None:
                # Endpoints are immutable between swaps; only the weight
                # view is re-sliced per query (weights mutate under us).
                self._pos = _np.flatnonzero(self.nontree)
                self._pos_a = self.a[self._pos]
                self._pos_b = self.b[self._pos]
            k = min_weight_crossing(
                self.tin, self.tout, self._pos_a, self._pos_b,
                self.w[self._pos], cut_child,
            )
            return None if k < 0 else int(self._pos[k])
        best = None
        anc = tree.is_ancestor
        for j, (u, v) in enumerate(self.edges):
            if ((u, v) if u < v else (v, u)) in self.tset:
                continue
            if anc(cut_child, u) != anc(cut_child, v):
                cand = (weights[j], j)
                if best is None or cand < best:
                    best = cand
        return None if best is None else best[1]


def _weights_float_exact(weights: "Iterable") -> bool:
    """Can every weight be compared exactly after a float64 cast?"""
    for w in weights:
        if isinstance(w, float):
            continue
        if -_FLOAT_EXACT_INT <= w <= _FLOAT_EXACT_INT:
            continue
        return False
    return True


def maintain_mst(
    handle: GraphHandle,
    tree: RootedTree,
    mst_edges: list[tuple[int, int]],
    *,
    max_swaps: int | None = None,
) -> DeltaOutcome:
    """Replay ``handle.delta_changes`` over the parent MST (module doc).

    ``tree`` / ``mst_edges`` belong to the plan of ``handle.delta_base``;
    the diff and old weights come from the handle's delta lineage.  Raises
    :class:`DeltaFallback` when the swap budget is exceeded.  When
    tracing is on, the replay runs under a ``delta.maintain`` span
    carrying the change/swap counts (a fallback shows up as its
    ``error`` attribute).
    """
    with obs.span(
        "delta.maintain", changed=len(handle.delta_changes)
    ) as span:
        outcome = _maintain_mst(handle, tree, mst_edges, max_swaps=max_swaps)
        span.set(swaps=len(outcome.swaps), changed_tree=outcome.changed_tree)
    return outcome


def _maintain_mst(
    handle: GraphHandle,
    tree: RootedTree,
    mst_edges: list[tuple[int, int]],
    *,
    max_swaps: int | None = None,
) -> DeltaOutcome:
    """The replay body behind :func:`maintain_mst`."""
    base = handle.delta_base
    if base is None:
        raise DeltaFallback("handle has no delta lineage")
    changes = handle.delta_changes
    edges = handle.edges
    pair_index = handle._pair_index
    n = handle.n
    weights = list(base.weights)
    tset = set(mst_edges)
    cur_tree = tree
    tree_dirty = False
    swaps: list[tuple[tuple[int, int], tuple[int, int]]] = []
    budget = len(changes) if max_swaps is None else max_swaps
    use_numpy = _np is not None and _weights_float_exact(weights)
    crossing: _CrossingIndex | None = None

    def _tree() -> RootedTree:
        # Rebuilt lazily so back-to-back swaps (and a final swap with no
        # rule left to evaluate) never pay for an intermediate rooting.
        nonlocal cur_tree, tree_dirty
        if tree_dirty:
            # sorted(): from_edges assigns DFS/Euler labels in input
            # order, and downstream tie-breaks compare those labels —
            # feeding raw set order here made mid-replay trees (and thus
            # swap choices on ties) vary run to run.
            cur_tree = RootedTree.from_edges(n, sorted(tset), root=0)
            tree_dirty = False
        return cur_tree

    # Lex-max (weight, position) over the current tree edges — an upper
    # bound on every cycle-rule path-max.  Most drift changes fail even
    # this bound (a lightened non-tree edge still heavier than *any*
    # tree edge cannot displace one), so the O(path) walk is skipped for
    # them and only recomputed-on-demand after swaps or max-edge updates.
    tree_max = None

    def _tree_max() -> "tuple[Any, int]":
        nonlocal tree_max
        if tree_max is None:
            tree_max = max(
                (weights[pair_index[key]], pair_index[key]) for key in tset
            )
        return tree_max

    for i in sorted(changes):
        new = changes[i]
        old = weights[i]
        u, v = edges[i]
        key = (u, v) if u < v else (v, u)
        swapped = None
        if key in tset:
            if new > old:
                # Cut rule: the tree edge got heavier; the lightest
                # crossing non-tree edge may replace it.
                if crossing is None:
                    crossing = _CrossingIndex(
                        handle, weights, tset, pair_index, use_numpy
                    )
                floor = crossing.global_min(weights)
                if floor is not None and floor < (new, i):
                    t = _tree()
                    cut_child = u if t.parent[u] == v else v
                    j = crossing.min_crossing(t, cut_child, weights)
                    if j is not None and (weights[j], j) < (new, i):
                        inkey = (
                            (edges[j][0], edges[j][1])
                            if edges[j][0] < edges[j][1]
                            else (edges[j][1], edges[j][0])
                        )
                        swapped = (key, inkey)
        else:
            if new < old and (new, i) < _tree_max():
                # Cycle rule: the non-tree edge got lighter; the heaviest
                # tree edge on its path may fall out.
                t = _tree()
                best = None
                for c in t.path_edges(u, v):
                    te = pair_index[(c, t.parent[c])]
                    cand = (weights[te], te)
                    if best is None or cand > best:
                        best = cand
                if best is not None and (new, i) < best:
                    te = best[1]
                    a, b = edges[te]
                    outkey = (a, b) if a < b else (b, a)
                    swapped = (outkey, key)
        weights[i] = new
        if crossing is not None:
            crossing.update_weight(i, new)
        if key in tset and tree_max is not None:
            # Keep the cycle-rule bound current: a heavier tree edge can
            # raise it in O(1); touching the max edge itself invalidates.
            if (new, i) > tree_max:
                tree_max = (new, i)
            elif i == tree_max[1]:
                tree_max = None
        if swapped is not None:
            if len(swaps) >= budget:
                raise DeltaFallback(
                    f"swap budget exceeded ({budget} swaps)"
                )
            outkey, inkey = swapped
            tset.remove(outkey)
            tset.add(inkey)
            swaps.append(swapped)
            tree_dirty = True
            tree_max = None
            if crossing is not None:
                crossing.apply_swap(pair_index[outkey], pair_index[inkey])

    if not swaps:
        return DeltaOutcome(False, tree, mst_edges, swaps)
    out_edges = sorted(tset)
    # Rebuild exactly as rooted_mst does: from the *sorted* edge list.
    return DeltaOutcome(
        True, RootedTree.from_edges(n, out_edges, root=0), out_edges, swaps
    )
