"""Scenario-batched solving: many weight columns through one kernel pass.

The dominant production traffic shape is one topology × many weight
scenarios (Monte-Carlo what-if sweeps, failure studies).  The scalar path
(:meth:`repro.runtime.session.SolverSession.solve_many`) pays the full
per-scenario pipeline — nx Kruskal, link filtering, instance build, the
forward phase — once per scenario even though almost everything it
computes is a pure function of the *tree*, which scenario perturbations
rarely change.  This module restructures a compatible batch around that:

1. **Columns** — queries are deduplicated by weight column; each distinct
   column gets its MST from :func:`stable_kruskal_mst`, a vectorized
   stable-sort Kruskal over the handle's flat edge arrays that reproduces
   :func:`repro.core.tecss.rooted_mst` edge for edge (same lexicographic
   ``(weight, edge-position)`` tie-break) without materializing an
   ``nx.Graph``.
2. **Tree groups** — columns with the same MST share one *structure*: one
   rooted tree, one link list shape, one virtual-edge structure, one set
   of kernel tree arrays.  The group leader builds them; every other
   column derives its :class:`~repro.core.instance.TAPInstance` by
   patching the weight column alone (the dense generalization of the
   delta path's :meth:`~repro.runtime.plan.SolverPlan._derive_instance`).
3. **One forward pass per group** —
   :func:`repro.fast.forward.forward_phase_fast_batch` runs the epoch
   loop for all of a group's scenarios as ``(scenarios × edges)`` kernel
   calls; reverse-delete, certificates and assembly then run per scenario
   on the scenario's own instance.

Bit-identity: every step either shares an object the scalar path would
have computed (tree, links structure) or re-applies the scalar path's
exact arithmetic on a widened array, so the per-scenario results equal a
looped :meth:`~repro.runtime.session.SolverSession.solve_many` field for
field — held by ``tests/test_scenario_batch.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro import obs
from repro.core.instance import TAPInstance
from repro.core.reverse import COVER_BOUND, reverse_delete
from repro.core.tap import _certificates, assemble_tap_result
from repro.core.tecss import assemble_two_ecss
from repro.fast import require_numpy
from repro.runtime.handle import GraphHandle
from repro.runtime.plan import SolverPlan, _links_from_handle
from repro.trees.rooted import RootedTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.session import SolveQuery, SolverSession

__all__ = ["solve_scenario_group", "stable_kruskal_mst"]


def stable_kruskal_mst(
    handle: GraphHandle, column: Any
) -> list[tuple[int, int]]:
    """The MST edge list of one weight column, without an ``nx.Graph``.

    ``column`` is the handle's weight column as a float64 array aligned
    with ``handle.edges``.  Kruskal's algorithm over
    ``argsort(column, kind="stable")`` visits edges in ascending
    ``(weight, edge-position)`` order — exactly the order
    ``nx.minimum_spanning_tree`` (stable sort over the graph's
    edge-iteration order, which the handle preserves) uses — and the
    accepted edge *set* of Kruskal depends only on that order, not on the
    union-find implementation.  The returned list is sorted normalized
    pairs, matching :func:`repro.core.tecss.rooted_mst` exactly.
    """
    np = require_numpy()
    a, b = handle._endpoint_arrays
    order = np.argsort(np.asarray(column, dtype=np.float64), kind="stable")
    parent = list(range(handle.n))
    size = [1] * handle.n
    chosen: list[tuple[int, int]] = []
    need = handle.n - 1
    for pos in order.tolist():
        ru = int(a[pos])
        while parent[ru] != ru:
            parent[ru] = parent[parent[ru]]
            ru = parent[ru]
        rv = int(b[pos])
        while parent[rv] != rv:
            parent[rv] = parent[parent[rv]]
            rv = parent[rv]
        if ru == rv:
            continue
        if size[ru] < size[rv]:
            ru, rv = rv, ru
        parent[rv] = ru
        size[ru] += size[rv]
        u, v = int(a[pos]), int(b[pos])
        chosen.append((u, v) if u < v else (v, u))
        if len(chosen) == need:
            break
    chosen.sort()
    return chosen


@dataclass
class _TreeGroup:
    """Shared structure for the scenarios whose MST is one given tree."""

    tree: RootedTree
    mst_edges: list[tuple[int, int]]
    leader_plan: SolverPlan | None = None
    link_pos: Any = None  # handle edge position of each link (int64)
    #: ``(scenario_index, plan, instance)`` triples, group insertion order.
    members: list[tuple[int, SolverPlan, TAPInstance]] = field(
        default_factory=list
    )


def _seed_plan(handle: GraphHandle, group: _TreeGroup) -> SolverPlan:
    """A plan for ``handle`` seeded with the group's already-known MST.

    Mirrors what :meth:`SolverPlan.from_delta` seeds after a reused-tree
    maintenance run: the shared tree object, the in-order MST weight sum
    (same weight objects, same order — bit-identical to the lazy
    ``mst_weight``), and a links builder over the handle's flat arrays.
    """
    plan = SolverPlan(handle)
    plan.__dict__["_mst"] = (group.tree, group.mst_edges)
    pair_index = handle._pair_index
    plan.__dict__["mst_weight"] = sum(
        handle.weights[pair_index[e]] for e in group.mst_edges
    )
    mst_set = set(group.mst_edges)
    plan._links_builder = lambda: _links_from_handle(handle, mst_set)
    return plan


def _group_instance(
    plan: SolverPlan, group: _TreeGroup, column64: Any
) -> TAPInstance:
    """The plan's fast instance, derived from the group leader when possible.

    The first plan of a group builds the full structure (virtual-edge
    columns, layering, HLD, segments, kernel arrays) and becomes the
    leader; later plans clone it with only the weight column rewritten —
    the same derivation :meth:`SolverPlan._derive_instance` performs for
    sparse deltas, generalized to a whole-column patch via the leader's
    link-position array (``weights64[link_pos]`` equals the ``float()``
    casts of a fresh link build, value for value).
    """
    from repro.core.virtual_graph import VirtualEdgeColumns

    np = require_numpy()
    if group.leader_plan is None:
        group.leader_plan = plan
        inst = plan.instance("fast")
        # Touch the lazy structure artifacts once so every derived
        # scenario shares them instead of rebuilding per scenario.
        inst.layering
        inst.hld
        inst.segments
        group.link_pos = np.asarray(plan._link_edge_pos, dtype=np.int64)
        return inst
    leader_inst = group.leader_plan.instance("fast")
    cols = leader_inst.edges
    if not isinstance(cols, VirtualEdgeColumns):  # pragma: no cover - guard
        raise TypeError("scenario derivation needs fast-backend columns")
    link_w = column64[group.link_pos]
    edges = VirtualEdgeColumns(
        cols.dec, cols.anc, link_w[cols.link_of], cols.link_of,
        cols._links, cols._origins,
    )
    inst = TAPInstance(leader_inst.tree, edges, leader_inst.segment_size)
    inst.__dict__["arrays"] = leader_inst.arrays.reweighted(edges.weight)
    for name in ("layering", "hld", "segments"):
        if name in leader_inst.__dict__:
            inst.__dict__[name] = leader_inst.__dict__[name]
    plan._instances["fast"] = inst
    plan.instance_builds += 1
    return inst


def solve_scenario_group(
    session: "SolverSession",
    queries: "Sequence[SolveQuery]",
    eps: float,
    variant: str,
    segmented: bool,
    validate: bool,
) -> list[Any]:
    """Solve one compatible scenario group through the batched kernels.

    ``queries`` share ``eps``/``variant``/``segmented``/``validate``, the
    local engine, ``k=2``, the fast compute flavor, and carry no failure
    plans — :meth:`SolverSession.solve_batch_vectorized` enforces that
    before calling here.  Results come back aligned with ``queries`` and
    bit-identical to the scalar path.
    """
    from repro.fast.forward import forward_phase_fast_batch

    if variant not in COVER_BOUND:
        raise ValueError(f"variant must be one of {sorted(COVER_BOUND)}")
    np = require_numpy()
    base = session.handle

    # Deduplicate queries by weight column: identical columns share one
    # scenario (and therefore one MST check, one instance, one solve).
    handles: list[GraphHandle] = []
    scenario_of: list[int] = []
    seen: dict[tuple, int] = {}
    for query in queries:
        handle = (
            base if query.weights is None else base.reweight(query.weights)
        )
        at = seen.get(handle.weights)
        if at is None:
            at = len(handles)
            seen[handle.weights] = at
            handles.append(handle)
        scenario_of.append(at)

    # Group scenarios by MST.  A full Kruskal per scenario is the fallback;
    # when a column differs from the session's base column only by edges
    # whose change cannot move them across the tree boundary — non-tree
    # edges that got no cheaper, tree edges that got no dearer — the base
    # MST is provably the column's stable-Kruskal output and is reused.
    # (Worsening a rejected edge only moves it later in the stable order,
    # past edges that already connected its endpoints; improving an
    # accepted edge moves it earlier without creating a cycle among the
    # other accepted edges.  Either way every accept/reject decision is
    # unchanged.)  Monte-Carlo sweeps perturb a handful of edges per
    # scenario, so this turns the grouping stage from O(scenarios * m)
    # union-finds into O(scenarios) vector compares.
    base_col = np.asarray(base.weights, dtype=np.float64)
    base_mst = stable_kruskal_mst(base, base_col)
    base_in_tree = np.zeros(base.m, dtype=bool)
    edge_pos = {e: i for i, e in enumerate(base.edges)}
    for e in base_mst:
        base_in_tree[edge_pos[e]] = True

    groups: dict[tuple, _TreeGroup] = {}
    with obs.span("batch.group", scenarios=len(handles)) as group_span:
        for idx, handle in enumerate(handles):
            column64 = np.asarray(handle.weights, dtype=np.float64)
            diff = np.flatnonzero(column64 != base_col)
            if bool(
                np.all(
                    np.where(
                        base_in_tree[diff],
                        column64[diff] <= base_col[diff],
                        column64[diff] >= base_col[diff],
                    )
                )
            ):
                mst_edges = base_mst
            else:
                mst_edges = stable_kruskal_mst(handle, column64)
            tree_key = tuple(mst_edges)
            group = groups.get(tree_key)
            if group is None:
                group = _TreeGroup(
                    tree=RootedTree.from_edges(handle.n, mst_edges, root=0),
                    mst_edges=mst_edges,
                )
                groups[tree_key] = group
            plan = _seed_plan(handle, group)
            inst = _group_instance(plan, group, column64)
            group.members.append((idx, plan, inst))
        group_span.set(trees=len(groups))

    # One batched forward pass per tree group, then per-scenario
    # reverse-delete + certificates + assembly — the exact body of
    # solve_virtual_tap / _solve_local with the forward phase hoisted.
    c = COVER_BOUND[variant]
    eps_prime = eps / c
    certs = _certificates("fast")
    scenario_results: list[Any] = [None] * len(handles)
    for group in groups.values():
        with obs.span("batch.forward", scenarios=len(group.members)):
            fwds = forward_phase_fast_batch(
                [inst for _, _, inst in group.members], eps=eps_prime
            )
        # Label-map the group's (shared) MST once; every scenario result
        # reuses the list (read-only by convention, like the shared tree).
        nodes = group.members[0][1].nodes
        mst_out = [(nodes[u], nodes[v]) for u, v in group.mst_edges]
        with obs.span("batch.tails", scenarios=len(group.members)):
            for (idx, plan, inst), fwd in zip(group.members, fwds):
                rev = reverse_delete(
                    inst, fwd, variant=variant, segmented=segmented,
                    validate=validate, backend="fast",
                )
                if validate:
                    certs.validate_dual_feasibility(inst, fwd.y, eps_prime)
                    certs.validate_tightness(inst, fwd.y, rev.b)
                    certs.validate_cover(inst, rev.b)
                    certs.validate_coverage_bound(inst, fwd.y, rev.b, c)
                tap = assemble_tap_result(
                    inst, fwd, rev, eps=eps, variant=variant,
                    segmented=segmented, validate=validate, backend="fast",
                )
                scenario_results[idx] = assemble_two_ecss(
                    plan.g if validate else None,
                    plan.nodes, plan.mst_edges, tap,
                    validate=validate, mst_simulation=None,
                    diameter=plan.diameter, mst_weight=plan.mst_weight,
                    n=plan.handle.n, mst_edges_out=mst_out,
                )
    return [scenario_results[at] for at in scenario_of]
