"""Immutable CSR-backed graph handles: validate and normalize **once**.

A :class:`GraphHandle` is the runtime layer's view of one input graph.  It
performs, exactly once per topology, everything
:func:`repro.core.tecss.approximate_two_ecss` used to redo on every call:

* weight validation (:func:`repro.graphs.validation.ensure_weights`),
* the feasibility check
  (:func:`repro.graphs.validation.check_two_edge_connected`),
* normalization to ``0..n-1`` integer labels
  (:func:`repro.graphs.validation.normalize_graph`),

and stores the result in flat edge arrays — ``edges`` (the normalized
endpoint pairs, in the input graph's iteration order, which downstream
tie-breaks depend on) plus a ``weights`` tuple aligned with them, with a
CSR adjacency view (:attr:`csr`) built lazily for array kernels.  The
handle is *immutable*: :meth:`reweight` returns a **new** handle sharing
the topology (and every topology-derived cache, e.g. :attr:`diameter` and
the feasibility verdict) while swapping only the weight column — the cheap
operation that makes many-scenario solves
(:meth:`repro.runtime.session.SolverSession.solve_many`) practical.

Fingerprints: :attr:`topology_key` identifies the (labels, edge list)
structure and :attr:`weights_key` the weight column; together they key the
per-weights :class:`~repro.runtime.plan.SolverPlan` cache.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Any, Mapping, Sequence

import networkx as nx

from repro.exceptions import GraphFormatError
from repro.graphs.validation import (
    check_two_edge_connected,
    ensure_weights,
    normalize_graph,
)

try:  # numpy is optional project-wide; the CSR view degrades to lists
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bakes numpy in
    _np = None

__all__ = ["GraphHandle"]


def _canonical_weight(w: Any) -> Any:
    """Collapse ``-0.0`` to ``0.0`` for fingerprinting (see weights_key).

    Only floats are touched: an integer ``0`` stays an integer because the
    weight's Python type propagates into result types, so ``0`` and ``0.0``
    are genuinely different weight columns.
    """
    return 0.0 if isinstance(w, float) and w == 0.0 else w


class GraphHandle:
    """One validated, normalized, immutable weighted graph (see module doc).

    Build with :meth:`from_graph`; derive weight variants with
    :meth:`reweight`.  Handles sharing a topology share the same
    :attr:`topology_key` and the same topology-derived caches.
    """

    def __init__(
        self,
        n: int,
        nodes: list,
        index: dict,
        edges: list[tuple[int, int]],
        weights: tuple[float, ...],
        topology_key: str | None = None,
    ) -> None:
        self.n = n
        self.nodes = nodes  # normalized id -> original label
        self.index = index  # original label -> normalized id
        self.edges = edges  # normalized (u, v) pairs, input iteration order
        self.weights = weights
        self._topology_key = topology_key
        #: Topology-derived caches (:attr:`diameter`, :attr:`_pair_index`,
        #: :attr:`_endpoint_arrays`), shared *by reference* with every
        #: :meth:`reweight` clone: whichever handle computes one first,
        #: all handles on the topology see it.  (Copying computed entries
        #: at clone time instead would lose work computed on a clone
        #: afterwards — a 100-scenario sweep would re-derive the diameter
        #: per scenario.)
        self._shared: dict[str, Any] = {}
        #: For handles built by :meth:`reweight_delta`: the parent handle
        #: and the effective diff ``{edge_position: new_weight}``.  ``None``
        #: / empty for handles with no recorded delta lineage.
        self.delta_base: GraphHandle | None = None
        self.delta_changes: dict[int, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "GraphHandle":
        """Validate, check 2-edge-connectivity, and normalize ``graph``.

        Raises exactly what the one-shot solvers raise on bad input
        (:class:`~repro.exceptions.GraphFormatError`,
        :class:`~repro.exceptions.NotConnectedError`,
        :class:`~repro.exceptions.NotTwoEdgeConnectedError`) — but only
        once per topology instead of once per solve.
        """
        ensure_weights(graph)
        check_two_edge_connected(graph)
        g, nodes, index = normalize_graph(graph)
        edges = []
        weights = []
        for u, v, data in graph.edges(data=True):
            edges.append((index[u], index[v]))
            # Keep the caller's weight objects (ints stay ints), exactly
            # as normalize_graph does — the one-shot API's result types
            # must not change because a session sits underneath it.
            weights.append(data["weight"])
        handle = cls(len(nodes), nodes, index, edges, tuple(weights))
        # normalize_graph already built the normalized graph (with every
        # edge attribute); seed the cache instead of rebuilding it later.
        handle.__dict__["graph"] = g
        return handle

    def reweight(
        self,
        weights: Sequence[float] | Mapping[object, float],
    ) -> "GraphHandle":
        """A new handle on the same topology with a new weight column.

        ``weights`` is either a sequence aligned with :attr:`edge_list`
        (one float per edge, in handle order) or a mapping from edge keys
        to floats — keys may use the original node labels or the
        normalized ids, in either endpoint order.  Weights must satisfy
        the same rule as :func:`~repro.graphs.validation.ensure_weights`
        (``w >= 0``); topology-derived caches (diameter, feasibility) are
        shared with this handle, so no re-validation happens.
        """
        if isinstance(weights, Mapping):
            column = self._column_from_mapping(weights)
        else:
            column = list(weights)
            if len(column) != len(self.edges):
                raise GraphFormatError(
                    f"reweight needs {len(self.edges)} weights "
                    f"(one per edge); got {len(column)}"
                )
        # Fast C-speed scan first; only a failing column pays the
        # per-edge diagnostic loop that names the offending edge.  ``min``
        # catches negatives, the sum's self-comparison catches NaN (which
        # ``min`` can miss mid-sequence); non-negative floats cannot sum
        # to NaN otherwise.  A non-numeric weight raises TypeError from
        # the arithmetic, as the comparison did before.
        total = sum(column)
        if not (min(column) >= 0 and total == total):
            for (u, v), w in zip(self.edges, column):
                if not (w >= 0):
                    raise GraphFormatError(
                        f"edge ({self.nodes[u]!r}, {self.nodes[v]!r}) has "
                        f"invalid weight {w!r}"
                    )
        return self._clone_with_column(column)

    def reweight_delta(self, changed: Mapping) -> "GraphHandle":
        """A new handle applying a *sparse* weight diff against this one.

        ``changed`` maps edge keys — original labels or normalized ids, in
        either endpoint order, all-or-nothing like :meth:`reweight` — to
        new weights; every key must name an edge of this topology.  The
        returned handle shares the topology caches, carries the full
        patched weight column, and records the diff (:attr:`delta_base`,
        :attr:`delta_changes`) so the plan layer can derive artifacts
        incrementally instead of rebuilding.  Entries equal to the current
        weight (same value *and* repr, so ``5 -> 5.0`` and ``0.0 -> -0.0``
        still count as changes) are dropped; if nothing effectively
        changes, ``self`` is returned unchanged.

        The fingerprint of the result is derived by patching this handle's
        per-element repr cache in O(k) instead of re-repring the whole
        column, and equals the from-scratch content fingerprint — so a
        delta and its equivalent full-column reweight hit the same cached
        plan.
        """
        if not isinstance(changed, Mapping):
            raise GraphFormatError(
                "reweight_delta needs a mapping {edge: new_weight}; for a "
                "full column use reweight()"
            )
        changes = self._resolve_sparse_mapping(changed)
        for i, w in changes.items():
            if not (w >= 0):
                u, v = self.edges[i]
                raise GraphFormatError(
                    f"edge ({self.nodes[u]!r}, {self.nodes[v]!r}) has "
                    f"invalid weight {w!r}"
                )
        changes = {
            i: w for i, w in changes.items()
            if repr(w) != repr(self.weights[i])
        }
        if not changes:
            return self
        column = list(self.weights)
        for i, w in changes.items():
            column[i] = w
        clone = self._clone_with_column(column)
        clone.delta_base = self
        clone.delta_changes = changes
        # Patch the parent's per-element repr cache in O(k): the clone's
        # weights_key is then the exact content fingerprint — identical to
        # a from-scratch handle with the same column — without re-repring
        # the whole column.
        reprs = list(self._weight_reprs)
        for i, w in changes.items():
            reprs[i] = repr(_canonical_weight(w))
        clone.__dict__["_weight_reprs"] = reprs
        return clone

    def _clone_with_column(self, column: list) -> "GraphHandle":
        """A new handle with ``column`` as weights, sharing topology caches."""
        clone = GraphHandle(
            self.n, self.nodes, self.index, self.edges, tuple(column),
            topology_key=self.topology_key,
        )
        # Topology-derived caches are shared by reference (see __init__),
        # so work done on any clone benefits every handle on the topology.
        clone._shared = self._shared
        return clone

    def _column_from_mapping(self, mapping: Mapping) -> list[float]:
        """Resolve a mapping keyed by edge (labels or ids) to handle order.

        All-or-nothing: the mapping is interpreted under original labels
        first, then under normalized ids — never mixing the two per edge.
        (Integer labels can collide with normalized ids; a per-edge
        fallback would silently bind weights to the wrong edges.)  An edge
        supplied under *both* endpoint orders with numerically different
        values is ambiguous and raises :class:`GraphFormatError` (which is
        a ``ValueError``) instead of silently picking one order.
        """
        interpretations = (
            lambda u, v: (self.nodes[u], self.nodes[v]),  # original labels
            lambda u, v: (u, v),  # normalized ids
        )
        for keyer in interpretations:
            column = []
            for u, v in self.edges:
                a, b = keyer(u, v)
                fwd = (a, b) in mapping
                rev = (a, b) != (b, a) and (b, a) in mapping
                if fwd and rev and mapping[(a, b)] != mapping[(b, a)]:
                    raise GraphFormatError(
                        f"reweight mapping supplies edge ({a!r}, {b!r}) "
                        f"under both key orders with different values "
                        f"({mapping[(a, b)]!r} vs {mapping[(b, a)]!r})"
                    )
                if fwd:
                    column.append(mapping[(a, b)])
                elif rev:
                    column.append(mapping[(b, a)])
                else:
                    break  # this interpretation misses an edge: try next
            else:
                return column
        raise GraphFormatError(
            "reweight mapping does not cover every edge under either key "
            "scheme (use original labels or normalized ids, not a mixture)"
        )

    def _resolve_sparse_mapping(self, changed: Mapping) -> dict[int, object]:
        """Resolve sparse ``{edge: weight}`` keys to handle edge positions.

        Mirrors :meth:`_column_from_mapping`'s all-or-nothing key schemes:
        every key must resolve under original labels, or every key under
        normalized ids.  Both endpoint orders are accepted; supplying the
        same edge twice with numerically different values raises
        :class:`GraphFormatError`.
        """
        pair_index = self._pair_index
        label_miss = None
        for scheme in ("labels", "ids"):
            out: dict[int, object] = {}
            ok = True
            for key, w in changed.items():
                try:
                    a, b = key
                except (TypeError, ValueError):
                    raise GraphFormatError(
                        f"reweight_delta keys must be edge pairs; got {key!r}"
                    ) from None
                if scheme == "labels":
                    try:
                        pair = (self.index[a], self.index[b])
                    except (KeyError, TypeError):
                        ok = False
                        break
                else:
                    if not (isinstance(a, int) and isinstance(b, int)):
                        ok = False
                        break
                    pair = (a, b)
                i = pair_index.get(pair)
                if i is None:
                    ok = False
                    if scheme == "labels":
                        label_miss = key
                    break
                if i in out and out[i] != w:
                    raise GraphFormatError(
                        f"reweight_delta supplies edge {key!r} under both "
                        f"key orders with different values "
                        f"({out[i]!r} vs {w!r})"
                    )
                out[i] = w
            if ok:
                return out
        raise GraphFormatError(
            f"reweight_delta mapping has keys that are not edges of this "
            f"topology under either key scheme (first miss: "
            f"{label_miss if label_miss is not None else key!r})"
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.edges)

    @property
    def edge_list(self) -> list[tuple]:
        """Edges in the original node labels, handle order (for reweight)."""
        return [(self.nodes[u], self.nodes[v]) for u, v in self.edges]

    @cached_property
    def graph(self) -> nx.Graph:
        """The normalized ``0..n-1`` weighted graph.

        For a handle built by :meth:`from_graph` this is exactly the
        graph :func:`~repro.graphs.validation.normalize_graph` produced
        (seeded at construction, every edge attribute preserved);
        reweighted handles materialize it lazily with the new ``weight``
        column.  Edge insertion order always matches the original input,
        which downstream code depends on for deterministic tie-breaking —
        do not mutate.
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for (u, v), w in zip(self.edges, self.weights):
            g.add_edge(u, v, weight=w)
        return g

    @cached_property
    def csr(self) -> tuple[Any, Any, Any]:
        """CSR adjacency ``(indptr, indices, weights)`` over normalized ids.

        numpy arrays when numpy is importable, plain lists otherwise —
        the array view the batched kernels and future sharding layers
        consume without touching networkx.
        """
        degree = [0] * self.n
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        indptr = [0] * (self.n + 1)
        for v in range(self.n):
            indptr[v + 1] = indptr[v] + degree[v]
        cursor = list(indptr[:-1])
        indices = [0] * (2 * len(self.edges))
        wvals = [0.0] * (2 * len(self.edges))
        for (u, v), w in zip(self.edges, self.weights):
            indices[cursor[u]] = v
            wvals[cursor[u]] = w
            cursor[u] += 1
            indices[cursor[v]] = u
            wvals[cursor[v]] = w
            cursor[v] += 1
        if _np is not None:
            return (
                _np.asarray(indptr, dtype=_np.int64),
                _np.asarray(indices, dtype=_np.int64),
                _np.asarray(wvals, dtype=_np.float64),
            )
        return indptr, indices, wvals

    @property
    def _endpoint_arrays(self) -> tuple[Any, Any]:
        """``(a, b)`` int64 endpoint columns over handle edge order.

        Topology-only (shared by reference across reweights via
        :attr:`_shared`); consumed by the swap-edge maintenance of
        :mod:`repro.runtime.delta` and the batched-scenario MST check of
        :mod:`repro.runtime.batch`.  Requires numpy — callers gate on its
        availability.
        """
        arrays = self._shared.get("endpoint_arrays")
        if arrays is None:
            m = len(self.edges)
            arrays = (
                _np.fromiter((e[0] for e in self.edges), dtype=_np.int64,
                             count=m),
                _np.fromiter((e[1] for e in self.edges), dtype=_np.int64,
                             count=m),
            )
            self._shared["endpoint_arrays"] = arrays
        return arrays

    @property
    def diameter(self) -> int:
        """Graph diameter when ``n <= 4000``, else ``-1`` (topology-only).

        Matches the rule of
        :func:`repro.core.tecss.assemble_two_ecss` and is shared by
        reference across :meth:`reweight` variants — the single biggest
        rebuild cost the session amortizes on mid-size graphs.  Any handle
        on the topology may compute it; all of them then see it.
        """
        d = self._shared.get("diameter")
        if d is None:
            d = nx.diameter(self.graph) if self.n <= 4000 else -1
            self._shared["diameter"] = d
        return int(d)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def topology_key(self) -> str:
        """SHA-1 fingerprint of (n, labels, edge list) — weight-free."""
        if self._topology_key is None:
            h = hashlib.sha1()
            h.update(repr((self.n, self.nodes)).encode())
            h.update(repr(self.edges).encode())
            self._topology_key = h.hexdigest()
        return self._topology_key

    @cached_property
    def weights_key(self) -> str:
        """SHA-1 fingerprint of the weight column (plan-cache key part).

        Hashed over the *canonical* column: ``-0.0`` collapses to ``0.0``
        (numerically equal weights must not produce distinct cache keys,
        and ``repr``-hashing would otherwise tell them apart), while the
        int/float distinction is preserved because weight types propagate
        into result types.  NaN weights never reach this point — handle
        validation (:func:`~repro.graphs.validation.ensure_weights`,
        :meth:`reweight`, :meth:`reweight_delta`) rejects them, so a NaN's
        unequal-to-itself semantics cannot poison the plan cache.

        The hash runs over the per-element repr cache
        (:attr:`_weight_reprs`), which :meth:`reweight_delta` patches in
        O(k) — so a delta-built handle fingerprints in O(join) instead of
        O(m reprs), yet the key is a pure *content* fingerprint: any two
        handles with the same canonical column get the same key, however
        they were built.
        """
        joined = ", ".join(self._weight_reprs)
        return hashlib.sha1(joined.encode()).hexdigest()

    @cached_property
    def _weight_reprs(self) -> list[str]:
        """Per-element canonical weight reprs backing :attr:`weights_key`."""
        return [repr(_canonical_weight(w)) for w in self.weights]

    @property
    def _pair_index(self) -> dict[tuple[int, int], int]:
        """Normalized endpoint pair (either order) -> handle edge position.

        Topology-derived; shared by reference across :meth:`reweight` /
        :meth:`reweight_delta` clones like :attr:`diameter`.
        """
        out = self._shared.get("pair_index")
        if out is None:
            out = {}
            for i, (u, v) in enumerate(self.edges):
                out[(u, v)] = i
                out[(v, u)] = i
            self._shared["pair_index"] = out
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphHandle(n={self.n}, m={self.m}, "
            f"topology={self.topology_key[:8]}, weights={self.weights_key[:8]})"
        )
