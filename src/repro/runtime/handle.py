"""Immutable CSR-backed graph handles: validate and normalize **once**.

A :class:`GraphHandle` is the runtime layer's view of one input graph.  It
performs, exactly once per topology, everything
:func:`repro.core.tecss.approximate_two_ecss` used to redo on every call:

* weight validation (:func:`repro.graphs.validation.ensure_weights`),
* the feasibility check
  (:func:`repro.graphs.validation.check_two_edge_connected`),
* normalization to ``0..n-1`` integer labels
  (:func:`repro.graphs.validation.normalize_graph`),

and stores the result in flat edge arrays — ``edges`` (the normalized
endpoint pairs, in the input graph's iteration order, which downstream
tie-breaks depend on) plus a ``weights`` tuple aligned with them, with a
CSR adjacency view (:attr:`csr`) built lazily for array kernels.  The
handle is *immutable*: :meth:`reweight` returns a **new** handle sharing
the topology (and every topology-derived cache, e.g. :attr:`diameter` and
the feasibility verdict) while swapping only the weight column — the cheap
operation that makes many-scenario solves
(:meth:`repro.runtime.session.SolverSession.solve_many`) practical.

Fingerprints: :attr:`topology_key` identifies the (labels, edge list)
structure and :attr:`weights_key` the weight column; together they key the
per-weights :class:`~repro.runtime.plan.SolverPlan` cache.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Mapping, Sequence

import networkx as nx

from repro.exceptions import GraphFormatError
from repro.graphs.validation import (
    check_two_edge_connected,
    ensure_weights,
    normalize_graph,
)

try:  # numpy is optional project-wide; the CSR view degrades to lists
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bakes numpy in
    _np = None

__all__ = ["GraphHandle"]


class GraphHandle:
    """One validated, normalized, immutable weighted graph (see module doc).

    Build with :meth:`from_graph`; derive weight variants with
    :meth:`reweight`.  Handles sharing a topology share the same
    :attr:`topology_key` and the same topology-derived caches.
    """

    def __init__(
        self,
        n: int,
        nodes: list,
        index: dict,
        edges: list[tuple[int, int]],
        weights: tuple[float, ...],
        topology_key: str | None = None,
    ) -> None:
        self.n = n
        self.nodes = nodes  # normalized id -> original label
        self.index = index  # original label -> normalized id
        self.edges = edges  # normalized (u, v) pairs, input iteration order
        self.weights = weights
        self._topology_key = topology_key

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "GraphHandle":
        """Validate, check 2-edge-connectivity, and normalize ``graph``.

        Raises exactly what the one-shot solvers raise on bad input
        (:class:`~repro.exceptions.GraphFormatError`,
        :class:`~repro.exceptions.NotConnectedError`,
        :class:`~repro.exceptions.NotTwoEdgeConnectedError`) — but only
        once per topology instead of once per solve.
        """
        ensure_weights(graph)
        check_two_edge_connected(graph)
        g, nodes, index = normalize_graph(graph)
        edges = []
        weights = []
        for u, v, data in graph.edges(data=True):
            edges.append((index[u], index[v]))
            # Keep the caller's weight objects (ints stay ints), exactly
            # as normalize_graph does — the one-shot API's result types
            # must not change because a session sits underneath it.
            weights.append(data["weight"])
        handle = cls(len(nodes), nodes, index, edges, tuple(weights))
        # normalize_graph already built the normalized graph (with every
        # edge attribute); seed the cache instead of rebuilding it later.
        handle.__dict__["graph"] = g
        return handle

    def reweight(
        self,
        weights: Sequence[float] | Mapping[object, float],
    ) -> "GraphHandle":
        """A new handle on the same topology with a new weight column.

        ``weights`` is either a sequence aligned with :attr:`edge_list`
        (one float per edge, in handle order) or a mapping from edge keys
        to floats — keys may use the original node labels or the
        normalized ids, in either endpoint order.  Weights must satisfy
        the same rule as :func:`~repro.graphs.validation.ensure_weights`
        (``w >= 0``); topology-derived caches (diameter, feasibility) are
        shared with this handle, so no re-validation happens.
        """
        if isinstance(weights, Mapping):
            column = self._column_from_mapping(weights)
        else:
            column = list(weights)
            if len(column) != len(self.edges):
                raise GraphFormatError(
                    f"reweight needs {len(self.edges)} weights "
                    f"(one per edge); got {len(column)}"
                )
        for (u, v), w in zip(self.edges, column):
            if not (w >= 0):
                raise GraphFormatError(
                    f"edge ({self.nodes[u]!r}, {self.nodes[v]!r}) has "
                    f"invalid weight {w!r}"
                )
        clone = GraphHandle(
            self.n, self.nodes, self.index, self.edges, tuple(column),
            topology_key=self.topology_key,
        )
        # Topology-derived caches carry over untouched.
        if "diameter" in self.__dict__:
            clone.__dict__["diameter"] = self.__dict__["diameter"]
        return clone

    def _column_from_mapping(self, mapping: Mapping) -> list[float]:
        """Resolve a mapping keyed by edge (labels or ids) to handle order.

        All-or-nothing: the mapping is interpreted under original labels
        first, then under normalized ids — never mixing the two per edge.
        (Integer labels can collide with normalized ids; a per-edge
        fallback would silently bind weights to the wrong edges.)
        """
        interpretations = (
            lambda u, v: (self.nodes[u], self.nodes[v]),  # original labels
            lambda u, v: (u, v),  # normalized ids
        )
        for keyer in interpretations:
            column = []
            for u, v in self.edges:
                a, b = keyer(u, v)
                if (a, b) in mapping:
                    column.append(mapping[(a, b)])
                elif (b, a) in mapping:
                    column.append(mapping[(b, a)])
                else:
                    break  # this interpretation misses an edge: try next
            else:
                return column
        raise GraphFormatError(
            "reweight mapping does not cover every edge under either key "
            "scheme (use original labels or normalized ids, not a mixture)"
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.edges)

    @property
    def edge_list(self) -> list[tuple]:
        """Edges in the original node labels, handle order (for reweight)."""
        return [(self.nodes[u], self.nodes[v]) for u, v in self.edges]

    @cached_property
    def graph(self) -> nx.Graph:
        """The normalized ``0..n-1`` weighted graph.

        For a handle built by :meth:`from_graph` this is exactly the
        graph :func:`~repro.graphs.validation.normalize_graph` produced
        (seeded at construction, every edge attribute preserved);
        reweighted handles materialize it lazily with the new ``weight``
        column.  Edge insertion order always matches the original input,
        which downstream code depends on for deterministic tie-breaking —
        do not mutate.
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for (u, v), w in zip(self.edges, self.weights):
            g.add_edge(u, v, weight=w)
        return g

    @cached_property
    def csr(self):
        """CSR adjacency ``(indptr, indices, weights)`` over normalized ids.

        numpy arrays when numpy is importable, plain lists otherwise —
        the array view the batched kernels and future sharding layers
        consume without touching networkx.
        """
        degree = [0] * self.n
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        indptr = [0] * (self.n + 1)
        for v in range(self.n):
            indptr[v + 1] = indptr[v] + degree[v]
        cursor = list(indptr[:-1])
        indices = [0] * (2 * len(self.edges))
        wvals = [0.0] * (2 * len(self.edges))
        for (u, v), w in zip(self.edges, self.weights):
            indices[cursor[u]] = v
            wvals[cursor[u]] = w
            cursor[u] += 1
            indices[cursor[v]] = u
            wvals[cursor[v]] = w
            cursor[v] += 1
        if _np is not None:
            return (
                _np.asarray(indptr, dtype=_np.int64),
                _np.asarray(indices, dtype=_np.int64),
                _np.asarray(wvals, dtype=_np.float64),
            )
        return indptr, indices, wvals

    @cached_property
    def diameter(self) -> int:
        """Graph diameter when ``n <= 4000``, else ``-1`` (topology-only).

        Matches the rule of
        :func:`repro.core.tecss.assemble_two_ecss` and is shared across
        :meth:`reweight` variants — the single biggest rebuild cost the
        session amortizes on mid-size graphs.
        """
        return nx.diameter(self.graph) if self.n <= 4000 else -1

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def topology_key(self) -> str:
        """SHA-1 fingerprint of (n, labels, edge list) — weight-free."""
        if self._topology_key is None:
            h = hashlib.sha1()
            h.update(repr((self.n, self.nodes)).encode())
            h.update(repr(self.edges).encode())
            self._topology_key = h.hexdigest()
        return self._topology_key

    @cached_property
    def weights_key(self) -> str:
        """SHA-1 fingerprint of the weight column (plan-cache key part)."""
        return hashlib.sha1(repr(self.weights).encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphHandle(n={self.n}, m={self.m}, "
            f"topology={self.topology_key[:8]}, weights={self.weights_key[:8]})"
        )
