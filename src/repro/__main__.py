"""Command-line entry point.

    python -m repro demo                # run the headline algorithm once
    python -m repro experiments [ids]   # regenerate experiment tables
    python -m repro figures             # regenerate the paper's figures
    python -m repro sweep [options]     # parallel family x size x eps sweep
    python -m repro backends [--json]   # list registered execution backends
    python -m repro serve [options]     # run the async batching solve service
    python -m repro loadgen [options]   # drive a server with zipf traffic
    python -m repro bench report        # benchmark trends from bench_history/

``experiments`` with no ids runs the full E1..E13 suite (minutes); with ids
(e.g. ``e05 e11``) only those.  Tables are written to ``benchmarks/out/``
and echoed to stdout.

``sweep`` fans a grid of 2-ECSS runs across a process pool with on-disk
caching (see ``python -m repro sweep --help``); with the default
``--backend fast`` the vectorized kernels make 20k-node cells practical:

    python -m repro sweep --families grid,erdos_renyi --sizes 2000,20000 \\
        --eps 0.25,0.5 --seeds 1,2 --workers 4

``sweep --engine sim`` runs every cell as the full message-level pipeline
on the CONGEST engine (small sizes; identical solutions) and adds
measured-vs-priced round columns to the report:

    python -m repro sweep --engine sim --families grid,cycle_chords \\
        --sizes 30,60 --seeds 1,2

``serve`` boots the batching JSON-over-HTTP solver service
(``repro.serve``); ``loadgen`` drives one with zipf-skewed solve traffic
(``--spawn`` boots its own ephemeral server first — the CI smoke path):

    python -m repro serve --port 8421 --workers 2
    python -m repro loadgen --duration 10 --spawn --check

``demo --trace out.json`` dumps the run's span tree as Chrome trace
events (load in ``chrome://tracing`` or Perfetto).  ``bench report``
renders per-benchmark metric trends from the ``bench_history/*.jsonl``
append logs; ``--check`` exits 1 when the latest sample regresses more
than the threshold against the rolling median of prior runs — the CI
regression gate:

    python -m repro bench report --check --threshold 0.2

Every subcommand exits 0 on success and 2 on usage errors (unknown
subcommand, invalid arguments), with a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as E
from repro.analysis.tables import format_table, write_report

EXPERIMENTS = {
    "e01": ("e01_tecss_approx", E.e01_tecss_approx),
    "e02": ("e02_round_complexity", E.e02_round_complexity),
    "e03": ("e03_tap_on_gprime", E.e03_tap_approx),
    "e03b": ("e03_tap_vs_milp", E.e03_tap_vs_milp),
    "e04": ("e04_ablation_c4_vs_c2", E.e04_ablation),
    "e05": ("e05_layering", E.e05_layering),
    "e06": ("e06_unweighted_tap", E.e06_unweighted),
    "e07": ("e07_shortcut_algorithm", E.e07_shortcut_algorithm),
    "e07b": ("e07_shortcut_quality", E.e07_shortcut_quality),
    "e08": ("e08_shortcut_tools", E.e08_shortcut_tools),
    "e09": ("e09_subroutines", E.e09_subroutines),
    "e10": ("e10_forward_iters", E.e10_forward_iterations),
    "e11": ("e11_segments", E.e11_segments),
    "e12": ("e12_comparison", E.e12_comparison),
    "e13": ("e13_sim_engine", E.e13_sim_engine),
}


class CliError(Exception):
    """A usage error: printed as one line on stderr, exit code 2."""


def _split(raw: str, cast, flag: str) -> list:
    """Parse a comma-separated CLI value with a one-line error on failure."""
    try:
        return [cast(x) for x in raw.split(",") if x]
    except ValueError:
        raise CliError(
            f"invalid value for {flag}: {raw!r} "
            f"(expected comma-separated {cast.__name__} values)"
        ) from None


def run_demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro demo",
        description="Run the headline 2-ECSS algorithm once on a demo graph.",
    )
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="write the run's span tree as Chrome trace events "
        "(open in chrome://tracing or Perfetto)",
    )
    args = parser.parse_args(argv)
    import repro
    from repro import obs

    if args.trace:
        obs.enable()
    g = repro.graphs.cycle_with_chords(80, 40, seed=1)
    print(f"demo network: n={g.number_of_nodes()}, m={g.number_of_edges()}")
    res = repro.approximate_two_ecss(g, eps=0.5)
    print(res.summary())
    from repro.shortcuts import shortcut_two_ecss

    res2 = shortcut_two_ecss(g, seed=2)
    print(res2.summary())
    if args.trace:
        events = obs.write_chrome_trace(args.trace, obs.get_tracer().drain())
        print(f"-> {args.trace} ({events} trace events)")
    return 0


def run_experiments(ids: list[str]) -> int:
    targets = ids or sorted(EXPERIMENTS)
    for key in targets:
        if key not in EXPERIMENTS:
            raise CliError(
                f"unknown experiment {key!r}; known: "
                f"{', '.join(sorted(EXPERIMENTS))}"
            )
        name, fn = EXPERIMENTS[key]
        rows = fn()
        table = format_table(rows, title=name)
        path = write_report(name, table)
        print(table)
        print(f"-> {path}\n")
    return 0


def run_sweep_cli(argv: list[str]) -> int:
    """Parse ``sweep`` options and run the parallel grid."""
    from repro.analysis.sweep import run_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=(
            "Fan a graph-family x size x eps grid of 2-ECSS runs across a "
            "process pool, with on-disk result caching and text/JSON/CSV "
            "output under benchmarks/out/."
        ),
    )
    parser.add_argument(
        "--families", default="cycle_chords,erdos_renyi,grid",
        help="comma-separated graph families (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes", default="200,500",
        help="comma-separated target node counts (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", default="1", help="comma-separated seeds (default: %(default)s)"
    )
    parser.add_argument(
        "--eps", default="0.5",
        help="comma-separated eps values (default: %(default)s)",
    )
    parser.add_argument(
        "--k", default="2",
        help=(
            "comma-separated connectivity targets; k > 2 runs the "
            "iterated-augmentation k-ECSS layer and needs an engine with "
            "the 'k-ecss' capability (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--variant", default="improved", choices=("improved", "basic"),
        help="reverse-delete variant (default: %(default)s)",
    )
    from repro.runtime.registry import backend_names

    parser.add_argument(
        "--backend", default="fast",
        help=(
            "compute backend (registered: "
            f"{', '.join(backend_names('compute'))}; "
            "default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--engine", default="local",
        help=(
            "'local' runs the centralized solver; 'sim' runs the full "
            "message-level pipeline on the CONGEST engine and adds "
            "rounds-vs-model columns (registered: "
            f"{', '.join(backend_names('engine'))}; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip the runtime certificates (faster, less checked)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width; 0 = serial in-process (default: cpu count)",
    )
    parser.add_argument(
        "--name", default="sweep",
        help="output basename under benchmarks/out/ (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: benchmarks/out/sweep_cache)",
    )
    parser.add_argument(
        "--out-dir", default=None,
        help="where to write <name>.txt/.json/.csv (default: benchmarks/out)",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help=(
            "print per-topology SolverSession.stats() (plan-cache hits/"
            "misses/evictions, per-phase build times) after the table"
        ),
    )
    args = parser.parse_args(argv)

    from repro.runtime.registry import UnknownBackendError

    try:
        report = run_sweep(
            families=_split(args.families, str, "--families"),
            sizes=_split(args.sizes, int, "--sizes"),
            seeds=_split(args.seeds, int, "--seeds"),
            eps_values=_split(args.eps, float, "--eps"),
            variant=args.variant,
            backend=args.backend,
            validate=not args.no_validate,
            engine=args.engine,
            ks=_split(args.k, int, "--k"),
            workers=args.workers,
            cache_dir=args.cache_dir,
            name=args.name,
            out_dir=args.out_dir,
        )
    except UnknownBackendError as exc:
        # One line listing the registered backends, not a traceback.
        raise CliError(str(exc)) from None
    except ValueError as exc:
        # e.g. --k 3 with an engine lacking the k-ecss capability.
        raise CliError(str(exc)) from None
    from repro.analysis.tables import format_table

    print(format_table(report.rows, title=args.name))
    print(
        f"cells: {len(report.rows)} "
        f"(cache hits {report.cache_hits}, computed {report.cache_misses})"
    )
    if args.debug:
        for label, stats in sorted(report.session_stats.items()):
            times = ", ".join(
                f"{phase}={secs * 1000:.1f}ms"
                for phase, secs in sorted(stats["build_times_s"].items())
            )
            print(
                f"debug {label}: solves={stats['solves']} "
                f"plans_built={stats['plans_built']} "
                f"hits={stats['plan_hits']} "
                f"evictions={stats['plan_evictions']} [{times}]"
            )
    for path in (report.text_path, report.json_path, report.csv_path):
        print(f"-> {path}")
    return 0


def run_backends(argv: list[str]) -> int:
    """Print the execution-backend registry (table, or JSON with --json)."""
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro backends",
        description="List the registered execution backends.",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output (the serve /backends route and the "
        "load generator consume the same schema)",
    )
    args = parser.parse_args(argv)
    from repro.runtime.registry import registered_payload

    payload = registered_payload()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    from repro.analysis.tables import format_table

    rows = [
        {
            "kind": spec["kind"],
            "name": spec["name"],
            "capabilities": ",".join(spec["capabilities"]) or "-",
            "description": spec["description"],
        }
        for spec in payload
    ]
    print(format_table(rows, title="registered execution backends"))
    return 0


def run_serve_cli(argv: list[str]) -> int:
    """Parse ``serve`` options and run the HTTP service until interrupted."""
    from repro.serve.app import ServeConfig
    from repro.serve.server import run_server

    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Run the async batching 2-ECSS solve service: JSON over "
            "HTTP/1.1, topology-sharded worker processes, per-topology "
            "micro-batching onto shared SolverSession plan caches."
        ),
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port,
        help="listening port; 0 picks an ephemeral one (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=defaults.workers,
        help="worker processes (topology shards); 0 = inline in-process "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=defaults.max_batch,
        help="flush a topology's batch at this many coalesced requests "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=defaults.max_delay_ms,
        help="max milliseconds a request waits to be batched "
        "(default: %(default)s)",
    )
    from repro.runtime.registry import backend_names

    parser.add_argument(
        "--backend", default=defaults.backend,
        help=f"default compute backend (registered: "
        f"{', '.join(backend_names('compute'))}; default: %(default)s)",
    )
    parser.add_argument(
        "--engine", default=defaults.engine,
        help=f"default engine (registered: "
        f"{', '.join(backend_names('engine'))}; default: %(default)s)",
    )
    parser.add_argument(
        "--max-plans", type=int, default=defaults.max_plans,
        help="per-session plan LRU size (default: %(default)s)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=defaults.max_sessions,
        help="per-worker session LRU size (default: %(default)s)",
    )
    parser.add_argument(
        "--mode", default=defaults.mode, choices=("session", "per-request"),
        help="'session' serves from warm sharded sessions; 'per-request' "
        "is the naive benchmark baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable span tracing (drops the /metrics per-phase "
        "breakdown and the per-request timings block)",
    )
    args = parser.parse_args(argv)
    from repro.runtime.registry import UnknownBackendError, get_backend

    try:
        get_backend("compute", args.backend)
        get_backend("engine", args.engine)
    except UnknownBackendError as exc:
        raise CliError(str(exc)) from None
    return run_server(ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        backend=args.backend,
        engine=args.engine,
        max_plans=args.max_plans,
        max_sessions=args.max_sessions,
        mode=args.mode,
        tracing=not args.no_tracing,
    ))


def run_loadgen_cli(argv: list[str]) -> int:
    """Parse ``loadgen`` options, drive a server, print the summary."""
    import json

    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    defaults = LoadgenConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "Generate zipf-skewed solve traffic against a repro serve "
            "instance and report throughput/latency/error statistics."
        ),
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port)
    parser.add_argument(
        "--duration", type=float, default=defaults.duration_s,
        help="seconds to run (default: %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="stop after this many requests (default: duration only)",
    )
    parser.add_argument(
        "--mode", default=defaults.mode,
        choices=("closed", "open", "drift", "montecarlo"),
        help="closed loop (fixed concurrency), open loop (fixed rate), "
        "drift (closed loop sending sparse /v1/delta reweights), or "
        "montecarlo (closed loop batching weight perturbations of one "
        "topology through /v1/solve_batch)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=defaults.concurrency,
        help="closed-loop workers / open-loop connection pool "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--rate", type=float, default=defaults.rate,
        help="open-loop arrivals per second (default: %(default)s)",
    )
    parser.add_argument(
        "--families", default=",".join(defaults.families),
        help="comma-separated graph families (default: %(default)s)",
    )
    parser.add_argument(
        "--size", type=int, default=defaults.size,
        help="target node count per topology (default: %(default)s)",
    )
    parser.add_argument(
        "--topologies", type=int, default=defaults.topologies,
        help="distinct topologies in the universe (default: %(default)s)",
    )
    parser.add_argument(
        "--zipf", type=float, default=defaults.zipf_s,
        help="zipf popularity exponent (default: %(default)s)",
    )
    parser.add_argument(
        "--scenarios", type=int, default=defaults.scenarios,
        help="weight scenarios cycled per topology (default: %(default)s)",
    )
    parser.add_argument(
        "--drift-edges", type=float, default=defaults.drift_edges,
        help="fraction of edges per --mode drift delta "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--batch", type=int, default=defaults.batch,
        help="scenarios per --mode montecarlo request (default: %(default)s)",
    )
    parser.add_argument(
        "--binary", action="store_true",
        help="send --mode montecarlo weight columns as binary frames "
        "and request framed responses",
    )
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--eps", type=float, default=defaults.eps)
    parser.add_argument(
        "--backend", default=None,
        help="request this compute backend explicitly (default: server's)",
    )
    parser.add_argument(
        "--engine", default=None,
        help="request this engine explicitly (default: server's)",
    )
    parser.add_argument(
        "--spawn", action="store_true",
        help="boot an in-process server on an ephemeral port for the run",
    )
    parser.add_argument(
        "--spawn-workers", type=int, default=0,
        help="worker processes for --spawn; 0 = inline (default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any protocol or transport error occurred "
        "(the CI smoke gate)",
    )
    parser.add_argument(
        "--no-timings", action="store_true",
        help="don't request the server's per-phase timings block",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON only"
    )
    args = parser.parse_args(argv)

    cfg = LoadgenConfig(
        host=args.host,
        port=args.port,
        duration_s=args.duration,
        requests=args.requests,
        mode=args.mode,
        concurrency=args.concurrency,
        rate=args.rate,
        families=tuple(_split(args.families, str, "--families")),
        size=args.size,
        topologies=args.topologies,
        zipf_s=args.zipf,
        scenarios=args.scenarios,
        drift_edges=args.drift_edges,
        batch=args.batch,
        binary=args.binary,
        seed=args.seed,
        eps=args.eps,
        backend=args.backend,
        engine=args.engine,
        timings=not args.no_timings,
    )
    spawn = None
    if args.spawn:
        from repro.serve.app import ServeConfig

        spawn = ServeConfig(workers=args.spawn_workers)
    try:
        summary = run_loadgen(cfg, spawn=spawn)
    except (ConnectionRefusedError, OSError) as exc:
        raise CliError(
            f"cannot reach http://{cfg.host}:{cfg.port} ({exc}); "
            "start one with `python -m repro serve` or pass --spawn"
        ) from None
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        lat = summary["latency_ms"]
        deltas = (
            f" ({summary['deltas']} deltas)" if summary.get("deltas") else ""
        )
        print(
            f"loadgen ({summary['mode']} loop): {summary['ok']}/"
            f"{summary['requests']} ok{deltas} in {summary['duration_s']}s "
            f"-> {summary['throughput_rps']} req/s"
        )
        print(
            f"latency ms: mean {lat['mean']} p50 {lat['p50']} "
            f"p90 {lat['p90']} p99 {lat['p99']} max {lat['max']}"
        )
        print(
            f"errors: protocol {summary['protocol_errors']}, transport "
            f"{summary['transport_errors']} (codes: "
            f"{summary['error_codes'] or '-'}); batch size mean "
            f"{summary['batch_size']['mean']} max "
            f"{summary['batch_size']['max']}"
        )
        solver = summary.get("solver") or {}
        frames = (
            f", binary frames {summary['frames']}"
            if summary.get("frames") else ""
        )
        if solver:
            print(
                "solver: vectorized batches "
                f"{solver.get('vectorized_batches', 0)}, scalar fallback "
                f"{solver.get('scalar_fallback', 0)}{frames}"
            )
        phases = summary.get("server_phases_ms") or {}
        if phases:
            print("server phases (mean ms per occurrence):")
            width = max(len(name) for name in phases)
            for name, cell in phases.items():
                print(
                    f"  {name:<{width}}  mean {cell['mean_ms']:>9.3f}  "
                    f"total {cell['total_ms']:>10.1f}  x{cell['count']}"
                )
    failures = summary["protocol_errors"] + summary["transport_errors"]
    if args.check and failures:
        print(f"loadgen: {failures} failed request(s)", file=sys.stderr)
        return 1
    return 0


def run_bench_cli(argv: list[str]) -> int:
    """``bench report``: render benchmark trends from the history logs."""
    import json
    import os

    from repro.obs.report import (
        check_trends,
        compute_trends,
        load_history,
        render_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark history tooling.  'report' reads the append-only "
            "bench_history/*.jsonl logs and renders per-benchmark metric "
            "trends (latest value vs the rolling median of prior runs)."
        ),
    )
    parser.add_argument("action", choices=("report",))
    default_history = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "bench_history",
    )
    parser.add_argument(
        "--history", default=default_history,
        help="history directory of *.jsonl append logs "
        "(default: <repo>/bench_history)",
    )
    parser.add_argument(
        "--window", type=int, default=10,
        help="prior runs in the rolling median (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="regression gate: fail --check when the latest value is this "
        "fraction worse than the rolling median (default: %(default)s)",
    )
    parser.add_argument(
        "--min-prior", type=int, default=3,
        help="gate a metric only once it has this many prior samples — "
        "fresh histories pass vacuously (default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any gated metric regressed past the threshold "
        "(the CI gate)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable trend rows instead of the table",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.history):
        raise CliError(
            f"history directory {args.history!r} does not exist; run some "
            "benchmarks first (make bench) or pass --history"
        )
    histories = load_history(args.history)
    trends = compute_trends(
        histories,
        window=args.window,
        threshold=args.threshold,
        min_prior=args.min_prior,
    )
    if args.json:
        print(json.dumps(
            [
                {
                    "benchmark": t.benchmark,
                    "metric": t.metric,
                    "latest": t.latest,
                    "direction": t.direction,
                    "prior_median": t.prior_median,
                    "prior_count": t.prior_count,
                    "regression": t.regression,
                    "gated": t.gated,
                    "failed": t.failed,
                }
                for t in trends
            ],
            indent=2,
        ))
    else:
        print(render_report(trends, threshold=args.threshold))
    if args.check:
        failed = check_trends(trends)
        if failed:
            for t in failed:
                print(
                    f"bench report: {t.benchmark}.{t.metric} regressed "
                    f"{t.regression * 100.0:+.1f}% vs median "
                    f"{t.prior_median:g} over {t.prior_count} prior run(s)",
                    file=sys.stderr,
                )
            return 1
    return 0


def run_figures() -> int:
    import os

    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "benchmarks"),
    )
    from bench_f01_figures import run_figures as rf

    text = rf()
    write_report("figures", text)
    print(text)
    return 0


#: Subcommand table: name -> handler taking the remaining argv.
COMMANDS = {
    "demo": run_demo,
    "experiments": run_experiments,
    "sweep": run_sweep_cli,
    "backends": run_backends,
    "serve": run_serve_cli,
    "loadgen": run_loadgen_cli,
    "bench": run_bench_cli,
    "figures": lambda rest: run_figures(),
}


def main(argv: list[str]) -> int:
    """Dispatch one subcommand; usage errors are one line on stderr, exit 2."""
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd, rest = argv[0], argv[1:]
    handler = COMMANDS.get(cmd)
    if handler is None:
        print(
            f"repro: unknown command {cmd!r} "
            f"(known: {', '.join(sorted(COMMANDS))})",
            file=sys.stderr,
        )
        return 2
    try:
        return handler(rest)
    except CliError as exc:
        print(f"repro {cmd}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
