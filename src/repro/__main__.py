"""Command-line entry point.

    python -m repro demo                # run the headline algorithm once
    python -m repro experiments [ids]   # regenerate experiment tables
    python -m repro figures             # regenerate the paper's figures
    python -m repro sweep [options]     # parallel family x size x eps sweep
    python -m repro backends            # list registered execution backends

``experiments`` with no ids runs the full E1..E13 suite (minutes); with ids
(e.g. ``e05 e11``) only those.  Tables are written to ``benchmarks/out/``
and echoed to stdout.

``sweep`` fans a grid of 2-ECSS runs across a process pool with on-disk
caching (see ``python -m repro sweep --help``); with the default
``--backend fast`` the vectorized kernels make 20k-node cells practical:

    python -m repro sweep --families grid,erdos_renyi --sizes 2000,20000 \\
        --eps 0.25,0.5 --seeds 1,2 --workers 4

``sweep --engine sim`` runs every cell as the full message-level pipeline
on the CONGEST engine (small sizes; identical solutions) and adds
measured-vs-priced round columns to the report:

    python -m repro sweep --engine sim --families grid,cycle_chords \\
        --sizes 30,60 --seeds 1,2
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as E
from repro.analysis.tables import format_table, write_report

EXPERIMENTS = {
    "e01": ("e01_tecss_approx", E.e01_tecss_approx),
    "e02": ("e02_round_complexity", E.e02_round_complexity),
    "e03": ("e03_tap_on_gprime", E.e03_tap_approx),
    "e03b": ("e03_tap_vs_milp", E.e03_tap_vs_milp),
    "e04": ("e04_ablation_c4_vs_c2", E.e04_ablation),
    "e05": ("e05_layering", E.e05_layering),
    "e06": ("e06_unweighted_tap", E.e06_unweighted),
    "e07": ("e07_shortcut_algorithm", E.e07_shortcut_algorithm),
    "e07b": ("e07_shortcut_quality", E.e07_shortcut_quality),
    "e08": ("e08_shortcut_tools", E.e08_shortcut_tools),
    "e09": ("e09_subroutines", E.e09_subroutines),
    "e10": ("e10_forward_iters", E.e10_forward_iterations),
    "e11": ("e11_segments", E.e11_segments),
    "e12": ("e12_comparison", E.e12_comparison),
    "e13": ("e13_sim_engine", E.e13_sim_engine),
}


def run_demo() -> int:
    import repro

    g = repro.graphs.cycle_with_chords(80, 40, seed=1)
    print(f"demo network: n={g.number_of_nodes()}, m={g.number_of_edges()}")
    res = repro.approximate_two_ecss(g, eps=0.5)
    print(res.summary())
    from repro.shortcuts import shortcut_two_ecss

    res2 = shortcut_two_ecss(g, seed=2)
    print(res2.summary())
    return 0


def run_experiments(ids: list[str]) -> int:
    targets = ids or sorted(EXPERIMENTS)
    for key in targets:
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}")
            return 2
        name, fn = EXPERIMENTS[key]
        rows = fn()
        table = format_table(rows, title=name)
        path = write_report(name, table)
        print(table)
        print(f"-> {path}\n")
    return 0


def run_sweep_cli(argv: list[str]) -> int:
    """Parse ``sweep`` options and run the parallel grid."""
    from repro.analysis.sweep import run_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=(
            "Fan a graph-family x size x eps grid of 2-ECSS runs across a "
            "process pool, with on-disk result caching and text/JSON/CSV "
            "output under benchmarks/out/."
        ),
    )
    parser.add_argument(
        "--families", default="cycle_chords,erdos_renyi,grid",
        help="comma-separated graph families (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes", default="200,500",
        help="comma-separated target node counts (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", default="1", help="comma-separated seeds (default: %(default)s)"
    )
    parser.add_argument(
        "--eps", default="0.5",
        help="comma-separated eps values (default: %(default)s)",
    )
    parser.add_argument(
        "--variant", default="improved", choices=("improved", "basic"),
        help="reverse-delete variant (default: %(default)s)",
    )
    from repro.runtime.registry import backend_names

    parser.add_argument(
        "--backend", default="fast",
        help=(
            "compute backend (registered: "
            f"{', '.join(backend_names('compute'))}; "
            "default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--engine", default="local",
        help=(
            "'local' runs the centralized solver; 'sim' runs the full "
            "message-level pipeline on the CONGEST engine and adds "
            "rounds-vs-model columns (registered: "
            f"{', '.join(backend_names('engine'))}; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip the runtime certificates (faster, less checked)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width; 0 = serial in-process (default: cpu count)",
    )
    parser.add_argument(
        "--name", default="sweep",
        help="output basename under benchmarks/out/ (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: benchmarks/out/sweep_cache)",
    )
    parser.add_argument(
        "--out-dir", default=None,
        help="where to write <name>.txt/.json/.csv (default: benchmarks/out)",
    )
    args = parser.parse_args(argv)

    from repro.runtime.registry import UnknownBackendError

    try:
        report = run_sweep(
            families=[f for f in args.families.split(",") if f],
            sizes=[int(x) for x in args.sizes.split(",") if x],
            seeds=[int(x) for x in args.seeds.split(",") if x],
            eps_values=[float(x) for x in args.eps.split(",") if x],
            variant=args.variant,
            backend=args.backend,
            validate=not args.no_validate,
            engine=args.engine,
            workers=args.workers,
            cache_dir=args.cache_dir,
            name=args.name,
            out_dir=args.out_dir,
        )
    except UnknownBackendError as exc:
        # One line listing the registered backends, not a traceback.
        print(exc)
        return 2
    from repro.analysis.tables import format_table

    print(format_table(report.rows, title=args.name))
    print(
        f"cells: {len(report.rows)} "
        f"(cache hits {report.cache_hits}, computed {report.cache_misses})"
    )
    for path in (report.text_path, report.json_path, report.csv_path):
        print(f"-> {path}")
    return 0


def run_backends() -> int:
    """Print the execution-backend registry as a table."""
    from repro.analysis.tables import format_table
    from repro.runtime.registry import registered

    rows = [
        {
            "kind": spec.kind,
            "name": spec.name,
            "capabilities": ",".join(sorted(spec.capabilities)) or "-",
            "description": spec.description,
        }
        for spec in registered()
    ]
    print(format_table(rows, title="registered execution backends"))
    return 0


def run_figures() -> int:
    import os

    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "benchmarks"),
    )
    from bench_f01_figures import run_figures as rf

    text = rf()
    write_report("figures", text)
    print(text)
    return 0


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd, rest = argv[0], argv[1:]
    if cmd == "demo":
        return run_demo()
    if cmd == "experiments":
        return run_experiments(rest)
    if cmd == "sweep":
        return run_sweep_cli(rest)
    if cmd == "backends":
        return run_backends()
    if cmd == "figures":
        return run_figures()
    print(f"unknown command {cmd!r}")
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
