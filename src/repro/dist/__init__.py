"""``repro.dist`` — the paper's building blocks as real CONGEST programs.

Where :mod:`repro.core` computes the algorithm centrally and *prices* its
primitive invocations with the Level-M
:class:`~repro.core.rounds.RoundCostModel`, this package runs those same
primitives **message-level** on the batched engine (:mod:`repro.sim`) so
the reported round complexity is a measurement, not a formula:

* :mod:`repro.dist.programs` — node programs for LCA labeling
  (Section 4.1), segment marking (Section 4.2.1), the layering recurrence
  (Section 4.3), up/down tree aggregates (Claims 4.5/4.6), the petal /
  chmin aggregates (Claim 4.11), and the global-MIS information gathering
  (Section 4.5.1);
* :mod:`repro.dist.ops` — :class:`~repro.dist.ops.MeasuredOps`, the
  ``TreePathOps`` facade that makes the *shared* solver code execute its
  aggregates on the wire (asserted equal to the reference values);
* :mod:`repro.dist.pipeline` —
  :func:`~repro.dist.pipeline.distributed_two_ecss`, the end-to-end
  measured pipeline (bit-identical output to ``backend="reference"``),
  with :class:`~repro.sim.failures.FailurePlan` composition for lossy
  scenarios;
* :mod:`repro.dist.accounting` — the measured-rounds ledger and the
  rounds-vs-model comparison (``tests/test_dist_rounds.py`` pins the
  documented constant factor);
* :mod:`repro.dist.specs` — the primitives as
  :class:`~repro.sim.runner.ProgramSpec` entries for the ScenarioRunner.
"""

from repro.dist.accounting import (
    RATIO_BOUND,
    MeasuredPrimitives,
    PrimitiveMeasurement,
    rounds_vs_model,
)
from repro.dist.ops import MeasuredOps
from repro.dist.pipeline import DistTwoEcssResult, distributed_two_ecss
from repro.dist.programs import (
    AncestorSumDown,
    ChminValues,
    EulerTourLabels,
    PipelinedChminUp,
    PipelinedGather,
    SubtreeAggregate,
    layer_aggregate,
    subtree_size_aggregate,
)
from repro.dist.specs import dist_specs

__all__ = [
    "RATIO_BOUND",
    "AncestorSumDown",
    "ChminValues",
    "DistTwoEcssResult",
    "EulerTourLabels",
    "MeasuredOps",
    "MeasuredPrimitives",
    "PipelinedChminUp",
    "PipelinedGather",
    "PrimitiveMeasurement",
    "SubtreeAggregate",
    "dist_specs",
    "distributed_two_ecss",
    "layer_aggregate",
    "rounds_vs_model",
    "subtree_size_aggregate",
]
