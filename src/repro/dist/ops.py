"""A TreePathOps facade that executes every aggregate message-level.

:class:`MeasuredOps` wraps the reference
:class:`~repro.trees.pathops.TreePathOps` of a
:class:`~repro.core.instance.TAPInstance` and is injected in its place by
:func:`repro.dist.pipeline.distributed_two_ecss`.  The solver code paths
(:func:`repro.core.forward.forward_phase`, the reverse-delete epoch
machinery, the runtime certificates) are **shared and unchanged** — they
simply call ``inst.ops`` — but every batch aggregate now *also* runs as a
genuine message-level program on the batched CONGEST engine:

* :meth:`MeasuredOps.ancestor_sums` runs an
  :class:`~repro.dist.programs.AncestorSumDown` sweep,
* :meth:`MeasuredOps.chmin_over_paths` runs a
  :class:`~repro.dist.programs.PipelinedChminUp`,
* :meth:`MeasuredOps.add_over_paths` (and therefore ``coverage_counts``)
  runs a :class:`~repro.dist.programs.SubtreeAggregate` over the locally
  scattered path deltas,

and the engine's measured rounds land in a
:class:`~repro.dist.accounting.MeasuredPrimitives` ledger under the
``aggregate`` primitive.  In *strict* mode (no failure injection) the
distributed values are asserted equal to the reference values before the
reference result is returned — so the solver's decisions are provably the
values that crossed the wire, and the final augmentation cannot drift from
``backend="reference"``.  Under failure injection the assertions become
recorded mismatch counts and the solver continues on the reference values,
which is what makes lossy-CONGEST scenarios expressible at all.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.dist.accounting import MeasuredPrimitives, measure_run, note_divergence
from repro.dist.programs import (
    AncestorSumDown,
    PipelinedChminUp,
    SubtreeAggregate,
)
from repro.exceptions import SimulationError
from repro.model.network import RunStats
from repro.trees.pathops import TreePathOps
from repro.trees.segtree import INF

__all__ = ["MeasuredOps"]


class MeasuredOps:
    """Drop-in ``inst.ops`` that mirrors every aggregate onto the engine.

    Parameters
    ----------
    ref:
        The reference path operations (results are authoritative; the
        distributed runs are asserted against them in strict mode).
    net:
        The :class:`~repro.sim.engine.BatchedNetwork` primitives run on
        (one network for the whole pipeline; state is reset per run).
    measured:
        The ledger measured :class:`~repro.model.network.RunStats` land in.
    strict:
        When true (no failure injection) any distributed-vs-reference
        divergence raises :class:`~repro.exceptions.InvariantViolation`;
        when false it is counted in ``measured.mismatches``.
    """

    def __init__(
        self,
        ref: TreePathOps,
        net,
        measured: MeasuredPrimitives,
        strict: bool = True,
    ) -> None:
        self._ref = ref
        self._net = net
        self._measured = measured
        self._strict = strict
        self.tree = ref.tree
        self.hld = ref.hld

    # -- engine plumbing ----------------------------------------------------

    def _run(self, program, name: str) -> RunStats:
        """Run one program on the shared network and record its stats."""
        return measure_run(self._net, self._measured, name, program, self._strict)

    def _diverge(self, name: str, detail: str, count: int = 1) -> None:
        """Fail loudly in strict mode; count the divergence otherwise."""
        note_divergence(self._measured, name, detail, self._strict, count)

    # -- measured aggregates ------------------------------------------------

    def ancestor_sums(self, values) -> list[float]:
        """Root-path prefix sums, run as a top-down sweep on the engine."""
        ref = self._ref.ancestor_sums(values)
        tree = self.tree
        self._run(
            AncestorSumDown(tree.parent, tree.root, values), "aggregate"
        )
        dist = AncestorSumDown.results(self._net)
        bad = sum(1 for v in range(tree.n) if dist[v] != ref[v])
        if bad:
            self._diverge("ancestor_sums", f"{bad} vertices differ", bad)
        return ref

    def chmin_over_paths(
        self, updates: Iterable[tuple[int, int, Any]], identity: Any = INF
    ):
        """Per-tree-edge minima over covering paths, pipelined up the tree."""
        updates = list(updates)
        ref = self._ref.chmin_over_paths(updates, identity)
        tree = self.tree
        wrapped = [
            (dec, anc, value if isinstance(value, tuple) else (value,))
            for dec, anc, value in updates
        ]
        budget = self._net.words_per_edge
        for _, _, value in wrapped:
            if 1 + len(value) > budget:
                raise SimulationError(
                    f"chmin item needs {1 + len(value)} words; the CONGEST "
                    f"budget is {budget}"
                )
        self._run(
            PipelinedChminUp(tree.parent, tree.depth, wrapped), "aggregate"
        )
        dist = PipelinedChminUp.results(self._net, identity)
        bad = 0
        for t in tree.tree_edges():
            ref_val = ref.get(t)
            if ref_val == ref.identity:
                ref_val = None
            elif not isinstance(ref_val, tuple):
                ref_val = (ref_val,)
            dist_val = dist.get(t)
            if dist_val == dist.identity:
                dist_val = None
            if dist_val != ref_val:
                bad += 1
        if bad:
            self._diverge("chmin_over_paths", f"{bad} tree edges differ", bad)
        return ref

    def add_over_paths(self, updates: Iterable[tuple[int, int, float]]) -> list[float]:
        """Per-tree-edge delta totals: local scatter + one up sweep."""
        updates = list(updates)
        ref = self._ref.add_over_paths(updates)
        tree = self.tree
        acc0 = [0.0] * tree.n
        for dec, anc, delta in updates:
            acc0[dec] += delta
            acc0[anc] -= delta
        self._run(
            SubtreeAggregate(
                tree.parent,
                tree.root,
                start=lambda v: acc0[v],
                absorb=lambda acc, value: acc + value,
                finish=lambda v, acc: acc,
            ),
            "aggregate",
        )
        dist = SubtreeAggregate.results(self._net)
        bad = sum(
            1
            for v in range(tree.n)
            if dist[v] is None
            or not math.isclose(dist[v], ref[v], rel_tol=1e-9, abs_tol=1e-9)
        )
        if bad:
            self._diverge("add_over_paths", f"{bad} vertices differ", bad)
        return ref

    def coverage_counts(self, paths: Iterable[tuple[int, int]]) -> list[int]:
        """Coverage counts via the (measured) difference-trick aggregate."""
        counts = self.add_over_paths((dec, anc, 1.0) for dec, anc in paths)
        return [int(round(c)) for c in counts]

    # -- local operations (no communication) --------------------------------

    @staticmethod
    def path_sum(cum, dec: int, anc: int) -> float:
        """Difference of two root-path sums (local arithmetic)."""
        return TreePathOps.path_sum(cum, dec, anc)

    def path_sums(self, values, paths) -> list[float]:
        """Batch path sums: one measured sweep plus local differences."""
        cum = self.ancestor_sums(values)
        return [cum[dec] - cum[anc] for dec, anc in paths]

    def make_coverage_counter(self):
        """Reference incremental counter (locally maintained Y-coverage).

        In the distributed algorithm every tree edge observes the petals
        added near it and maintains its own coverage bit; the per-iteration
        coverage *aggregates* are measured where the solver performs them
        (``coverage_counts`` / ``add_over_paths``), while the incremental
        point updates are local state and cost no extra rounds.
        """
        return self._ref.make_coverage_counter()
