"""The full 2-ECSS pipeline, run message-level on the batched engine.

:func:`distributed_two_ecss` is the measured-rounds counterpart of
:func:`repro.core.tecss.approximate_two_ecss`: every building block the
paper charges rounds for executes as a genuine CONGEST program on one
:class:`~repro.sim.engine.BatchedNetwork` —

1. **MST** — message-level Borůvka (:class:`repro.model.mst.BoruvkaMST`);
2. **LCA labels** (Section 4.1) —
   :class:`~repro.dist.programs.EulerTourLabels`;
3. **layering** (Section 4.3 / Claim 4.10) — the Horton–Strahler up sweep
   of :func:`~repro.dist.programs.layer_aggregate`;
4. **segment marking** (Section 4.2.1) — the subtree-size sweep of
   :func:`~repro.dist.programs.subtree_size_aggregate`;
5. **every aggregate of the forward / reverse-delete phases** (Claims
   4.5/4.6/4.11) — via :class:`~repro.dist.ops.MeasuredOps`, injected as
   the shared :class:`~repro.core.instance.TAPInstance`'s ``ops``;
6. **global-MIS information gathering** (Section 4.5.1) —
   :class:`~repro.dist.programs.PipelinedGather`, observed through the
   ``hooks`` of :func:`repro.core.reverse.reverse_delete`.

The solver control flow is the *shared* ``repro.core`` code — the pipeline
injects measured primitives underneath it rather than reimplementing it —
so the chosen augmentation is bit-identical to ``backend="reference"`` by
construction, and every distributed value is additionally asserted equal to
its centralized twin before use (strict mode).  With a
:class:`~repro.sim.failures.FailurePlan` the assertions become recorded
mismatch counts: the solver continues on reference values and the run
reports how much of the distributed computation the loss corrupted — a
lossy-CONGEST scenario the centralized path cannot express.

Measured rounds per primitive are compared against the Level-M
:class:`~repro.core.rounds.RoundCostModel` prices via
:func:`repro.dist.accounting.rounds_vs_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.rounds import RoundCostModel
from repro.core.tap import assemble_tap_result, solve_virtual_tap
from repro.core.tecss import assemble_two_ecss
from repro.core.result import TwoEcssResult
from repro.dist.accounting import (
    RATIO_BOUND,
    MeasuredPrimitives,
    measure_run,
    note_divergence,
    rounds_vs_model,
)
from repro.dist.ops import MeasuredOps
from repro.dist.programs import (
    EulerTourLabels,
    PipelinedGather,
    SubtreeAggregate,
    layer_aggregate,
    subtree_size_aggregate,
)
from repro.exceptions import SimulationError
from repro.model.mst import BoruvkaMST
from repro.sim.engine import BatchedNetwork

__all__ = ["DistTwoEcssResult", "distributed_two_ecss"]


@dataclass
class DistTwoEcssResult:
    """A measured pipeline run: the (reference-identical) solution plus
    per-primitive engine statistics and their rounds-vs-model comparison."""

    result: TwoEcssResult
    measured: MeasuredPrimitives
    comparison: list[dict]
    n: int
    diameter: int
    strict: bool
    ratio_bound: float = RATIO_BOUND
    boruvka_phases: int = 0
    mismatch_counts: dict[str, int] = field(default_factory=dict)

    @property
    def measured_rounds(self) -> int:
        """Total engine rounds across every measured primitive."""
        return self.measured.total_rounds

    @property
    def priced_rounds(self) -> float:
        """Level-M price of the measured primitive runs (TOTAL row)."""
        return self.comparison[-1]["priced_rounds"]

    @property
    def max_ratio(self) -> float:
        """Worst per-primitive measured/priced ratio."""
        return max(row["ratio"] for row in self.comparison[:-1])

    @property
    def within_bound(self) -> bool:
        """Every per-primitive ratio within the documented constant."""
        return all(row["within_bound"] for row in self.comparison[:-1])

    @property
    def mismatches(self) -> int:
        """Distributed-vs-reference divergences (0 unless lossy)."""
        return sum(self.mismatch_counts.values())

    def rows(self) -> list[dict]:
        """Per-primitive rows for :func:`repro.analysis.tables.format_table`."""
        return [
            {"n": self.n, "D": self.diameter, **row} for row in self.comparison
        ]


class _GatherHooks:
    """Reverse-delete observer running the Sec 4.5.1 gather on the engine."""

    def __init__(self, net, measured, tree, strict: bool) -> None:
        self.net = net
        self.measured = measured
        self.tree = tree
        self.strict = strict

    def on_global_gather(self, ctx, layer: int, candidates) -> None:
        """Convergecast the global-MIS candidates (and their higher petals)
        to the root, message-level, and check the root saw all of them."""
        items = {
            t: [(t, layer, ctx.higher_petal(t))] for t in candidates
        }
        measure_run(
            self.net,
            self.measured,
            "global_mis_gather",
            PipelinedGather(self.tree.parent, self.tree.root, items),
            self.strict,
        )
        gathered = PipelinedGather.results(self.net, self.tree.root)
        expected = sorted(item for lst in items.values() for item in lst)
        if gathered != expected:
            note_divergence(
                self.measured, "global_mis_gather",
                f"layer {layer}: expected {len(expected)} candidates at the "
                f"root, saw {len(gathered)}", self.strict,
                abs(len(expected) - len(gathered)) or 1,
            )


def distributed_two_ecss(
    graph: nx.Graph | None,
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    words_per_edge: int = 4,
    scheduler=None,
    failures=None,
    ratio_bound: float = RATIO_BOUND,
    plan=None,
) -> DistTwoEcssResult:
    """Run the whole 2-ECSS pipeline message-level; return measured truth.

    Parameters mirror :func:`repro.core.tecss.approximate_two_ecss` where
    they overlap.  ``failures`` (a
    :class:`~repro.sim.failures.FailurePlan`) switches the run to *lossy*
    mode: distributed-vs-reference divergences are counted instead of
    raised, and the solver continues on the reference values so the
    returned solution stays valid.  ``ratio_bound`` is the documented
    constant factor for the rounds-vs-model comparison rows.

    ``plan`` (a :class:`repro.runtime.plan.SolverPlan`) supplies the
    cached centralized artifacts — validation, normalization, MST,
    virtual-graph instance, diameter — so a
    :class:`~repro.runtime.session.SolverSession` solving many failure
    scenarios on one topology skips their reconstruction; every
    message-level program still runs per call (measured rounds are the
    point).  With ``plan=None`` the pipeline builds a fresh single-use
    plan from ``graph``; the centralized reference values are identical
    either way.

    The returned :class:`DistTwoEcssResult` carries a solution
    **bit-identical** to ``approximate_two_ecss(graph, ...,
    backend="reference")`` — same edges, weight, and certified ratio —
    which the differential suite in ``tests/test_dist_pipeline.py`` holds
    across families, sizes, and seeds.
    """
    if plan is None:
        if graph is None:
            raise ValueError(
                "distributed_two_ecss needs a graph or a plan; got neither"
            )
        from repro.runtime.plan import SolverPlan

        plan = SolverPlan.for_graph(graph)
    g, nodes = plan.g, plan.nodes

    strict = failures is None
    net = BatchedNetwork(
        g, words_per_edge, scheduler=scheduler, failures=failures
    )
    measured = MeasuredPrimitives()

    # 1. MST: message-level Borůvka, cross-checked against the centralized
    # MST (identical under the lexicographic tie-break).
    tree, mst_edges = plan.tree, plan.mst_edges
    try:
        outcome = BoruvkaMST(net).run()
    except SimulationError:
        if strict:
            raise
        outcome = None
        measured.note_mismatch("mst")
    boruvka_phases = 0
    if outcome is not None:
        measured.add("mst", outcome.stats)
        boruvka_phases = outcome.phases
        if outcome.edges != mst_edges:
            note_divergence(
                measured, "mst",
                "Boruvka MST differs from the centralized MST", strict,
            )

    # 2. LCA / ancestry labels (Section 4.1).
    measure_run(
        net, measured, "lca_labels",
        EulerTourLabels(tree.parent, tree.root), strict,
    )
    tin, tout = EulerTourLabels.results(net)
    bad = sum(
        1
        for v in range(tree.n)
        if tin[v] != tree.tin[v] or tout[v] != tree.tout[v]
    )
    if bad:
        note_divergence(
            measured, "lca_labels",
            f"Euler labels differ at {bad} vertices", strict, bad,
        )

    # 3. The shared instance: same tree, same virtual edges, same layering
    # and segments as the centralized solver — with measured ops injected.
    # A *private* copy of the plan's instance, because the ops injection
    # below must not leak this run's network into later plan reuses.
    inst = plan.private_instance("reference")
    ref_ops = inst.ops  # build the reference path operations first
    inst.__dict__["ops"] = MeasuredOps(ref_ops, net, measured, strict=strict)

    # 4. Layering (Section 4.3): one Horton–Strahler up sweep computes all
    # layer numbers; compared against the shared Layering object.
    measure_run(
        net, measured, "layering",
        layer_aggregate(tree.parent, tree.root), strict,
    )
    layers = SubtreeAggregate.results(net)
    bad = sum(
        1
        for v in tree.tree_edges()
        if layers[v] is None or int(layers[v]) != inst.layering.layer[v]
    )
    if bad:
        note_divergence(
            measured, "layering",
            f"layer numbers differ at {bad} tree edges", strict, bad,
        )

    # 5. Segment marking (Section 4.2.1): subtree sizes >= s.
    measure_run(
        net, measured, "segments_build",
        subtree_size_aggregate(tree.parent, tree.root), strict,
    )
    sizes = SubtreeAggregate.results(net)
    ref_sizes = tree.subtree_sizes()
    bad = sum(
        1
        for v in range(tree.n)
        if sizes[v] is None or int(sizes[v]) != ref_sizes[v]
    )
    if bad:
        note_divergence(
            measured, "segments_build",
            f"subtree sizes differ at {bad} vertices", strict, bad,
        )

    # 6. Solve on the shared code path; aggregates and the global-MIS
    # gather run message-level underneath it.
    hooks = _GatherHooks(net, measured, tree, strict)
    fwd, rev = solve_virtual_tap(
        inst,
        eps=eps,
        variant=variant,
        segmented=segmented,
        validate=validate,
        backend="reference",
        hooks=hooks,
    )
    tap = assemble_tap_result(
        inst, fwd, rev, eps=eps, variant=variant, segmented=segmented,
        validate=validate, backend="reference",
    )
    result = assemble_two_ecss(
        g, nodes, mst_edges, tap, validate=validate, diameter=plan.diameter
    )

    # 7. Price the measured runs with the Level-M model.
    diameter = result.diameter if result.diameter >= 0 else nx.diameter(g)
    model = RoundCostModel(g.number_of_nodes(), diameter)
    pricing = {
        # One sweep computes every layer; Claim 4.10 prices them per layer.
        "layering": model.cost_of("layering_layer") * inst.layering.num_layers,
    }
    comparison = rounds_vs_model(measured, model, pricing, bound=ratio_bound)

    return DistTwoEcssResult(
        result=result,
        measured=measured,
        comparison=comparison,
        n=g.number_of_nodes(),
        diameter=diameter,
        strict=strict,
        ratio_bound=ratio_bound,
        boruvka_phases=boruvka_phases,
        mismatch_counts=dict(measured.mismatches),
    )
