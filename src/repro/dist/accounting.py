"""Measured-rounds accounting for the distributed 2-ECSS pipeline.

:class:`MeasuredPrimitives` collects one :class:`~repro.model.network.RunStats`
per message-level primitive run (MST, labeling, aggregates, gathers, ...)
and :func:`rounds_vs_model` compares the totals against the Level-M
:class:`~repro.core.rounds.RoundCostModel` prices — the cross-check that
turns the reported round complexity from a formula into a measurement.

The comparison is *per primitive run*: a primitive measured over ``runs``
engine executions is priced at ``runs x price(one invocation)``, and the
ratio ``measured / priced`` must stay within a documented constant factor
(:data:`RATIO_BOUND`) on every tested family — asserted by
``tests/test_dist_rounds.py`` and exported as a JSON artifact by
``benchmarks/bench_dist_rounds.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rounds import RoundCostModel
from repro.model.network import RunStats

__all__ = [
    "RATIO_BOUND",
    "MeasuredPrimitives",
    "PrimitiveMeasurement",
    "measure_run",
    "note_divergence",
    "rounds_vs_model",
]

#: Documented constant factor: measured engine rounds for one primitive run
#: stay below ``RATIO_BOUND x`` the Level-M price of one invocation on every
#: tested family/size (the price drops O() constants, so ratios above 1 are
#: expected for e.g. tall-MST families; see docs/ARCHITECTURE.md).
RATIO_BOUND = 8.0


@dataclass
class PrimitiveMeasurement:
    """Aggregated engine statistics for one primitive across its runs."""

    runs: int = 0
    rounds: int = 0
    messages: int = 0
    max_words: int = 0

    def add(self, stats: RunStats) -> None:
        """Fold one engine run's stats into the totals."""
        self.runs += 1
        self.rounds += stats.rounds
        self.messages += stats.messages
        self.max_words = max(self.max_words, stats.max_words)


@dataclass
class MeasuredPrimitives:
    """Per-primitive measured totals plus lossy-mode divergence counters."""

    by_name: dict[str, PrimitiveMeasurement] = field(default_factory=dict)
    mismatches: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, stats: RunStats) -> None:
        """Record one engine run under primitive ``name``."""
        self.by_name.setdefault(name, PrimitiveMeasurement()).add(stats)

    def note_mismatch(self, name: str, count: int = 1) -> None:
        """Count a distributed-vs-reference divergence (lossy runs only)."""
        self.mismatches[name] = self.mismatches.get(name, 0) + count

    @property
    def total_rounds(self) -> int:
        """Measured rounds summed over every primitive."""
        return sum(m.rounds for m in self.by_name.values())

    @property
    def total_mismatches(self) -> int:
        """Total recorded divergences (0 on failure-free runs)."""
        return sum(self.mismatches.values())


def measure_run(net, measured: MeasuredPrimitives, name: str, program, strict: bool) -> RunStats:
    """Run one program on ``net`` and record its stats under ``name``.

    The single measurement discipline shared by the pipeline's setup
    phases and :class:`repro.dist.ops.MeasuredOps`: state is reset, the
    engine runs to quiescence, the stats land in the ledger, and in
    strict mode a non-quiescent run (round-limit hit) fails loudly.
    """
    from repro.exceptions import SimulationError

    net.reset_state()
    stats = net.run(program)
    measured.add(name, stats)
    if strict and not stats.quiescent:
        raise SimulationError(
            f"distributed {name} did not quiesce within the round limit"
        )
    return stats


def note_divergence(
    measured: MeasuredPrimitives,
    name: str,
    detail: str,
    strict: bool,
    count: int = 1,
) -> None:
    """Handle one distributed-vs-reference divergence.

    The single lossy-mode discipline shared by the pipeline's setup
    checks, :class:`repro.dist.ops.MeasuredOps`, and the gather hook:
    strict runs fail loudly with the detail, lossy runs count the
    divergence in the ledger and continue.
    """
    if strict:
        from repro.exceptions import InvariantViolation

        raise InvariantViolation(
            f"distributed {name} diverged from reference: {detail}"
        )
    measured.note_mismatch(name, count)


#: Measured primitive name -> Level-M primitive it is priced as.  The
#: ``layering`` sweep computes *all* layers in one run; its default price
#: here is a single Claim 4.10 layer (conservative), and the pipeline
#: overrides it with ``num_layers x layering_layer`` via the ``pricing``
#: argument of :func:`rounds_vs_model`.
PRICED_AS = {
    "mst": "mst",
    "lca_labels": "lca_labels",
    "segments_build": "segments_build",
    "aggregate": "aggregate",
    "global_mis_gather": "global_mis_gather",
    "layering": "layering_layer",
}


def rounds_vs_model(
    measured: MeasuredPrimitives,
    model: RoundCostModel,
    pricing: dict[str, float] | None = None,
    bound: float = RATIO_BOUND,
) -> list[dict]:
    """Rows comparing measured rounds per primitive to Level-M prices.

    ``pricing`` overrides the per-run price of a measured name (used for
    the one-sweep layering).  Each row carries the primitive, its run
    count, measured/priced rounds, the ratio, and whether the ratio stays
    within ``bound``; a TOTAL row sums both sides.
    """
    pricing = pricing or {}
    rows: list[dict] = []
    total_measured = 0
    total_priced = 0.0
    for name in sorted(measured.by_name):
        m = measured.by_name[name]
        if name in pricing:
            per_run = pricing[name]
        elif name in PRICED_AS:
            per_run = model.cost_of(PRICED_AS[name])
        else:
            raise KeyError(
                f"no price mapping for measured primitive {name!r}; "
                f"pass a pricing override"
            )
        priced = per_run * m.runs
        ratio = m.rounds / priced if priced > 0 else float("inf")
        total_measured += m.rounds
        total_priced += priced
        rows.append(
            {
                "primitive": name,
                "runs": m.runs,
                "measured_rounds": m.rounds,
                "priced_rounds": priced,
                "ratio": ratio,
                "within_bound": ratio <= bound,
            }
        )
    rows.append(
        {
            "primitive": "TOTAL",
            "runs": sum(m.runs for m in measured.by_name.values()),
            "measured_rounds": total_measured,
            "priced_rounds": total_priced,
            "ratio": total_measured / total_priced if total_priced else float("inf"),
            "within_bound": (
                total_measured <= bound * total_priced if total_priced else False
            ),
        }
    )
    return rows
