"""Message-level CONGEST programs for the paper's tree building blocks.

Every program here is a genuine :class:`~repro.model.network.NodeProgram`:
all coordination happens through O(1)-word messages on the simulated
network, and the engine's measured :class:`~repro.model.network.RunStats`
are the *truth* against which :class:`~repro.core.rounds.RoundCostModel`
prices are cross-checked (see :mod:`repro.dist.pipeline`).

The programs realize the information flows the paper charges for:

* :class:`EulerTourLabels` — the LCA / ancestry labels of Section 4.1
  (subtree sizes up, DFS-interval offsets down; ``2 * height + O(1)``
  rounds);
* :class:`SubtreeAggregate` — one bottom-up aggregate (Claim 4.5 family):
  subtree sizes for the Section 4.2.1 marking step, and the
  Horton-Strahler recurrence that computes every layer number of the
  Section 4.3 layering in one sweep (Claim 4.10 prices it per layer);
* :class:`AncestorSumDown` — one top-down aggregate (Claim 4.6 family):
  every vertex learns the sum of a per-edge value along its root path —
  exactly :meth:`repro.trees.pathops.TreePathOps.ancestor_sums`;
* :class:`PipelinedChminUp` — chmin over vertical paths (the petal
  aggregates of Claim 4.11 and the forward phase's start values), items
  pipelined one-per-edge-per-round with domination pruning;
* :class:`PipelinedGather` — convergecast of O(sqrt n) candidate items to
  the root (the global-MIS information gathering of Section 4.5.1).

Programs are parameterized by the tree's ``parent``/``children`` arrays —
knowledge every node has after the MST and labeling phases — and message
payloads stay within the default 4-word CONGEST budget.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.model.network import Context, Payload

__all__ = [
    "AncestorSumDown",
    "ChminValues",
    "EulerTourLabels",
    "PipelinedChminUp",
    "PipelinedGather",
    "SubtreeAggregate",
    "layer_aggregate",
    "subtree_size_aggregate",
]


def _children_of(parent: Sequence[int], root: int) -> list[list[int]]:
    """Children lists (ascending, matching ``RootedTree.children``)."""
    children: list[list[int]] = [[] for _ in range(len(parent))]
    for v, p in enumerate(parent):
        if v != root and p >= 0:
            children[p].append(v)
    return children


class EulerTourLabels:
    """Distributed DFS-interval (Euler tour) labeling — paper Section 4.1.

    Phase up: every node convergecasts its subtree size to its parent.
    Phase down: the root takes ``tin = 0`` and every node hands each child
    its interval offset (``tin`` of the first child is its own ``tin + 1``,
    later children shift by the earlier siblings' sizes, ascending order —
    the exact preorder of :class:`~repro.trees.rooted.RootedTree`).  After
    quiescence each node knows ``(tin, tout)`` with ``tout = tin + size``,
    which answers every ancestry query locally — the labels the virtual
    graph construction of Section 4.1 routes by.

    Rounds: one up sweep plus one down sweep, ``2 * height + O(1)``.
    """

    def __init__(self, parent: Sequence[int], root: int) -> None:
        self.parent = parent
        self.root = root
        self.children = _children_of(parent, root)

    def setup(self, ctx: Context) -> None:
        """Initialize per-node state (child sizes unknown, label unknown)."""
        ctx.state.update(
            sizes={},
            waiting=len(self.children[ctx.node]),
            size=None,
            sent_up=False,
            tin=None,
            assigned=False,
        )

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Absorb child sizes / the parent's offset; forward when ready."""
        st = ctx.state
        v = ctx.node
        parent = self.parent[v]
        for sender, payload in inbox.items():
            if sender == parent:
                st["tin"] = int(payload[0])
            else:
                st["sizes"][sender] = int(payload[0])
                st["waiting"] -= 1
        out: dict[int, Payload] = {}
        if st["waiting"] == 0 and not st["sent_up"]:
            st["sent_up"] = True
            st["size"] = 1 + sum(st["sizes"].values())
            if v == self.root:
                st["tin"] = 0
            else:
                out[parent] = (st["size"],)
        if st["tin"] is not None and st["sent_up"] and not st["assigned"]:
            st["assigned"] = True
            offset = st["tin"] + 1
            for c in self.children[v]:
                out[c] = (offset,)
                offset += st["sizes"][c]
        return out

    def wants_to_continue(self, ctx: Context) -> bool:
        """Purely message-driven: every action is triggered by a delivery."""
        return False

    @staticmethod
    def results(network) -> tuple[list[int | None], list[int | None]]:
        """Per-node ``(tin, tout)`` lists after a run.

        Entries are ``None`` for nodes the sweeps never reached (possible
        only under failure injection).
        """
        tin = [c.state["tin"] for c in network.contexts]
        tout = [
            None
            if c.state["tin"] is None or c.state["size"] is None
            else c.state["tin"] + c.state["size"]
            for c in network.contexts
        ]
        return tin, tout


class SubtreeAggregate:
    """Generic bottom-up convergecast; every node learns a subtree value.

    Unlike :class:`repro.model.programs.TreeAggregate` (root-only result,
    payload = accumulator), each node here *finalizes* its accumulator into
    a single word before sending, so non-associative per-node recurrences —
    the layering's Horton–Strahler rule — fit the same program.

    ``start(v)`` builds the initial accumulator, ``absorb(acc, value)``
    folds one child's finalized value in, ``finish(v, acc)`` produces the
    node's own value (one numeric word, sent to the parent).
    Rounds: ``height + O(1)``.
    """

    def __init__(
        self,
        parent: Sequence[int],
        root: int,
        start: Callable[[int], object],
        absorb: Callable[[object, float], object],
        finish: Callable[[int, object], float],
    ) -> None:
        self.parent = parent
        self.root = root
        self.children = _children_of(parent, root)
        self.start = start
        self.absorb = absorb
        self.finish = finish

    def setup(self, ctx: Context) -> None:
        """Seed the accumulator and the expected-children counter."""
        ctx.state.update(
            acc=self.start(ctx.node),
            waiting=len(self.children[ctx.node]),
            value=None,
        )

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Fold child values; finalize and forward once all have arrived."""
        st = ctx.state
        for payload in inbox.values():
            st["acc"] = self.absorb(st["acc"], payload[0])
            st["waiting"] -= 1
        if st["waiting"] == 0 and st["value"] is None:
            st["value"] = self.finish(ctx.node, st["acc"])
            if ctx.node != self.root:
                return {self.parent[ctx.node]: (st["value"],)}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        """Purely message-driven."""
        return False

    @staticmethod
    def results(network) -> list:
        """Per-node finalized values after a run."""
        return [c.state["value"] for c in network.contexts]


def subtree_size_aggregate(parent: Sequence[int], root: int) -> SubtreeAggregate:
    """Subtree sizes — the marking sweep of Section 4.2.1 (``size >= s``)."""
    return SubtreeAggregate(
        parent,
        root,
        start=lambda v: 1,
        absorb=lambda acc, value: acc + int(value),
        finish=lambda v, acc: acc,
    )


def layer_aggregate(parent: Sequence[int], root: int) -> SubtreeAggregate:
    """Layer numbers via the Horton–Strahler recurrence (Section 4.3).

    A leaf edge has layer 1; an edge whose deepest child layer ``M`` is
    attained by at least two children has layer ``M + 1``, otherwise ``M``
    — the same recurrence as ``Layering``'s array backend, evaluated here
    as one message-level up sweep.  The root's value is meaningless (the
    root is not a tree edge).
    """

    def absorb(acc, value):
        """Track the deepest child layer and how many children attain it."""
        maxc, attain = acc
        g = int(value)
        if g > maxc:
            return (g, 1)
        if g == maxc:
            return (maxc, attain + 1)
        return acc

    def finish(v, acc):
        """Apply the recurrence: leaves get 1, junctions of the max get +1."""
        maxc, attain = acc
        if maxc == 0:  # leaf
            return 1
        return maxc + (1 if attain >= 2 else 0)

    return SubtreeAggregate(
        parent, root, start=lambda v: (0, 0), absorb=absorb, finish=finish
    )


class AncestorSumDown:
    """Top-down prefix sums along root paths (Claims 4.5/4.6 family).

    ``values[v]`` is tree edge ``v``'s value; after the run every node
    knows ``cum[v] = sum of values on the chain v .. root`` — additions
    performed parent-before-child in exactly the order of
    :meth:`repro.trees.pathops.TreePathOps.ancestor_sums`, so the floats
    are bit-identical to the centralized prefix sums.
    Rounds: ``height + O(1)``.
    """

    def __init__(
        self, parent: Sequence[int], root: int, values: Sequence[float]
    ) -> None:
        self.parent = parent
        self.root = root
        self.children = _children_of(parent, root)
        self.values = values

    def setup(self, ctx: Context) -> None:
        """The root starts at 0.0; everyone else waits for the parent."""
        ctx.state.update(
            cum=0.0 if ctx.node == self.root else None, sent=False
        )

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Add the local edge value to the parent's sum and forward it."""
        st = ctx.state
        for payload in inbox.values():  # at most one: the parent's cum
            st["cum"] = float(payload[0]) + self.values[ctx.node]
        if st["cum"] is not None and not st["sent"]:
            st["sent"] = True
            return {c: (st["cum"],) for c in self.children[ctx.node]}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        """Purely message-driven."""
        return False

    @staticmethod
    def results(network) -> list[float]:
        """Per-node root-path sums after a run."""
        return [c.state["cum"] for c in network.contexts]


class ChminValues:
    """Point-query view over a finished distributed chmin (see
    :class:`PipelinedChminUp`); interface-compatible with
    :class:`repro.trees.pathops.ChminResult`."""

    __slots__ = ("_values", "identity")

    def __init__(self, values: dict[int, tuple], identity) -> None:
        self._values = values
        self.identity = identity

    def get(self, v: int):
        """The minimum over covering updates, or the identity."""
        return self._values.get(v, self.identity)

    def covered(self, v: int) -> bool:
        """Whether any update's path covers tree edge ``v``."""
        return v in self._values


class PipelinedChminUp:
    """Chmin over vertical paths, pipelined up the tree one item per round.

    Each update ``(dec, anc, value)`` starts as an *item* at ``dec``
    carrying ``(stop_depth, *value)`` where ``stop_depth = depth(anc)``.
    A node holding an item records it into its own running minimum (every
    holder's tree edge is covered by construction) and forwards it to its
    parent iff the parent is still strictly below ``anc``.  One item
    crosses each edge per round (the CONGEST discipline); queued items are
    *domination-pruned*: an item travelling at least as far with a value
    at least as small makes another redundant, which keeps queues short.

    This is the communication pattern of the petal aggregates
    (Claim 4.11) and of the forward phase's start-value aggregate; the
    measured rounds are ``O(height + congestion)`` and are cross-checked
    against the ``O(D + sqrt n)`` price per aggregate in
    :mod:`repro.dist.pipeline`.

    ``value`` tuples must fit the CONGEST budget together with the stop
    depth (``1 + len(value)`` words per message).
    """

    def __init__(
        self,
        parent: Sequence[int],
        depth: Sequence[int],
        updates: Sequence[tuple[int, int, tuple]],
    ) -> None:
        self.parent = parent
        self.depth = depth
        items_at: dict[int, list[tuple]] = {}
        for dec, anc, value in updates:
            if dec == anc:
                continue  # empty vertical path: covers nothing
            value = tuple(value) if isinstance(value, tuple) else (value,)
            items_at.setdefault(dec, []).append((depth[anc],) + value)
        self.items_at = items_at

    def _record(self, st: dict, item: tuple) -> None:
        value = item[1:]
        if st["best"] is None or value < st["best"]:
            st["best"] = value

    def _enqueue(self, ctx: Context, st: dict, item: tuple) -> None:
        parent = self.parent[ctx.node]
        if parent < 0 or self.depth[parent] <= item[0]:
            return  # the parent edge is not covered: the item dies here
        queue = st["queue"]
        for held in queue:
            if held[0] <= item[0] and held[1:] <= item[1:]:
                return  # dominated: a smaller value travels at least as far
        queue[:] = [
            held for held in queue if not (item[0] <= held[0] and item[1:] <= held[1:])
        ]
        queue.append(item)

    def setup(self, ctx: Context) -> None:
        """Seed local items; record each into the node's own minimum."""
        st = ctx.state
        st["best"] = None
        st["queue"] = []
        for item in self.items_at.get(ctx.node, ()):
            self._record(st, item)
            self._enqueue(ctx, st, item)

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Record arrivals, then forward the best queued item upward."""
        st = ctx.state
        for payload in inbox.values():
            item = tuple(payload)
            self._record(st, item)
            self._enqueue(ctx, st, item)
        queue = st["queue"]
        if queue:
            best = min(queue, key=lambda item: (item[1:], item[0]))
            queue.remove(best)
            return {self.parent[ctx.node]: best}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        """Keep stepping while items remain queued for forwarding."""
        return bool(ctx.state["queue"])

    @staticmethod
    def results(network, identity) -> ChminValues:
        """Collect per-tree-edge minima into a :class:`ChminValues`."""
        values = {
            c.node: c.state["best"]
            for c in network.contexts
            if c.state["best"] is not None
        }
        return ChminValues(values, identity)


class PipelinedGather:
    """Convergecast of small items to the root (Section 4.5.1 gathering).

    Items are tuples of at most ``words_per_edge`` numbers, initially held
    at arbitrary nodes; every node forwards one queued item to its parent
    per round, so the root collects all ``K`` items in
    ``O(depth + K)`` rounds — the information-gathering step that lets
    every vertex of the distributed algorithm simulate the same greedy MIS
    over the ``O(sqrt n)`` global candidates.
    """

    def __init__(
        self,
        parent: Sequence[int],
        root: int,
        items_at: Mapping[int, Sequence[tuple]],
    ) -> None:
        self.parent = parent
        self.root = root
        self.items_at = {v: list(items) for v, items in items_at.items()}

    def setup(self, ctx: Context) -> None:
        """Queue local items; the root starts collecting immediately."""
        items = list(self.items_at.get(ctx.node, ()))
        if ctx.node == self.root:
            ctx.state.update(queue=[], collected=items)
        else:
            ctx.state.update(queue=items, collected=None)

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Absorb arrivals (root keeps them) and relay one item upward."""
        st = ctx.state
        if ctx.node == self.root:
            st["collected"].extend(tuple(p) for p in inbox.values())
            return {}
        st["queue"].extend(tuple(p) for p in inbox.values())
        if st["queue"]:
            item = st["queue"].pop(0)
            return {self.parent[ctx.node]: item}
        return {}

    def wants_to_continue(self, ctx: Context) -> bool:
        """Keep stepping while items remain queued for forwarding."""
        return bool(ctx.state["queue"])

    @staticmethod
    def results(network, root: int) -> list[tuple]:
        """The items the root collected, sorted for comparison."""
        return sorted(network.contexts[root].state["collected"])
