"""ProgramSpecs exposing the dist primitives to the ScenarioRunner.

Each spec builds one message-level building-block program from a prepared
graph (the MST/rooting happens inside ``build``, mirroring what the
pipeline's setup phase provides every node), declares its Level-M price,
and therefore plugs straight into
:class:`repro.sim.runner.ScenarioRunner` — including its failure-injection
and scheduler knobs.  This is how the primitives are swept standalone
across families × sizes × seeds, independent of the full pipeline.
"""

from __future__ import annotations

import networkx as nx

from repro.core.tecss import rooted_mst
from repro.dist.programs import (
    AncestorSumDown,
    EulerTourLabels,
    layer_aggregate,
    subtree_size_aggregate,
)
from repro.sim.runner import ProgramSpec

__all__ = ["dist_specs"]


def _tree(graph: nx.Graph):
    """The rooted MST every dist primitive runs over."""
    tree, _ = rooted_mst(graph)
    return tree


def _euler(graph: nx.Graph) -> EulerTourLabels:
    tree = _tree(graph)
    return EulerTourLabels(tree.parent, tree.root)


def _layers(graph: nx.Graph):
    tree = _tree(graph)
    return layer_aggregate(tree.parent, tree.root)


def _sizes(graph: nx.Graph):
    tree = _tree(graph)
    return subtree_size_aggregate(tree.parent, tree.root)


def _ancestor_sums(graph: nx.Graph) -> AncestorSumDown:
    tree = _tree(graph)
    return AncestorSumDown(tree.parent, tree.root, [1.0] * tree.n)


def dist_specs() -> tuple[ProgramSpec, ...]:
    """The paper's tree building blocks as ScenarioRunner specs.

    Prices: the labeling is one ``lca_labels`` setup primitive; the
    one-sweep layering is charged as a single Claim 4.10 layer (its rounds
    are ``O(height)``, priced ``D + sqrt n``); the marking sweep is the
    ``segments_build`` setup; the ancestor-sum sweep is one Claim 4.6
    aggregate.
    """
    return (
        ProgramSpec("euler_labels", _euler, {"lca_labels": 1}),
        ProgramSpec("layering_sweep", _layers, {"layering_layer": 1}),
        ProgramSpec("subtree_sizes", _sizes, {"segments_build": 1}),
        ProgramSpec("ancestor_sums", _ancestor_sums, {"aggregate": 1}),
    )
