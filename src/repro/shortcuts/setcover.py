"""Parallel greedy set cover for tree augmentation (Section 5.1).

The structure follows the paper's outline (after Berger–Rompel–Shor):

* **phases** sweep the maximum cost-effectiveness ``Delta`` downward over
  powers of ``(1 + eps)``; ``A`` holds the links whose cost-effectiveness
  ``rho(e) = cover(e) / weight(e)`` is at least ``Delta (1 - eps)``;
* **sub-phases** sweep ``d`` — the maximum number of ``A``-links covering a
  still-uncovered tree edge — downward over powers of ``(1 + eps)``;
* each **repetition** samples every link of ``A`` independently with
  probability ``1/(2d)`` and accepts the sample iff it is *good*: newly
  covered edges per unit weight at least ``Delta / 100``.  Accepted samples
  join the solution; after ``O(log n)`` repetitions every uncovered edge
  with ``>= d(1-eps)`` covering ``A``-links is covered w.h.p.

Exactly as in the paper, only good sets are ever added, which yields the
``O(log n)`` approximation by the classical greedy argument.

Fidelity notes: cost-effectiveness counts are computed by the Lemma 5.5
mechanism (:class:`~repro.shortcuts.subroutines.CoverCounter55` — ancestors'
sums plus light-edge LCAs), and coverage marks by the Lemma 5.4 XOR detector
(fresh random identifiers per invocation, so its one-sided w.h.p. error
cannot stall the loop).  Empty phases/sub-phases are skipped by snapping
``Delta`` and ``d`` to the current maxima — this only removes iterations in
which the distributed algorithm would be idle.  The iteration count times
``O(D + SC(G))`` is the Theorem 1.2 round bound; both factors are reported.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.exceptions import InvariantViolation, NotTwoEdgeConnectedError
from repro.shortcuts.subroutines import CoverCounter55, CoverDetector
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.trees.pathops import TreePathOps
from repro.trees.rooted import RootedTree

__all__ = ["ParallelSetCoverResult", "parallel_setcover_tap"]


@dataclass
class ParallelSetCoverResult:
    links: list[tuple[int, int]]
    weight: float
    iterations: int  # sampling repetitions (each O(D + SC) rounds)
    phases: int
    accepts: int
    hierarchy_levels: int
    partwise_ops: int
    log_bound: float  # ln(n) + 1, the greedy quality regime

    def modeled_rounds(self, diameter: int, rounds_per_op: float) -> float:
        """Theorem 1.2 accounting: each iteration costs O(D + SC)."""
        return self.iterations * (diameter + 2.0 * rounds_per_op)


def parallel_setcover_tap(
    tree: RootedTree,
    links: list[tuple[int, int, float]],
    eps: float = 0.23,
    seed: int = 0,
    toolkit: ShortcutToolkit | None = None,
    max_reps_per_subphase: int | None = None,
    validate: bool = True,
) -> ParallelSetCoverResult:
    """O(log n)-approximate weighted TAP by parallel set cover."""
    if eps <= 0 or eps >= 1:
        raise ValueError("need 0 < eps < 1")
    if not links:
        raise NotTwoEdgeConnectedError("no candidate links")
    n = tree.n
    rng = random.Random(seed)
    if toolkit is None:
        toolkit = ShortcutToolkit(FragmentHierarchy(tree))
    ops = TreePathOps(tree)
    counter = CoverCounter55(toolkit)
    detector = CoverDetector(toolkit, seed=seed + 1)

    pairs = [(u, v) for u, v, _ in links]
    weights = [float(w) for _, _, w in links]
    path_sets = None  # only materialized in validate mode
    if validate:
        path_sets = [frozenset(tree.path_edges(u, v)) for u, v in pairs]
        coverable: set[int] = set()
        for s in path_sets:
            coverable |= s
        if set(tree.tree_edges()) - coverable:
            raise NotTwoEdgeConnectedError("links cannot cover every tree edge")

    chosen: list[int] = []
    chosen_set: set[int] = set()
    chosen_pairs: list[tuple[int, int]] = []
    uncovered = [False] + [True] * (n - 1)
    uncovered[tree.root] = False
    for v in tree.tree_edges():
        uncovered[v] = True

    def refresh_marks() -> None:
        """Lemma 5.4: recompute coverage marks from the chosen set."""
        if not chosen_pairs:
            return
        covered = detector.covered_edges(chosen_pairs)
        for v in tree.tree_edges():
            if covered[v]:
                uncovered[v] = False
        if validate:
            got = set()
            for j in chosen:
                got |= path_sets[j]
            for v in tree.tree_edges():
                exact = v not in got
                if uncovered[v] != exact:
                    # XOR false negative (prob 2^-10logn): trust the exact
                    # answer; the distributed algorithm would simply retry.
                    uncovered[v] = exact

    def cost_effectiveness() -> list[float]:
        counts = counter.counts(uncovered, pairs)
        return [
            (c / w if w > 0 else (math.inf if c else 0.0))
            for c, w in zip(counts, weights)
        ]

    iterations = 0
    phases = 0
    accepts = 0
    reps_budget = max_reps_per_subphase or max(4, math.ceil(math.log2(max(2, n))) + 2)
    guard = 0
    while any(uncovered[v] for v in tree.tree_edges()):
        guard += 1
        if guard > 50 * n + 200:
            raise InvariantViolation("parallel set cover failed to converge")
        rho = cost_effectiveness()
        delta = max(rho)
        if delta <= 0:
            raise NotTwoEdgeConnectedError("uncovered edge with no covering link")
        phases += 1
        a_idx = [j for j, r in enumerate(rho) if r >= delta * (1 - eps)]

        # Sub-phase: d = max multiplicity of A-links over uncovered edges
        # (links split at their LCAs for the vertical-path counting).
        mult = _multiplicity(tree, ops, [pairs[j] for j in a_idx])
        d = max(
            (mult[v] for v in tree.tree_edges() if uncovered[v]), default=0
        )
        if d == 0:
            raise NotTwoEdgeConnectedError("uncovered edge with no covering link")
        p = 1.0 / (2.0 * d)

        progressed = False
        for _ in range(reps_budget):
            iterations += 1
            sample = [j for j in a_idx if rng.random() < p]
            if not sample:
                continue
            sample_weight = sum(weights[j] for j in sample)
            newly = _new_cover(tree, ops, [pairs[j] for j in sample], uncovered)
            if sample_weight > 0 and newly < (delta / 100.0) * sample_weight:
                continue  # not a good set
            if newly == 0:
                continue
            accepts += 1
            progressed = True
            for j in sample:
                if j not in chosen_set:
                    chosen_set.add(j)
                    chosen.append(j)
                    chosen_pairs.append(pairs[j])
            refresh_marks()
            break
        if not progressed:
            # The sub-phase made no progress within the rep budget; fall
            # back to the singleton guarantee: the most cost-effective link
            # alone is always a good set.
            best = max(a_idx, key=lambda j: rho[j])
            iterations += 1
            if best not in chosen_set:
                chosen_set.add(best)
                chosen.append(best)
                chosen_pairs.append(pairs[best])
            accepts += 1
            refresh_marks()

    weight = sum(weights[j] for j in sorted(set(chosen)))
    return ParallelSetCoverResult(
        links=[pairs[j] for j in sorted(set(chosen))],
        weight=weight,
        iterations=iterations,
        phases=phases,
        accepts=accepts,
        hierarchy_levels=toolkit.h.num_levels,
        partwise_ops=toolkit.partwise_ops,
        log_bound=math.log(max(2, n)) + 1,
    )


def _multiplicity(tree: RootedTree, ops: TreePathOps, pairs) -> list[int]:
    """Per tree edge: how many of the given links cover it."""
    updates = []
    for u, v in pairs:
        w = tree.lca(u, v)
        if u != w:
            updates.append((u, w))
        if v != w:
            updates.append((v, w))
    return ops.coverage_counts(updates)


def _new_cover(tree: RootedTree, ops: TreePathOps, pairs, uncovered) -> int:
    counts = _multiplicity(tree, ops, pairs)
    return sum(
        1 for v in tree.tree_edges() if uncovered[v] and counts[v] > 0
    )
