"""The paper's second algorithm: O(log n)-approx 2-ECSS in shortcut time.

* :mod:`repro.shortcuts.partition` — partitions into connected parts and
  shortcut-quality measurement (``alpha`` congestion, ``beta`` dilation).
* :mod:`repro.shortcuts.providers` — shortcut constructions: the generic
  ``O(D + sqrt n)`` size-threshold scheme of [12] and tree-restricted
  shortcuts (Steiner subtrees of a BFS tree), which achieve ``O~(D)``
  quality on planar/bounded-genus graphs per Haeupler–Izumi–Zuzic'16.
* :mod:`repro.shortcuts.tools` — Theorems 5.1/5.2/5.3: descendants' sum,
  ancestors' sum and heavy-light decomposition in shortcut time, via the
  ``O(log n)``-level fragment hierarchy.
* :mod:`repro.shortcuts.subroutines` — Lemma 5.4 (XOR covered-edge
  detection) and Lemma 5.5 (cover counting via light-edge LCA labels).
* :mod:`repro.shortcuts.setcover` / :mod:`repro.shortcuts.tap_shortcut` —
  the parallel greedy set cover of Section 5.1 and the resulting
  ``O(log n)``-approximation for TAP / 2-ECSS (Theorem 1.2).
"""

from repro.shortcuts.partition import Partition, measure_quality, mst_fragment_partition
from repro.shortcuts.providers import (
    BestOfShortcuts,
    SizeThresholdShortcuts,
    TreeRestrictedShortcuts,
    TrivialShortcuts,
)
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.shortcuts.subroutines import CoverDetector, CoverCounter55
from repro.shortcuts.tap_shortcut import shortcut_tap, shortcut_two_ecss

__all__ = [
    "Partition",
    "measure_quality",
    "mst_fragment_partition",
    "BestOfShortcuts",
    "SizeThresholdShortcuts",
    "TreeRestrictedShortcuts",
    "TrivialShortcuts",
    "FragmentHierarchy",
    "ShortcutToolkit",
    "CoverDetector",
    "CoverCounter55",
    "shortcut_tap",
    "shortcut_two_ecss",
]
