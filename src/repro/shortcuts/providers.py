"""Shortcut providers: how each part gets its helper subgraph ``H_i``.

* :class:`TrivialShortcuts` — ``H_i`` empty; ``beta`` = the part's own
  induced diameter.  The baseline every provider must beat.
* :class:`SizeThresholdShortcuts` — the generic worst-case construction of
  Ghaffari–Haeupler [12]: parts with at least ``sqrt(n)`` vertices use the
  whole graph as their shortcut (there are at most ``sqrt(n)`` of them, so
  congestion stays ``<= sqrt(n) + 1``); smaller parts get nothing (a
  connected part with fewer than ``sqrt(n)`` vertices has induced diameter
  below ``sqrt(n)``).  Quality: ``alpha + beta = O(D + sqrt(n))`` always.
* :class:`TreeRestrictedShortcuts` — every part's shortcut is the Steiner
  subtree of its vertices inside one global BFS tree.  Dilation is at most
  ``2D``; Haeupler–Izumi–Zuzic (2016) prove congestion ``O~(D)`` on
  planar/bounded-genus graphs, which is how the experiments realize the
  "``O~(D)`` on planar networks" regime of Theorem 1.2 (see DESIGN.md's
  substitution table).  On general graphs congestion can reach the number
  of parts — which is exactly why the best-of wrapper exists.
* :class:`BestOfShortcuts` — measure both and keep the better, mimicking a
  provider tuned per graph family.

``gamma`` (construction rounds) is charged as ``O(D)`` for all providers:
they only need a BFS tree / part sizes, both computable in ``O(D)`` rounds.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from repro.shortcuts.partition import Partition, measure_quality

__all__ = [
    "TrivialShortcuts",
    "SizeThresholdShortcuts",
    "TreeRestrictedShortcuts",
    "BestOfShortcuts",
    "ShortcutAssignment",
]


class ShortcutAssignment:
    """Shortcuts for one partition plus their measured quality."""

    def __init__(
        self,
        graph: nx.Graph,
        partition: Partition,
        shortcuts: Sequence[nx.Graph],
        gamma: int,
        provider: str,
    ) -> None:
        self.graph = graph
        self.partition = partition
        self.shortcuts = list(shortcuts)
        self.gamma = gamma
        self.provider = provider
        self.alpha, self.beta = measure_quality(graph, partition, self.shortcuts)

    @property
    def quality(self) -> int:
        """``alpha + beta + gamma`` — the round cost of one partwise op."""
        return self.alpha + self.beta + self.gamma


def _empty(n: int) -> nx.Graph:
    return nx.Graph()


class TrivialShortcuts:
    name = "trivial"

    def assign(self, graph: nx.Graph, partition: Partition) -> ShortcutAssignment:
        shortcuts = [_empty(0) for _ in partition.parts]
        return ShortcutAssignment(graph, partition, shortcuts, gamma=0, provider=self.name)


class SizeThresholdShortcuts:
    """Ghaffari–Haeupler's generic O(D + sqrt n) construction."""

    name = "size-threshold"

    def __init__(self, threshold: int | None = None) -> None:
        self.threshold = threshold

    def assign(self, graph: nx.Graph, partition: Partition) -> ShortcutAssignment:
        n = graph.number_of_nodes()
        thr = self.threshold or max(1, math.isqrt(n))
        whole = nx.Graph()
        whole.add_nodes_from(graph.nodes())
        whole.add_edges_from(graph.edges())
        shortcuts = [
            whole if len(part) >= thr else _empty(0) for part in partition.parts
        ]
        # gamma: a BFS to count part sizes, O(D) rounds.
        gamma = _bfs_depth(graph)
        return ShortcutAssignment(graph, partition, shortcuts, gamma, self.name)


class TreeRestrictedShortcuts:
    """Steiner subtrees of one global BFS tree (HIZ'16)."""

    name = "tree-restricted"

    def assign(self, graph: nx.Graph, partition: Partition) -> ShortcutAssignment:
        root = min(graph.nodes())
        parent = dict(nx.bfs_predecessors(graph, root))
        depth = nx.single_source_shortest_path_length(graph, root)
        shortcuts = []
        for part in partition.parts:
            h = nx.Graph()
            # Union of root paths, truncated at the shallowest meeting point:
            # walk every part vertex upward, stopping at already-added nodes.
            added = set()
            for v in part:
                x = v
                while x not in added and x != root:
                    added.add(x)
                    p = parent[x]
                    h.add_edge(x, p)
                    x = p
                added.add(x)
            # Trim: repeatedly drop leaves that are not part vertices and not
            # needed to keep the Steiner tree connected toward the root-most
            # vertex of `added`.
            part_set = set(part)
            changed = True
            while changed:
                changed = False
                for leaf in [x for x in h.nodes() if h.degree(x) == 1]:
                    if leaf not in part_set:
                        h.remove_node(leaf)
                        changed = True
            shortcuts.append(h)
        gamma = _bfs_depth(graph)
        return ShortcutAssignment(graph, partition, shortcuts, gamma, self.name)


class BestOfShortcuts:
    """Pick the better of several providers, by measured alpha + beta."""

    name = "best-of"

    def __init__(self, providers: Sequence | None = None) -> None:
        self.providers = list(providers) if providers is not None else [
            SizeThresholdShortcuts(),
            TreeRestrictedShortcuts(),
        ]

    def assign(self, graph: nx.Graph, partition: Partition) -> ShortcutAssignment:
        best = None
        for provider in self.providers:
            cand = provider.assign(graph, partition)
            if best is None or cand.quality < best.quality:
                best = cand
        if best is None:
            raise RuntimeError("no shortcut providers configured")
        return best


def _bfs_depth(graph: nx.Graph) -> int:
    root = min(graph.nodes())
    dist = nx.single_source_shortest_path_length(graph, root)
    return max(dist.values(), default=0)
