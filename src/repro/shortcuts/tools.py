"""Theorems 5.1–5.3: tree aggregation tools in shortcut time.

The engine is the ``O(log n)``-level *fragment hierarchy* of Ghaffari and
Haeupler [12] (restated in the paper's proof of Theorem 5.2): level-0
fragments are single vertices; at each level every fragment at odd depth of
the fragment tree merges into its (even-depth) parent fragment, so the
fragment-tree depth halves and ``O(log n)`` levels suffice to reach a single
fragment.  Each level's fragments form a partition into connected parts, and
each level's merge step needs a constant number of partwise
aggregate/broadcast operations — each costing ``alpha + beta`` rounds
through the shortcut provider (plus one construction ``gamma``).

On top of the hierarchy:

* **Descendants' sum** (Theorem 5.1, from [12]): when a child fragment is
  absorbed, its root's subtree total is delivered to the attachment vertex
  and added along the chain up to the absorbing fragment's root.
* **Ancestors' sum** (Theorem 5.2, new in the paper): the recursion
  ``T(L) = T(L-1) + U(L-1)`` — each absorbed fragment receives, via one
  partwise broadcast, the within-fragment ancestor sum of its attachment
  vertex and prepends it to all of its internal root paths.
* **Heavy-light decomposition + label-only LCA** (Theorem 5.3, new in the
  paper): subtree sizes via descendants' sum, path lengths via ancestors'
  sum, light-edge lists via an ancestors' *union* (never more than
  ``log2 n`` entries), and the LCA of adjacent vertices from the two lists.

The data flow is executed faithfully level by level (Level A of DESIGN.md);
reported rounds price each level's partwise operations with the *measured*
quality of the chosen shortcut provider on that level's partition (Level M).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx

from repro.shortcuts.partition import Partition
from repro.shortcuts.providers import BestOfShortcuts, ShortcutAssignment
from repro.trees.rooted import RootedTree

__all__ = ["FragmentHierarchy", "ShortcutToolkit", "HierarchyLevel"]


@dataclass
class HierarchyLevel:
    """One level of the hierarchy.

    ``frag[v]`` is the fragment id (= root vertex of the fragment) *after*
    this level's merges; ``merged_into`` maps each absorbed fragment id to
    the absorbing fragment id.
    """

    frag: list[int]
    merged_into: dict[int, int]
    partition: Partition
    assignment: ShortcutAssignment | None = None


class FragmentHierarchy:
    """The O(log n)-level merge hierarchy over a rooted tree.

    When ``graph`` (the communication network containing the tree) and a
    shortcut provider are given, every level's partition receives a shortcut
    assignment so that :meth:`rounds_per_op` can report the measured cost of
    one full hierarchy pass.
    """

    def __init__(
        self,
        tree: RootedTree,
        graph: nx.Graph | None = None,
        provider=None,
    ) -> None:
        self.tree = tree
        self.graph = graph
        self.levels: list[HierarchyLevel] = []
        self._build()
        if graph is not None:
            prov = provider if provider is not None else BestOfShortcuts()
            for level in self.levels:
                level.assignment = prov.assign(graph, level.partition)

    def _build(self) -> None:
        tree = self.tree
        n = tree.n
        frag = list(range(n))
        while True:
            roots = sorted(set(frag))
            frag_parent: dict[int, int] = {}
            for f in roots:
                p = tree.parent[f]
                frag_parent[f] = frag[p] if p >= 0 else -1
            # Iterative fragment-tree depth computation.
            depth: dict[int, int] = {}
            for f in roots:
                chain = []
                x = f
                while x not in depth and frag_parent[x] != -1:
                    chain.append(x)
                    x = frag_parent[x]
                if x not in depth:
                    depth[x] = 0
                base = depth[x]
                for y in reversed(chain):
                    base += 1
                    depth[y] = base

            merged_into = {
                f: frag_parent[f]
                for f in roots
                if depth[f] % 2 == 1
            }
            new_frag = [merged_into.get(frag[v], frag[v]) for v in range(n)]
            parts_map: dict[int, list[int]] = {}
            for v in range(n):
                parts_map.setdefault(new_frag[v], []).append(v)
            self.levels.append(
                HierarchyLevel(
                    frag=new_frag,
                    merged_into=merged_into,
                    partition=Partition(
                        parts=[parts_map[k] for k in sorted(parts_map)]
                    ),
                )
            )
            if len(parts_map) == 1:
                break
            if not merged_into:  # pragma: no cover - a deeper tree always merges
                raise AssertionError("hierarchy stalled")
            frag = new_frag

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def rounds_per_op(self) -> float:
        """Measured rounds of one hierarchy pass: ``gamma`` once plus
        ``alpha + beta`` per level — the Theorems 5.1/5.2 cost."""
        if not self.levels or self.levels[0].assignment is None:
            raise ValueError("hierarchy was built without a graph/provider")
        total = float(self.levels[0].assignment.gamma)
        for level in self.levels:
            total += level.assignment.alpha + level.assignment.beta
        return total


class ShortcutToolkit:
    """Descendants'/ancestors' aggregates and HLD over a fragment hierarchy.

    ``partwise_ops`` counts batched partwise operations (the unit priced at
    ``alpha + beta`` rounds); both sums use a constant number per level.
    """

    def __init__(self, hierarchy: FragmentHierarchy) -> None:
        self.h = hierarchy
        self.tree = hierarchy.tree
        self.partwise_ops = 0

    # -- Theorem 5.1 -------------------------------------------------------

    def descendants_sum(
        self,
        values: Sequence,
        combine: Callable = lambda a, b: a + b,
    ) -> list:
        """Every vertex learns the aggregate over its subtree (incl. itself)."""
        tree = self.tree
        partial = list(values)
        for level in self.h.levels:
            # One batched partwise aggregate (children totals -> attachment)
            # and one batched in-fragment chain update per level.
            self.partwise_ops += 2
            for child, pf in sorted(level.merged_into.items()):
                z = partial[child]
                x = tree.parent[child]
                while True:
                    partial[x] = combine(partial[x], z)
                    if x == pf:
                        break
                    x = tree.parent[x]
        return partial

    # -- Theorem 5.2 -------------------------------------------------------

    def ancestors_sum(
        self,
        values: Sequence,
        combine: Callable = lambda a, b: a + b,
    ) -> list:
        """Every vertex learns the aggregate over its root path (incl. itself).

        ``combine(prefix, suffix)`` must be associative; the prefix argument
        is always the part closer to the root.
        """
        tree = self.tree
        n = tree.n
        rel = list(values)  # rel[v]: ancestor sum within v's current fragment
        members: dict[int, list[int]] = {v: [v] for v in range(n)}
        for level in self.h.levels:
            self.partwise_ops += 1  # batched broadcast of attachment sums
            for child, pf in sorted(level.merged_into.items()):
                attach = tree.parent[child]
                z = rel[attach]
                for v in members[child]:
                    rel[v] = combine(z, rel[v])
                members[pf].extend(members[child])
                del members[child]
        return rel

    # -- Theorem 5.3 -------------------------------------------------------

    def heavy_light(self) -> "DistributedHld":
        return DistributedHld(self)


class DistributedHld:
    """Theorem 5.3's outputs, computed with the toolkit's aggregates.

    * ``subtree_size[v]`` (descendants' sum of ones),
    * ``path_len[v] = |P_v|`` (ancestors' sum of ones),
    * ``heavy[v]``: is the edge to the parent heavy (``|T_v| > |T_p| / 2``),
    * ``light_list[v]``: the light edges on the root path, top-most first,
      each as ``(child, parent, |P_child|)``.
    """

    def __init__(self, toolkit: ShortcutToolkit) -> None:
        tree = toolkit.tree
        self.tree = tree
        self.subtree_size = toolkit.descendants_sum([1] * tree.n)
        self.path_len = toolkit.ancestors_sum([1] * tree.n)
        heavy = [False] * tree.n
        for v in range(tree.n):
            p = tree.parent[v]
            if p >= 0 and 2 * self.subtree_size[v] > self.subtree_size[p]:
                heavy[v] = True
        self.heavy = heavy
        # Light-edge lists via ancestors' union of <= log n tuples.
        seed_lists = [
            ((v, tree.parent[v], self.path_len[v]),)
            if tree.parent[v] >= 0 and not heavy[v]
            else ()
            for v in range(tree.n)
        ]
        self.light_list = toolkit.ancestors_sum(
            seed_lists, combine=lambda a, b: a + b
        )

    def lca(self, u: int, v: int) -> int:
        """LCA from the two light-edge lists alone (Theorem 5.3)."""
        lu, lv = self.light_list[u], self.light_list[v]
        j = 0
        limit = min(len(lu), len(lv))
        while j < limit and lu[j] == lv[j]:
            j += 1
        cand_u = (
            (lu[j][2] - 1, lu[j][1]) if j < len(lu) else (self.path_len[u], u)
        )
        cand_v = (
            (lv[j][2] - 1, lv[j][1]) if j < len(lv) else (self.path_len[v], v)
        )
        return min(cand_u, cand_v)[1]

    def max_light_list(self) -> int:
        return max(len(lst) for lst in self.light_list)
