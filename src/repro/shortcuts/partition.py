"""Partitions into connected parts, and shortcut-quality measurement.

A shortcut instance (Section 1.1.2) is: a partition of ``V`` into
vertex-disjoint parts, each inducing a connected subgraph; a provider
assigns every part ``i`` a subgraph ``H_i``; the quality is

* ``alpha`` (congestion): the maximum, over edges of ``G``, of the number of
  subgraphs ``G[V_i] + H_i`` the edge appears in;
* ``beta`` (dilation): the maximum diameter of any ``G[V_i] + H_i``.

Partwise aggregate/broadcast operations then run in ``O(alpha + beta)``
rounds [12], which is what the Level-M accounting charges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

__all__ = [
    "Partition",
    "measure_quality",
    "mst_fragment_partition",
    "random_connected_partition",
]


@dataclass
class Partition:
    """Vertex-disjoint connected parts covering a subset of V."""

    parts: list[list[int]]

    def __post_init__(self) -> None:
        self.part_of: dict[int, int] = {}
        for i, part in enumerate(self.parts):
            for v in part:
                if v in self.part_of:
                    raise ValueError(f"vertex {v} appears in two parts")
                self.part_of[v] = i

    def __len__(self) -> int:
        return len(self.parts)

    def validate_connected(self, graph: nx.Graph) -> None:
        for part in self.parts:
            if not nx.is_connected(graph.subgraph(part)):
                raise ValueError("a part does not induce a connected subgraph")


def _diameter_estimate(g: nx.Graph) -> int:
    """Exact for small graphs, double-sweep estimate for large ones."""
    if g.number_of_nodes() <= 1:
        return 0
    if not nx.is_connected(g):  # pragma: no cover - parts+shortcuts stay connected
        return 10 ** 9
    if g.number_of_nodes() <= 600:
        return nx.diameter(g)
    v0 = next(iter(g.nodes()))
    dist = nx.single_source_shortest_path_length(g, v0)
    far = max(dist, key=dist.get)
    dist2 = nx.single_source_shortest_path_length(g, far)
    return max(dist2.values())


def measure_quality(
    graph: nx.Graph,
    partition: Partition,
    shortcuts: Sequence[nx.Graph],
) -> tuple[int, int]:
    """Measured ``(alpha, beta)`` of the shortcut assignment."""
    use_count: dict[tuple[int, int], int] = {}
    beta = 0
    for part, h in zip(partition.parts, shortcuts):
        sub = nx.Graph()
        sub.add_nodes_from(part)
        sub.add_edges_from(graph.subgraph(part).edges())
        sub.add_edges_from(h.edges())
        sub.add_nodes_from(h.nodes())
        beta = max(beta, _diameter_estimate(sub))
        for e in sub.edges():
            key = tuple(sorted(e))
            use_count[key] = use_count.get(key, 0) + 1
    alpha = max(use_count.values(), default=1)
    return alpha, beta


def mst_fragment_partition(
    graph: nx.Graph, num_parts: int, seed: int = 0
) -> Partition:
    """Cut the MST into ~``num_parts`` connected fragments.

    This is the partition shape the MST/min-cut algorithms of [12] actually
    feed to the shortcut framework (Borůvka fragments), and the one the
    experiments measure ``SC(G)`` with.
    """
    mst = nx.minimum_spanning_tree(graph, weight="weight")
    n = graph.number_of_nodes()
    target = max(1, n // max(1, num_parts))
    root = min(graph.nodes())
    parent_map = dict(nx.bfs_predecessors(mst, root))
    order = [root] + [child for _, child in nx.bfs_edges(mst, root)]
    # Greedy bottom-up chunking: accumulate subtree sizes; cut when a
    # subtree reaches the target size.
    size = {v: 1 for v in mst.nodes()}
    frag_root = {v: False for v in mst.nodes()}
    for v in reversed(order):
        if v == root:
            frag_root[v] = True
            continue
        if size[v] >= target:
            frag_root[v] = True
        else:
            size[parent_map[v]] += size[v]
    # Build fragments by walking up to the nearest fragment root.
    owner: dict[int, int] = {}
    parts_map: dict[int, list[int]] = {}
    for v in order:  # parents first
        r = v if frag_root[v] else owner[parent_map[v]]
        owner[v] = r
        parts_map.setdefault(r, []).append(v)
    return Partition(parts=sorted(parts_map.values()))


def random_connected_partition(graph: nx.Graph, num_parts: int, seed: int = 0) -> Partition:
    """Random connected partition via multi-source BFS growth."""
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    seeds = rng.sample(nodes, min(num_parts, len(nodes)))
    owner = {s: i for i, s in enumerate(seeds)}
    frontier = list(seeds)
    while frontier:
        nxt = []
        rng.shuffle(frontier)
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in owner:
                    owner[u] = owner[v]
                    nxt.append(u)
        frontier = nxt
    parts_map: dict[int, list[int]] = {}
    for v, i in owner.items():
        parts_map.setdefault(i, []).append(v)
    return Partition(parts=[sorted(p) for p in sorted(parts_map.values())])
