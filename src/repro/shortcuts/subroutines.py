"""The two key subroutines of Section 5.3.

* **Lemma 5.4 — covered-edge detection.**  Every edge of the candidate set
  ``S`` draws a random ``10 log2 n``-bit identifier; every vertex XORs the
  identifiers of its incident ``S``-edges; a descendants' XOR-sum then makes
  each tree edge ``(u, parent(u))`` see the XOR over its subtree — edges of
  ``S`` with both endpoints inside cancel, so the XOR is nonzero iff some
  ``S``-edge leaves the subtree, i.e. iff the tree edge is covered.
  Uncovered edges are *deterministically* reported uncovered; covered edges
  are misreported with probability at most ``2^{-10 log2 n}``.

* **Lemma 5.5 — counting marked covered edges.**  With ``M_v`` = number of
  marked tree edges on the root path of ``v`` (an ancestors' sum) and the
  LCA ``w`` of a non-tree edge's endpoints recovered from light-edge lists
  (Theorem 5.3), the number of marked edges the non-tree edge covers is
  exactly ``M_u + M_v - 2 M_w``.

Both are implemented on the :class:`~repro.shortcuts.tools.ShortcutToolkit`
aggregates, so their round cost is the measured hierarchy-pass cost.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.shortcuts.tools import DistributedHld, ShortcutToolkit

__all__ = ["CoverDetector", "CoverCounter55"]


class CoverDetector:
    """Lemma 5.4: which tree edges does an edge set ``S`` cover?"""

    def __init__(self, toolkit: ShortcutToolkit, seed: int = 0) -> None:
        self.toolkit = toolkit
        self.tree = toolkit.tree
        self.bits = 10 * max(1, (toolkit.tree.n - 1).bit_length())
        self.rng = random.Random(seed)

    def covered_edges(self, s_edges: Iterable[tuple[int, int]]) -> list[bool]:
        """``out[v]`` — is the tree edge ``(v, parent(v))`` covered by ``S``?

        One-sided error: ``False`` answers are always correct; each ``True``
        answer is wrong with probability ``2^-bits``.
        """
        tree = self.tree
        x = [0] * tree.n
        for u, v in s_edges:
            rid = self.rng.getrandbits(self.bits)
            x[u] ^= rid
            x[v] ^= rid
        sub_xor = self.toolkit.descendants_sum(x, combine=lambda a, b: a ^ b)
        out = [False] * tree.n
        for v in tree.tree_edges():
            out[v] = sub_xor[v] != 0
        return out


class CoverCounter55:
    """Lemma 5.5: per non-tree edge, how many *marked* tree edges it covers."""

    def __init__(self, toolkit: ShortcutToolkit, hld: DistributedHld | None = None) -> None:
        self.toolkit = toolkit
        self.tree = toolkit.tree
        self.hld = hld if hld is not None else toolkit.heavy_light()

    def counts(
        self,
        marked: Sequence[bool],
        nontree_edges: Sequence[tuple[int, int]],
    ) -> list[int]:
        """``counts[i]`` = number of marked tree edges covered by edge ``i``.

        ``marked[v]`` refers to the tree edge ``(v, parent(v))``.
        """
        tree = self.tree
        m_vals = [1 if (v != tree.root and marked[v]) else 0 for v in range(tree.n)]
        m = self.toolkit.ancestors_sum(m_vals)
        out = []
        for u, v in nontree_edges:
            w = self.hld.lca(u, v)
            out.append(m[u] + m[v] - 2 * m[w])
        return out
