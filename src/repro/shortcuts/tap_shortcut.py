"""Theorem 1.2 end to end: O(log n)-approx 2-ECSS in shortcut time.

``shortcut_two_ecss`` computes the MST, builds the fragment hierarchy with a
shortcut provider over the *communication graph*, runs the Section 5.1
parallel set cover to augment the MST, and reports both the solution and the
measured shortcut quality (``alpha + beta + gamma`` per level) that prices
the round bound ``O~((SC(G) + D) log^3 n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.tecss import rooted_mst
from repro.graphs.validation import check_two_edge_connected, ensure_weights, normalize_graph
from repro.shortcuts.providers import BestOfShortcuts
from repro.shortcuts.setcover import ParallelSetCoverResult, parallel_setcover_tap
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.trees.rooted import RootedTree

__all__ = ["shortcut_tap", "shortcut_two_ecss", "ShortcutTecssResult"]


def shortcut_tap(
    tree: RootedTree,
    links: list[tuple[int, int, float]],
    graph: nx.Graph | None = None,
    provider=None,
    eps: float = 0.23,
    seed: int = 0,
    validate: bool = True,
) -> ParallelSetCoverResult:
    """O(log n)-approximate weighted TAP via the shortcut framework."""
    hierarchy = FragmentHierarchy(tree, graph=graph, provider=provider)
    toolkit = ShortcutToolkit(hierarchy)
    return parallel_setcover_tap(
        tree, links, eps=eps, seed=seed, toolkit=toolkit, validate=validate
    )


@dataclass
class ShortcutTecssResult:
    edges: list[tuple]
    weight: float
    mst_weight: float
    aug: ParallelSetCoverResult
    diameter: int
    n: int
    shortcut_quality: float  # measured rounds of one hierarchy pass
    provider: str

    @property
    def modeled_rounds(self) -> float:
        return self.aug.modeled_rounds(self.diameter, self.shortcut_quality)

    def summary(self) -> str:
        return (
            f"shortcut 2-ECSS: n={self.n}, weight={self.weight:.2f}, "
            f"iterations={self.aug.iterations}, SC-pass={self.shortcut_quality:.0f} "
            f"rounds, modeled rounds={self.modeled_rounds:.0f}"
        )


def shortcut_two_ecss(
    graph: nx.Graph,
    provider=None,
    eps: float = 0.23,
    seed: int = 0,
    validate: bool = True,
) -> ShortcutTecssResult:
    """O(log n)-approximate weighted 2-ECSS (Theorem 1.2)."""
    ensure_weights(graph)
    check_two_edge_connected(graph)
    g, nodes, _ = normalize_graph(graph)
    tree, mst_edges = rooted_mst(g)
    mst_set = set(mst_edges)
    links = [
        (min(u, v), max(u, v), float(d["weight"]))
        for u, v, d in g.edges(data=True)
        if tuple(sorted((u, v))) not in mst_set
    ]
    prov = provider if provider is not None else BestOfShortcuts()
    hierarchy = FragmentHierarchy(tree, graph=g, provider=prov)
    toolkit = ShortcutToolkit(hierarchy)
    aug = parallel_setcover_tap(
        tree, links, eps=eps, seed=seed, toolkit=toolkit, validate=validate
    )
    mst_weight = sum(g[u][v]["weight"] for u, v in mst_edges)
    chosen = sorted(mst_set.union(tuple(sorted(l)) for l in aug.links))
    diameter = nx.diameter(g) if g.number_of_nodes() <= 4000 else -1
    used = hierarchy.levels[0].assignment.provider if hierarchy.levels else "?"
    return ShortcutTecssResult(
        edges=[(nodes[u], nodes[v]) for u, v in chosen],
        weight=mst_weight + aug.weight,
        mst_weight=mst_weight,
        aug=aug,
        diameter=diameter,
        n=g.number_of_nodes(),
        shortcut_quality=hierarchy.rounds_per_op(),
        provider=used,
    )
