"""Serving metrics: request counters and log-bucketed latency histograms.

Dependency-free and allocation-light — counters are plain ints and each
histogram is a fixed bucket array, so recording a request costs a dict
lookup and two increments.  ``/metrics`` returns :meth:`ServeMetrics.snapshot`
as JSON; percentile estimates come from the bucket upper bounds (the usual
Prometheus-style approximation), which is plenty for spotting batching or
sharding regressions.
"""

from __future__ import annotations

import bisect
import threading

__all__ = ["LatencyHistogram", "ServeMetrics", "SizeHistogram"]


class LatencyHistogram:
    """A fixed-bucket latency histogram (milliseconds, log-spaced bounds)."""

    #: Upper bounds in ms; observations above the last bound land in +inf.
    BOUNDS_MS = (
        1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
        1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
    )

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS_MS) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        self.counts[bisect.bisect_left(self.BOUNDS_MS, seconds * 1000.0)] += 1
        self.count += 1
        self.sum_s += seconds
        self.max_s = max(self.max_s, seconds)

    def quantile_ms(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile in milliseconds."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                if i < len(self.BOUNDS_MS):
                    return self.BOUNDS_MS[i]
                return self.max_s * 1000.0
        return self.max_s * 1000.0  # pragma: no cover - unreachable

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean/max, quantiles, raw buckets."""
        buckets = {
            f"le_{bound:g}ms": n
            for bound, n in zip(self.BOUNDS_MS, self.counts)
        }
        buckets["inf"] = self.counts[-1]
        mean_ms = (self.sum_s / self.count * 1000.0) if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean_ms, 3),
            "max_ms": round(self.max_s * 1000.0, 3),
            "p50_ms": self.quantile_ms(0.50),
            "p90_ms": self.quantile_ms(0.90),
            "p99_ms": self.quantile_ms(0.99),
            "buckets": buckets,
        }


class SizeHistogram:
    """A fixed-bucket histogram for small integer sizes (batch fan-in).

    Power-of-two bucket bounds: a coalesced batch of size ``s`` lands in
    the first bucket with ``s <= bound``.  Same allocation-free design as
    :class:`LatencyHistogram`, used by ``/metrics`` to show how well the
    micro-batcher is actually coalescing (the precondition for the
    scenario-vectorized solve path to see multi-query batches).
    """

    #: Inclusive upper bounds; sizes above the last bound land in +inf.
    BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total = 0
        self.max_size = 0

    def observe(self, size: int) -> None:
        """Record one size sample."""
        self.counts[bisect.bisect_left(self.BOUNDS, size)] += 1
        self.count += 1
        self.total += size
        self.max_size = max(self.max_size, size)

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean/max, raw buckets."""
        buckets = {
            f"le_{bound}": n for bound, n in zip(self.BOUNDS, self.counts)
        }
        buckets["inf"] = self.counts[-1]
        mean = (self.total / self.count) if self.count else 0.0
        return {
            "count": self.count,
            "mean": round(mean, 3),
            "max": self.max_size,
            "buckets": buckets,
        }


class ServeMetrics:
    """Named counters plus per-route latency and size histograms.

    Thread-safe: recording is a read-modify-write (``counters[name] += by``
    spans several bytecodes, and a histogram observe touches four fields),
    so concurrent writers — the event loop plus the inline worker thread,
    or any embedding that records from an executor — would lose updates
    without the lock.  The lock is uncontended in the common single-writer
    case, so the cost stays one ``with`` per record.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.latency: dict[str, LatencyHistogram] = {}
        self.sizes: dict[str, SizeHistogram] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, by: int = 1) -> None:
        """Increment a named counter (created on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + by

    def observe(self, route: str, seconds: float) -> None:
        """Record one request latency under a route label."""
        with self._lock:
            hist = self.latency.get(route)
            if hist is None:
                hist = self.latency[route] = LatencyHistogram()
            hist.observe(seconds)

    def observe_size(self, name: str, size: int) -> None:
        """Record one integer size sample under a histogram label."""
        with self._lock:
            hist = self.sizes.get(name)
            if hist is None:
                hist = self.sizes[name] = SizeHistogram()
            hist.observe(size)

    def snapshot(self) -> dict:
        """JSON-safe view of every counter and histogram (sorted keys)."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "latency": {
                    route: hist.snapshot()
                    for route, hist in sorted(self.latency.items())
                },
                "sizes": {
                    name: hist.snapshot()
                    for name, hist in sorted(self.sizes.items())
                },
            }
