"""Load generation for the serving layer: zipf-skewed solve traffic.

Models the traffic the service is built for — a fleet of users
re-querying a skewed set of network topologies with shifting weight
scenarios.  Topologies are drawn from the :mod:`repro.graphs` family
registry; popularity follows a zipf law (rank ``r`` drawn with
probability proportional to ``1 / (r + 1) ** s``), so a few topologies
are hot (and exercise batching + session reuse) while the tail exercises
registration and worker LRU churn.

Four traffic modes:

* **closed loop** — ``concurrency`` workers each keep exactly one request
  in flight (classic throughput measurement; the benchmark uses this);
* **open loop** — requests fire at a fixed ``rate``/s regardless of
  completions (latency under load, queueing behavior);
* **drift** — closed-loop discipline, but after registering each topology
  the workers send sparse ``/v1/delta`` requests (``drift_edges`` of the
  edges re-jittered against the baseline per request) — the
  weights-drift-slowly traffic the incremental re-solve path exists for.
  A delta answered ``unknown-topology`` (server restart, store eviction)
  degrades to one full ``/v1/solve`` carrying the graph plus the
  equivalent full weight column, counted as a ``reregistrations`` — never
  an error;
* **montecarlo** — closed-loop workers hammering **one** topology with
  ``/v1/solve_batch`` requests of ``batch`` weight-perturbation scenarios
  each (``drift_edges`` of the edges scaled up per scenario) — the
  what-if sweep shape the scenario-vectorized solve path exists for.
  With ``binary=True`` the weight columns ride the binary frame encoding
  (:func:`repro.serve.protocol.pack_frame`) instead of JSON decimal text,
  and responses are requested framed too.

Each worker holds one keep-alive connection (:class:`HttpClient`, asyncio
streams, stdlib only).  The first request for a topology ships the full
graph; subsequent requests reference the returned ``topology`` fingerprint
and attach one of ``scenarios`` per-topology weight columns — the
repeated-reweight pattern.  If the server answers ``unknown-topology``
(restart, store eviction), the generator re-registers transparently and
counts a ``reregistrations`` instead of an error.

The summary dict (also printed by ``python -m repro loadgen``) reports
throughput, latency percentiles, observed batch sizes, and — the CI smoke
gate — ``protocol_errors``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field

from repro.serve.protocol import (
    FRAME_CONTENT_TYPE,
    PROTOCOL_VERSION,
    graph_payload,
    pack_frame,
    unpack_frame,
)

__all__ = ["HttpClient", "LoadgenConfig", "run_loadgen"]


class HttpClient:
    """A minimal keep-alive HTTP/1.1 JSON client on asyncio streams.

    Speaks both wire encodings: :meth:`request` sends plain JSON,
    :meth:`request_framed` sends a binary frame (weight arrays as raw
    float64) and asks for a framed response; either way the caller gets
    back ``(status, payload dict)``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        """Open (or reopen) the connection."""
        await self.close()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection if open."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One JSON request/response round trip (reconnects once)."""
        body = b"" if payload is None else json.dumps(payload).encode()
        return await self._round_trip(
            method, path, body, "application/json", accept_frame=False
        )

    async def request_framed(
        self, method: str, path: str, header: dict, arrays: list
    ) -> tuple[int, dict]:
        """One binary-framed round trip: request and response framed.

        ``header`` is the request body with ``{"__frame__": k}`` nodes
        standing for ``arrays[k]`` (see
        :func:`repro.serve.protocol.pack_frame`); the ``Accept`` header
        asks the server to frame its response, which is decoded back to
        the payload dict transparently.
        """
        body = pack_frame(header, arrays)
        return await self._round_trip(
            method, path, body, FRAME_CONTENT_TYPE, accept_frame=True
        )

    async def _round_trip(
        self,
        method: str,
        path: str,
        body: bytes,
        content_type: str,
        accept_frame: bool,
    ) -> tuple[int, dict]:
        """Send one prepared request; reconnects on a dead socket."""
        if self._writer is None:
            await self.connect()
        accept = FRAME_CONTENT_TYPE if accept_frame else "application/json"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Accept: {accept}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()
        except (
            ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError
        ):
            # One transparent retry on a fresh connection (the server may
            # have closed an idle keep-alive socket under us).
            await self.connect()
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()

    async def _read_response(self) -> tuple[int, dict]:
        """Parse one status line + headers + Content-Length body.

        A body labeled with the frame content type is decoded with
        :func:`repro.serve.protocol.unpack_frame`; anything else is JSON.
        """
        line = await self._reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(line.decode("latin-1").split()[1])
        length = 0
        close = False
        framed = False
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            key = name.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and value.strip().lower() == "close":
                close = True
            elif key == "content-type":
                framed = value.strip().lower().startswith(FRAME_CONTENT_TYPE)
        body = await self._reader.readexactly(length) if length else b""
        if close:
            await self.close()
        if not body:
            return status, {}
        return status, unpack_frame(body) if framed else json.loads(body)


@dataclass
class LoadgenConfig:
    """Tunables of one load-generation run (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Stop after this many seconds (or after ``requests``, if set).
    duration_s: float = 10.0
    requests: int | None = None
    #: ``"closed"`` (concurrency workers), ``"open"`` (fixed rate),
    #: ``"drift"`` (closed-loop sparse ``/v1/delta`` traffic) or
    #: ``"montecarlo"`` (closed-loop batched weight scenarios against one
    #: topology via ``/v1/solve_batch``).
    mode: str = "closed"
    concurrency: int = 4
    rate: float = 20.0
    #: Scenarios per ``/v1/solve_batch`` request (``montecarlo`` mode).
    batch: int = 8
    #: Ship weight columns as binary frames (``montecarlo`` mode).
    binary: bool = False
    #: Topology universe: families cycled, ``topologies`` instances of
    #: roughly ``size`` nodes, zipf-skewed popularity with exponent
    #: ``zipf_s``.
    families: tuple[str, ...] = ("cycle_chords", "grid")
    size: int = 120
    topologies: int = 8
    zipf_s: float = 1.1
    #: Distinct weight scenarios cycled per topology (the reweight knob);
    #: 0 always solves the registered baseline weights.
    scenarios: int = 4
    #: Fraction of each topology's edges re-jittered per ``drift`` delta.
    drift_edges: float = 0.01
    seed: int = 0
    eps: float = 0.5
    variant: str = "improved"
    backend: str | None = None
    engine: str | None = None
    #: Ask the server for its per-phase ``timings`` block on every
    #: request and fold the answers into the summary's
    #: ``server_phases_ms`` — where a run's latency actually went
    #: (parse / batch wait / dispatch / solve phases / serialize).
    timings: bool = True


class _Traffic:
    """Pre-built topology universe + seeded samplers (shared by workers)."""

    def __init__(self, cfg: LoadgenConfig) -> None:
        from repro.graphs.families import make_family_instance

        self.cfg = cfg
        self.rng = random.Random(cfg.seed)
        self.topologies: list[dict] = []
        for i in range(cfg.topologies):
            family = cfg.families[i % len(cfg.families)]
            graph = make_family_instance(family, cfg.size, seed=cfg.seed + i)
            payload = graph_payload(graph)
            base = [w for _, _, w in payload["edges"]]
            jitter = random.Random(f"{cfg.seed}:{i}:scenario")
            columns = [
                [w * jitter.uniform(0.8, 1.25) for w in base]
                for _ in range(cfg.scenarios)
            ]
            self.topologies.append({
                "family": family,
                "graph": payload,
                "columns": columns,
                "drift": random.Random(f"{cfg.seed}:{i}:drift"),
                "key": None,  # filled from the first response
                "uses": 0,
            })
        weights = [1.0 / (rank + 1) ** cfg.zipf_s
                   for rank in range(cfg.topologies)]
        total = sum(weights)
        self.popularity = [w / total for w in weights]

    def next_request(self) -> tuple[dict, str, dict, dict | None]:
        """Sample one topology; build ``(topo, path, body, fallback)``.

        ``fallback`` is set only for drift-mode delta bodies: the full
        ``/v1/solve`` equivalent (graph + patched weight column) the
        client degrades to when the server answers ``unknown-topology``.
        """
        (index,) = self.rng.choices(
            range(len(self.topologies)), weights=self.popularity
        )
        topo = self.topologies[index]
        body = self._query_params()
        if self.cfg.mode == "drift" and topo["key"] is not None:
            return (topo, "/v1/delta") + self._drift_body(topo, body)
        if topo["key"] is None:
            body["graph"] = topo["graph"]
        else:
            body["topology"] = topo["key"]
        if self.cfg.mode != "drift" and topo["columns"]:
            body["weights"] = topo["columns"][topo["uses"] % len(topo["columns"])]
        topo["uses"] += 1
        return topo, "/v1/solve", body, None

    def _query_params(self) -> dict:
        """The shared query-parameter skeleton of every generated request."""
        body: dict = {
            "protocol": PROTOCOL_VERSION,
            "eps": self.cfg.eps,
            "variant": self.cfg.variant,
        }
        if self.cfg.backend is not None:
            body["backend"] = self.cfg.backend
        if self.cfg.engine is not None:
            body["engine"] = self.cfg.engine
        if self.cfg.timings:
            body["timings"] = True
        return body

    def montecarlo_request(self) -> tuple[dict, dict, list]:
        """One ``/v1/solve_batch`` body of ``batch`` perturbed scenarios.

        Always targets topology 0 (the Monte-Carlo shape is one network,
        many weight what-ifs).  Each scenario scales ``drift_edges`` of
        the edges up by a random factor against the registered baseline.
        Returns ``(topo, header, arrays)``: the weight columns live in
        ``arrays`` with ``{"__frame__": k}`` references in the header, so
        the caller either ships them as a binary frame directly or
        substitutes them back for the plain-JSON encoding.
        """
        topo = self.topologies[0]
        rng = topo["drift"]
        edges = topo["graph"]["edges"]
        base = [w for _, _, w in edges]
        k = min(len(base), max(1, round(self.cfg.drift_edges * len(base))))
        sub_requests = []
        arrays: list[list[float]] = []
        for _ in range(max(1, self.cfg.batch)):
            column = list(base)
            for i in rng.sample(range(len(base)), k):
                column[i] = column[i] * rng.uniform(1.0, 3.0)
            item = self._query_params()
            if topo["key"] is None:
                # Registration round: every scenario carries the graph
                # (items of a batch are handled concurrently, so only the
                # first carrying it would race the topology store).
                item["graph"] = topo["graph"]
            else:
                item["topology"] = topo["key"]
            item["weights"] = {"__frame__": len(arrays)}
            arrays.append(column)
            sub_requests.append(item)
            topo["uses"] += 1
        return topo, {"requests": sub_requests}, arrays

    def _drift_body(self, topo: dict, body: dict) -> tuple[dict, dict]:
        """One sparse delta against the baseline, plus its full fallback.

        Each delta re-jitters ``drift_edges`` of the edges relative to the
        *registered* weights — the diff-against-base semantics
        ``/v1/delta`` defines, so consecutive deltas are independent and a
        lost/retried one changes nothing.
        """
        edges = topo["graph"]["edges"]
        rng = topo["drift"]
        k = min(len(edges), max(1, round(self.cfg.drift_edges * len(edges))))
        chosen = rng.sample(range(len(edges)), k)
        column = [w for _, _, w in edges]
        delta = []
        for i in chosen:
            u, v, w = edges[i]
            column[i] = w * rng.uniform(0.8, 1.25)
            delta.append([u, v, column[i]])
        body["topology"] = topo["key"]
        body["delta"] = delta
        fallback = {
            k_: v_ for k_, v_ in body.items()
            if k_ not in ("topology", "delta")
        }
        fallback["graph"] = topo["graph"]
        fallback["weights"] = column
        topo["uses"] += 1
        return body, fallback


@dataclass
class _Tally:
    """Mutable run accounting shared by the worker tasks."""

    sent: int = 0
    ok: int = 0
    deltas: int = 0
    frames: int = 0
    protocol_errors: int = 0
    transport_errors: int = 0
    reregistrations: int = 0
    error_codes: dict = field(default_factory=dict)
    latencies_s: list = field(default_factory=list)
    batch_sizes: list = field(default_factory=list)
    server_phases: dict = field(default_factory=dict)

    def record_error(self, code: str) -> None:
        """Count one protocol error by code."""
        self.protocol_errors += 1
        self.error_codes[code] = self.error_codes.get(code, 0) + 1

    def record_timings(self, timings) -> None:
        """Fold one response's ``timings`` block into the phase totals."""
        if not isinstance(timings, dict):
            return
        for name, cell in timings.items():
            if not isinstance(cell, dict):
                continue
            slot = self.server_phases.setdefault(name, [0, 0.0])
            slot[0] += int(cell.get("count", 0))
            slot[1] += float(cell.get("total_ms", 0.0))


async def _issue_batch(
    client: HttpClient, traffic: _Traffic, tally: _Tally
) -> None:
    """Send one montecarlo ``/v1/solve_batch``; account per scenario.

    ``ok`` counts successful *scenarios* (sub-responses), so montecarlo
    throughput is solves per second, comparable with the other modes.
    """
    cfg = traffic.cfg
    topo, header, arrays = traffic.montecarlo_request()
    tally.sent += 1
    t0 = time.perf_counter()
    try:
        if cfg.binary:
            tally.frames += 1
            status, payload = await client.request_framed(
                "POST", "/v1/solve_batch", header, arrays
            )
        else:
            plain = {"requests": [
                {**item, "weights": arrays[item["weights"]["__frame__"]]}
                for item in header["requests"]
            ]}
            status, payload = await client.request(
                "POST", "/v1/solve_batch", plain
            )
    except (OSError, asyncio.IncompleteReadError, ValueError):
        tally.transport_errors += 1
        await client.close()
        return
    tally.latencies_s.append(time.perf_counter() - t0)
    responses = payload.get("responses")
    if status != 200 or not isinstance(responses, list):
        error = payload.get("error") or {}
        tally.record_error(error.get("code", f"http-{status}"))
        return
    for item in responses:
        error = item.get("error")
        if item.get("status") == 200 and not error:
            topo["key"] = item.get("topology", topo["key"])
            tally.ok += 1
            tally.record_timings(item.get("timings"))
            server = item.get("server", {})
            if "batch_size" in server:
                tally.batch_sizes.append(server["batch_size"])
        elif (error or {}).get("code") == "unknown-topology":
            # Store/worker eviction: re-register on the next request.
            topo["key"] = None
            tally.reregistrations += 1
        else:
            tally.record_error(
                (error or {}).get("code", f"http-{item.get('status')}")
            )


async def _issue(
    client: HttpClient, traffic: _Traffic, tally: _Tally
) -> None:
    """Send one sampled request and account for its outcome."""
    if traffic.cfg.mode == "montecarlo":
        await _issue_batch(client, traffic, tally)
        return
    topo, path, body, fallback = traffic.next_request()
    tally.sent += 1
    if path == "/v1/delta":
        tally.deltas += 1
    t0 = time.perf_counter()
    try:
        status, payload = await client.request("POST", path, body)
    except (OSError, asyncio.IncompleteReadError, ValueError):
        tally.transport_errors += 1
        await client.close()
        return
    tally.latencies_s.append(time.perf_counter() - t0)
    error = payload.get("error")
    if status == 200 and not error:
        topo["key"] = payload.get("topology", topo["key"])
        tally.ok += 1
        tally.record_timings(payload.get("timings"))
        server = payload.get("server", {})
        if "batch_size" in server:
            tally.batch_sizes.append(server["batch_size"])
        return
    code = (error or {}).get("code", f"http-{status}")
    if code == "unknown-topology" and "topology" in body:
        # Server forgot the topology (restart/eviction): re-register
        # transparently, as a real client would.  A delta request
        # degrades immediately to its full-solve fallback (graph + the
        # equivalent full weight column) on the same connection.  Keyed
        # off the request we sent, not ``topo["key"]`` — a concurrent
        # worker may already have cleared it for the same eviction.
        topo["key"] = None
        tally.reregistrations += 1
        if fallback is not None:
            t1 = time.perf_counter()
            try:
                status, payload = await client.request(
                    "POST", "/v1/solve", fallback
                )
            except (OSError, asyncio.IncompleteReadError, ValueError):
                tally.transport_errors += 1
                await client.close()
                return
            tally.latencies_s.append(time.perf_counter() - t1)
            error = payload.get("error")
            if status == 200 and not error:
                topo["key"] = payload.get("topology", topo["key"])
                tally.ok += 1
                tally.record_timings(payload.get("timings"))
                return
            tally.record_error(
                (error or {}).get("code", f"http-{status}")
            )
        return
    tally.record_error(code)


async def _closed_loop(cfg, traffic, tally, deadline) -> None:
    """``concurrency`` workers, one request in flight each."""
    async def worker() -> None:
        """One closed-loop client: a single request in flight."""
        client = HttpClient(cfg.host, cfg.port)
        try:
            while time.perf_counter() < deadline and (
                cfg.requests is None or tally.sent < cfg.requests
            ):
                await _issue(client, traffic, tally)
        finally:
            await client.close()

    await asyncio.gather(*(worker() for _ in range(cfg.concurrency)))


async def _open_loop(cfg, traffic, tally, deadline) -> None:
    """Fixed-rate arrivals over a small connection pool."""
    pool: asyncio.Queue = asyncio.Queue()
    for _ in range(max(2, cfg.concurrency)):
        pool.put_nowait(HttpClient(cfg.host, cfg.port))
    pending: set[asyncio.Task] = set()

    async def fire() -> None:
        """One open-loop arrival on a pooled connection."""
        client = await pool.get()
        try:
            await _issue(client, traffic, tally)
        finally:
            pool.put_nowait(client)

    interval = 1.0 / max(cfg.rate, 0.001)
    next_at = time.perf_counter()
    while time.perf_counter() < deadline and (
        cfg.requests is None or tally.sent + len(pending) < cfg.requests
    ):
        now = time.perf_counter()
        if now < next_at:
            await asyncio.sleep(next_at - now)
        next_at += interval
        task = asyncio.ensure_future(fire())
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    while not pool.empty():
        await pool.get_nowait().close()


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


async def _run(cfg: LoadgenConfig) -> dict:
    """Drive one load-generation run and summarize it."""
    # Fail fast on an unreachable/unhealthy server: one probe up front
    # beats a run's worth of per-request transport errors.
    probe = HttpClient(cfg.host, cfg.port)
    try:
        status, _ = await probe.request("GET", "/healthz")
        if status != 200:
            raise ConnectionRefusedError(
                f"/healthz answered {status}; is this a repro serve "
                "instance?"
            )
    finally:
        await probe.close()
    traffic = _Traffic(cfg)
    tally = _Tally()
    t0 = time.perf_counter()
    deadline = t0 + cfg.duration_s
    if cfg.mode == "open":
        await _open_loop(cfg, traffic, tally, deadline)
    elif cfg.mode in ("closed", "drift", "montecarlo"):
        await _closed_loop(cfg, traffic, tally, deadline)
    else:
        raise ValueError(
            f"mode must be 'closed', 'open', 'drift' or 'montecarlo', "
            f"got {cfg.mode!r}"
        )
    wall = time.perf_counter() - t0
    # One /metrics poll after the run: surface the server's scenario-
    # vectorization routing counters next to the client-side tallies.
    solver = {"vectorized_batches": 0, "scalar_fallback": 0}
    probe = HttpClient(cfg.host, cfg.port)
    try:
        status, metrics_payload = await probe.request("GET", "/metrics")
        if status == 200:
            solver.update(metrics_payload.get("solver", {}))
    except (OSError, asyncio.IncompleteReadError, ValueError):
        pass  # metrics are best-effort decoration of the summary
    finally:
        await probe.close()
    lat = tally.latencies_s
    return {
        "mode": cfg.mode,
        "duration_s": round(wall, 3),
        "requests": tally.sent,
        "ok": tally.ok,
        "deltas": tally.deltas,
        "frames": tally.frames,
        "protocol_errors": tally.protocol_errors,
        "transport_errors": tally.transport_errors,
        "reregistrations": tally.reregistrations,
        "error_codes": dict(sorted(tally.error_codes.items())),
        "throughput_rps": round(tally.ok / wall, 3) if wall > 0 else 0.0,
        "latency_ms": {
            "mean": round(sum(lat) / len(lat) * 1000, 3) if lat else 0.0,
            "p50": round(_percentile(lat, 0.50) * 1000, 3),
            "p90": round(_percentile(lat, 0.90) * 1000, 3),
            "p99": round(_percentile(lat, 0.99) * 1000, 3),
            "max": round(max(lat) * 1000, 3) if lat else 0.0,
        },
        "batch_size": {
            "mean": round(
                sum(tally.batch_sizes) / len(tally.batch_sizes), 3
            ) if tally.batch_sizes else 0.0,
            "max": max(tally.batch_sizes, default=0),
        },
        "solver": solver,
        "server_phases_ms": {
            name: {
                "count": count,
                "total_ms": round(total, 3),
                "mean_ms": round(total / count, 3) if count else 0.0,
            }
            for name, (count, total) in sorted(tally.server_phases.items())
        },
        "topologies": cfg.topologies,
        "zipf_s": cfg.zipf_s,
        "scenarios": cfg.scenarios,
        "drift_edges": cfg.drift_edges,
    }


def run_loadgen(cfg: LoadgenConfig, spawn=None) -> dict:
    """Run the generator (blocking); optionally spawn the target server.

    ``spawn`` is a :class:`repro.serve.app.ServeConfig`: the server is
    started in-process on an ephemeral port, the run is pointed at it, and
    it is drained afterwards — the one-command path the CI smoke job uses
    (``python -m repro loadgen --spawn ... --check``).
    """
    async def main() -> dict:
        """Optionally boot the server, then run the generator."""
        if spawn is None:
            return await _run(cfg)
        from repro.serve.app import ServeApp
        from repro.serve.server import HttpServer

        server = HttpServer(ServeApp(spawn), port=0)
        await server.start()
        cfg.host, cfg.port = server.host, server.port
        try:
            return await _run(cfg)
        finally:
            await server.aclose()

    return asyncio.run(main())
