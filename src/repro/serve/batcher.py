"""Per-topology micro-batching: coalesce concurrent requests into one flush.

The serving hot path is many users querying the *same* topology with
shifting weights/failures.  :class:`MicroBatcher` holds each incoming
request for at most ``max_delay`` seconds; every request for the same key
(the topology fingerprint) that arrives inside that window joins the same
batch, and the whole batch is handed to one ``flush`` call — which the app
turns into a single :meth:`repro.runtime.session.SolverSession.solve_many`
inside the worker that owns the topology.  A batch also flushes early the
moment it reaches ``max_batch`` items, so the delay knob bounds latency
and the batch knob bounds worker payload size.

The batcher is engine-agnostic: ``flush(key, items)`` is any coroutine
returning one result per item, in order.  Failures propagate to every
waiter in the batch; a flush returning the wrong number of results is a
programming error and is surfaced as one.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrently-pending items per key (see module docstring).

    Parameters
    ----------
    flush:
        ``async (key, items) -> list[results]`` with ``len(results) ==
        len(items)``, results in item order.
    max_batch:
        Flush as soon as a key has this many pending items.
    max_delay:
        Seconds the first item of a batch waits for company before the
        batch flushes anyway.  ``0`` still yields to the event loop once,
        so truly concurrent submitters coalesce even with no added delay.
    """

    def __init__(
        self,
        flush: Callable[[str, list], Awaitable[list]],
        max_batch: int = 16,
        max_delay: float = 0.002,
    ) -> None:
        self._flush = flush
        self.max_batch = max(1, max_batch)
        self.max_delay = max(0.0, max_delay)
        self._pending: dict[str, list[tuple[object, asyncio.Future]]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self.stats = {
            "submitted": 0, "batches": 0, "max_batch_observed": 0,
            "flush_size": 0, "flush_timer": 0, "flush_drain": 0,
        }

    async def submit(self, key: str, item) -> object:
        """Queue one item under ``key``; return its flush result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append((item, future))
        self.stats["submitted"] += 1
        if len(bucket) >= self.max_batch:
            self._kick(key, "flush_size")
        elif len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self.max_delay, self._kick, key, "flush_timer"
            )
        return await future

    def _kick(self, key: str, reason: str) -> None:
        """Detach ``key``'s bucket and launch its flush task."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(key, None)
        if not bucket:
            return
        self.stats["batches"] += 1
        self.stats[reason] += 1
        self.stats["max_batch_observed"] = max(
            self.stats["max_batch_observed"], len(bucket)
        )
        task = asyncio.get_running_loop().create_task(
            self._run_flush(key, bucket)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_flush(
        self, key: str, bucket: list[tuple[object, asyncio.Future]]
    ) -> None:
        """Run one flush and deliver results/exceptions to the waiters."""
        items = [item for item, _ in bucket]
        try:
            results = await self._flush(key, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except Exception as exc:  # noqa: BLE001 - delivered to every waiter
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(bucket, results):
            if not future.done():
                future.set_result(result)

    def pending(self) -> int:
        """Items queued but not yet flushed (drain/debug introspection)."""
        return sum(len(b) for b in self._pending.values())

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight flushes.

        The graceful-shutdown half of the batching contract: after
        ``drain()`` returns, every submitted item has been resolved one
        way or the other and no flush task is running.
        """
        for key in list(self._pending):
            self._kick(key, "flush_drain")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def snapshot(self) -> dict:
        """JSON-safe batching statistics plus current queue depth."""
        return {**self.stats, "pending": self.pending()}
