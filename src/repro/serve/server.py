"""Hand-rolled HTTP/1.1 on ``asyncio`` streams — the serving transport.

Stdlib only, matching the project's minimal-deps stance: requests are
parsed straight off the stream reader (request line, headers,
``Content-Length`` body), handed to :meth:`repro.serve.app.ServeApp.handle`,
and answered as JSON with keep-alive connections so a load generator can
pipeline thousands of requests over a handful of sockets.  The subset of
HTTP implemented is exactly what the protocol needs — no chunked encoding,
no TLS, and exactly one piece of content negotiation: a request whose
``Accept`` includes :data:`repro.serve.protocol.FRAME_CONTENT_TYPE` gets
its response wrapped in a binary frame (the app handles framed *request*
bodies via the ``Content-Type`` it is passed).  Malformed requests are
answered with the protocol's structured errors, never a traceback.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.protocol import FRAME_CONTENT_TYPE, error_payload, pack_frame

__all__ = ["HttpServer", "run_server"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_HEADERS = 100

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
}


class _BadHttp(Exception):
    """A request the HTTP layer itself must reject (status attached)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """One listening serving instance: app + asyncio stream server.

    ``port=0`` binds an ephemeral port; :attr:`port` holds the real one
    after :meth:`start` — the tests and the spawned load generator rely
    on that.
    """

    def __init__(
        self,
        app: ServeApp | None = None,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.app = app or ServeApp()
        self.host = host if host is not None else self.app.config.host
        self.port = port if port is not None else self.app.config.port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        #: Connections currently processing a request (vs idle keep-alive).
        self._busy: set[asyncio.Task] = set()
        #: Set by aclose(): handlers finish their in-flight request, send
        #: the response with ``Connection: close``, and exit the loop.
        self._closing = False

    async def start(self) -> None:
        """Start the app (worker pool) and begin accepting connections."""
        await self.app.startup()
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            raise RuntimeError("call start() first")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, settle open connections, drain, stop workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections are parked in readline() and would
        # stall a graceful-wait forever: cancel them right away.  Busy
        # handlers see the closing flag, answer their in-flight request
        # with ``Connection: close``, and exit on their own — the timeout
        # only cancels genuinely stuck stragglers.
        self._closing = True
        for task in list(self._connections - self._busy):
            task.cancel()
        busy = list(self._busy)
        if busy:
            _, pending = await asyncio.wait(busy, timeout=5.0)
            for task in pending:
                task.cancel()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        await self.app.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: a keep-alive loop of request/response."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader, writer)
                except _BadHttp as exc:
                    await self._write_response(
                        writer, exc.status,
                        error_payload("bad-http", str(exc)),
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, path, body, headers, keep_alive = parsed
                if task is not None:
                    self._busy.add(task)
                try:
                    status, payload = await self.app.handle(
                        method, path, body, headers
                    )
                    keep_alive = keep_alive and not self._closing
                    await self._write_response(
                        writer, status, payload, keep_alive=keep_alive,
                        framed=FRAME_CONTENT_TYPE
                        in headers.get("accept", ""),
                    )
                finally:
                    if task is not None:
                        self._busy.discard(task)
                if not keep_alive:
                    break
        except (
            ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):
                pass

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        """Parse one request; ``None`` on clean EOF before a request line."""
        try:
            return await self._parse_request(reader, writer)
        except ValueError as exc:
            # StreamReader raises LimitOverrunError/ValueError when a line
            # exceeds its buffer limit (64 KiB default) — answer 400, the
            # same as our own oversize-header guard, instead of dying.
            raise _BadHttp(400, f"unparseable request: {exc}") from None

    async def _parse_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        """The raw parse behind :meth:`_read_request` (may raise ValueError)."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise _BadHttp(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _BadHttp(400, "malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _BadHttp(400, "truncated headers")
            if len(raw) > _MAX_HEADER_LINE:
                raise _BadHttp(400, "header line too long")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _BadHttp(400, f"malformed header {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadHttp(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadHttp(400, "malformed Content-Length") from None
        if length < 0 or length > self.app.config.max_body:
            raise _BadHttp(413, f"body of {length} bytes exceeds the limit")
        if headers.get("expect", "").lower() == "100-continue":
            # curl sends this for bodies over 1 KiB and waits up to a
            # second before giving up on the ack; answer immediately.
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        default = "keep-alive" if version == "HTTP/1.1" else "close"
        keep_alive = headers.get("connection", default).lower() != "close"
        path = target.split("?", 1)[0]
        return method.upper(), path, body, headers, keep_alive

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        framed: bool = False,
    ) -> None:
        """Serialize one response with explicit framing headers.

        ``framed`` wraps the payload in a zero-array binary frame whose
        header is serialized with the same compact separators as the
        plain path — a framed response therefore decodes to the
        byte-identical JSON body a plain client would have received.
        """
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        content_type = "application/json"
        if framed:
            body = pack_frame(payload)
            content_type = FRAME_CONTENT_TYPE
        reason = _STATUS_TEXT.get(status, "Response")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def _serve(config: ServeConfig, ready=None) -> None:
    """Start a server and run until cancelled (KeyboardInterrupt drains)."""
    server = HttpServer(ServeApp(config))
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(mode={config.mode}, workers={config.workers}, "
        f"max_batch={config.max_batch}, max_delay={config.max_delay_ms}ms)",
        flush=True,
    )
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking CLI entry point for ``python -m repro serve``.

    A SIGINT/Ctrl-C lands either as a ``KeyboardInterrupt`` (3.10) or as
    a clean cancellation of the serve task (3.11+ ``asyncio.Runner``);
    both paths drain gracefully and exit 0.
    """
    try:
        asyncio.run(_serve(config or ServeConfig()))
    except KeyboardInterrupt:
        pass
    print("repro serve: shut down cleanly", flush=True)
    return 0
