"""The serving wire protocol: versioned JSON requests, canonical results.

Everything that crosses the HTTP boundary is defined here, in one place,
so the server (:mod:`repro.serve.app`), the workers
(:mod:`repro.serve.workers`), the load generator
(:mod:`repro.serve.loadgen`) and the differential tests all share one
schema.  The protocol is versioned (:data:`PROTOCOL_VERSION`); a request
naming a different version is rejected with a structured error instead of
being misinterpreted.

**Requests** (``POST /v1/solve``) mirror
:class:`repro.runtime.session.SolveQuery` — ``eps`` / ``variant`` /
``segmented`` / ``validate`` / ``backend`` / ``engine`` /
``simulate_mst`` — plus the graph itself and two serving-only fields:

* ``graph``: ``{"nodes": [...], "edges": [[u, v, w], ...]}`` — the full
  weighted edge list (int or str node labels, ``w >= 0``).  ``nodes`` is
  optional (defaulting to edge-encounter order) but part of the graph's
  identity: node order drives normalization and MST tie-breaking, so two
  payloads differing only in node order are different topologies — and
  :func:`graph_payload` always emits it so a served solve is bit-identical
  to a one-shot call on the original ``nx.Graph``.  The response echoes a
  ``topology`` fingerprint of this payload;
* ``topology``: that fingerprint, sent *instead of* ``graph`` by clients
  re-querying a topology the server already knows (the repeated-reweight
  traffic the service exists for) — typically combined with
* ``weights``: a per-request weight column aligned with the registered
  edge order (:meth:`repro.runtime.handle.GraphHandle.reweight`);
* ``failures``: a failure-plan spec (see
  :func:`failure_plan_from_payload`) for engines with the
  ``failure-injection`` capability.

``POST /v1/delta`` is the sparse counterpart of a topology + ``weights``
re-query: ``{"topology": ..., "delta": [[u, v, w], ...]}`` names only the
edges whose weights drifted, *as diffs against the registered baseline
weights* (idempotent and order-independent, so batcher coalescing and
client retries are safe).  It is parsed by :func:`parse_delta_request`
into the same :class:`SolveRequest` shape (``delta`` field set) and served
by the incremental plan-derivation path
(:meth:`repro.runtime.session.SolverSession.solve` with
``weights_delta``), bit-identical to the equivalent full-column request.
A delta request can never register a topology: when the server no longer
knows the fingerprint it answers a structured ``unknown-topology`` 404 and
the client degrades to a full ``/v1/solve`` with graph + weight column.

The schema's k-readiness paid off: the k-ECSS generalization (Dory,
arXiv:1805.07764) is the optional ``k`` field (default 2, so version 1
clients are unaffected).  ``k`` rides both ``/v1/solve`` and
``/v1/solve_batch``; unsupported values — non-integers, ``k < 2``, or
``k`` above the :data:`repro.core.k_ecss.MAX_K` capability advertised by
``GET /backends`` — are rejected with the stable ``unsupported-k`` code,
and ``/v1/delta`` rejects any ``k != 2`` outright (its incremental path
re-solves 2-ECSS baselines only; silently downgrading would be wrong).

**Responses** carry the solve result serialized by
:func:`result_to_payload` — a *canonical* JSON form (tuples to lists, int
dict keys to strings, exact float round-trip) with the property that the
payload built from a one-shot
:func:`repro.core.tecss.approximate_two_ecss` /
:func:`repro.dist.pipeline.distributed_two_ecss` call compares ``==`` to
the JSON-decoded wire payload for the same parameters.  That equality is
the serving layer's bit-identity contract, held by
``tests/test_serve_wire.py``.

**Binary frames** are the opt-in wire encoding for weight-heavy bodies,
negotiated by content type (:data:`FRAME_CONTENT_TYPE`; JSON remains the
default and the fallback).  A frame is the magic :data:`FRAME_MAGIC`, a
length-prefixed JSON header, and length-prefixed little-endian float64
arrays; any header node of the form ``{"__frame__": k}`` stands for array
``k``, so a ``/v1/solve_batch`` body ships its scenario weight columns as
raw doubles instead of decimal text (~2.6x smaller, no float parsing) while
the header keeps the full JSON schema.  :func:`unpack_frame` substitutes
the arrays back, making a framed request *equal as a parsed object* to its
JSON twin — note the arrays are float64 by declaration, so the JSON twin
of a framed request writes its weights as floats (``1.0``, not ``1``).
Responses to clients that ``Accept`` the frame type wrap the exact JSON
payload in a zero-array frame.  Malformed frames fail with the structured
``bad-frame`` code, never a struct error.

**Errors** are structured JSON, never tracebacks:
``{"protocol": 1, "error": {"code": ..., "message": ..., "field": ...}}``
with the HTTP status carried by :class:`ProtocolError`.
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # heavy imports stay lazy at runtime
    import networkx as nx

    from repro.core.result import KEcssResult, TapResult, TwoEcssResult
    from repro.sim.failures import FailurePlan

__all__ = [
    "ERROR_CODES",
    "FRAME_CONTENT_TYPE",
    "FRAME_MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SolveRequest",
    "error_payload",
    "failure_plan_from_payload",
    "fingerprint_graph",
    "graph_from_payload",
    "graph_payload",
    "pack_frame",
    "parse_delta_request",
    "parse_graph_payload",
    "parse_solve_request",
    "result_to_payload",
    "unpack_frame",
]

#: Version tag of the request/response schema.  Bump on breaking changes;
#: requests carrying a different ``protocol`` value are rejected.
PROTOCOL_VERSION = 1

#: Top-level request keys version 1 understands (typos fail loudly).
#: ``timings`` is additive and serving-only: it asks the server to attach
#: a per-phase timing breakdown to the response envelope — never to the
#: ``result`` payload, whose bit-identity contract is timing-free.
_REQUEST_KEYS = frozenset({
    "protocol", "graph", "topology", "weights", "failures",
    "eps", "variant", "segmented", "validate", "backend", "engine",
    "simulate_mst", "k", "timings",
})

#: Top-level keys of a ``/v1/delta`` request: a topology reference plus
#: the sparse diff — never a graph (deltas cannot register topologies)
#: and never a full weight column.  ``k`` is accepted but must be 2:
#: the delta path re-solves 2-ECSS baselines only, and silently solving
#: ``k=2`` for a ``k=3`` client would be a correctness bug.
_DELTA_KEYS = frozenset({
    "protocol", "topology", "delta",
    "eps", "variant", "segmented", "validate", "backend", "engine",
    "simulate_mst", "k", "timings",
})

_VARIANTS = ("improved", "basic")


class ProtocolError(Exception):
    """A structured request/serving error: machine-readable, never a traceback.

    ``code`` is a stable kebab-case identifier clients can dispatch on,
    ``field`` names the offending request field when there is one, and
    ``status`` is the HTTP status the server responds with.
    """

    def __init__(
        self,
        code: str,
        message: str,
        field: str | None = None,
        status: int = 400,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.field = field
        self.status = status

    def payload(self) -> dict:
        """The error as a protocol-versioned response body."""
        return error_payload(self.code, str(self), self.field)


def error_payload(code: str, message: str, field: str | None = None) -> dict:
    """Build the canonical error response body."""
    error: dict = {"code": code, "message": message}
    if field is not None:
        error["field"] = field
    return {"protocol": PROTOCOL_VERSION, "error": error}


#: The closed set of error codes this protocol version can put on the
#: wire: ``code -> (typical HTTP status, meaning)``.  Clients dispatch on
#: these strings, so the set is part of the protocol surface — every code
#: raised anywhere in ``repro.serve`` must be declared here and in the
#: error-code table of ``docs/ARCHITECTURE.md`` (the ``proto-error-code``
#: lint rule enforces both directions).
ERROR_CODES: "dict[str, tuple[int, str]]" = {
    "bad-frame": (400, "binary frame body is malformed (magic, lengths, header, or array reference)"),
    "bad-http": (400, "malformed HTTP request line, headers, or body framing"),
    "bad-json": (400, "request body is not valid JSON"),
    "bad-request": (400, "request body or parameter fails schema validation"),
    "batch-too-large": (413, "batch exceeds the server's max_batch limit"),
    "duplicate-edge": (400, "graph payload repeats an (u, v) edge"),
    "internal-error": (500, "unexpected server-side failure (bug, not user error)"),
    "invalid-failures": (400, "failure spec is malformed or references unknown edges"),
    "invalid-field": (400, "a request field has the wrong type or value"),
    "invalid-graph": (400, "graph payload is structurally malformed"),
    "invalid-request": (400, "solver-side graph format rejection (GraphFormatError)"),
    "invalid-weight": (400, "edge weight is missing, non-numeric, or non-finite"),
    "method-not-allowed": (405, "route exists but not for this HTTP method"),
    "not-connected": (422, "input graph is not connected"),
    "not-found": (404, "no such route"),
    "not-k-edge-connected": (422, "input graph has edge connectivity below k"),
    "not-two-edge-connected": (422, "input graph has a bridge; no 2-ECSS exists"),
    "solver-error": (500, "solver raised an unclassified exception"),
    "unknown-backend": (400, "backend/engine name is not registered"),
    "unknown-field": (400, "request carries a key the protocol does not define"),
    "unknown-topology": (404, "topology fingerprint is not registered on this shard"),
    "unsupported-k": (400, "k is out of the range this deployment solves"),
    "unsupported-protocol": (400, "request's protocol version is not supported"),
}


@dataclass
class SolveRequest:
    """One parsed, schema-validated solve request.

    ``graph`` holds the canonical graph payload dict
    (``{"nodes": [...], "edges": [...]}``) when the client sent one
    (``None`` for topology-referencing requests); ``topology`` is the
    fingerprint — filled in from ``graph`` at parse time, so it is always
    set on a valid request.  ``delta`` is set only for ``/v1/delta``
    requests: the validated ``[[u, v, w], ...]`` sparse diff against the
    topology's baseline weights.  Solver-level validation (feasibility,
    weight column length, delta edges existing, backend resolution)
    happens in the worker, where the session lives.
    """

    topology: str
    graph: dict | None = None
    weights: list | None = None
    delta: list | None = None
    failures: dict | None = None
    eps: float = 0.25
    variant: str = "improved"
    segmented: bool = True
    validate: bool = True
    backend: str | None = None
    engine: str | None = None
    simulate_mst: bool = False
    k: int = 2
    timings: bool = False
    extra: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# graph payloads
# ---------------------------------------------------------------------------


def fingerprint_graph(graph: dict) -> str:
    """SHA-1 fingerprint of a canonical graph payload.

    Node and edge *order* are part of the identity — normalization and
    downstream tie-breaking depend on both — and so are the baseline
    weights, since requests without a ``weights`` override solve under
    them.
    """
    payload = json.dumps(
        {"nodes": graph["nodes"], "edges": graph["edges"]},
        separators=(",", ":"),
    )
    return hashlib.sha1(payload.encode()).hexdigest()


def _check_label(
    label: object, index: int, end: str, field_name: str = "graph"
) -> None:
    """Validate one node label (int or str, bools rejected)."""
    if isinstance(label, bool) or not isinstance(label, (int, str)):
        raise ProtocolError(
            "invalid-graph",
            f"edge {index}: {end} label must be an int or str, "
            f"got {type(label).__name__}",
            field=field_name,
        )
    return label


def _check_weight(w: object, index: int, field_name: str) -> None:
    """Validate one edge weight (finite number, ``>= 0``)."""
    if isinstance(w, bool) or not isinstance(w, (int, float)):
        raise ProtocolError(
            "invalid-weight",
            f"{field_name}[{index}]: weight must be a number, "
            f"got {type(w).__name__}",
            field=field_name,
        )
    if not math.isfinite(w) or w < 0:
        raise ProtocolError(
            "invalid-weight",
            f"{field_name}[{index}]: weight must be finite and >= 0, got {w!r}",
            field=field_name,
        )
    return w


def parse_graph_payload(obj: object) -> dict:
    """Validate a graph payload; return its canonical dict form.

    Input is ``{"edges": [[u, v, w], ...]}`` with an optional ``"nodes"``
    list fixing the node order (defaulting to edge-encounter order); the
    return value always carries both keys.  Rejects — with field-level
    errors — non-list shapes, bad labels, self-loops, bad weights,
    **duplicate edges** (``nx.Graph`` would silently collapse one, last
    weight winning — exactly the kind of surprise an untrusted payload
    must not trigger), duplicate nodes, and edges whose endpoints are
    missing from an explicit node list.
    """
    if not isinstance(obj, dict) or "edges" not in obj:
        raise ProtocolError(
            "invalid-graph", 'graph must be {"edges": [[u, v, w], ...]}',
            field="graph",
        )
    edges = obj["edges"]
    if not isinstance(edges, list) or not edges:
        raise ProtocolError(
            "invalid-graph", "graph.edges must be a non-empty list",
            field="graph",
        )
    explicit = obj.get("nodes")
    known: set | None = None
    nodes: list = []
    if explicit is not None:
        if not isinstance(explicit, list):
            raise ProtocolError(
                "invalid-graph", "graph.nodes must be a list", field="graph",
            )
        known = set()
        for i, label in enumerate(explicit):
            _check_label(label, i, "node")
            tagged = (type(label).__name__, label)
            if tagged in known:
                raise ProtocolError(
                    "invalid-graph",
                    f"graph.nodes[{i}] duplicates label {label!r}",
                    field="graph",
                )
            known.add(tagged)
        nodes = list(explicit)
    seen: set[frozenset] = set()
    encountered: set = set()
    for i, item in enumerate(edges):
        if not isinstance(item, list) or len(item) != 3:
            raise ProtocolError(
                "invalid-graph",
                f"edge {i} must be a [u, v, weight] triple", field="graph",
            )
        u = _check_label(item[0], i, "u")
        v = _check_label(item[1], i, "v")
        _check_weight(item[2], i, "graph")
        if u == v:
            raise ProtocolError(
                "invalid-graph", f"edge {i} is a self-loop at {u!r}",
                field="graph",
            )
        # Type-tagged so the int 1 and the str "1" stay distinct labels.
        tu, tv = (type(u).__name__, u), (type(v).__name__, v)
        if known is not None and not {tu, tv} <= known:
            raise ProtocolError(
                "invalid-graph",
                f"edge {i} references a label missing from graph.nodes",
                field="graph",
            )
        pair = frozenset((tu, tv))
        if pair in seen:
            raise ProtocolError(
                "duplicate-edge",
                f"edge {i} duplicates an earlier ({u!r}, {v!r}) edge",
                field="graph",
            )
        seen.add(pair)
        if known is None:
            for tagged, label in ((tu, u), (tv, v)):
                if tagged not in encountered:
                    encountered.add(tagged)
                    nodes.append(label)
    return {"nodes": nodes, "edges": edges}


def graph_from_payload(payload: dict) -> "nx.Graph":
    """Materialize an ``nx.Graph`` from a canonical graph payload.

    Node and edge insertion order match the payload, which downstream
    tie-breaking depends on — the same property
    :class:`~repro.runtime.handle.GraphHandle` preserves.
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(payload["nodes"])
    for u, v, w in payload["edges"]:
        g.add_edge(u, v, weight=w)
    return g


def graph_payload(graph: "nx.Graph") -> dict:
    """Serialize an ``nx.Graph`` to the wire's canonical payload form.

    Emits the node order explicitly, so a server-side rebuild is
    indistinguishable from the original graph — the precondition for the
    wire bit-identity contract.
    """
    return {
        "nodes": list(graph.nodes()),
        "edges": [
            [u, v, data["weight"]] for u, v, data in graph.edges(data=True)
        ],
    }


# ---------------------------------------------------------------------------
# failure plans
# ---------------------------------------------------------------------------


def validate_failure_spec(spec: object) -> dict:
    """Schema-check a failure-plan spec; return it unchanged.

    Two shapes are accepted (mirroring :mod:`repro.sim.failures`):

    * ``{"random": {"p": 0.2, "max_rounds": 10, "seed": 1,
      "symmetric": true}}`` — a seeded random plan, deterministic for a
      given graph;
    * ``{"edges": [{"u": 0, "v": 1, "rounds": [1, 2], "symmetric": true},
      ...]}`` — explicit per-edge drops (``rounds`` omitted or ``null``
      means every round).
    """
    if not isinstance(spec, dict) or not ({"random", "edges"} & set(spec)):
        raise ProtocolError(
            "invalid-failures",
            'failures must carry "random" or "edges"', field="failures",
        )
    if "random" in spec:
        rnd = spec["random"]
        if not isinstance(rnd, dict):
            raise ProtocolError(
                "invalid-failures", "failures.random must be an object",
                field="failures",
            )
        p = rnd.get("p")
        if not isinstance(p, (int, float)) or isinstance(p, bool) \
                or not 0.0 <= p <= 1.0:
            raise ProtocolError(
                "invalid-failures",
                f"failures.random.p must be in [0, 1], got {p!r}",
                field="failures",
            )
        rounds = rnd.get("max_rounds")
        if not isinstance(rounds, int) or isinstance(rounds, bool) \
                or rounds < 1:
            raise ProtocolError(
                "invalid-failures",
                "failures.random.max_rounds must be a positive int",
                field="failures",
            )
    if "edges" in spec:
        items = spec["edges"]
        if not isinstance(items, list):
            raise ProtocolError(
                "invalid-failures", "failures.edges must be a list",
                field="failures",
            )
        for i, item in enumerate(items):
            if not isinstance(item, dict) or "u" not in item or "v" not in item:
                raise ProtocolError(
                    "invalid-failures",
                    f"failures.edges[{i}] needs u and v", field="failures",
                )
            rounds = item.get("rounds")
            if rounds is not None and (
                not isinstance(rounds, list)
                or any(not isinstance(r, int) or r < 1 for r in rounds)
            ):
                raise ProtocolError(
                    "invalid-failures",
                    f"failures.edges[{i}].rounds must be a list of "
                    "1-based ints (or null for every round)",
                    field="failures",
                )
    return spec


def failure_plan_from_payload(
    spec: dict, graph: "nx.Graph"
) -> "FailurePlan":
    """Build the :class:`~repro.sim.failures.FailurePlan` a spec describes.

    Deterministic: the same spec and graph always produce the same plan,
    so the wire differential tests can rebuild the exact plan the server
    used and compare against a one-shot
    :func:`repro.dist.pipeline.distributed_two_ecss` call.
    """
    from repro.sim.failures import FailurePlan, random_failure_plan

    if "random" in spec:
        rnd = spec["random"]
        return random_failure_plan(
            graph,
            p=rnd["p"],
            max_rounds=rnd["max_rounds"],
            seed=rnd.get("seed", 0),
            symmetric=rnd.get("symmetric", True),
        )
    plan = FailurePlan()
    for item in spec["edges"]:
        plan.fail(
            item["u"], item["v"],
            rounds=item.get("rounds"),
            symmetric=item.get("symmetric", True),
        )
    return plan


# ---------------------------------------------------------------------------
# binary frames
# ---------------------------------------------------------------------------

#: Content type that selects the binary frame encoding (requests declare
#: it via ``Content-Type``; responses are framed when the client's
#: ``Accept`` includes it).  JSON stays the default either way.
FRAME_CONTENT_TYPE = "application/x-repro-frame"

#: Leading magic of every frame — a JSON body can never start with it, so
#: a mislabeled payload fails fast with ``bad-frame``.
FRAME_MAGIC = b"RPF1"


def pack_frame(header: Any, arrays: "Sequence[Sequence[float]]" = ()) -> bytes:
    """Serialize a JSON-able header plus float64 arrays into one frame.

    Layout: :data:`FRAME_MAGIC`, ``uint32`` header length, the UTF-8 JSON
    header, ``uint32`` array count, then per array a ``uint32`` element
    count followed by that many little-endian float64 values.  Any header
    node shaped ``{"__frame__": k}`` refers to ``arrays[k]`` and is
    substituted back by :func:`unpack_frame`.
    """
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, struct.pack("<I", len(head)), head,
             struct.pack("<I", len(arrays))]
    for arr in arrays:
        values = [float(x) for x in arr]
        parts.append(struct.pack("<I", len(values)))
        parts.append(struct.pack(f"<{len(values)}d", *values))
    return b"".join(parts)


def _frame_bytes(data: bytes, offset: int, count: int, what: str) -> int:
    """Bounds-check ``count`` bytes at ``offset``; return the new offset."""
    end = offset + count
    if end > len(data):
        raise ProtocolError("bad-frame", f"frame truncated in {what}")
    return end


def _substitute_frame_refs(node: Any, arrays: "list[list[float]]") -> Any:
    """Replace every ``{"__frame__": k}`` header node with array ``k``."""
    if isinstance(node, dict):
        if set(node) == {"__frame__"}:
            k = node["__frame__"]
            if isinstance(k, bool) or not isinstance(k, int) \
                    or not 0 <= k < len(arrays):
                raise ProtocolError(
                    "bad-frame",
                    f"frame reference {k!r} does not name one of the "
                    f"{len(arrays)} attached array(s)",
                )
            return list(arrays[k])
        return {
            key: _substitute_frame_refs(value, arrays)
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_substitute_frame_refs(item, arrays) for item in node]
    return node


def unpack_frame(data: bytes) -> Any:
    """Decode one frame; return the header with arrays substituted in.

    The inverse of :func:`pack_frame`: after substitution the result is
    exactly the object the equivalent plain-JSON body parses to (array
    elements arrive as floats).  Every malformation — wrong magic, a
    length running past the buffer, a non-JSON header, trailing bytes, an
    out-of-range ``{"__frame__": k}`` reference — raises the structured
    ``bad-frame`` :class:`ProtocolError` instead of a decoding error.
    """
    if data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise ProtocolError(
            "bad-frame",
            f"frame does not start with the {FRAME_MAGIC!r} magic",
        )
    offset = len(FRAME_MAGIC)
    end = _frame_bytes(data, offset, 4, "header length")
    (head_len,) = struct.unpack_from("<I", data, offset)
    offset = end
    offset = _frame_bytes(data, offset, head_len, "header")
    try:
        header = json.loads(data[offset - head_len: offset].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            "bad-frame", f"frame header is not valid JSON: {exc}"
        ) from None
    end = _frame_bytes(data, offset, 4, "array count")
    (num_arrays,) = struct.unpack_from("<I", data, offset)
    offset = end
    arrays: list[list[float]] = []
    for i in range(num_arrays):
        end = _frame_bytes(data, offset, 4, f"array {i} length")
        (count,) = struct.unpack_from("<I", data, offset)
        offset = _frame_bytes(data, end, 8 * count, f"array {i} values")
        arrays.append(
            list(struct.unpack_from(f"<{count}d", data, offset - 8 * count))
        )
    if offset != len(data):
        raise ProtocolError(
            "bad-frame",
            f"frame carries {len(data) - offset} trailing byte(s)",
        )
    return _substitute_frame_refs(header, arrays)


# ---------------------------------------------------------------------------
# request parsing
# ---------------------------------------------------------------------------


def _check_bool(obj: dict, key: str, default: bool) -> bool:
    value = obj.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(
            "invalid-field", f"{key} must be a boolean, got {value!r}",
            field=key,
        )
    return value


def _check_name(obj: dict, key: str, kind: str) -> str | None:
    """Validate an optional backend/engine name against the registry."""
    value = obj.get(key)
    if value is None:
        return None
    from repro.runtime.registry import UnknownBackendError, get_backend

    if not isinstance(value, str):
        raise ProtocolError(
            "invalid-field", f"{key} must be a string, got {value!r}",
            field=key,
        )
    try:
        get_backend(kind, value)
    except UnknownBackendError as exc:
        raise ProtocolError("unknown-backend", str(exc), field=key) from None
    return value


def _check_envelope(obj: object, allowed: frozenset) -> None:
    """Shared request-envelope checks: shape, unknown keys, version."""
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request body must be a JSON object")
    unknown = set(obj) - allowed
    if unknown:
        raise ProtocolError(
            "unknown-field",
            f"unknown request field(s): {', '.join(sorted(unknown))}",
            field=sorted(unknown)[0],
        )
    version = obj.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported-protocol",
            f"this server speaks protocol {PROTOCOL_VERSION}, got {version!r}",
            field="protocol",
        )


def _query_fields(obj: dict) -> dict:
    """Validate the query-parameter fields shared by solve and delta."""
    eps = obj.get("eps", 0.25)
    if isinstance(eps, bool) or not isinstance(eps, (int, float)) \
            or not math.isfinite(eps) or eps <= 0:
        raise ProtocolError(
            "invalid-field", f"eps must be a positive finite number, got {eps!r}",
            field="eps",
        )
    variant = obj.get("variant", "improved")
    if variant not in _VARIANTS:
        raise ProtocolError(
            "invalid-field",
            f"variant must be one of {_VARIANTS}, got {variant!r}",
            field="variant",
        )
    return {
        "eps": float(eps),
        "variant": variant,
        "segmented": _check_bool(obj, "segmented", True),
        "validate": _check_bool(obj, "validate", True),
        "backend": _check_name(obj, "backend", "compute"),
        "engine": _check_name(obj, "engine", "engine"),
        "simulate_mst": _check_bool(obj, "simulate_mst", False),
        "k": _check_k_field(obj),
        "timings": _check_bool(obj, "timings", False),
    }


def _check_k_field(obj: dict) -> int:
    """Validate the optional ``k`` field (target edge connectivity).

    Every rejection uses the stable ``unsupported-k`` code so clients can
    dispatch on it: non-integers (bools included), ``k < 2`` (0, 1 and
    negatives have no augmentation reading), and ``k`` above the
    advertised :data:`repro.core.k_ecss.MAX_K` capability (also surfaced
    by ``GET /backends``).
    """
    k = obj.get("k", 2)
    if isinstance(k, bool) or not isinstance(k, int):
        raise ProtocolError(
            "unsupported-k", f"k must be an integer, got {k!r}", field="k",
        )
    if k < 2:
        raise ProtocolError(
            "unsupported-k", f"k must be >= 2, got {k}", field="k",
        )
    from repro.core.k_ecss import MAX_K

    if k > MAX_K:
        raise ProtocolError(
            "unsupported-k",
            f"k={k} exceeds this server's maximum supported k={MAX_K} "
            "(see GET /backends)",
            field="k",
        )
    return k


def parse_solve_request(obj: object) -> SolveRequest:
    """Parse and schema-validate one ``/v1/solve`` body.

    Raises :class:`ProtocolError` with a stable ``code``/``field`` on any
    violation; never lets a malformed payload reach the solver.  Exactly
    one of ``graph`` (full edge list) and ``topology`` (fingerprint of a
    previously sent graph) must be present.
    """
    _check_envelope(obj, _REQUEST_KEYS)

    has_graph = "graph" in obj
    has_topology = "topology" in obj
    if has_graph == has_topology:
        raise ProtocolError(
            "bad-request",
            'exactly one of "graph" and "topology" is required',
        )
    graph = None
    if has_graph:
        graph = parse_graph_payload(obj["graph"])
        topology = fingerprint_graph(graph)
    else:
        topology = obj["topology"]
        if not isinstance(topology, str) or not topology:
            raise ProtocolError(
                "bad-request", "topology must be a non-empty string",
                field="topology",
            )

    weights = obj.get("weights")
    if weights is not None:
        if not isinstance(weights, list) or not weights:
            raise ProtocolError(
                "invalid-weight", "weights must be a non-empty list",
                field="weights",
            )
        for i, w in enumerate(weights):
            _check_weight(w, i, "weights")

    failures = obj.get("failures")
    if failures is not None:
        validate_failure_spec(failures)

    return SolveRequest(
        topology=topology,
        graph=graph,
        weights=weights,
        failures=failures,
        **_query_fields(obj),
    )


def parse_delta_request(obj: object) -> SolveRequest:
    """Parse and schema-validate one ``/v1/delta`` body.

    A delta request always references a known topology by fingerprint
    (never a ``graph`` — deltas cannot register topologies) and carries a
    non-empty ``delta`` list of ``[u, v, w]`` triples naming the edges
    whose weights changed *relative to the registered baseline*.  Labels
    and weights are checked with the same rules as graph edges; self-loops
    and duplicate pairs (in either endpoint order) are rejected — a
    duplicate would make the diff ambiguous, the sparse analogue of the
    both-key-orders conflict :meth:`GraphHandle.reweight_delta` rejects.
    """
    _check_envelope(obj, _DELTA_KEYS)

    topology = obj.get("topology")
    if not isinstance(topology, str) or not topology:
        raise ProtocolError(
            "bad-request", "topology must be a non-empty string",
            field="topology",
        )

    delta = obj.get("delta")
    if not isinstance(delta, list) or not delta:
        raise ProtocolError(
            "invalid-field", "delta must be a non-empty [[u, v, w], ...] list",
            field="delta",
        )
    seen: set[frozenset] = set()
    for i, item in enumerate(delta):
        if not isinstance(item, list) or len(item) != 3:
            raise ProtocolError(
                "invalid-field",
                f"delta[{i}] must be a [u, v, weight] triple", field="delta",
            )
        u = _check_label(item[0], i, "u", field_name="delta")
        v = _check_label(item[1], i, "v", field_name="delta")
        _check_weight(item[2], i, "delta")
        if u == v:
            raise ProtocolError(
                "invalid-field", f"delta[{i}] is a self-loop at {u!r}",
                field="delta",
            )
        pair = frozenset(((type(u).__name__, u), (type(v).__name__, v)))
        if pair in seen:
            raise ProtocolError(
                "duplicate-edge",
                f"delta[{i}] duplicates an earlier ({u!r}, {v!r}) entry",
                field="delta",
            )
        seen.add(pair)

    fields = _query_fields(obj)
    if fields["k"] != 2:
        # Explicit rejection, not a silent k=2 solve: the delta path
        # re-solves the registered 2-ECSS baseline only.
        raise ProtocolError(
            "unsupported-k",
            f"/v1/delta re-solves k=2 baselines only, got k={fields['k']}; "
            "send a full /v1/solve request for k > 2",
            field="k",
        )
    return SolveRequest(
        topology=topology,
        delta=delta,
        **fields,
    )


# ---------------------------------------------------------------------------
# result serialization
# ---------------------------------------------------------------------------


def _canonical(payload: dict) -> dict:
    """Normalize to the exact structure a JSON round-trip produces.

    One ``dumps``/``loads`` pass turns tuples into lists and int dict keys
    into strings — guaranteeing that the dict the server builds equals the
    dict a client decodes off the wire, which is what the bit-identity
    differential compares with ``==``.
    """
    return json.loads(json.dumps(payload))


def _tap_payload(tap: "TapResult") -> dict:
    """Serialize a :class:`~repro.core.result.TapResult`."""
    return {
        "links": [list(link) for link in tap.links],
        "weight": tap.weight,
        "virtual_eids": list(tap.virtual_eids),
        "virtual_weight": tap.virtual_weight,
        "dual_bound": tap.dual_bound,
        "certified_virtual_ratio": tap.certified_virtual_ratio,
        "eps": tap.eps,
        "variant": tap.variant,
        "segmented": tap.segmented,
        "guarantee": tap.guarantee,
        "iterations_per_epoch": dict(tap.iterations_per_epoch),
        "num_layers": tap.num_layers,
        "max_coverage_of_dual_edges": tap.max_coverage_of_dual_edges,
        "log": dict(tap.log.counts),
    }


def _two_ecss_payload(res: "TwoEcssResult") -> dict:
    """Serialize a :class:`~repro.core.result.TwoEcssResult`."""
    sim = res.mst_simulation
    return {
        "type": "two_ecss",
        "n": res.n,
        "diameter": res.diameter,
        "edges": [list(e) for e in res.edges],
        "weight": res.weight,
        "mst_edges": [list(e) for e in res.mst_edges],
        "mst_weight": res.mst_weight,
        "guarantee": res.guarantee,
        "certified_lower_bound": res.certified_lower_bound,
        "certified_ratio": res.certified_ratio,
        "augmentation": _tap_payload(res.augmentation),
        "mst_simulation": None if sim is None else {
            "rounds": sim.rounds,
            "messages": sim.messages,
            "max_words": sim.max_words,
            "quiescent": sim.quiescent,
            "dropped": sim.dropped,
        },
    }


def _k_ecss_payload(res: "KEcssResult") -> dict:
    """Serialize a :class:`~repro.core.result.KEcssResult` (``k > 2``)."""
    return {
        "type": "k_ecss",
        "k": res.k,
        "n": res.n,
        "diameter": res.diameter,
        "edges": [list(e) for e in res.edges],
        "weight": res.weight,
        "guarantee": res.guarantee,
        "certified_lower_bound": res.certified_lower_bound,
        "certified_ratio": res.certified_ratio,
        "degree_lower_bound": res.degree_lower_bound,
        "rounds": [
            {
                "j": r.j,
                "iterations": r.iterations,
                "edges": [list(e) for e in r.edges],
                "weight": r.weight,
            }
            for r in res.rounds
        ],
        "base": _two_ecss_payload(res.base),
    }


def result_to_payload(result: Any) -> dict:
    """Canonical JSON payload of a solve result.

    Accepts every result type the session can return — a
    :class:`~repro.core.result.TwoEcssResult` (``engine="local"``,
    ``k=2``), a :class:`~repro.core.result.KEcssResult` (``k > 2``) and a
    :class:`~repro.dist.pipeline.DistTwoEcssResult` (``engine="sim"``) —
    and emits a payload that compares ``==`` across the wire (see
    :func:`_canonical`).  This is the single serializer used by the
    workers *and* by the differential tests on the one-shot results, so
    "bit-identical through the wire" is checked against the same code
    path the service runs.
    """
    if hasattr(result, "rounds") and hasattr(result, "k"):  # KEcssResult
        return _canonical(_k_ecss_payload(result))
    if hasattr(result, "measured"):  # DistTwoEcssResult
        return _canonical({
            "type": "dist_two_ecss",
            "n": result.n,
            "diameter": result.diameter,
            "strict": result.strict,
            "ratio_bound": result.ratio_bound,
            "boruvka_phases": result.boruvka_phases,
            "measured_rounds": result.measured_rounds,
            "priced_rounds": result.priced_rounds,
            "max_ratio": result.max_ratio,
            "within_bound": result.within_bound,
            "mismatch_counts": dict(result.mismatch_counts),
            "mismatches": result.mismatches,
            "comparison": result.comparison,
            "result": _two_ecss_payload(result.result),
        })
    return _canonical(_two_ecss_payload(result))
