"""The serving application: routes, topology store, batching dispatch.

:class:`ServeApp` is transport-free — it maps ``(method, path, body)`` to
``(status, payload)`` dicts — so the HTTP glue (:mod:`repro.serve.server`)
stays a thin byte shuffler and the whole route surface is testable without
sockets.  Routes:

========================  ====================================================
``POST /v1/solve``        one solve request (:mod:`repro.serve.protocol`)
``POST /v1/solve_batch``  ``{"requests": [...]}``, answered per item
``POST /v1/delta``        sparse re-solve: topology fingerprint + weight
                          diffs against the registered baseline
                          (:func:`repro.serve.protocol.parse_delta_request`)
``GET /healthz``          liveness + config summary
``GET /metrics``          counters, latency + batch-size histograms,
                          batcher stats, the solver's vectorized/scalar
                          routing counters, per-shard worker/session stats,
                          and the aggregated per-phase span breakdown
                          (:mod:`repro.obs`)
``GET /backends``         the execution-backend registry
                          (:func:`repro.runtime.registry.registered_payload`)
========================  ====================================================

A solve request flows: schema validation in the event loop (cheap) →
topology resolution against the app's edge-payload store → the
per-topology :class:`~repro.serve.batcher.MicroBatcher` → one
:meth:`~repro.runtime.session.SolverSession.solve_batch_vectorized` batch
inside the topology's shard
(:class:`~repro.serve.workers.ShardedWorkerPool`), which fuses the
coalesced batch's compatible scenarios into shared kernel passes.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from dataclasses import dataclass

import repro
from repro import obs
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    FRAME_CONTENT_TYPE,
    PROTOCOL_VERSION,
    ProtocolError,
    SolveRequest,
    error_payload,
    parse_delta_request,
    parse_solve_request,
    unpack_frame,
)
from repro.serve.workers import ShardedWorkerPool

__all__ = ["ServeApp", "ServeConfig"]

#: The route surface (also the allow-list for per-route metric labels —
#: method included, so unique client-minted method tokens cannot create
#: unbounded histogram keys any more than unique paths can).
_ROUTES = frozenset({
    ("POST", "/v1/solve"), ("POST", "/v1/solve_batch"),
    ("POST", "/v1/delta"),
    ("GET", "/healthz"), ("GET", "/metrics"), ("GET", "/backends"),
})


@dataclass
class ServeConfig:
    """Tunables of one serving instance (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Worker processes (topology shards); 0 = inline in-process execution.
    workers: int = 2
    #: Micro-batching knobs: flush at this many coalesced requests ...
    max_batch: int = 16
    #: ... or after this many milliseconds, whichever comes first.
    max_delay_ms: float = 2.0
    #: Session defaults for requests that leave backend/engine unset.
    backend: str = "auto"
    engine: str = "local"
    #: Per-session plan LRU (weight scenarios cached per topology).
    max_plans: int = 8
    #: Per-worker session LRU (topologies cached per shard).
    max_sessions: int = 64
    #: Dispatcher-side raw-edge store cap (topology registrations).
    max_topologies: int = 128
    #: ``"session"`` serves from warm sharded sessions; ``"per-request"``
    #: is the naive spawn-a-session-per-request baseline (benchmark only).
    mode: str = "session"
    #: Largest accepted request body, in bytes.
    max_body: int = 64 * 1024 * 1024
    #: Cap on ``/v1/solve_batch`` fan-in.
    max_batch_request: int = 256
    #: Structured tracing (:mod:`repro.obs`): feeds the per-phase section
    #: of ``GET /metrics`` and the opt-in per-request ``timings`` block.
    #: Never touches result payloads — responses are bit-identical with
    #: tracing on or off.
    tracing: bool = True

    def worker_settings(self) -> dict:
        """The knobs shipped to :func:`repro.serve.workers.configure_worker`."""
        return {
            "backend": self.backend,
            "engine": self.engine,
            "max_plans": self.max_plans,
            "max_sessions": self.max_sessions,
            "tracing": self.tracing,
        }


class ServeApp:
    """Route handling + dispatch state for one server (see module doc)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self.pool = ShardedWorkerPool(
            shards=self.config.workers,
            mode=self.config.mode,
            settings=self.config.worker_settings(),
        )
        self.batcher = MicroBatcher(
            self._flush,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay_ms / 1000.0,
        )
        #: topology fingerprint -> canonical graph payload dict (LRU).
        self._topologies: "OrderedDict[str, dict]" = OrderedDict()
        #: Aggregated span phases: name -> [count, total_seconds] — the
        #: ``phases`` section of ``/metrics``.  Keys come from this
        #: codebase's own span taxonomy (a closed set), never from
        #: client-minted tokens.
        self._phases: "dict[str, list]" = {}
        # The dispatcher-side tracer; worker processes install their own
        # via configure_worker (the setting rides in worker_settings()).
        if self.config.tracing:
            obs.enable()
        else:
            obs.disable()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def startup(self) -> None:
        """Start (and warm) the worker pool."""
        await self.pool.start()
        self._started_at = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: flush pending batches, then stop the workers."""
        await self.batcher.drain()
        await self.pool.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """Route one request; always returns ``(status, JSON payload)``.

        ``headers`` (lowercase names) is optional: a ``Content-Type`` of
        :data:`~repro.serve.protocol.FRAME_CONTENT_TYPE` selects the
        binary frame decoding for the body — after array substitution the
        request takes exactly the JSON route path, so framed and plain
        requests are indistinguishable past this point.  Response *encoding*
        negotiation (``Accept``) lives in the transport, which turns the
        returned payload into a frame when asked; this layer always
        returns the payload dict.
        """
        self.metrics.inc("http.requests")
        t0 = time.perf_counter()
        try:
            content_type = (headers or {}).get("content-type", "")
            if content_type.split(";", 1)[0].strip().lower() \
                    == FRAME_CONTENT_TYPE:
                self.metrics.inc("http.frame_requests")
                body = json.dumps(unpack_frame(body)).encode("utf-8")
            status, payload = await self._route(method, path, body)
        except ProtocolError as exc:
            status, payload = exc.status, exc.payload()
        except Exception as exc:  # noqa: BLE001 - the wire gets JSON, not a trace
            status = 500
            payload = error_payload(
                "internal-error", f"{type(exc).__name__}: {exc}"
            )
        if status >= 400:
            self.metrics.inc("http.errors")
            code = payload.get("error", {}).get("code", "unknown")
            self.metrics.inc(f"error.{code}")
        # Label by the route table, not raw request tokens: untrusted
        # methods/paths must not mint unbounded histogram keys in a
        # long-running server.
        label = (
            f"{method} {path}" if (method, path) in _ROUTES else "other"
        )
        tracer = obs.get_tracer()
        if tracer.enabled:
            # Serve consumes its spans inline (the timings block and the
            # /metrics phases aggregate) — drop the collected roots so a
            # long-running server never accumulates per-request trees.
            tracer.clear()
        self.metrics.observe(label, time.perf_counter() - t0)
        return status, payload

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """The route table (exceptions handled by :meth:`handle`)."""
        if path == "/v1/solve" and method == "POST":
            return await self._solve_route(body)
        if path == "/v1/solve_batch" and method == "POST":
            return await self._solve_batch_route(body)
        if path == "/v1/delta" and method == "POST":
            return await self._delta_route(body)
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, await self._metrics()
        if path == "/backends" and method == "GET":
            from repro.core.k_ecss import MAX_K
            from repro.runtime.registry import registered_payload

            return 200, {
                "protocol": PROTOCOL_VERSION,
                "backends": registered_payload(),
                "max_k": MAX_K,
            }
        if path in ("/v1/solve", "/v1/solve_batch", "/v1/delta"):
            raise ProtocolError(
                "method-not-allowed", f"{path} expects POST", status=405
            )
        raise ProtocolError(
            "not-found", f"no route for {method} {path}", status=404
        )

    def _parse_body(self, body: bytes):
        """Decode a JSON request body with a structured error on failure."""
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                "bad-json", f"request body is not valid JSON: {exc}"
            ) from None

    async def _solve_route(self, body: bytes) -> tuple[int, dict]:
        with obs.timer("serve.parse") as parse_clock:
            request = parse_solve_request(self._parse_body(body))
        return await self._solve_one(request, parse_s=parse_clock.duration_s)

    async def _delta_route(self, body: bytes) -> tuple[int, dict]:
        """Sparse re-solve: rides the same per-topology batching path as
        ``/v1/solve`` (delta requests coalesce with full requests for the
        topology), but can never register — an unknown fingerprint is the
        structured 404 that tells the client to degrade to a full solve."""
        with obs.timer("serve.parse") as parse_clock:
            request = parse_delta_request(self._parse_body(body))
        self.metrics.inc("delta.requests")
        return await self._solve_one(request, parse_s=parse_clock.duration_s)

    async def _solve_batch_route(self, body: bytes) -> tuple[int, dict]:
        obj = self._parse_body(body)
        if not isinstance(obj, dict) or not isinstance(
            obj.get("requests"), list
        ):
            raise ProtocolError(
                "bad-request", 'body must be {"requests": [...]}',
                field="requests",
            )
        if len(obj["requests"]) > self.config.max_batch_request:
            raise ProtocolError(
                "batch-too-large",
                f"at most {self.config.max_batch_request} requests per "
                "batch", field="requests",
            )
        async def answer(item) -> tuple[int, dict]:
            """One per-item outcome: parse and solve errors stay isolated,
            never failing (or discarding the work of) their batch-mates."""
            try:
                with obs.timer("serve.parse") as parse_clock:
                    request = parse_solve_request(item)
                return await self._solve_one(
                    request, parse_s=parse_clock.duration_s
                )
            except ProtocolError as exc:
                return exc.status, exc.payload()
            except Exception as exc:  # noqa: BLE001 - isolate, don't sink mates
                return 500, error_payload(
                    "internal-error", f"{type(exc).__name__}: {exc}"
                )

        outcomes = await asyncio.gather(
            *(answer(item) for item in obj["requests"])
        )
        responses = [
            {"status": status, **payload} for status, payload in outcomes
        ]
        return 200, {"protocol": PROTOCOL_VERSION, "responses": responses}

    async def _solve_one(
        self, request: SolveRequest, parse_s: float = 0.0
    ) -> tuple[int, dict]:
        """Register the topology, batch the request, shape the response."""
        self.metrics.inc("solve.requests")
        if request.graph is not None:
            self._register(request.topology, request.graph)
        elif request.topology not in self._topologies:
            # Fail fast in the event loop: the shards cannot know a
            # topology the dispatcher never stored.
            self.metrics.inc("solve.unknown_topology")
            raise ProtocolError(
                "unknown-topology",
                f"topology {request.topology!r} is not registered on this "
                "server; resend the request with the full graph",
                field="topology",
                status=404,
            )
        with obs.timer("serve.batch_wait") as wait_clock:
            item = await self.batcher.submit(request.topology, request)
        spans = item.pop("spans", None)
        dispatch_s = item.pop("dispatch_s", None)
        if obs.get_tracer().enabled:
            self._observe_phase("serve.parse", parse_s)
            self._observe_phase("serve.batch_wait", wait_clock.duration_s)
        if "error" in item:
            status = item.get("status", 500)
            payload = error_payload(
                item["error"]["code"],
                item["error"]["message"],
                item["error"].get("field"),
            )
            payload["topology"] = request.topology
            return status, payload
        self.metrics.inc("solve.ok")
        response = {
            "protocol": PROTOCOL_VERSION,
            "topology": request.topology,
            "result": item["result"],
            "server": {
                "shard": item["shard"],
                "batch_size": item["batch_size"],
                "mode": self.config.mode,
            },
        }
        if request.timings:
            timings = self._request_timings(
                spans, parse_s, wait_clock.duration_s, dispatch_s
            )
            if timings is not None:
                response["timings"] = timings
        return 200, response

    def _observe_phase(self, name: str, seconds: float, count: int = 1) -> None:
        entry = self._phases.setdefault(name, [0, 0.0])
        entry[0] += count
        entry[1] += seconds

    def _request_timings(
        self,
        spans: list | None,
        parse_s: float,
        wait_s: float,
        dispatch_s: float | None,
    ) -> dict | None:
        """The per-request ``timings`` block (opt-in via ``"timings": true``).

        A flat phase -> ``{count, total_ms}`` map over the request's whole
        path: event-loop phases measured here (``serve.parse``;
        ``serve.batch_wait``, submit-to-result, so it *contains* the
        dispatch round-trip), the pool round-trip (``serve.dispatch``,
        shared by the coalesced batch), and everything beneath the
        worker's ``worker.solve_batch`` span tree.  ``None`` when tracing
        is off — the block is diagnostics, never part of the result's
        bit-identity contract.
        """
        if not obs.get_tracer().enabled:
            return None
        phases: dict[str, list] = {}
        if spans:
            obs.phase_totals(
                [obs.Span.from_dict(tree) for tree in spans], into=phases
            )
        phases["serve.parse"] = [1, parse_s]
        phases["serve.batch_wait"] = [1, wait_s]
        if dispatch_s is not None:
            phases["serve.dispatch"] = [1, dispatch_s]
        return {
            name: {"count": count, "total_ms": round(total * 1000.0, 3)}
            for name, (count, total) in sorted(phases.items())
        }

    def _register(self, topology: str, graph: dict) -> None:
        """Remember a topology's graph payload (LRU-capped dispatcher store)."""
        if topology not in self._topologies:
            self.metrics.inc("topologies.registered")
        self._topologies[topology] = graph
        self._topologies.move_to_end(topology)
        while len(self._topologies) > self.config.max_topologies:
            self._topologies.popitem(last=False)
            self.metrics.inc("topologies.evicted")

    async def _flush(self, topology: str, requests: list) -> list[dict]:
        """Batcher flush hook: one worker round-trip per coalesced batch.

        The graph payload comes from the store, falling back to any
        request in the batch that carried it inline — a registration
        evicted from the LRU while its own request waited in the batcher
        must still be solvable.
        """
        graph = self._topologies.get(topology)
        if graph is None:
            graph = next(
                (r.graph for r in requests if r.graph is not None), None
            )
        t0 = time.perf_counter()
        items = await self.pool.solve_batch(topology, requests, graph)
        dispatch_s = time.perf_counter() - t0
        for item in items:
            item["batch_size"] = len(requests)
            item["dispatch_s"] = dispatch_s
        # Aggregate the worker's span tree into the /metrics phases once
        # per *batch* (the tree is shared by every item in it — summing
        # per item would overstate totals by the coalescing factor).
        spans = items[0].get("spans") if items else None
        if spans:
            obs.phase_totals(
                [obs.Span.from_dict(tree) for tree in spans],
                into=self._phases,
            )
            self._observe_phase("serve.dispatch", dispatch_s)
        self.metrics.inc("solve.batches")
        self.metrics.observe_size("batch.coalesced", len(requests))
        return items

    # ------------------------------------------------------------------
    # introspection routes
    # ------------------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "version": repro.__version__,
            "mode": self.config.mode,
            "workers": self.pool.num_shards,
            "inline": self.pool.inline,
            "topologies": len(self._topologies),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    async def _metrics(self) -> dict:
        workers = await self.pool.stats()
        # The scenario-vectorization counter pair, summed over every live
        # session on every shard: how many coalesced batches ran as fused
        # kernel passes vs how many queries fell back to the scalar path.
        solver = {"vectorized_batches": 0, "scalar_fallback": 0}
        for worker in workers:
            for session in worker.get("sessions", []):
                for key in solver:
                    solver[key] += session.get(key, 0)
        return {
            "protocol": PROTOCOL_VERSION,
            **self.metrics.snapshot(),
            "batcher": self.batcher.snapshot(),
            "solver": solver,
            "phases": {
                name: {"count": count, "total_s": round(total, 6)}
                for name, (count, total) in sorted(self._phases.items())
            },
            "topologies": {
                "stored": len(self._topologies),
                "cap": self.config.max_topologies,
            },
            "workers": workers,
        }
