"""``repro.serve`` — the async batching solver service.

The serving layer turns the runtime layer (:mod:`repro.runtime`) into a
system: a JSON-over-HTTP service (stdlib-only, hand-rolled HTTP/1.1 on
``asyncio`` streams) that accepts 2-ECSS solve requests, routes them by
topology fingerprint to a pool of worker processes, and — inside each
worker — coalesces concurrently-pending requests for the same
:class:`~repro.runtime.handle.GraphHandle` into one
:meth:`~repro.runtime.session.SolverSession.solve_many` call, so plan
caches are shared across users.  Dory & Ghaffari's solver is exactly the
kind a network-operations service queries repeatedly — same topology,
shifting weights and failures — and that is the traffic shape every layer
here is optimized for.

Module map (one responsibility each):

* :mod:`~repro.serve.protocol` — versioned request/response schema,
  structured errors, canonical (bit-identical through the wire) result
  serialization;
* :mod:`~repro.serve.batcher` — per-topology micro-batching with
  ``max_batch`` / ``max_delay`` knobs;
* :mod:`~repro.serve.workers` — topology-sharded process pool, warm
  imports, per-worker session LRU, graceful drain, and the naive
  per-request baseline mode the throughput benchmark compares against;
* :mod:`~repro.serve.app` — routes (``/v1/solve``, ``/v1/solve_batch``,
  ``/healthz``, ``/metrics``, ``/backends``) over a transport-free
  dispatch core;
* :mod:`~repro.serve.server` — the asyncio HTTP transport;
* :mod:`~repro.serve.metrics` — counters + latency histograms;
* :mod:`~repro.serve.loadgen` — zipf-skewed closed/open-loop traffic
  generation.

CLI: ``python -m repro serve`` / ``python -m repro loadgen``.  The wire
bit-identity contract is held by ``tests/test_serve_wire.py``; throughput
vs the naive baseline is gated (≥5x at n=2000) by
``benchmarks/bench_serve_throughput.py`` → ``BENCH_serve_throughput.json``.

The serving layer sits *outside* the paper's model (a CONGEST algorithm
does not have an HTTP front door); see ``docs/PAPER_MAP.md``.
"""

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.batcher import MicroBatcher
from repro.serve.loadgen import HttpClient, LoadgenConfig, run_loadgen
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SolveRequest,
    parse_solve_request,
    result_to_payload,
)
from repro.serve.server import HttpServer, run_server
from repro.serve.workers import ShardedWorkerPool

__all__ = [
    "PROTOCOL_VERSION",
    "HttpClient",
    "HttpServer",
    "LatencyHistogram",
    "LoadgenConfig",
    "MicroBatcher",
    "ProtocolError",
    "ServeApp",
    "ServeConfig",
    "ServeMetrics",
    "ShardedWorkerPool",
    "SolveRequest",
    "parse_solve_request",
    "result_to_payload",
    "run_loadgen",
    "run_server",
]
