"""Topology-sharded solver workers: one process owns a topology's sessions.

The dispatch rule is the whole design: a topology fingerprint is hashed to
a shard (:meth:`ShardedWorkerPool.shard_of`), and every batch for that
topology goes to the *same* single-process executor.  Each worker process
keeps an LRU of :class:`~repro.runtime.session.SolverSession` objects
keyed by topology, so all traffic for a topology lands on one warm
session — plan caches (validation, normalization, diameter, MST, virtual
graph, kernel arrays) are shared across every user querying that
topology, which is where the serving layer's throughput comes from.

Workers are *warm-imported* like the sweep pool
(:func:`repro.analysis.sweep.warm_worker`): the solver stack is imported
in the pool initializer so first-request latency measures solving, not
imports.  ``shards=0`` selects the inline pool — same code path executed
in-process on a thread (via ``asyncio.to_thread``), used by the tests and
by single-process deployments.

``mode="per-request"`` is the **naive baseline** the throughput benchmark
compares against: every request builds a fresh
:class:`~repro.runtime.handle.GraphHandle` and session from the raw edge
payload — exactly what a service without the runtime layer's reuse would
do.  It exists only for measurement honesty; production serving is
``mode="session"``.
"""

from __future__ import annotations

import asyncio
import os
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro import obs
from repro.serve.protocol import (
    ProtocolError,
    SolveRequest,
    failure_plan_from_payload,
    graph_from_payload,
    result_to_payload,
)

__all__ = [
    "ShardedWorkerPool",
    "configure_worker",
    "error_item_from_exception",
    "solve_batch_payload",
    "worker_stats_payload",
]

# Per-process worker state (one process per shard; the inline pool uses
# this module's globals in the server process itself).
_SESSIONS: "OrderedDict[str, object]" = OrderedDict()
_SETTINGS: dict = {
    "backend": "auto", "engine": "local", "max_plans": 8, "max_sessions": 64,
    "tracing": True,
}


def configure_worker(settings: dict | None = None) -> None:
    """Pool initializer: warm-import the solver stack, set worker knobs.

    Idempotent; also clears the session cache so a reconfigured inline
    pool (tests, benchmark mode switches) never reuses stale sessions.
    The ``tracing`` knob installs (or removes) this process's span
    tracer — worker processes have their own interpreter, so the server
    cannot enable tracing for them from the outside; the setting rides
    along with the executor initializer instead.
    """
    import repro.core.tecss  # noqa: F401
    import repro.dist.pipeline  # noqa: F401
    import repro.fast  # noqa: F401
    import repro.graphs.families  # noqa: F401
    import repro.runtime.session  # noqa: F401

    _SESSIONS.clear()
    if settings:
        _SETTINGS.update(settings)
    if _SETTINGS.get("tracing"):
        obs.enable()
    else:
        obs.disable()


def _exception_codes() -> "dict[type, tuple[str, int]]":
    """The declarative exception -> ``(code, status)`` mapping.

    Order matters and is most-specific-first: ``UnknownBackendError`` and
    ``GraphFormatError`` both subclass ``ValueError``, so the generic
    ``ValueError`` row must come last.  The lint rule ``proto-error-code``
    reads the codes out of this table, so every code here must appear in
    :data:`repro.serve.protocol.ERROR_CODES`.
    """
    from repro.exceptions import (
        GraphFormatError,
        NotConnectedError,
        NotKEdgeConnectedError,
        NotTwoEdgeConnectedError,
    )
    from repro.runtime.registry import UnknownBackendError

    _EXCEPTION_CODES = {
        UnknownBackendError: ("unknown-backend", 400),
        NotConnectedError: ("not-connected", 422),
        NotKEdgeConnectedError: ("not-k-edge-connected", 422),
        NotTwoEdgeConnectedError: ("not-two-edge-connected", 422),
        GraphFormatError: ("invalid-request", 400),
        ValueError: ("bad-request", 400),
        Exception: ("solver-error", 500),
    }
    return _EXCEPTION_CODES


def error_item_from_exception(exc: Exception) -> dict:
    """Map a solver/validation exception to a structured per-item error."""
    field = None
    if isinstance(exc, ProtocolError):
        code, status, field = exc.code, exc.status, exc.field
    else:
        code, status = "solver-error", 500
        for exc_type, (exc_code, exc_status) in _exception_codes().items():
            if isinstance(exc, exc_type):
                code, status = exc_code, exc_status
                break
    error: dict = {"code": code, "message": str(exc)}
    if field is not None:
        error["field"] = field
    return {"error": error, "status": status}


def _original_graph(handle):
    """Rebuild the caller-labeled graph a one-shot user would have passed.

    Same labels, edge order, and weights as the registered payload — so a
    ``random`` failure spec expands to the exact
    :class:`~repro.sim.failures.FailurePlan` the one-shot differential
    builds.
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(handle.nodes)
    for (u, v), w in zip(handle.edge_list, handle.weights):
        g.add_edge(u, v, weight=w)
    return g


def _query_for(session, request: SolveRequest, with_weights: bool = True):
    """Translate one wire request into a :class:`SolveQuery`.

    A wire ``delta`` becomes the session's sparse ``weights_delta``
    mapping — keyed by caller-labeled edge pairs, which
    :meth:`~repro.runtime.handle.GraphHandle.reweight_delta` resolves
    against the registered edge order.  ``with_weights=False`` drops the
    reweight column *and* the delta — used by the naive baseline, which
    bakes the weights into the per-request graph instead.
    """
    from repro.runtime.session import SolveQuery

    failures = None
    if request.failures is not None:
        failures = failure_plan_from_payload(
            request.failures, _original_graph(session.handle)
        )
    delta = None
    if request.delta is not None and with_weights:
        delta = {(u, v): w for u, v, w in request.delta}
    return SolveQuery(
        eps=request.eps,
        variant=request.variant,
        segmented=request.segmented,
        validate=request.validate,
        backend=request.backend,
        engine=request.engine,
        weights=request.weights if with_weights else None,
        weights_delta=delta,
        failures=failures,
        simulate_mst=request.simulate_mst,
        k=request.k,
    )


def _session_for(topology: str, graph: dict | None):
    """The worker's cached session for a topology (LRU), or ``None``.

    ``None`` means the worker does not know the topology and the payload
    carried no graph — the pool retries with the graph attached or
    reports ``unknown-topology``.
    """
    from repro.runtime.session import SolverSession

    session = _SESSIONS.get(topology)
    if session is None:
        if graph is None:
            return None
        session = SolverSession(
            graph_from_payload(graph),
            backend=_SETTINGS["backend"],
            engine=_SETTINGS["engine"],
            max_plans=_SETTINGS["max_plans"],
        )
        _SESSIONS[topology] = session
        while len(_SESSIONS) > _SETTINGS["max_sessions"]:
            _SESSIONS.popitem(last=False)
    _SESSIONS.move_to_end(topology)
    return session


def _solve_on_session(session, requests: list[SolveRequest]) -> list[dict]:
    """Solve a coalesced batch on one session, kernel-fused when possible.

    The batch goes through
    :meth:`~repro.runtime.session.SolverSession.solve_batch_vectorized`:
    compatible requests (same eps/variant/validate, local engine, ``k=2``,
    fast compute) run as one scenario-axis kernel pass, the rest take the
    scalar path — bit-identical either way.  Per-request translation
    errors (bad failure spec, wrong weights length) are isolated up
    front; if the joint call fails, the batch degrades to per-request
    solves so one poisoned request cannot take down its batch-mates.
    """
    prepared: list[tuple[int, object]] = []
    items: dict[int, dict] = {}
    for i, request in enumerate(requests):
        try:
            prepared.append((i, _query_for(session, request)))
        except Exception as exc:  # noqa: BLE001 - structured per item
            items[i] = error_item_from_exception(exc)
    if prepared:
        try:
            results = session.solve_batch_vectorized(
                [q for _, q in prepared]
            )
            with obs.span("serve.serialize", items=len(results)):
                for (i, _), result in zip(prepared, results):
                    items[i] = {"result": result_to_payload(result)}
        except Exception:  # noqa: BLE001 - isolate the failing request(s)
            for i, query in prepared:
                try:
                    (result,) = session.solve_many([query])
                    with obs.span("serve.serialize", items=1):
                        items[i] = {"result": result_to_payload(result)}
                except Exception as exc:  # noqa: BLE001
                    items[i] = error_item_from_exception(exc)
    return [items[i] for i in range(len(requests))]


def _solve_per_request(
    graph: dict, requests: list[SolveRequest]
) -> list[dict]:
    """The naive baseline: a fresh handle + session for every request."""
    from repro.runtime.session import SolverSession

    edges = graph["edges"]
    items = []
    for request in requests:
        try:
            row = edges
            if request.weights is not None:
                if len(request.weights) != len(edges):
                    raise ProtocolError(
                        "invalid-weight",
                        f"weights needs {len(edges)} entries, "
                        f"got {len(request.weights)}",
                        field="weights",
                    )
                row = [
                    [u, v, w]
                    for (u, v, _), w in zip(edges, request.weights)
                ]
            if request.delta is not None:
                # The baseline has no incremental path: splice the sparse
                # diff into a full per-request edge list instead.
                changed = {
                    frozenset(((type(u).__name__, u), (type(v).__name__, v))): w
                    for u, v, w in request.delta
                }
                row = [
                    [u, v, changed.pop(
                        frozenset(
                            ((type(u).__name__, u), (type(v).__name__, v))
                        ), w,
                    )]
                    for u, v, w in row
                ]
                if changed:
                    raise ProtocolError(
                        "invalid-field",
                        f"delta names {len(changed)} edge(s) not in the "
                        "registered topology",
                        field="delta",
                    )
            session = SolverSession(
                graph_from_payload({"nodes": graph["nodes"], "edges": row}),
                backend=_SETTINGS["backend"],
                engine=_SETTINGS["engine"],
            )
            query = _query_for(session, request, with_weights=False)
            (result,) = session.solve_many([query])
            items.append({"result": result_to_payload(result)})
        except Exception as exc:  # noqa: BLE001 - structured per item
            items.append(error_item_from_exception(exc))
    return items


def solve_batch_payload(payload: dict) -> dict:
    """Worker entry point: solve one coalesced batch (runs in the shard).

    ``payload`` carries ``topology``, an optional ``graph`` payload, the
    parsed ``requests``, and ``mode``.  Returns ``{"items": [...]}`` with
    one ``{"result": ...}`` or ``{"error": ..., "status": ...}`` per
    request (in order), plus the owning session's
    :meth:`~repro.runtime.session.SolverSession.stats` snapshot and the
    worker pid — or ``{"unknown_topology": True}`` when the topology is
    neither cached nor included.
    """
    topology = payload["topology"]
    graph = payload.get("graph")
    requests: list[SolveRequest] = payload["requests"]
    if payload.get("mode") == "per-request":
        if graph is None:
            return {"unknown_topology": True}
        return {
            "items": _solve_per_request(graph, requests),
            "stats": None,
            "pid": os.getpid(),
        }
    try:
        session = _session_for(topology, graph)
    except Exception as exc:  # noqa: BLE001 - bad graph fails every item
        item = error_item_from_exception(exc)
        return {
            "items": [dict(item) for _ in requests],
            "stats": None,
            "pid": os.getpid(),
        }
    if session is None:
        return {"unknown_topology": True}
    tracer = obs.get_tracer()
    with obs.span("worker.solve_batch", requests=len(requests)) as root:
        items = _solve_on_session(session, requests)
    out = {
        "items": items,
        "stats": session.stats(),
        "pid": os.getpid(),
    }
    if tracer.enabled:
        # Ship the batch's span tree back with the results (span objects
        # never cross the process boundary, their dict form does) and
        # drop it from this process's root buffer so a long-lived worker
        # does not accumulate one tree per batch forever.
        out["spans"] = [root.to_dict()]
        tracer.clear()
    return out


def worker_stats_payload() -> dict:
    """Per-worker state for ``/metrics``: pid + every cached session's stats."""
    return {
        "pid": os.getpid(),
        "sessions": [
            {
                "topology": topology,
                "n": session.handle.n,
                "m": session.handle.m,
                **session.stats(),
            }
            for topology, session in _SESSIONS.items()
        ],
    }


class ShardedWorkerPool:
    """A pool of single-process shards with topology-affine dispatch.

    ``shards >= 1`` spawns that many worker processes (one
    ``ProcessPoolExecutor(max_workers=1)`` each, so a shard serializes its
    batches and its sessions are single-threaded by construction);
    ``shards=0`` runs inline in the server process on a thread.  The pool
    tracks which topologies each shard has confirmed and ships raw edges
    only when needed; a shard that evicted a topology answers
    ``unknown_topology`` and the pool retries once with edges attached.
    """

    def __init__(
        self,
        shards: int = 1,
        mode: str = "session",
        settings: dict | None = None,
    ) -> None:
        if mode not in ("session", "per-request"):
            raise ValueError(
                f"mode must be 'session' or 'per-request', got {mode!r}"
            )
        self.shards = max(0, shards)
        self.mode = mode
        self.settings = dict(settings or {})
        self._executors: list[ProcessPoolExecutor] = []
        # Inline mode still needs the single-threaded-session guarantee:
        # one dedicated thread serializes every batch (asyncio.to_thread
        # would hand consecutive batches to different pool threads and
        # race the module-level session cache).
        self._inline_executor: ThreadPoolExecutor | None = None
        # Per-shard LRU of topologies the shard has confirmed, sized to
        # the worker-side session LRU: entries beyond it are stale (the
        # worker evicted the session) and an unbounded set would grow one
        # fingerprint per distinct topology forever.
        self._known_cap = max(
            1, int(self.settings.get("max_sessions", 64))
        )
        self._known: list["OrderedDict[str, None]"] = [
            OrderedDict() for _ in range(self.num_shards)
        ]
        self._started = False

    @property
    def num_shards(self) -> int:
        """Dispatch width (the inline pool counts as one shard)."""
        return max(1, self.shards)

    @property
    def inline(self) -> bool:
        """Whether batches run in-process instead of in worker processes."""
        return self.shards == 0

    def shard_of(self, topology: str) -> int:
        """Stable topology → shard assignment (crc32, process-independent)."""
        return zlib.crc32(topology.encode()) % self.num_shards

    async def start(self) -> None:
        """Spawn and warm the shard executors (or configure inline state)."""
        if self._started:
            return
        if self.inline:
            configure_worker(self.settings)
            self._inline_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-inline"
            )
        else:
            loop = asyncio.get_running_loop()
            for _ in range(self.num_shards):
                ex = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=configure_worker,
                    initargs=(self.settings,),
                )
                # Force the worker to exist (and warm-import) now, not on
                # the first request.
                await loop.run_in_executor(ex, os.getpid)
                self._executors.append(ex)
        self._started = True

    async def _run(self, shard: int, fn, *args):
        """Run ``fn`` on a shard: its process, or the one inline thread."""
        loop = asyncio.get_running_loop()
        if self.inline:
            return await loop.run_in_executor(self._inline_executor, fn, *args)
        return await loop.run_in_executor(self._executors[shard], fn, *args)

    async def solve_batch(
        self, topology: str, requests: list[SolveRequest], graph: dict | None
    ) -> list[dict]:
        """Solve one batch on the topology's shard; returns per-item dicts.

        ``graph`` is the dispatcher's stored payload for the topology
        (``None`` when the store no longer has it); it is attached only
        when the shard has not confirmed the topology, or on the one
        retry after an ``unknown_topology`` answer (worker LRU eviction).
        """
        shard = self.shard_of(topology)
        known = self._known[shard]
        send_graph = graph if (
            topology not in known or self.mode == "per-request"
        ) else None
        if topology in known:
            known.move_to_end(topology)
        payload = {
            "topology": topology,
            "graph": send_graph,
            "requests": requests,
            "mode": self.mode,
        }
        out = await self._run(shard, solve_batch_payload, payload)
        if out.get("unknown_topology") and send_graph is None:
            known.pop(topology, None)
            if graph is None:
                raise ProtocolError(
                    "unknown-topology",
                    f"topology {topology!r} is not registered on this "
                    "server; resend the request with the full graph",
                    field="topology",
                    status=404,
                )
            payload["graph"] = graph
            out = await self._run(shard, solve_batch_payload, payload)
        if out.get("unknown_topology"):  # pragma: no cover - defensive
            raise ProtocolError(
                "unknown-topology",
                f"shard {shard} could not materialize topology {topology!r}",
                field="topology",
                status=404,
            )
        known[topology] = None
        known.move_to_end(topology)
        while len(known) > self._known_cap:
            known.popitem(last=False)
        items = out["items"]
        spans = out.get("spans")
        for item in items:
            item["shard"] = shard
            if spans is not None:
                # Batch-level tree, shared by reference: every item in the
                # coalesced batch was solved under the same worker root.
                item["spans"] = spans
        return items

    async def stats(self) -> list[dict]:
        """One :func:`worker_stats_payload` per shard (for ``/metrics``).

        Shards are polled concurrently — each answer still queues behind
        that shard's in-flight batch, but a slow shard only costs its own
        latency, not the sum over shards.
        """
        payloads = await asyncio.gather(
            *(self._run(i, worker_stats_payload)
              for i in range(self.num_shards))
        )
        return [
            {"shard": i, **payload} for i, payload in enumerate(payloads)
        ]

    async def close(self) -> None:
        """Graceful drain: finish queued batches, then stop the workers."""
        for ex in self._executors:
            ex.shutdown(wait=True)
        self._executors.clear()
        if self._inline_executor is not None:
            self._inline_executor.shutdown(wait=True)
            self._inline_executor = None
        self._known = [OrderedDict() for _ in range(self.num_shards)]
        self._started = False
