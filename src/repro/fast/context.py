"""Vectorized epoch state for the reverse-delete phase (Sections 3.5/4.5/4.6).

The reverse-delete *control flow* (global MIS over segment representatives,
bottom-up local scans, the improved variant's cleaning phase) stays in
:mod:`repro.core.mis` / :mod:`repro.core.reverse` — it is the part the
structural claims (4.13, 4.15, 4.17) are about, and sharing it between
backends means the backends cannot drift.  What this module replaces are
the per-epoch *primitives*, all integer-exact:

* :class:`FastPetalOracle` — higher/lower petals (Claim 4.11) as jump-table
  chmins over int64 keys encoding the reference tie-breaks
  ``(depth(anc), index)`` / ``(-depth(u_e), index)`` lexicographically;
* :class:`FastCoverageCounter` — the cover ``Y`` as a scatter-delta array
  with lazily recomputed Euler-tour subtree counts (amortized O(n) per
  batch of additions instead of O(log^2 n) Fenwick work per query); its
  :meth:`~FastCoverageCounter.counts_2d` staticmethod is the scenario-axis
  form of the same Euler-tour pass, used by
  :func:`~repro.fast.forward.forward_phase_fast_batch` to recompute
  coverage for a whole ``(scenarios, n)`` delta stack in one kernel call;
* X-coverage counts via :func:`~repro.fast.kernels.path_cover_counts`.

Because petal indices and coverage counts are exact integers in both
backends, :class:`FastEpochContext` selects the same anchors, builds the
same cover, and performs the same cleaning removals as the reference
:class:`~repro.core.mis.EpochContext` — asserted pairwise by
``tests/test_backend_differential.py``.
"""

from __future__ import annotations

from repro.core.mis import EpochContext
from repro.fast import require_numpy
from repro.fast.kernels import INT_SENTINEL

__all__ = ["FastCoverageCounter", "FastEpochContext", "FastPetalOracle"]


class FastPetalOracle:
    """Petal lookups for a fixed ``X``, backed by jump-table chmin answers.

    Same interface and same results as
    :class:`~repro.decomp.petals.PetalOracle`: ``higher(t)``/``lower(t)``
    return indices into the epoch's ``x_edges`` list (``-1`` when ``t`` is
    not covered).  The higher-petal table is built eagerly, one lower-petal
    table per layer lazily — mirroring the reference oracle's caching.
    """

    __slots__ = ("arrays", "layering", "_m", "_dec", "_anc", "_hi", "_lo_by_layer")

    def __init__(self, arrays, layering, x_eids) -> None:
        np = require_numpy()
        self.arrays = arrays
        self.layering = layering
        x_eids = np.asarray(x_eids, dtype=np.int64)
        self._dec = arrays.dec[x_eids]
        self._anc = arrays.anc[x_eids]
        self._m = max(1, len(x_eids))
        ta = arrays.ta
        # Lexicographic (depth(anc), idx) as one int64 key: exact minima.
        idx = np.arange(len(x_eids), dtype=np.int64)
        key = ta.depth[self._anc] * self._m + idx
        # Answer tables live as Python lists: queries outnumber the one
        # kernel build per epoch, and list reads beat numpy scalar reads.
        self._hi = ta.path_chmin(self._dec, self._anc, key, INT_SENTINEL).tolist()
        self._lo_by_layer: dict[int, list[int]] = {}

    def higher(self, t: int) -> int:
        """Index into ``x_edges`` of the higher petal of ``t`` (-1 if uncovered)."""
        k = self._hi[t]
        return k % self._m if k != INT_SENTINEL else -1

    def _lo_result(self, lay: int):
        """Build (once) the lower-petal answer table for one layer."""
        ans = self._lo_by_layer.get(lay)
        if ans is None:
            np = require_numpy()
            ta = self.arrays.ta
            nla = self.arrays.nearest_in_layer(lay, self.layering)
            t0 = nla[self._dec]
            valid = np.flatnonzero((t0 != -1) & (ta.depth[t0] > ta.depth[self._anc]))
            leaf = self.arrays.path_leaf[self.arrays.path_id[t0[valid]]]
            u_e = ta.batch_lca(leaf, self._dec[valid])
            # Deeper u_e is better: encode (-depth(u_e), idx) as
            # (height - depth(u_e)) * m + idx, still exact int64.
            height = ta.depth.max() if ta.n > 1 else 0
            key = (height - ta.depth[u_e]) * self._m + valid
            ans = ta.path_chmin(
                self._dec[valid], self._anc[valid], key, INT_SENTINEL
            ).tolist()
            self._lo_by_layer[lay] = ans
        return ans

    def lower(self, t: int) -> int:
        """Index into ``x_edges`` of the lower petal of ``t`` (-1 if uncovered)."""
        k = self._lo_result(self.layering.layer[t])[t]
        return k % self._m if k != INT_SENTINEL else -1

    def petals_of(self, t: int) -> tuple[int, ...]:
        """The (deduplicated) petal indices of ``t``, higher first."""
        hi = self.higher(t)
        lo = self.lower(t)
        out = []
        if hi != -1:
            out.append(hi)
        if lo != -1 and lo != hi:
            out.append(lo)
        return tuple(out)


class FastCoverageCounter:
    """Drop-in for :class:`~repro.trees.pathops.CoverageCounter`.

    Additions and removals are O(1) scatter updates to a delta array; the
    per-tree-edge counts are recomputed by one vectorized Euler-tour pass
    when a query first follows a mutation.  The reverse-delete phase
    mutates in batches between query phases, so each batch costs one O(n)
    kernel instead of O(batch · log^2 n) Fenwick updates.
    """

    __slots__ = ("_ta", "_delta", "_counts", "_dirty")

    def __init__(self, ta) -> None:
        np = require_numpy()
        self._ta = ta
        self._delta = np.zeros(ta.n, dtype=np.int64)
        # Counts live as a Python list: queries outnumber recomputes by
        # orders of magnitude, and list indexing beats numpy scalar reads.
        self._counts: list[int] = [0] * ta.n
        self._dirty = False

    def add_path(self, dec: int, anc: int, delta: int = 1) -> None:
        """Add (or with ``delta=-1`` remove) one vertical path's coverage."""
        self._delta[dec] += delta
        self._delta[anc] -= delta
        self._dirty = True

    def remove_path(self, dec: int, anc: int) -> None:
        """Remove one previously added vertical path."""
        self.add_path(dec, anc, -1)

    def count(self, v: int) -> int:
        """Number of live paths covering tree edge ``v``."""
        if self._dirty:
            self._counts = self._ta.subtree_counts(self._delta).tolist()
            self._dirty = False
        return self._counts[v]

    def is_covered(self, v: int) -> bool:
        """Whether any live path covers tree edge ``v``."""
        if self._dirty:
            self._counts = self._ta.subtree_counts(self._delta).tolist()
            self._dirty = False
        return self._counts[v] > 0

    @staticmethod
    def counts_2d(ta, delta2):
        """Coverage counts for a ``(scenarios, n)`` stack of delta rows.

        The scenario-axis twin of the lazy recompute in :meth:`count`:
        one vectorized Euler-tour pass yields the per-tree-edge counts of
        every scenario at once.  Row ``s`` equals what a scalar counter
        seeded with ``delta2[s]`` would report — the batched forward
        phase relies on that to stay bit-identical to the looped one.
        """
        return ta.subtree_counts_2d(delta2)


class FastEpochContext(EpochContext):
    """Reference epoch semantics over vectorized primitives (see module doc)."""

    __slots__ = ()

    def _make_oracle(self) -> FastPetalOracle:
        return FastPetalOracle(self.inst.arrays, self.inst.layering, self.x_list)

    def _make_counter(self) -> FastCoverageCounter:
        return FastCoverageCounter(self.inst.arrays.ta)

    def _make_x_coverage(self):
        np = require_numpy()
        arrays = self.inst.arrays
        eids = np.asarray(self.x_list, dtype=np.int64)
        return arrays.ta.path_cover_counts(arrays.dec[eids], arrays.anc[eids])

    # -- hot-path overrides: endpoint reads from the instance arrays, so the
    # reverse-delete inner loops never materialize VirtualEdge objects.

    def add_to_y(self, eid: int) -> None:
        """Add edge ``eid`` to the cover ``Y`` (idempotent; -1 is a no-op)."""
        if eid != -1 and eid not in self.y_set:
            self.y_set.add(eid)
            arrays = self.inst.arrays
            self.counter.add_path(int(arrays.dec[eid]), int(arrays.anc[eid]))

    def remove_from_y(self, eid: int) -> None:
        """Remove edge ``eid`` from ``Y`` (the cleaning phase's operation)."""
        if eid in self.y_set:
            self.y_set.discard(eid)
            arrays = self.inst.arrays
            self.counter.remove_path(
                int(arrays.dec[eid]), int(arrays.anc[eid])
            )

    def edge_anc(self, eid: int) -> int:
        """The anchor (top) endpoint of instance edge ``eid``."""
        return int(self.inst.arrays.anc[eid])

    def edge_path(self, eid: int) -> tuple[int, int]:
        """Instance edge ``eid`` as its ``(dec, anc)`` vertical path."""
        arrays = self.inst.arrays
        return int(arrays.dec[eid]), int(arrays.anc[eid])

    def y_covers(self, t: int) -> bool:
        """Does the current cover ``Y`` cover tree edge ``t``?

        Inlined counter query — the reverse-delete scans ask this hundreds
        of thousands of times per solve, so the extra call frame matters.
        """
        c = self.counter
        if c._dirty:
            c._counts = c._ta.subtree_counts(c._delta).tolist()
            c._dirty = False
        return c._counts[t] > 0
