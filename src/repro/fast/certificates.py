"""Vectorized a-posteriori certificates (Lemma 3.1) for the fast backend.

Same checks, same pass/fail decisions, and same return values as
:mod:`repro.core.certificates`: the dual prefix sums come from the
bit-identical level-synchronous kernel, coverage counts are exact int64,
and the maxima are selections (not re-associations), so every returned
ratio/count equals the reference implementation's.  Violation messages
name the first offending edge in the same ascending scan order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.certificates import _TOL
from repro.exceptions import InvariantViolation
from repro.fast import require_numpy

__all__ = [
    "validate_dual_feasibility",
    "validate_tightness",
    "validate_cover",
    "validate_coverage_bound",
]


def _slack_ratios(inst, y):
    """``s(e) / w(e)`` per edge (inf where the weight is non-positive)."""
    np = require_numpy()
    arrays = inst.arrays
    cum = arrays.ta.ancestor_sums(np.asarray(y, dtype=np.float64))
    s = cum[arrays.dec] - cum[arrays.anc]
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(arrays.weight > 0, s / arrays.weight, np.inf), s


def validate_dual_feasibility(inst, y: Sequence[float], eps: float) -> float:
    """Vectorized :func:`repro.core.certificates.validate_dual_feasibility`."""
    np = require_numpy()
    ratios, _ = _slack_ratios(inst, y)
    positive = inst.arrays.weight > 0
    bad = np.flatnonzero(positive & (ratios > (1.0 + eps) * (1.0 + _TOL)))
    if bad.size:
        eid = int(bad[0])
        raise InvariantViolation(
            f"dual constraint of link {eid} violated: s(e)/w(e) = "
            f"{float(ratios[eid]):.6f} > 1 + eps = {1 + eps}"
        )
    if not positive.any():
        return 0.0
    return max(0.0, float(ratios[positive].max()))


def validate_tightness(inst, y: Sequence[float], chosen: Iterable[int]) -> None:
    """Vectorized :func:`repro.core.certificates.validate_tightness`."""
    np = require_numpy()
    eids = np.asarray(sorted(chosen), dtype=np.int64)
    if eids.size == 0:
        return
    arrays = inst.arrays
    cum = arrays.ta.ancestor_sums(np.asarray(y, dtype=np.float64))
    s = cum[arrays.dec[eids]] - cum[arrays.anc[eids]]
    w = arrays.weight[eids]
    bad = np.flatnonzero((w > 0) & (s < w * (1.0 - _TOL)))
    if bad.size:
        i = int(bad[0])
        raise InvariantViolation(
            f"chosen link {int(eids[i])} is not tight: s(e) = {float(s[i]):.6f} < "
            f"w(e) = {float(w[i]):.6f}"
        )


def validate_cover(inst, chosen: Iterable[int]) -> None:
    """Vectorized :func:`repro.core.certificates.validate_cover`."""
    np = require_numpy()
    arrays = inst.arrays
    eids = np.asarray(sorted(chosen), dtype=np.int64)
    counts = arrays.ta.path_cover_counts(arrays.dec[eids], arrays.anc[eids])
    uncovered = np.flatnonzero((counts <= 0) & arrays.ta.nonroot)
    if uncovered.size:
        t = int(uncovered[0])
        raise InvariantViolation(
            f"tree edge ({t}, {inst.tree.parent[t]}) is not covered by "
            "the returned augmentation"
        )


def validate_coverage_bound(
    inst, y: Sequence[float], chosen: Iterable[int], c: int
) -> int:
    """Vectorized :func:`repro.core.certificates.validate_coverage_bound`."""
    np = require_numpy()
    arrays = inst.arrays
    eids = np.asarray(sorted(chosen), dtype=np.int64)
    counts = arrays.ta.path_cover_counts(arrays.dec[eids], arrays.anc[eids])
    dual = (np.asarray(y, dtype=np.float64) > 0) & arrays.ta.nonroot
    over = np.flatnonzero(dual & (counts > c))
    if over.size:
        t = int(over[0])
        raise InvariantViolation(
            f"edge {t} with y > 0 covered {int(counts[t])} > {c} times"
        )
    if not dual.any():
        return 0
    return int(counts[dual].max())
