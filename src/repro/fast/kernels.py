"""Stateless numpy kernels over rooted-tree arrays.

Every kernel mirrors one information flow of the paper's aggregate-function
machinery (Claims 4.5 and 4.6) or one decomposition primitive, with the
exactness contract the differential suite relies on:

* :func:`ancestor_sums_levels` replays the reference recurrence
  ``cum[v] = cum[parent[v]] + values[v]`` one depth level at a time, so
  every output double is produced by the *same* IEEE-754 operation as the
  Python loop in :meth:`repro.trees.pathops.TreePathOps.ancestor_sums` —
  bit-identical, not merely close;
* :func:`subtree_counts` and :func:`path_cover_counts` use the Euler-tour
  difference trick in pure int64 arithmetic — exact, order-independent;
* :func:`batch_lca` and :func:`batch_ancestor_at_depth` are vectorized
  binary lifting — pure integer, identical to
  :meth:`repro.trees.rooted.RootedTree.lca`;
* :func:`path_chmin` is the tree-edge-learns-min-over-covering-links
  aggregate as a sparse *jump table*: each vertical path is covered by two
  (possibly overlapping) ancestor blocks of length ``2^k``, scattered with
  ``np.minimum.at`` and pushed down level by level.  With integer keys the
  result is exact; with float values it computes the same minimum as the
  reference segment tree (minimum of a set of doubles does not depend on
  association order).

All functions take plain numpy arrays so they can be unit-tested against
the reference tree structures directly (``tests/test_fast_kernels.py``).
"""

from __future__ import annotations

from repro.fast import require_numpy

__all__ = [
    "INT_SENTINEL",
    "ancestor_sums_levels",
    "ancestor_sums_levels_2d",
    "batch_ancestor_at_depth",
    "batch_lca",
    "build_lift_table",
    "depth_levels",
    "min_weight_crossing",
    "path_chmin",
    "path_chmin_2d",
    "path_cover_counts",
    "subtree_counts",
    "subtree_counts_2d",
]

_np = None


def _numpy():
    """Import numpy lazily so the module can be imported without it."""
    global _np
    if _np is None:
        _np = require_numpy()
    return _np


#: Identity element for integer-keyed :func:`path_chmin` lookups.
INT_SENTINEL = (1 << 62)


def depth_levels(depth):
    """Group the vertices by depth, shallowest level first.

    Returns a list of int64 arrays, ``levels[d]`` holding the vertices at
    depth ``d``; within a level the vertex order is irrelevant because
    same-depth vertices never depend on each other.
    """
    np = _numpy()
    depth = np.asarray(depth, dtype=np.int64)
    by_depth = np.argsort(depth, kind="stable")
    counts = np.bincount(depth, minlength=int(depth.max()) + 1)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [
        by_depth[bounds[d] : bounds[d + 1]].astype(np.int64)
        for d in range(len(counts))
    ]


def ancestor_sums_levels(levels, parent, values):
    """Root-to-vertex prefix sums, bit-identical to the reference loop.

    ``cum[v] = cum[parent[v]] + values[v]`` evaluated one depth level at a
    time (level 0 is the root, whose entry stays 0.0, matching
    :meth:`~repro.trees.pathops.TreePathOps.ancestor_sums`).  Because each
    element is still computed by exactly one ``parent + value`` addition,
    the result equals the sequential Python recurrence bit for bit.
    """
    np = _numpy()
    cum = np.zeros(len(parent), dtype=np.float64)
    for lvl in levels[1:]:
        cum[lvl] = cum[parent[lvl]] + values[lvl]
    return cum


def ancestor_sums_levels_2d(levels, parent, values2):
    """Scenario-batched :func:`ancestor_sums_levels`: ``(S, n)`` in and out.

    Row ``s`` of the result equals ``ancestor_sums_levels(levels, parent,
    values2[s])`` bit for bit: the recurrence is evaluated level by level
    exactly as in the 1-D kernel, so each output double is still produced
    by the one ``parent + value`` IEEE-754 addition of the reference loop
    — the scenario axis only widens the gather, it never reassociates.
    """
    np = _numpy()
    cum = np.zeros_like(values2)
    for lvl in levels[1:]:
        cum[:, lvl] = cum[:, parent[lvl]] + values2[:, lvl]
    return cum


def subtree_counts(tin, tout, delta):
    """Per-vertex sums of ``delta`` over subtrees, via the Euler tour.

    ``delta`` is an int64 per-vertex array; returns ``counts`` with
    ``counts[v] = sum of delta over the subtree rooted at v``.  Pure
    integer arithmetic — exact for the coverage-count bookkeeping.
    """
    np = _numpy()
    arr = np.zeros(len(delta), dtype=np.int64)
    arr[tin] = delta
    pref = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(arr)))
    return pref[tout] - pref[tin]


def subtree_counts_2d(tin, tout, delta2):
    """Scenario-batched :func:`subtree_counts`: one Euler pass per row.

    ``delta2`` is ``(S, n)`` int64; row ``s`` of the result equals
    ``subtree_counts(tin, tout, delta2[s])`` — pure integer arithmetic,
    exact regardless of batching.
    """
    np = _numpy()
    arr = np.zeros_like(delta2)
    arr[:, tin] = delta2
    pref = np.concatenate(
        (np.zeros((arr.shape[0], 1), dtype=arr.dtype), np.cumsum(arr, axis=1)),
        axis=1,
    )
    return pref[:, tout] - pref[:, tin]


def min_weight_crossing(tin, tout, a, b, weights, cut_child):
    """Lex-min ``(weight, position)`` edge crossing a one-edge tree cut.

    ``(a[i], b[i], weights[i])`` describe candidate edges; the cut
    separates the subtree rooted at ``cut_child`` from the rest, so edge
    ``i`` crosses iff exactly one endpoint lies in the subtree (the Euler
    membership test ``tin[c] <= tin[x] < tout[c]``).  Returns the position
    ``i`` of the crossing edge minimizing ``(weights[i], i)`` — ``argmin``
    returns the *first* minimal weight, which is exactly the stable
    tie-break of Kruskal's sorted order — or ``-1`` when nothing crosses.
    Used by the swap-edge MST maintenance of :mod:`repro.runtime.delta`.
    """
    np = _numpy()
    lo, hi = tin[cut_child], tout[cut_child]
    ta, tb = tin[a], tin[b]
    mask = ((lo <= ta) & (ta < hi)) != ((lo <= tb) & (tb < hi))
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return -1
    return int(idx[np.argmin(weights[idx])])


def path_cover_counts(tin, tout, dec, anc, n):
    """How many of the vertical paths ``(dec[i], anc[i])`` cover each tree edge.

    The vertical difference trick (+1 at ``dec``, -1 at ``anc``, subtree
    sums) in exact int64 — the kernel behind
    :meth:`~repro.trees.pathops.TreePathOps.coverage_counts`.
    """
    np = _numpy()
    delta = np.bincount(dec, minlength=n).astype(np.int64)
    delta -= np.bincount(anc, minlength=n).astype(np.int64)
    return subtree_counts(tin, tout, delta)


def build_lift_table(parent, root, height):
    """Binary-lifting table as one ``(K+1, n)`` int64 matrix.

    Row ``k`` holds the ``2^k``-th ancestor of every vertex, saturating at
    the root (``up[k][root] == root``).
    """
    np = _numpy()
    n = len(parent)
    logn = max(1, max(1, height).bit_length())
    up = np.empty((logn + 1, n), dtype=np.int64)
    up[0] = parent
    up[0, root] = root
    for k in range(1, logn + 1):
        up[k] = up[k - 1][up[k - 1]]
    return up


def batch_ancestor_at_depth(up, depth, v, target_depth):
    """Vectorized ``ancestor_at_depth``: lift each ``v[i]`` to ``target_depth[i]``.

    Callers must guarantee ``0 <= target_depth <= depth[v]`` elementwise.
    """
    np = _numpy()
    v = np.array(v, dtype=np.int64, copy=True)
    if v.size == 0:
        return v
    delta = depth[v] - np.asarray(target_depth, dtype=np.int64)
    max_delta = int(delta.max())
    k = 0
    while (1 << k) <= max_delta:
        sel = np.flatnonzero((delta >> k) & 1)
        if sel.size:
            v[sel] = up[k][v[sel]]
        k += 1
    return v


def batch_lca(up, tin, tout, depth, parent, u, v):
    """Vectorized lowest common ancestors of the pairs ``(u[i], v[i])``.

    Same algorithm as :meth:`repro.trees.rooted.RootedTree.lca` (Euler-
    interval ancestor shortcut, equalize depths, descend the lifting
    table), evaluated on whole arrays; pure integer, hence identical.
    """
    np = _numpy()
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    res = np.empty(u.shape, dtype=np.int64)
    u_anc = (tin[u] <= tin[v]) & (tin[v] < tout[u])
    v_anc = (tin[v] <= tin[u]) & (tin[u] < tout[v])
    res[u_anc] = u[u_anc]
    res[v_anc & ~u_anc] = v[v_anc & ~u_anc]
    rest = np.flatnonzero(~(u_anc | v_anc))
    if rest.size:
        uu = u[rest]
        vv = v[rest]
        swap = depth[uu] < depth[vv]
        uu2 = np.where(swap, vv, uu)
        vv2 = np.where(swap, uu, vv)
        uu2 = batch_ancestor_at_depth(up, depth, uu2, depth[vv2])
        for k in range(up.shape[0] - 1, -1, -1):
            differ = up[k][uu2] != up[k][vv2]
            if differ.any():
                uu2 = np.where(differ, up[k][uu2], uu2)
                vv2 = np.where(differ, up[k][vv2], vv2)
        res[rest] = parent[uu2]
    return res


def path_chmin(up, depth, n, dec, anc, values, identity):
    """Every tree edge learns the min value among vertical paths covering it.

    The vectorized counterpart of
    :meth:`~repro.trees.pathops.TreePathOps.chmin_over_paths`: path ``i``
    runs from ``dec[i]`` up to (exclusive) ``anc[i]`` and carries
    ``values[i]``; the result ``ans`` (length ``n``, ``identity`` where no
    path covers) satisfies ``ans[t] = min over covering i of values[i]``.

    Sparse-table scheme on the tree: a path of edge-length ``L`` with
    ``k = floor(log2 L)`` is covered by the two ancestor blocks of length
    ``2^k`` anchored at ``dec`` and at the ancestor of ``dec`` at depth
    ``depth[anc] + 2^k``; blocks are scattered with ``np.minimum.at`` and
    pushed down one level at a time.  Integer keys give exact lexicographic
    minima (encode ``(primary, index)`` as ``primary * count + index``);
    float values give the same minimum as the reference segment tree.
    """
    np = _numpy()
    dtype = np.asarray(values).dtype
    dec = np.asarray(dec, dtype=np.int64)
    anc = np.asarray(anc, dtype=np.int64)
    if dec.size == 0:
        return np.full(n, identity, dtype=dtype)
    length = depth[dec] - depth[anc]  # >= 1 for valid vertical paths
    # floor(log2(L)) via frexp: exact for int64 magnitudes below 2^53.
    k = (np.frexp(length.astype(np.float64))[1] - 1).astype(np.int64)
    top = batch_ancestor_at_depth(up, depth, dec, depth[anc] + (1 << k))
    kmax = int(k.max())
    table = np.full((kmax + 1, n), identity, dtype=dtype)
    for kk in range(kmax + 1):
        sel = np.flatnonzero(k == kk)
        if sel.size:
            np.minimum.at(table[kk], dec[sel], values[sel])
            np.minimum.at(table[kk], top[sel], values[sel])
    for kk in range(kmax, 0, -1):
        row = table[kk]
        live = np.flatnonzero(row != identity)
        if live.size == 0:
            continue
        np.minimum(table[kk - 1], row, out=table[kk - 1])
        np.minimum.at(table[kk - 1], up[kk - 1][live], row[live])
    return table[0]


def path_chmin_2d(up, depth, n, dec, anc, values2, identity):
    """Scenario-batched :func:`path_chmin` over one shared path structure.

    ``dec``/``anc`` are the *shared* per-edge path columns (length ``m``,
    topology-only); ``values2`` is ``(S, m)`` with ``identity`` marking
    edges a scenario does not contribute (scattering the identity into a
    minimum is a no-op, so per-scenario edge selection is encoded in the
    value matrix instead of per-scenario index arrays).  Row ``s`` of the
    ``(S, n)`` result equals ``path_chmin(up, depth, n, dec[sel], anc[sel],
    values2[s, sel], identity)`` for ``sel = values2[s] != identity``:
    the block decomposition (``k``, ``top``) is a pure function of the
    shared paths, and a minimum of a set of doubles does not depend on
    association order, so batching cannot change any output bit.
    """
    np = _numpy()
    values2 = np.asarray(values2)
    dec = np.asarray(dec, dtype=np.int64)
    anc = np.asarray(anc, dtype=np.int64)
    scenarios = values2.shape[0]
    if dec.size == 0:
        return np.full((scenarios, n), identity, dtype=values2.dtype)

    # Scatter targets (dec / top blocks, ancestor pushdown) are pure
    # topology shared by every scenario, so each scatter-min is a
    # group-by-target minimum: sort the shared targets once, then one
    # ``np.minimum.reduceat`` covers all scenario rows in a single
    # buffered pass.  A per-element ``np.minimum.at`` over ``(S, m)``
    # index pairs walks point by point and dominated large batches.
    # Everything runs transposed — ``(edges-or-nodes, S)`` C-contiguous —
    # so the axis-0 reduceat reduces whole scenario rows at a time
    # instead of strided single elements.
    def _scatter_min(out_t, targets, vals_t, sel=None):
        order = np.argsort(targets, kind="stable")
        uniq, starts = np.unique(targets[order], return_index=True)
        rows = order if sel is None else sel[order]
        mins = np.minimum.reduceat(vals_t[rows], starts, axis=0)
        out_t[uniq] = np.minimum(out_t[uniq], mins)

    length = depth[dec] - depth[anc]  # >= 1 for valid vertical paths
    k = (np.frexp(length.astype(np.float64))[1] - 1).astype(np.int64)
    top = batch_ancestor_at_depth(up, depth, dec, depth[anc] + (1 << k))
    kmax = int(k.max())
    values_t = np.ascontiguousarray(values2.T)
    table = np.full((kmax + 1, n, scenarios), identity, dtype=values2.dtype)
    for kk in range(kmax + 1):
        sel = np.flatnonzero(k == kk)
        if sel.size:
            _scatter_min(table[kk], dec[sel], values_t, sel)
            _scatter_min(table[kk], top[sel], values_t, sel)
    for kk in range(kmax, 0, -1):
        row = table[kk]
        np.minimum(table[kk - 1], row, out=table[kk - 1])
        # Scattering identity entries too is a no-op for a minimum, so
        # no live-filtering is needed before the grouped pushdown.
        _scatter_min(table[kk - 1], up[kk - 1], row)
    return np.ascontiguousarray(table[0].T)
