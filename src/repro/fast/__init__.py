"""``repro.fast`` — vectorized CSR/numpy kernels for the TAP/2-ECSS hot paths.

The reference implementation in :mod:`repro.core` runs the paper's
algorithms as per-edge Python loops over dicts and lists — ideal for
auditing against the paper, but capping experiments at toy sizes.  This
package ports the hot paths to flat-array kernels that share the data-layout
philosophy of :mod:`repro.sim.engine` (CSR adjacency, preallocated numpy
arrays, batched scatter/gather) while producing **bit-identical** results:

* :mod:`repro.fast.kernels` — stateless array primitives: level-synchronous
  ancestor prefix sums (same floating-point operation tree as the reference
  recurrence, hence bit-identical), Euler-tour subtree counts (exact integer
  arithmetic), batched LCA via vectorized binary lifting, and a jump-table
  path-chmin (the vectorized counterpart of the paper's tree-edge-learns-
  min-over-covering-links aggregate, Claims 4.5/4.6);
* :mod:`repro.fast.treearrays` — :class:`~repro.fast.treearrays.TreeArrays`
  and :class:`~repro.fast.treearrays.InstanceArrays`, the cached numpy views
  of a :class:`~repro.trees.rooted.RootedTree` and a
  :class:`~repro.core.instance.TAPInstance` that the kernels consume;
* :mod:`repro.fast.forward` — the vectorized primal-dual forward phase
  (paper Sections 3.4/4.4), a drop-in for
  :func:`repro.core.forward.forward_phase`;
* :mod:`repro.fast.context` — :class:`~repro.fast.context.FastEpochContext`,
  the vectorized epoch state for the reverse-delete phase (petal oracle and
  coverage counters as array kernels; the anchor-selection control flow is
  shared with :mod:`repro.core.mis`, so the two backends cannot drift).

Select the backend with the ``backend="fast" | "reference"`` flag on
:func:`repro.core.tap.approximate_tap` /
:func:`repro.core.tecss.approximate_two_ecss`; the reference path is kept
unchanged for differential testing (``tests/test_backend_differential.py``
asserts bit-identical augmentations, weights, and dual values).

numpy is an optional dependency of the project: importing this package
works without it, but calling :func:`require_numpy` (which every kernel
entry point does) raises a clear error when numpy is missing.
"""

from __future__ import annotations

try:  # numpy is optional at the project level; required for backend="fast"
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bakes numpy in
    _np = None

__all__ = ["HAVE_NUMPY", "require_numpy", "resolve_backend"]

HAVE_NUMPY = _np is not None


def require_numpy():
    """Return the numpy module, raising a clear error when it is absent."""
    if _np is None:  # pragma: no cover - the CI image bakes numpy in
        raise RuntimeError(
            "backend='fast' requires numpy; install it (pip install numpy) "
            "or use backend='reference'"
        )
    return _np


def resolve_backend(backend: str) -> str:
    """Normalize a backend flag to ``"fast"`` or ``"reference"``.

    Delegates to the execution-backend registry
    (:func:`repro.runtime.registry.resolve_compute`, the single source of
    truth for backend names): ``"auto"`` picks ``"fast"`` when numpy is
    importable and ``"reference"`` otherwise; unknown names raise a
    one-line :class:`~repro.runtime.registry.UnknownBackendError` listing
    the registered compute backends.
    """
    from repro.runtime.registry import resolve_compute

    return resolve_compute(backend)
