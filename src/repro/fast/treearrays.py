"""Cached numpy views of trees and TAP instances for the fast kernels.

:class:`TreeArrays` freezes one :class:`~repro.trees.rooted.RootedTree`
into flat int64/float64 arrays (parent, depth, Euler intervals, depth
levels, binary-lifting table) and exposes the kernel entry points bound to
them.  :class:`InstanceArrays` adds the per-instance columns — the CSR-style
virtual-edge arrays ``dec``/``anc``/``weight`` (the tree-edge × non-tree-
edge incidence is implicit: edge ``i`` covers exactly the vertical chain
``dec[i] .. anc[i]``, which every kernel exploits) plus the layering
columns (layer number, path id, path leaf) used by the petal kernels.

Both objects are built once and cached:
``TAPInstance.arrays`` (a ``cached_property``) hands the same
:class:`InstanceArrays` to the forward phase, every reverse-delete epoch,
and the certificates, mirroring how :class:`repro.sim.engine.BatchedNetwork`
builds its CSR adjacency once per network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fast import require_numpy
from repro.fast import kernels as K

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import TAPInstance
    from repro.trees.rooted import RootedTree

__all__ = ["TreeArrays", "InstanceArrays", "ScenarioArrays"]


class TreeArrays:
    """Numpy mirror of a rooted tree plus bound kernel methods."""

    __slots__ = (
        "tree",
        "n",
        "root",
        "parent",
        "depth",
        "tin",
        "tout",
        "levels",
        "up",
        "nonroot",
    )

    def __init__(self, tree: "RootedTree") -> None:
        np = require_numpy()
        self.tree = tree
        self.n = tree.n
        self.root = tree.root
        self.parent = np.asarray(tree.parent, dtype=np.int64)
        self.depth = np.asarray(tree.depth, dtype=np.int64)
        self.tin = np.asarray(tree.tin, dtype=np.int64)
        self.tout = np.asarray(tree.tout, dtype=np.int64)
        self.levels = K.depth_levels(self.depth)
        self.up = K.build_lift_table(self.parent, tree.root, tree.height)
        self.nonroot = np.ones(tree.n, dtype=bool)
        self.nonroot[tree.root] = False

    # -- bound kernels ------------------------------------------------------

    def ancestor_sums(self, values):
        """Bit-identical vectorized :meth:`TreePathOps.ancestor_sums`."""
        return K.ancestor_sums_levels(self.levels, self.parent, values)

    def subtree_counts(self, delta):
        """Exact int64 subtree sums of a per-vertex delta array."""
        return K.subtree_counts(self.tin, self.tout, delta)

    def path_cover_counts(self, dec, anc):
        """Exact coverage counts of the vertical paths ``(dec[i], anc[i])``."""
        return K.path_cover_counts(self.tin, self.tout, dec, anc, self.n)

    def batch_lca(self, u, v):
        """Vectorized LCA, identical to :meth:`RootedTree.lca` pairwise."""
        return K.batch_lca(
            self.up, self.tin, self.tout, self.depth, self.parent, u, v
        )

    def path_chmin(self, dec, anc, values, identity):
        """Per-tree-edge min over covering vertical paths (see kernels)."""
        return K.path_chmin(
            self.up, self.depth, self.n, dec, anc, values, identity
        )

    # -- scenario-batched kernels (2-D: scenarios x vertices/edges) ---------

    def ancestor_sums_2d(self, values2):
        """Row-batched :meth:`ancestor_sums`: ``(S, n)`` in and out."""
        return K.ancestor_sums_levels_2d(self.levels, self.parent, values2)

    def subtree_counts_2d(self, delta2):
        """Row-batched :meth:`subtree_counts` over an ``(S, n)`` delta."""
        return K.subtree_counts_2d(self.tin, self.tout, delta2)

    def path_chmin_2d(self, dec, anc, values2, identity):
        """Row-batched :meth:`path_chmin` over one shared path structure."""
        return K.path_chmin_2d(
            self.up, self.depth, self.n, dec, anc, values2, identity
        )


class InstanceArrays:
    """Numpy mirror of a TAP instance: tree arrays + edge and layering columns."""

    __slots__ = ("ta", "dec", "anc", "weight", "layer", "path_id", "path_leaf", "_nla")

    def __init__(self, inst: "TAPInstance", ta: TreeArrays | None = None) -> None:
        from repro.core.virtual_graph import VirtualEdgeColumns

        np = require_numpy()
        self.ta = ta if ta is not None else TreeArrays(inst.tree)
        edges = inst.edges
        if isinstance(edges, VirtualEdgeColumns):
            self.dec = edges.dec
            self.anc = edges.anc
            self.weight = edges.weight
        elif edges:
            cols = list(zip(*edges))  # VirtualEdge is a NamedTuple
            self.dec = np.asarray(cols[1], dtype=np.int64)
            self.anc = np.asarray(cols[2], dtype=np.int64)
            self.weight = np.asarray(cols[3], dtype=np.float64)
        else:
            self.dec = np.empty(0, dtype=np.int64)
            self.anc = np.empty(0, dtype=np.int64)
            self.weight = np.empty(0, dtype=np.float64)
        lay = inst.layering
        self.layer = np.asarray(lay.layer, dtype=np.int64)
        self.path_id = np.asarray(lay.path_id, dtype=np.int64)
        self.path_leaf = np.asarray(
            [p.leaf for p in lay.paths] or [0], dtype=np.int64
        )
        self._nla: dict[int, object] = {}

    def reweighted(self, weight) -> "InstanceArrays":
        """A clone with only the weight column replaced.

        Everything else — tree arrays, ``dec``/``anc``, layering columns,
        the nearest-in-layer cache — is a pure function of the tree and
        the virtual-edge *structure*, so the delta plan derivation
        (:meth:`repro.runtime.plan.SolverPlan._derive_instance`) shares it
        object-for-object across reweights of the same tree.
        """
        clone = InstanceArrays.__new__(InstanceArrays)
        clone.ta = self.ta
        clone.dec = self.dec
        clone.anc = self.anc
        clone.weight = weight
        clone.layer = self.layer
        clone.path_id = self.path_id
        clone.path_leaf = self.path_leaf
        clone._nla = self._nla
        return clone

    def nearest_in_layer(self, i: int, layering):
        """``layering.nearest_in_layer(i)`` as a cached int64 array."""
        np = require_numpy()
        arr = self._nla.get(i)
        if arr is None:
            arr = np.asarray(layering.nearest_in_layer(i), dtype=np.int64)
            self._nla[i] = arr
        return arr


class ScenarioArrays:
    """A scenario axis over one shared :class:`InstanceArrays` structure.

    The 2-D promotion of the instance view: everything that depends only
    on the tree and the virtual-edge *structure* (``ta``, ``dec``, ``anc``,
    the layering columns) stays the single shared 1-D object, and only the
    weight column widens to the ``(scenarios, edges)`` matrix ``weight2``
    — the invariant the scenario-batched forward phase
    (:func:`repro.fast.forward.forward_phase_fast_batch`) is built on.
    Built from the per-scenario :class:`InstanceArrays` clones that
    :meth:`InstanceArrays.reweighted` produces, which share their
    structure object-for-object; :meth:`from_instances` checks exactly
    that, so a caller cannot silently stack incompatible instances.
    """

    __slots__ = ("base", "weight2")

    def __init__(self, base: "InstanceArrays", weight2) -> None:
        self.base = base
        self.weight2 = weight2

    @classmethod
    def from_instances(cls, instances) -> "ScenarioArrays":
        """Stack the weight columns of structure-sharing TAP instances.

        Every instance must hold the same ``TreeArrays`` and ``dec``/``anc``
        objects (the :meth:`InstanceArrays.reweighted` contract); the
        result's ``weight2[s]`` is instance ``s``'s weight column.
        """
        np = require_numpy()
        arrays = [inst.arrays for inst in instances]
        base = arrays[0]
        for other in arrays[1:]:
            if (
                other.ta is not base.ta
                or other.dec is not base.dec
                or other.anc is not base.anc
            ):
                raise ValueError(
                    "ScenarioArrays needs instances sharing one virtual-edge "
                    "structure (build them via InstanceArrays.reweighted)"
                )
        weight2 = np.stack([a.weight for a in arrays]).astype(
            np.float64, copy=False
        )
        return cls(base, weight2)

    @property
    def ta(self) -> TreeArrays:
        """The shared tree arrays (1-D, topology-owned)."""
        return self.base.ta

    @property
    def dec(self):
        """Shared per-edge descendant endpoints (1-D, structure-owned)."""
        return self.base.dec

    @property
    def anc(self):
        """Shared per-edge ancestor endpoints (1-D, structure-owned)."""
        return self.base.anc

    @property
    def layer(self):
        """Shared per-vertex layer numbers (1-D, structure-owned)."""
        return self.base.layer

    @property
    def scenarios(self) -> int:
        """Number of stacked scenarios (rows of ``weight2``)."""
        return int(self.weight2.shape[0])
