"""Vectorized primal-dual forward phase (paper Sections 3.4 and 4.4).

Same algorithm, same epoch/iteration structure, same
:class:`~repro.core.rounds.PrimitiveLog` entries, and bit-identical output
as :func:`repro.core.forward.forward_phase` — but every per-edge and
per-tree-edge loop becomes an array kernel:

* dual prefix sums ``s(e) = cum[dec] - cum[anc]`` via the level-synchronous
  :func:`~repro.fast.kernels.ancestor_sums_levels` (same floating-point
  operation tree as the reference recurrence);
* the first-iteration uniform start ``min over covering e of
  (w(e) - s(e)) / |S_e^k|`` via the jump-table
  :func:`~repro.fast.kernels.path_chmin` (minimum of doubles is
  association-free, so it matches the reference segment tree exactly);
* tightness detection and the ``(1 + eps)`` dual raise as masked array
  expressions (one IEEE-754 multiply per element, as in the loop);
* the coverage counter as int64 Euler-tour subtree counts
  (:func:`~repro.fast.kernels.subtree_counts`) — exact integers.

See ``tests/test_backend_differential.py`` for the suite asserting
equality of every :class:`~repro.core.forward.ForwardResult` field against
the reference on seeded graph-family instances.
"""

from __future__ import annotations

import math

from repro.core.forward import _REL_TOL, ForwardResult
from repro.core.rounds import PrimitiveLog
from repro.exceptions import InvariantViolation, NotTwoEdgeConnectedError
from repro.fast import require_numpy
from repro.fast.context import FastCoverageCounter

__all__ = ["forward_phase_fast", "forward_phase_fast_batch"]


def forward_phase_fast(inst, eps: float = 0.25, max_iter_slack: int = 8) -> ForwardResult:
    """Drop-in replacement for :func:`repro.core.forward.forward_phase`.

    Identical signature, identical result (including the primitive log and
    the Lemma 4.12 iteration-bound enforcement); requires numpy.
    """
    np = require_numpy()
    if eps <= 0:
        raise ValueError("eps must be positive")

    arrays = inst.arrays
    ta = arrays.ta
    tree = inst.tree
    n = tree.n
    m = len(inst.edges)
    dec, anc, w = arrays.dec, arrays.anc, arrays.weight

    # Feasibility (2-edge-connectivity): every tree edge must be covered.
    cov0 = ta.path_cover_counts(dec, anc)
    uncovered = np.flatnonzero((cov0 == 0) & ta.nonroot)
    if uncovered.size:
        t = int(uncovered[0])
        raise NotTwoEdgeConnectedError(
            f"tree edge ({t}, {tree.parent[t]}) is covered by no "
            "link; the underlying graph has a bridge"
        )

    y = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=bool)
    covered[tree.root] = True
    first_cover_epoch = np.zeros(n, dtype=np.int64)
    in_a = np.zeros(m, dtype=bool)
    added: list[int] = []
    epoch_added: dict[int, int] = {}
    r_sets: dict[int, list[int]] = {}
    iterations_per_epoch: dict[int, int] = {}
    log = PrimitiveLog()
    # Coverage of A as a scatter domain: +1 at dec, -1 at anc per chosen
    # edge; subtree sums give the counts (the kernel counterpart of the
    # reference CoverageCounter).
    cover_delta = np.zeros(n, dtype=np.int64)

    # Zero-weight links can never pay a positive dual; add them up front
    # (they only ever help the solution and cost nothing).
    zero_w = np.flatnonzero(w <= 0.0)
    if zero_w.size:
        in_a[zero_w] = True
        for eid in zero_w:
            added.append(int(eid))
            epoch_added[int(eid)] = 0
        np.add.at(cover_delta, dec[zero_w], 1)
        np.add.at(cover_delta, anc[zero_w], -1)
        counts = ta.subtree_counts(cover_delta)
        covered |= counts > 0
        covered[tree.root] = True
        # first_cover_epoch stays 0: covered before epoch 1

    iter_bound = math.ceil(math.log(max(2, n)) / math.log1p(eps)) + max_iter_slack
    layer = arrays.layer

    for k in range(1, inst.layering.num_layers + 1):
        remaining = (layer == k) & ~covered
        r_sets[k] = [int(t) for t in np.flatnonzero(remaining)]
        if not r_sets[k]:
            iterations_per_epoch[k] = 0
            continue

        iteration = 0
        while remaining.any():
            iteration += 1
            if iteration > iter_bound:
                raise InvariantViolation(
                    f"epoch {k} exceeded the Lemma 4.12 iteration bound "
                    f"({iter_bound}); eps={eps}"
                )
            cum = ta.ancestor_sums(y)
            log.record("aggregate")  # every non-tree edge computes s(e)
            if iteration == 1:
                # |S_e^k|: how many uncovered layer-k edges each link covers.
                cum_z = ta.ancestor_sums(remaining.astype(np.float64))
                log.record("aggregate")
                # Every uncovered t learns min (w(e)-s(e))/|S_e^k| over
                # covering edges e — an aggregate of the covering links.
                active = np.flatnonzero(~in_a)
                cnt = np.rint(cum_z[dec[active]] - cum_z[anc[active]]).astype(
                    np.int64
                )
                sel = active[cnt > 0]
                s_sel = cum[dec[sel]] - cum[anc[sel]]
                vals = (w[sel] - s_sel) / cnt[cnt > 0]
                start = ta.path_chmin(dec[sel], anc[sel], vals, np.inf)
                log.record("aggregate")
                rem_idx = np.flatnonzero(remaining)
                start_rem = start[rem_idx]
                bad = np.flatnonzero(np.isinf(start_rem))
                if bad.size:  # pragma: no cover
                    raise InvariantViolation(
                        f"uncovered edge {int(rem_idx[bad[0]])} has no "
                        "non-tight covering link"
                    )
                y[rem_idx] = np.maximum(start_rem, 0.0)
                cum = ta.ancestor_sums(y)
                log.record("aggregate")
            else:
                y[remaining] *= 1.0 + eps
                cum = ta.ancestor_sums(y)
                log.record("aggregate")

            # Collect edges whose dual constraint is (numerically) tight.
            active = np.flatnonzero(~in_a)
            s_act = cum[dec[active]] - cum[anc[active]]
            new_edges = active[s_act >= w[active] * (1.0 - _REL_TOL)]
            if new_edges.size:
                in_a[new_edges] = True
                for eid in new_edges:
                    epoch_added[int(eid)] = k
                    added.append(int(eid))
                np.add.at(cover_delta, dec[new_edges], 1)
                np.add.at(cover_delta, anc[new_edges], -1)
                log.record("aggregate")  # tree edges learn whether A covers them
                counts = ta.subtree_counts(cover_delta)
                newly = ~covered & (counts > 0)
                newly[tree.root] = False
                covered |= newly
                first_cover_epoch[newly] = k
                remaining &= ~newly
            log.record("broadcast")  # "is layer k fully covered?" over BFS tree

        iterations_per_epoch[k] = iteration

    return ForwardResult(
        y=[float(v) for v in y],
        added=added,
        epoch_added=epoch_added,
        first_cover_epoch=[int(v) for v in first_cover_epoch],
        r_sets=r_sets,
        iterations_per_epoch=iterations_per_epoch,
        log=log,
    )


def forward_phase_fast_batch(
    instances, eps: float = 0.25, max_iter_slack: int = 8
) -> "list[ForwardResult]":
    """Scenario-batched :func:`forward_phase_fast` over one shared structure.

    ``instances`` are TAP instances sharing one tree and one virtual-edge
    structure and differing only in their weight columns (the
    :meth:`repro.fast.treearrays.InstanceArrays.reweighted` contract,
    enforced via :class:`~repro.fast.treearrays.ScenarioArrays`).  All
    scenarios run the epoch/iteration loop in lockstep: per lockstep
    iteration the prefix sums, the first-iteration chmin, the tightness
    test, and the coverage counts execute once as ``(scenarios, ·)``
    kernels instead of once per scenario.  Per-scenario control flow is
    carried by masks — a scenario whose epoch finished is masked out of
    every update and every log record, so element ``s`` of the result is
    bit-identical (duals, added order, epochs, r-sets, iteration counts,
    primitive logs) to ``forward_phase_fast(instances[s], ...)``.
    """
    from repro.fast.treearrays import ScenarioArrays

    np = require_numpy()
    if eps <= 0:
        raise ValueError("eps must be positive")

    sa = ScenarioArrays.from_instances(instances)
    ta = sa.ta
    tree = instances[0].tree
    n = tree.n
    scenarios = sa.scenarios
    dec, anc, w2 = sa.dec, sa.anc, sa.weight2
    m = int(w2.shape[1])

    # Feasibility (2-edge-connectivity) is a pure function of the shared
    # structure: check it once for every scenario.
    cov0 = ta.path_cover_counts(dec, anc)
    uncovered = np.flatnonzero((cov0 == 0) & ta.nonroot)
    if uncovered.size:
        t = int(uncovered[0])
        raise NotTwoEdgeConnectedError(
            f"tree edge ({t}, {tree.parent[t]}) is covered by no "
            "link; the underlying graph has a bridge"
        )

    y2 = np.zeros((scenarios, n), dtype=np.float64)
    covered2 = np.zeros((scenarios, n), dtype=bool)
    covered2[:, tree.root] = True
    first2 = np.zeros((scenarios, n), dtype=np.int64)
    in_a2 = np.zeros((scenarios, m), dtype=bool)
    added: list[list[int]] = [[] for _ in range(scenarios)]
    epoch_added: list[dict[int, int]] = [{} for _ in range(scenarios)]
    r_sets: list[dict[int, list[int]]] = [{} for _ in range(scenarios)]
    iters: list[dict[int, int]] = [{} for _ in range(scenarios)]
    logs = [PrimitiveLog() for _ in range(scenarios)]
    cover_delta2 = np.zeros((scenarios, n), dtype=np.int64)

    # Zero-weight preamble, per scenario (row-major nonzero order matches
    # the scalar flatnonzero order within each scenario).
    zero_s, zero_e = np.nonzero(w2 <= 0.0)
    if zero_s.size:
        in_a2[zero_s, zero_e] = True
        for s, eid in zip(zero_s.tolist(), zero_e.tolist()):
            added[s].append(eid)
            epoch_added[s][eid] = 0
        np.add.at(cover_delta2, (zero_s, dec[zero_e]), 1)
        np.add.at(cover_delta2, (zero_s, anc[zero_e]), -1)
        rows = np.unique(zero_s)
        counts = FastCoverageCounter.counts_2d(ta, cover_delta2[rows])
        covered2[rows] |= counts > 0
        covered2[:, tree.root] = True
        # first_cover_epoch stays 0: covered before epoch 1

    iter_bound = math.ceil(math.log(max(2, n)) / math.log1p(eps)) + max_iter_slack
    layer = sa.layer
    w2_tol = w2 * (1.0 - _REL_TOL)
    # Scratch buffers reused by every lockstep iteration.  A fresh
    # ``(scenarios, m)`` float64 array is tens of MB at production batch
    # sizes; allocating them anew each iteration made the allocator hand
    # back freshly zeroed pages every time, which dominated large
    # batches.  Slices ``[:r]`` of these serve the live-row subsets.
    fbuf_a = np.empty((scenarios, m), dtype=np.float64)
    fbuf_b = np.empty((scenarios, m), dtype=np.float64)
    fbuf_c = np.empty((scenarios, m), dtype=np.float64)
    bbuf_a = np.empty((scenarios, m), dtype=bool)
    bbuf_b = np.empty((scenarios, m), dtype=bool)

    for k in range(1, instances[0].layering.num_layers + 1):
        remaining2 = (layer == k)[None, :] & ~covered2
        for s in range(scenarios):
            r_sets[s][k] = [int(t) for t in np.flatnonzero(remaining2[s])]
            if not r_sets[s][k]:
                iters[s][k] = 0
        live = remaining2.any(axis=1)

        iteration = 0
        while live.any():
            iteration += 1
            if iteration > iter_bound:
                raise InvariantViolation(
                    f"epoch {k} exceeded the Lemma 4.12 iteration bound "
                    f"({iter_bound}); eps={eps}"
                )
            # Live-row compaction: every ``(·, m)`` temporary below is
            # sliced to the scenarios still iterating this epoch.  Late
            # iterations typically keep a handful of stragglers, and
            # paying ``(scenarios, m)`` memory traffic for rows whose
            # mask is all-False is what made large batches superlinear.
            # Each row's arithmetic is unchanged, so results stay
            # bit-identical.
            rows = np.flatnonzero(live)
            r = rows.size
            full = r == scenarios
            remr = remaining2 if full else remaining2[rows]
            in_ar = in_a2 if full else in_a2[rows]
            for s in rows.tolist():
                logs[s].record("aggregate")  # every non-tree edge computes s(e)
            if iteration == 1:
                # |S_e^k|: how many uncovered layer-k edges each link
                # covers.  ``cnt`` stays float64 — np.rint makes the
                # counts exact integers (they are < 2^53) and the divide
                # below converts an int64 divisor to the very same
                # doubles, so skipping the astype changes no bit.
                cum_zr = ta.ancestor_sums_2d(remr.astype(np.float64))
                for s in rows.tolist():
                    logs[s].record("aggregate")
                cnt = fbuf_a[:r]
                np.subtract(cum_zr[:, dec], cum_zr[:, anc], out=cnt)
                np.rint(cnt, out=cnt)
                cumr = ta.ancestor_sums_2d(y2 if full else y2[rows])
                # Per-scenario edge selection (not in A, positive count)
                # lives in the value matrix: deselected entries carry the
                # chmin identity and scatter as no-ops.
                selr = np.greater(cnt, 0.0, out=bbuf_a[:r])
                np.logical_and(selr, np.logical_not(in_ar, out=bbuf_b[:r]),
                               out=selr)
                num = fbuf_b[:r]
                np.subtract(cumr[:, dec], cumr[:, anc], out=num)
                np.subtract(w2 if full else w2[rows], num, out=num)
                valsr = fbuf_c[:r]
                valsr.fill(np.inf)
                np.divide(num, cnt, out=valsr, where=selr)
                startr = ta.path_chmin_2d(dec, anc, valsr, np.inf)
                for s in rows.tolist():
                    logs[s].record("aggregate")
                bad_r, bad_t = np.nonzero(remr & np.isinf(startr))
                if bad_r.size:  # pragma: no cover
                    raise InvariantViolation(
                        f"uncovered edge {int(bad_t[0])} has no "
                        "non-tight covering link"
                    )
                if full:
                    y2[remr] = np.maximum(startr[remr], 0.0)
                else:
                    y2r = y2[rows]
                    y2r[remr] = np.maximum(startr[remr], 0.0)
                    y2[rows] = y2r
            else:
                if full:
                    y2[remr] *= 1.0 + eps
                else:
                    y2r = y2[rows]
                    y2r[remr] *= 1.0 + eps
                    y2[rows] = y2r
            cumr = ta.ancestor_sums_2d(y2 if full else y2[rows])
            for s in rows.tolist():
                logs[s].record("aggregate")

            # Collect edges whose dual constraint is (numerically) tight.
            s_actr = fbuf_a[:r]
            np.subtract(cumr[:, dec], cumr[:, anc], out=s_actr)
            tightr = np.greater_equal(
                s_actr, w2_tol if full else w2_tol[rows], out=bbuf_a[:r]
            )
            np.logical_and(tightr, np.logical_not(in_ar, out=bbuf_b[:r]),
                           out=tightr)
            new_r, new_e = np.nonzero(tightr)
            if new_r.size:
                new_s = rows[new_r]
                in_a2[new_s, new_e] = True
                for s, eid in zip(new_s.tolist(), new_e.tolist()):
                    epoch_added[s][eid] = k
                    added[s].append(eid)
                np.add.at(cover_delta2, (new_s, dec[new_e]), 1)
                np.add.at(cover_delta2, (new_s, anc[new_e]), -1)
                upd = np.unique(new_s)
                for s in upd.tolist():
                    logs[s].record("aggregate")  # tree edges learn coverage
                counts = FastCoverageCounter.counts_2d(ta, cover_delta2[upd])
                newly = ~covered2[upd] & (counts > 0)
                newly[:, tree.root] = False
                covered2[upd] |= newly
                firsts = first2[upd]
                firsts[newly] = k
                first2[upd] = firsts
                remaining2[upd] &= ~newly
            for s in rows.tolist():
                logs[s].record("broadcast")  # "is layer k fully covered?"
            still = remaining2.any(axis=1)
            for s in np.flatnonzero(live & ~still):
                iters[s][k] = iteration
            live = still

    y_lists = y2.tolist()
    first_lists = first2.tolist()
    return [
        ForwardResult(
            y=y_lists[s],
            added=added[s],
            epoch_added=epoch_added[s],
            first_cover_epoch=first_lists[s],
            r_sets=r_sets[s],
            iterations_per_epoch=iters[s],
            log=logs[s],
        )
        for s in range(scenarios)
    ]
