"""Vectorized primal-dual forward phase (paper Sections 3.4 and 4.4).

Same algorithm, same epoch/iteration structure, same
:class:`~repro.core.rounds.PrimitiveLog` entries, and bit-identical output
as :func:`repro.core.forward.forward_phase` — but every per-edge and
per-tree-edge loop becomes an array kernel:

* dual prefix sums ``s(e) = cum[dec] - cum[anc]`` via the level-synchronous
  :func:`~repro.fast.kernels.ancestor_sums_levels` (same floating-point
  operation tree as the reference recurrence);
* the first-iteration uniform start ``min over covering e of
  (w(e) - s(e)) / |S_e^k|`` via the jump-table
  :func:`~repro.fast.kernels.path_chmin` (minimum of doubles is
  association-free, so it matches the reference segment tree exactly);
* tightness detection and the ``(1 + eps)`` dual raise as masked array
  expressions (one IEEE-754 multiply per element, as in the loop);
* the coverage counter as int64 Euler-tour subtree counts
  (:func:`~repro.fast.kernels.subtree_counts`) — exact integers.

See ``tests/test_backend_differential.py`` for the suite asserting
equality of every :class:`~repro.core.forward.ForwardResult` field against
the reference on seeded graph-family instances.
"""

from __future__ import annotations

import math

from repro.core.forward import _REL_TOL, ForwardResult
from repro.core.rounds import PrimitiveLog
from repro.exceptions import InvariantViolation, NotTwoEdgeConnectedError
from repro.fast import require_numpy

__all__ = ["forward_phase_fast"]


def forward_phase_fast(inst, eps: float = 0.25, max_iter_slack: int = 8) -> ForwardResult:
    """Drop-in replacement for :func:`repro.core.forward.forward_phase`.

    Identical signature, identical result (including the primitive log and
    the Lemma 4.12 iteration-bound enforcement); requires numpy.
    """
    np = require_numpy()
    if eps <= 0:
        raise ValueError("eps must be positive")

    arrays = inst.arrays
    ta = arrays.ta
    tree = inst.tree
    n = tree.n
    m = len(inst.edges)
    dec, anc, w = arrays.dec, arrays.anc, arrays.weight

    # Feasibility (2-edge-connectivity): every tree edge must be covered.
    cov0 = ta.path_cover_counts(dec, anc)
    uncovered = np.flatnonzero((cov0 == 0) & ta.nonroot)
    if uncovered.size:
        t = int(uncovered[0])
        raise NotTwoEdgeConnectedError(
            f"tree edge ({t}, {tree.parent[t]}) is covered by no "
            "link; the underlying graph has a bridge"
        )

    y = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=bool)
    covered[tree.root] = True
    first_cover_epoch = np.zeros(n, dtype=np.int64)
    in_a = np.zeros(m, dtype=bool)
    added: list[int] = []
    epoch_added: dict[int, int] = {}
    r_sets: dict[int, list[int]] = {}
    iterations_per_epoch: dict[int, int] = {}
    log = PrimitiveLog()
    # Coverage of A as a scatter domain: +1 at dec, -1 at anc per chosen
    # edge; subtree sums give the counts (the kernel counterpart of the
    # reference CoverageCounter).
    cover_delta = np.zeros(n, dtype=np.int64)

    # Zero-weight links can never pay a positive dual; add them up front
    # (they only ever help the solution and cost nothing).
    zero_w = np.flatnonzero(w <= 0.0)
    if zero_w.size:
        in_a[zero_w] = True
        for eid in zero_w:
            added.append(int(eid))
            epoch_added[int(eid)] = 0
        np.add.at(cover_delta, dec[zero_w], 1)
        np.add.at(cover_delta, anc[zero_w], -1)
        counts = ta.subtree_counts(cover_delta)
        covered |= counts > 0
        covered[tree.root] = True
        # first_cover_epoch stays 0: covered before epoch 1

    iter_bound = math.ceil(math.log(max(2, n)) / math.log1p(eps)) + max_iter_slack
    layer = arrays.layer

    for k in range(1, inst.layering.num_layers + 1):
        remaining = (layer == k) & ~covered
        r_sets[k] = [int(t) for t in np.flatnonzero(remaining)]
        if not r_sets[k]:
            iterations_per_epoch[k] = 0
            continue

        iteration = 0
        while remaining.any():
            iteration += 1
            if iteration > iter_bound:
                raise InvariantViolation(
                    f"epoch {k} exceeded the Lemma 4.12 iteration bound "
                    f"({iter_bound}); eps={eps}"
                )
            cum = ta.ancestor_sums(y)
            log.record("aggregate")  # every non-tree edge computes s(e)
            if iteration == 1:
                # |S_e^k|: how many uncovered layer-k edges each link covers.
                cum_z = ta.ancestor_sums(remaining.astype(np.float64))
                log.record("aggregate")
                # Every uncovered t learns min (w(e)-s(e))/|S_e^k| over
                # covering edges e — an aggregate of the covering links.
                active = np.flatnonzero(~in_a)
                cnt = np.rint(cum_z[dec[active]] - cum_z[anc[active]]).astype(
                    np.int64
                )
                sel = active[cnt > 0]
                s_sel = cum[dec[sel]] - cum[anc[sel]]
                vals = (w[sel] - s_sel) / cnt[cnt > 0]
                start = ta.path_chmin(dec[sel], anc[sel], vals, np.inf)
                log.record("aggregate")
                rem_idx = np.flatnonzero(remaining)
                start_rem = start[rem_idx]
                bad = np.flatnonzero(np.isinf(start_rem))
                if bad.size:  # pragma: no cover
                    raise InvariantViolation(
                        f"uncovered edge {int(rem_idx[bad[0]])} has no "
                        "non-tight covering link"
                    )
                y[rem_idx] = np.maximum(start_rem, 0.0)
                cum = ta.ancestor_sums(y)
                log.record("aggregate")
            else:
                y[remaining] *= 1.0 + eps
                cum = ta.ancestor_sums(y)
                log.record("aggregate")

            # Collect edges whose dual constraint is (numerically) tight.
            active = np.flatnonzero(~in_a)
            s_act = cum[dec[active]] - cum[anc[active]]
            new_edges = active[s_act >= w[active] * (1.0 - _REL_TOL)]
            if new_edges.size:
                in_a[new_edges] = True
                for eid in new_edges:
                    epoch_added[int(eid)] = k
                    added.append(int(eid))
                np.add.at(cover_delta, dec[new_edges], 1)
                np.add.at(cover_delta, anc[new_edges], -1)
                log.record("aggregate")  # tree edges learn whether A covers them
                counts = ta.subtree_counts(cover_delta)
                newly = ~covered & (counts > 0)
                newly[tree.root] = False
                covered |= newly
                first_cover_epoch[newly] = k
                remaining &= ~newly
            log.record("broadcast")  # "is layer k fully covered?" over BFS tree

        iterations_per_epoch[k] = iteration

    return ForwardResult(
        y=[float(v) for v in y],
        added=added,
        epoch_added=epoch_added,
        first_cover_epoch=[int(v) for v in first_cover_epoch],
        r_sets=r_sets,
        iterations_per_epoch=iterations_per_epoch,
        log=log,
    )
