"""The layering decomposition of the tree (paper Sections 3.2 and 4.3).

A vertex is a *junction* if it has more than one child.  Layer 1 consists of
the tree paths from each leaf up to (but not including the edge above) its
first junction ancestor, or up to the root if there is none.  Contracting all
layer-1 paths and repeating yields layers ``2, 3, ...``; the process ends
after ``O(log n)`` layers (Claim 4.7) because every surviving leaf was a
junction with at least two contracted leaf-paths below it.

Key structural facts implemented and tested here:

* each layer is a set of vertex-disjoint vertical paths;
* along any leaf-to-root chain the layer number is non-decreasing, so any
  vertical non-tree edge covers edges of at most one path per layer
  (Claim 4.8);
* ``leaf(t)`` — the bottom vertex of the layer path containing ``t`` — is the
  reference point for lower-petal comparisons (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trees.rooted import RootedTree

__all__ = ["LayerPath", "Layering"]


@dataclass(frozen=True)
class LayerPath:
    """One vertical path of one layer.

    ``edges`` lists tree edges (child ids) bottom-up; ``leaf`` is the lowest
    vertex (what the paper calls ``leaf(P)``) and ``top`` the upper endpoint
    of the highest edge (a junction of the contracted tree, or the root).
    """

    pid: int
    layer: int
    leaf: int
    top: int
    edges: tuple[int, ...] = field(repr=False)


class Layering:
    """Computes and stores the layering of a rooted tree.

    Attributes
    ----------
    layer : list[int]
        ``layer[v]`` for each tree edge ``v`` (child id); the root's slot
        holds 0 and is meaningless.
    num_layers : int
        ``L``, the number of layers (1-based).
    paths : list[LayerPath]
        All layer paths.
    path_id : list[int]
        ``path_id[v]`` is the id of the layer path containing tree edge ``v``.

    ``backend`` selects the construction: ``"reference"`` simulates the
    contraction process round by round (O(n) scans per round); ``"array"``
    computes the same layer numbers in O(height) vectorized passes via the
    Strahler-style recurrence (see :meth:`_compute_array`) and then builds
    the identical path objects in one linear sweep.  ``"auto"`` (default)
    picks ``"array"`` when numpy is importable.  Both backends produce
    identical layers, paths, and path ids (asserted over random trees in
    ``tests/test_fast_kernels.py``).
    """

    __slots__ = ("tree", "layer", "num_layers", "paths", "path_id", "_nla_cache")

    def __init__(self, tree: RootedTree, backend: str = "auto") -> None:
        self.tree = tree
        if backend == "auto":
            from repro.fast import HAVE_NUMPY

            backend = "array" if HAVE_NUMPY else "reference"
        if backend == "array":
            self._compute_array()
            return
        if backend != "reference":
            raise ValueError(f"unknown layering backend {backend!r}")
        n = tree.n
        layer = [0] * n
        path_id = [-1] * n
        paths: list[LayerPath] = []

        deg_down = [len(tree.children[v]) for v in range(n)]
        alive = [v != tree.root for v in range(n)]
        remaining = n - 1
        current_layer = 0
        parent = tree.parent
        root = tree.root

        while remaining > 0:
            current_layer += 1
            # Leaves of the contracted tree: alive edges whose lower endpoint
            # has no alive child edge.
            leaves = [v for v in range(n) if alive[v] and deg_down[v] == 0]
            if not leaves:  # pragma: no cover - cannot happen on a tree
                raise AssertionError("contraction stalled")
            new_paths: list[list[int]] = []
            for leaf in leaves:
                path = []
                x = leaf
                while True:
                    path.append(x)
                    u = parent[x]
                    if u == root or deg_down[u] >= 2 or not alive[u]:
                        break
                    x = u
                new_paths.append(path)
            for path in new_paths:
                pid = len(paths)
                for e in path:
                    layer[e] = current_layer
                    path_id[e] = pid
                    alive[e] = False
                top = parent[path[-1]]
                paths.append(
                    LayerPath(
                        pid=pid,
                        layer=current_layer,
                        leaf=path[0],
                        top=top,
                        edges=tuple(path),
                    )
                )
                deg_down[top] -= 1
                remaining -= len(path)

        self.layer = layer
        self.num_layers = current_layer
        self.paths = paths
        self.path_id = path_id
        self._nla_cache: dict[int, list[int]] = {}

    def _compute_array(self) -> None:
        """Array-backed construction, identical output to the reference.

        The layer of a tree edge obeys a Horton–Strahler-style recurrence:
        a leaf edge has layer 1, and the edge above a vertex whose deepest
        child layers are ``M`` (attained by ``c`` children) has layer ``M``
        when ``c == 1`` (the path continues through a non-junction of the
        contracted tree) and ``M + 1`` when ``c >= 2`` (the vertex stays a
        junction until round ``M``, becoming a contracted leaf only after).
        Evaluating the recurrence one depth level at a time turns the
        reference's per-round O(n) scans into O(height) scatter kernels.

        Two same-layer tree edges share a layer path exactly when they are
        adjacent (a junction of the contracted tree always ends a path and
        always receives a strictly larger layer), so the paths are the
        maximal same-layer vertical chains; enumerating their bottom
        vertices by ``(layer, vertex)`` reproduces the reference pid order
        (rounds ascending, contracted leaves in ascending vertex order).
        """
        from repro.fast import kernels as K
        from repro.fast import require_numpy

        np = require_numpy()
        tree = self.tree
        n = tree.n
        parent = np.asarray(tree.parent, dtype=np.int64)
        g = np.ones(n, dtype=np.int64)
        if n > 1:
            levels = K.depth_levels(np.asarray(tree.depth, dtype=np.int64))
            maxc = np.zeros(n, dtype=np.int64)
            attain = np.zeros(n, dtype=np.int64)
            for lvl in reversed(levels[1:]):
                p = parent[lvl]
                np.maximum.at(maxc, p, g[lvl])
                np.add.at(attain, p, (g[lvl] == maxc[p]).astype(np.int64))
                parents = np.unique(p)
                g[parents] = maxc[parents] + (attain[parents] >= 2)
        g[tree.root] = 0
        layer = g.tolist()

        # Bottom vertices: tree edges none of whose children share their
        # layer — the contracted-tree leaves of their round.
        child_same = np.zeros(n, dtype=bool)
        nonroot = np.ones(n, dtype=bool)
        nonroot[tree.root] = False
        vs = np.flatnonzero(nonroot)
        same = g[vs] == g[parent[vs]]
        np.logical_or.at(child_same, parent[vs[same]], True)
        bottoms = np.flatnonzero(nonroot & ~child_same)
        bottoms = bottoms[np.lexsort((bottoms, g[bottoms]))]

        paths: list[LayerPath] = []
        path_id = [-1] * n
        parent_list = tree.parent
        root = tree.root
        for leaf in bottoms.tolist():
            ell = layer[leaf]
            path = [leaf]
            x = leaf
            while True:
                u = parent_list[x]
                if u == root or layer[u] != ell:
                    break
                path.append(u)
                x = u
            pid = len(paths)
            for e in path:
                path_id[e] = pid
            paths.append(
                LayerPath(
                    pid=pid,
                    layer=ell,
                    leaf=path[0],
                    top=parent_list[path[-1]],
                    edges=tuple(path),
                )
            )

        self.layer = layer
        self.num_layers = max((layer[v] for v in range(n) if v != root), default=0)
        self.paths = paths
        self.path_id = path_id
        self._nla_cache = {}

    # ------------------------------------------------------------------

    def path_of(self, t: int) -> LayerPath:
        """The layer path containing tree edge ``t``."""
        return self.paths[self.path_id[t]]

    def leaf_of(self, t: int) -> int:
        """``leaf(t)``: the bottom vertex of the path containing ``t``."""
        return self.paths[self.path_id[t]].leaf

    def edges_in_layer(self, i: int) -> list[int]:
        """All tree edges of layer ``i`` (1-based)."""
        return [v for v in self.tree.tree_edges() if self.layer[v] == i]

    def nearest_in_layer(self, i: int) -> list[int]:
        """``nla[v]`` = the deepest tree edge of layer ``i`` on the chain from
        ``v`` to the root (``-1`` if none).  Cached per layer.

        This is the tool that lets a vertical non-tree edge ``(dec, anc)``
        find the deepest layer-``i`` edge it covers: it is ``nla[dec]``
        provided that edge is strictly below ``anc``.
        """
        cached = self._nla_cache.get(i)
        if cached is not None:
            return cached
        t = self.tree
        nla = [-1] * t.n
        for v in t.order:
            p = t.parent[v]
            if p < 0:
                continue
            nla[v] = v if self.layer[v] == i else nla[p]
        self._nla_cache[i] = nla
        return nla

    def deepest_covered_in_layer(self, i: int, dec: int, anc: int) -> int:
        """The deepest layer-``i`` tree edge covered by the vertical edge
        ``(dec, anc)``, or ``-1``.
        """
        t0 = self.nearest_in_layer(i)[dec]
        if t0 != -1 and self.tree.depth[t0] > self.tree.depth[anc]:
            return t0
        return -1
