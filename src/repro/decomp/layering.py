"""The layering decomposition of the tree (paper Sections 3.2 and 4.3).

A vertex is a *junction* if it has more than one child.  Layer 1 consists of
the tree paths from each leaf up to (but not including the edge above) its
first junction ancestor, or up to the root if there is none.  Contracting all
layer-1 paths and repeating yields layers ``2, 3, ...``; the process ends
after ``O(log n)`` layers (Claim 4.7) because every surviving leaf was a
junction with at least two contracted leaf-paths below it.

Key structural facts implemented and tested here:

* each layer is a set of vertex-disjoint vertical paths;
* along any leaf-to-root chain the layer number is non-decreasing, so any
  vertical non-tree edge covers edges of at most one path per layer
  (Claim 4.8);
* ``leaf(t)`` — the bottom vertex of the layer path containing ``t`` — is the
  reference point for lower-petal comparisons (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trees.rooted import RootedTree

__all__ = ["LayerPath", "Layering"]


@dataclass(frozen=True)
class LayerPath:
    """One vertical path of one layer.

    ``edges`` lists tree edges (child ids) bottom-up; ``leaf`` is the lowest
    vertex (what the paper calls ``leaf(P)``) and ``top`` the upper endpoint
    of the highest edge (a junction of the contracted tree, or the root).
    """

    pid: int
    layer: int
    leaf: int
    top: int
    edges: tuple[int, ...] = field(repr=False)


class Layering:
    """Computes and stores the layering of a rooted tree.

    Attributes
    ----------
    layer : list[int]
        ``layer[v]`` for each tree edge ``v`` (child id); the root's slot
        holds 0 and is meaningless.
    num_layers : int
        ``L``, the number of layers (1-based).
    paths : list[LayerPath]
        All layer paths.
    path_id : list[int]
        ``path_id[v]`` is the id of the layer path containing tree edge ``v``.
    """

    __slots__ = ("tree", "layer", "num_layers", "paths", "path_id", "_nla_cache")

    def __init__(self, tree: RootedTree) -> None:
        self.tree = tree
        n = tree.n
        layer = [0] * n
        path_id = [-1] * n
        paths: list[LayerPath] = []

        deg_down = [len(tree.children[v]) for v in range(n)]
        alive = [v != tree.root for v in range(n)]
        remaining = n - 1
        current_layer = 0
        parent = tree.parent
        root = tree.root

        while remaining > 0:
            current_layer += 1
            # Leaves of the contracted tree: alive edges whose lower endpoint
            # has no alive child edge.
            leaves = [v for v in range(n) if alive[v] and deg_down[v] == 0]
            if not leaves:  # pragma: no cover - cannot happen on a tree
                raise AssertionError("contraction stalled")
            new_paths: list[list[int]] = []
            for leaf in leaves:
                path = []
                x = leaf
                while True:
                    path.append(x)
                    u = parent[x]
                    if u == root or deg_down[u] >= 2 or not alive[u]:
                        break
                    x = u
                new_paths.append(path)
            for path in new_paths:
                pid = len(paths)
                for e in path:
                    layer[e] = current_layer
                    path_id[e] = pid
                    alive[e] = False
                top = parent[path[-1]]
                paths.append(
                    LayerPath(
                        pid=pid,
                        layer=current_layer,
                        leaf=path[0],
                        top=top,
                        edges=tuple(path),
                    )
                )
                deg_down[top] -= 1
                remaining -= len(path)

        self.layer = layer
        self.num_layers = current_layer
        self.paths = paths
        self.path_id = path_id
        self._nla_cache: dict[int, list[int]] = {}

    # ------------------------------------------------------------------

    def path_of(self, t: int) -> LayerPath:
        """The layer path containing tree edge ``t``."""
        return self.paths[self.path_id[t]]

    def leaf_of(self, t: int) -> int:
        """``leaf(t)``: the bottom vertex of the path containing ``t``."""
        return self.paths[self.path_id[t]].leaf

    def edges_in_layer(self, i: int) -> list[int]:
        """All tree edges of layer ``i`` (1-based)."""
        return [v for v in self.tree.tree_edges() if self.layer[v] == i]

    def nearest_in_layer(self, i: int) -> list[int]:
        """``nla[v]`` = the deepest tree edge of layer ``i`` on the chain from
        ``v`` to the root (``-1`` if none).  Cached per layer.

        This is the tool that lets a vertical non-tree edge ``(dec, anc)``
        find the deepest layer-``i`` edge it covers: it is ``nla[dec]``
        provided that edge is strictly below ``anc``.
        """
        cached = self._nla_cache.get(i)
        if cached is not None:
            return cached
        t = self.tree
        nla = [-1] * t.n
        for v in t.order:
            p = t.parent[v]
            if p < 0:
                continue
            nla[v] = v if self.layer[v] == i else nla[p]
        self._nla_cache[i] = nla
        return nla

    def deepest_covered_in_layer(self, i: int, dec: int, anc: int) -> int:
        """The deepest layer-``i`` tree edge covered by the vertical edge
        ``(dec, anc)``, or ``-1``.
        """
        t0 = self.nearest_in_layer(i)[dec]
        if t0 != -1 and self.tree.depth[t0] > self.tree.depth[anc]:
            return t0
        return -1
