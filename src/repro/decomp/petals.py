"""Petals of tree edges with respect to a set of vertical non-tree edges.

Paper, Sections 3.2 and 4.3.  Fix a set ``X`` of non-tree edges, all between
ancestors and descendants.  For a tree edge ``t`` of layer ``i`` covered by
``X``:

* the **higher petal** is the edge of ``X`` covering ``t`` whose upper
  endpoint is the highest (closest to the root);
* the **lower petal** maximizes coverage *below* ``t`` within ``t``'s layer
  path ``P``: for every covering edge ``e = (dec, anc)`` let
  ``u_e = LCA(leaf(t), dec)`` — a vertex of ``P`` — and pick the edge whose
  ``u_e`` is deepest.

Claim 4.9: the two petals of ``t`` cover every tree edge that any edge of
``X`` covering ``t`` covers in layers ``>= i``.  This is the small
neighbourhood cover property (``tau = 2``) that drives the whole algorithm;
it is verified directly in the test suite.

The computation mirrors the distributed one (Claim 4.11): the higher petal is
an aggregate (min by ancestor depth) over covering edges; the lower petal
needs each non-tree edge to learn ``leaf(t)`` of the single layer-``i`` path
it intersects (Claim 4.8) and then aggregate by ``depth(u_e)``.  Centrally,
both aggregates are batch chmin operations over vertical paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.decomp.layering import Layering
from repro.trees.pathops import TreePathOps

__all__ = ["PetalSet", "PetalOracle", "compute_petals"]


@dataclass
class PetalSet:
    """Petals for a batch of target tree edges.

    ``higher[t]`` / ``lower[t]`` hold indices into the edge list ``X`` that
    was supplied to :func:`compute_petals` (``-1`` when ``t`` is not covered
    by ``X``).  Only targets passed to the computation have entries.
    """

    higher: dict[int, int]
    lower: dict[int, int]

    def petals_of(self, t: int) -> tuple[int, ...]:
        """The (deduplicated) petal edge indices of target ``t``."""
        hi = self.higher.get(t, -1)
        lo = self.lower.get(t, -1)
        out = []
        if hi != -1:
            out.append(hi)
        if lo != -1 and lo != hi:
            out.append(lo)
        return tuple(out)


class PetalOracle:
    """Lazy petal lookups for a *fixed* set ``X`` of vertical edges.

    The reverse-delete phase fixes ``X = B + A_k`` for a whole epoch and then
    asks for petals of many tree edges across iterations; this oracle builds
    the higher-petal structure once and one lower-petal structure per layer,
    on demand.  Individual lookups cost ``O(log n)``.
    """

    __slots__ = ("ops", "layering", "x_edges", "_hi", "_lo_by_layer")

    def __init__(
        self,
        ops: TreePathOps,
        layering: Layering,
        x_edges: Sequence[tuple[int, int]],
    ) -> None:
        self.ops = ops
        self.layering = layering
        self.x_edges = x_edges
        depth = ops.tree.depth
        self._hi = ops.chmin_over_paths(
            (dec, anc, (depth[anc], idx)) for idx, (dec, anc) in enumerate(x_edges)
        )
        self._lo_by_layer: dict[int, object] = {}

    def higher(self, t: int) -> int:
        """Index into ``x_edges`` of the higher petal of ``t`` (-1 if uncovered)."""
        val = self._hi.get(t)
        return val[1] if val != self._hi.identity else -1

    def _lo_result(self, lay: int):
        res = self._lo_by_layer.get(lay)
        if res is None:
            tree = self.ops.tree
            depth = tree.depth
            layering = self.layering
            updates = []
            for idx, (dec, anc) in enumerate(self.x_edges):
                t0 = layering.deepest_covered_in_layer(lay, dec, anc)
                if t0 == -1:
                    continue
                leaf = layering.leaf_of(t0)
                u_e = tree.lca(leaf, dec)
                # Deeper u_e is better; min over (-depth, index).
                updates.append((dec, anc, (-depth[u_e], idx)))
            res = self.ops.chmin_over_paths(updates)
            self._lo_by_layer[lay] = res
        return res

    def lower(self, t: int) -> int:
        """Index into ``x_edges`` of the lower petal of ``t`` (-1 if uncovered)."""
        res = self._lo_result(self.layering.layer[t])
        val = res.get(t)
        return val[1] if val != res.identity else -1

    def petals_of(self, t: int) -> tuple[int, ...]:
        """Indices of ``t``'s distinct petals (higher first; empty if uncovered)."""
        hi = self.higher(t)
        lo = self.lower(t)
        out = []
        if hi != -1:
            out.append(hi)
        if lo != -1 and lo != hi:
            out.append(lo)
        return tuple(out)


def compute_petals(
    ops: TreePathOps,
    layering: Layering,
    x_edges: Sequence[tuple[int, int]],
    targets: Iterable[int],
) -> PetalSet:
    """Compute higher and lower petals w.r.t. ``X`` for the given tree edges.

    Parameters
    ----------
    ops:
        Path operations bound to the tree.
    layering:
        The layering of the same tree.
    x_edges:
        The set ``X`` as ``(dec, anc)`` pairs, ``anc`` a strict ancestor of
        ``dec``.  Returned petal values index into this sequence.
    targets:
        Tree edges (child ids) whose petals are wanted; they may span
        several layers (batched per layer internally).
    """
    oracle = PetalOracle(ops, layering, x_edges)
    higher: dict[int, int] = {}
    lower: dict[int, int] = {}
    for t in targets:
        higher[t] = oracle.higher(t)
        lower[t] = oracle.lower(t)
    return PetalSet(higher=higher, lower=lower)
