"""Segment decomposition of a spanning tree (paper Section 4.2.1, after [8,16]).

The tree is broken into ``O(sqrt n)`` edge-disjoint *segments*, each of
diameter ``O(sqrt n)``.  A segment ``S`` has a root ``r_S`` (an ancestor of
every vertex in it), a *unique descendant* ``d_S``, a *highway* — the tree
path ``r_S .. d_S`` — and additional subtrees attached to highway vertices.
``r_S`` and ``d_S`` are the only vertices of ``S`` that can appear in other
segments.  The *skeleton tree* has a vertex for every ``r_S``/``d_S`` and an
edge per highway.

Construction (centralized; the paper builds the same object in
``O(D + sqrt(n) log* n)`` CONGEST rounds):

1. mark every vertex whose subtree has at least ``s = ceil(sqrt n)``
   vertices — the marked set is closed under taking parents, so it forms a
   connected top tree ``T_top``;
2. the maximal marked chains between *terminals* of ``T_top`` (the root,
   marked junctions-in-``T_top``, marked leaves-of-``T_top``) become
   highways, split into pieces of at most ``s`` edges;
3. each unmarked hanging subtree (size ``< s``) is attached to the segment of
   the highway vertex it hangs from; subtrees hanging from a shared boundary
   vertex ``x`` go to the segment having ``x = d_S`` (or to a dedicated
   degenerate segment when ``x`` is the global root).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.trees.rooted import RootedTree

__all__ = ["Segment", "SegmentDecomposition"]


@dataclass
class Segment:
    """One segment of the decomposition.

    ``highway`` lists the highway vertices top-down (``r`` first, ``d``
    last); ``highway_edges`` the corresponding tree edges (child ids),
    top-down.  ``attached`` lists the non-highway vertices of the segment.
    """

    sid: int
    r: int
    d: int
    highway: tuple[int, ...]
    highway_edges: tuple[int, ...]
    attached: list[int] = field(default_factory=list)

    @property
    def is_degenerate(self) -> bool:
        """Whether the highway collapsed to a single vertex (``r == d``)."""
        return self.r == self.d


class SegmentDecomposition:
    """Computes and stores the segment decomposition.

    Attributes
    ----------
    segments : list[Segment]
    seg_of_edge : list[int]
        For every tree edge (child id), the id of the unique segment
        containing it; the root's slot is ``-1``.
    on_highway : list[bool]
        Whether each tree edge lies on its segment's highway.
    skeleton_parent : dict[int, int]
        For every boundary vertex except the global root, the boundary vertex
        directly above it in the skeleton tree.
    """

    __slots__ = (
        "tree",
        "s",
        "segments",
        "seg_of_edge",
        "on_highway",
        "boundary",
        "skeleton_parent",
    )

    def __init__(
        self, tree: RootedTree, s: int | None = None, backend: str = "auto"
    ) -> None:
        self.tree = tree
        n = tree.n
        self.s = s if s is not None else max(1, math.isqrt(n - 1) + 1)
        if backend == "auto":
            from repro.fast import HAVE_NUMPY

            backend = "array" if HAVE_NUMPY else "reference"
        if backend == "array":
            # Array-backed marking: the Euler interval length IS the
            # subtree size (tout - tin counts one entry per descendant), so
            # the marked set and the marked-children counts are two
            # vectorized expressions.  Identical booleans/counts to the
            # reference scan.
            from repro.fast import require_numpy

            np = require_numpy()

            tin = np.asarray(tree.tin, dtype=np.int64)
            tout = np.asarray(tree.tout, dtype=np.int64)
            marked_arr = (tout - tin) >= self.s
            marked_arr[tree.root] = True
            kids = np.flatnonzero(marked_arr)
            kids = kids[kids != tree.root]
            parents = np.asarray(tree.parent, dtype=np.int64)[kids]
            mc = np.bincount(parents, minlength=n).astype(np.int64).tolist()
            marked = marked_arr.tolist()
        else:
            if backend != "reference":
                raise ValueError(f"unknown segments backend {backend!r}")
            sizes = tree.subtree_sizes()
            marked = [sizes[v] >= self.s for v in range(n)]
            marked[tree.root] = True

            # Marked children counts within T_top.
            mc = [0] * n
            for v in range(n):
                if marked[v] and v != tree.root:
                    mc[tree.parent[v]] += 1

        def is_terminal(v: int) -> bool:
            """Chain endpoint: the root, or a vertex without exactly one marked child."""
            return v == tree.root or mc[v] != 1

        # Build maximal marked chains: from every non-root terminal walk up
        # through mc==1 vertices to the terminal above.
        chains: list[list[int]] = []  # vertices bottom-up, excluding upper terminal
        for v in range(n):
            if not marked[v] or v == tree.root or not is_terminal(v):
                continue
            chain = [v]
            u = tree.parent[v]
            while not is_terminal(u):
                chain.append(u)
                u = tree.parent[u]
            chain.append(u)  # upper terminal
            chains.append(chain)

        segments: list[Segment] = []
        seg_of_vertex_home: dict[int, int] = {}
        # Split chains into pieces of at most s edges; create segments.
        # A chain is bottom-up: chain[0] = d, chain[-1] = r of the full chain.
        segment_with_d: dict[int, int] = {}
        for chain in chains:
            top_down = chain[::-1]
            num_edges = len(top_down) - 1
            start = 0
            while start < num_edges:
                end = min(start + self.s, num_edges)
                hv = tuple(top_down[start : end + 1])
                he = tuple(hv[1:])  # child ids of the highway edges
                sid = len(segments)
                segments.append(Segment(sid, hv[0], hv[-1], hv, he))
                segment_with_d[hv[-1]] = sid
                start = end

        # Root segment for unmarked subtrees hanging off the global root when
        # the root is not the d of any piece (it never is) — created lazily.
        root_segment_id: int | None = None

        def owner_segment(x: int) -> int:
            """The segment that adopts subtrees hanging from marked vertex x."""
            nonlocal root_segment_id
            sid = segment_with_d.get(x)
            if sid is not None:
                return sid
            # x is interior to a piece, or the global root.
            if x == tree.root:
                if root_segment_id is None:
                    root_segment_id = len(segments)
                    segments.append(
                        Segment(root_segment_id, x, x, (x,), ())
                    )
                    segment_with_d[x] = root_segment_id
                return root_segment_id
            raise AssertionError(f"vertex {x} has no owner segment")

        # Interior highway vertices own their hanging subtrees directly.
        interior_owner: dict[int, int] = {}
        for seg in segments:
            for x in seg.highway[1:-1]:
                interior_owner[x] = seg.sid

        # Assign unmarked vertices: each unmarked vertex u with a marked
        # parent x starts a hanging subtree rooted at u.
        seg_of_edge = [-1] * n
        on_highway = [False] * n
        for seg in segments:
            for e in seg.highway_edges:
                seg_of_edge[e] = seg.sid
                on_highway[e] = True

        for u in tree.order:
            if marked[u]:
                continue
            p = tree.parent[u]
            if marked[p]:
                sid = interior_owner.get(p)
                if sid is None:
                    sid = owner_segment(p)
            else:
                sid = seg_of_edge[p]
            seg_of_edge[u] = sid
            segments[sid].attached.append(u)

        boundary: set[int] = set()
        skeleton_parent: dict[int, int] = {}
        for seg in segments:
            boundary.add(seg.r)
            boundary.add(seg.d)
            if seg.r != seg.d:
                skeleton_parent[seg.d] = seg.r

        self.segments = segments
        self.seg_of_edge = seg_of_edge
        self.on_highway = on_highway
        self.boundary = boundary
        self.skeleton_parent = skeleton_parent

    # ------------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        """Number of segments in the decomposition."""
        return len(self.segments)

    def segment_of_edge(self, t: int) -> Segment:
        """The :class:`Segment` owning tree edge ``t``."""
        return self.segments[self.seg_of_edge[t]]

    def segment_diameter(self, seg: Segment) -> int:
        """Diameter (in edges) of the segment's subgraph of the tree."""
        depth = self.tree.depth
        highway_len = len(seg.highway) - 1
        if not seg.attached:
            return highway_len
        # Depth of attached vertices below their highway attachment point;
        # processing by increasing depth lets each vertex read its parent.
        best = 0
        down: dict[int, int] = {}
        for u in sorted(seg.attached, key=lambda x: depth[x]):
            p = self.tree.parent[u]
            down[u] = down[p] + 1 if p in down else 1
            best = max(best, down[u])
        return highway_len + 2 * best

    def stats(self) -> dict[str, float]:
        """Summary metrics (segment count, max diameter, target size ``s``)."""
        diams = [self.segment_diameter(s) for s in self.segments]
        return {
            "num_segments": float(self.num_segments),
            "max_diameter": float(max(diams) if diams else 0),
            "s": float(self.s),
        }
