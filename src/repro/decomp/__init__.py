"""Tree decompositions used by the paper's first algorithm.

* :mod:`repro.decomp.layering` — the junction-path layering of Sections 3.2
  and 4.3 (O(log n) layers of disjoint vertical paths).
* :mod:`repro.decomp.segments` — the segment decomposition of Section 4.2.1
  (O(sqrt n) edge-disjoint segments with highways and a skeleton tree).
* :mod:`repro.decomp.petals` — higher/lower petals of tree edges with respect
  to a set of vertical non-tree edges (Section 3.2, Claim 4.9).
"""

from repro.decomp.layering import Layering, LayerPath
from repro.decomp.petals import PetalSet, compute_petals
from repro.decomp.segments import Segment, SegmentDecomposition

__all__ = [
    "Layering",
    "LayerPath",
    "PetalSet",
    "compute_petals",
    "Segment",
    "SegmentDecomposition",
]
