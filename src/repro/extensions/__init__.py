"""Extensions: the paper's tau-SNC generalization remark made concrete.

Section 3.6.1 observes that the MIS-plus-petals argument gives a
``tau``-approximation for *any* unweighted covering problem with the
``tau``-small-neighbourhood-cover property, naming vertex cover (via
maximal matching) as the classic instance and citing interval/bag cover
from [1].  :mod:`repro.extensions.snc` implements the generic engine and
both named instantiations.
"""

from repro.extensions.snc import (
    SncInstance,
    snc_unweighted_cover,
    interval_cover_instance,
    vertex_cover_instance,
)

__all__ = [
    "SncInstance",
    "snc_unweighted_cover",
    "interval_cover_instance",
    "vertex_cover_instance",
]
