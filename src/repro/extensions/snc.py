"""Unweighted covering with the tau-SNC property (paper Section 3.6.1).

The paper's observation: for an unweighted set cover instance with the
``tau``-small-neighbourhood-cover property — every element ``u`` has
``tau`` *petal* sets that cover ``u`` and all of its (relevant) neighbours —
the following is a ``tau``-approximation:

1. compute a maximal independent set ``M`` of the *elements* (two elements
   are neighbours when some set covers both);
2. take the union of the petals of the members of ``M``.

Independence makes ``|M|`` a lower bound on OPT (no set covers two members,
so each needs its own set), and the algorithm buys exactly ``tau`` sets per
member.  TAP on the virtual graph is the ``tau = 2`` case with layers;
vertex cover (elements: edges; sets: vertices; petals: the two endpoints;
MIS: a maximal matching) and interval point-cover (petals: the interval
reaching furthest left / furthest right) are the classic flat instances,
both implemented here with certified ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

__all__ = [
    "SncInstance",
    "SncResult",
    "snc_unweighted_cover",
    "vertex_cover_instance",
    "interval_cover_instance",
]


@dataclass
class SncInstance:
    """An unweighted covering instance with a petal oracle.

    ``elements``: the universe; ``covers(s, u)``: does set ``s`` cover
    element ``u``; ``petals(u)``: at most ``tau`` sets covering ``u`` whose
    union covers every neighbour of ``u``; ``sets``: the whole family
    (used for validation / neighbourhood checks).
    """

    elements: list[Hashable]
    sets: list[Hashable]
    covers: Callable[[Hashable, Hashable], bool]
    petals: Callable[[Hashable], Sequence[Hashable]]
    tau: int


@dataclass
class SncResult:
    chosen: list[Hashable]
    mis: list[Hashable]  # certified lower bound on OPT
    tau: int

    @property
    def certified_ratio(self) -> float:
        if not self.mis:
            return 1.0 if not self.chosen else float("inf")
        return len(self.chosen) / len(self.mis)


def snc_unweighted_cover(inst: SncInstance) -> SncResult:
    """The Section 3.6.1 algorithm: MIS of elements, then their petals."""
    chosen: list[Hashable] = []
    chosen_set: set[Hashable] = set()
    mis: list[Hashable] = []

    def covered(u: Hashable) -> bool:
        return any(inst.covers(s, u) for s in chosen_set)

    for u in inst.elements:
        if covered(u):
            continue
        mis.append(u)
        for s in inst.petals(u):
            if s not in chosen_set:
                chosen_set.add(s)
                chosen.append(s)
    # Every element must now be covered (petals cover all neighbours, and an
    # uncovered element would have joined the MIS).
    for u in inst.elements:
        if not covered(u):  # pragma: no cover - violates the SNC property
            raise AssertionError(f"element {u!r} left uncovered; bad petals")
    return SncResult(chosen=chosen, mis=mis, tau=inst.tau)


def vertex_cover_instance(edges: Sequence[tuple[int, int]]) -> SncInstance:
    """Vertex cover as a tau=2 SNC instance.

    Elements are the edges, sets are the vertices, a vertex covers its
    incident edges, and the petals of an edge are its two endpoints — the
    MIS of elements is a maximal matching, recovering the textbook
    2-approximation exactly as the paper describes.
    """
    elements = [tuple(sorted(e)) for e in edges]
    vertices = sorted({v for e in elements for v in e})

    def covers(v: int, e: tuple[int, int]) -> bool:
        return v in e

    def petals(e: tuple[int, int]) -> tuple[int, int]:
        return e

    return SncInstance(
        elements=elements, sets=vertices, covers=covers, petals=petals, tau=2
    )


def interval_cover_instance(
    points: Sequence[float], intervals: Sequence[tuple[float, float]]
) -> SncInstance:
    """Point cover by intervals as a tau=2 SNC instance.

    Elements are points on the line, sets are closed intervals; the petals
    of a point are the covering interval reaching furthest left and the one
    reaching furthest right (the flat analogue of the paper's higher/lower
    petals on a root path).  Raises if some point is uncoverable.
    """
    pts = sorted(points)
    ivs = [tuple(iv) for iv in intervals]

    def covers(iv: tuple[float, float], p: float) -> bool:
        return iv[0] <= p <= iv[1]

    def petals(p: float) -> tuple:
        covering = [iv for iv in ivs if covers(iv, p)]
        if not covering:
            raise ValueError(f"point {p} covered by no interval")
        left = min(covering, key=lambda iv: (iv[0], -iv[1]))
        right = max(covering, key=lambda iv: (iv[1], -iv[0]))
        return (left, right) if left != right else (left,)

    return SncInstance(
        elements=pts, sets=list(ivs), covers=covers, petals=petals, tau=2
    )
