"""Parallel scenario sweeps: family × size × eps grids of the 2-ECSS solver.

The sweep engine behind ``python -m repro sweep``.  A grid of
:class:`SweepTask` cells (graph family, target size, seed, eps, variant,
backend) fans out over a process pool; every completed cell lands in an
on-disk cache keyed by the task fingerprint, so re-running a sweep — after
a crash, with more seeds, or with a finer eps grid — only computes the new
cells.  Results are row dicts written as text, JSON, and CSV via
:mod:`repro.analysis.tables`.

Design points worth knowing:

* **process pool, not threads** — the solver is pure Python + numpy and
  holds the GIL for most of a cell; ``ProcessPoolExecutor`` gives real
  parallelism.  ``workers=0`` runs serially in-process (deterministic
  profiles, simpler debugging, used by the tests);
* **cache keys** are SHA-1 fingerprints of the full task tuple plus a
  schema version (:data:`CACHE_VERSION`) — and reads *verify* the stored
  task against the requested one field-by-field, so a fingerprint
  collision or schema drift can never silently return a wrong row;
* **deterministic reports** — rows are sorted by grid key before writing,
  so two sweep outputs diff meaningfully no matter how the grid axes were
  ordered or which pool worker finished first;
* **warm workers** — pool workers pre-import the solver stack
  (:func:`warm_worker`), so ``build_s``/``solve_s`` measure the work, not
  first-use imports;
* **backends** — the default is ``backend="fast"`` (the vectorized kernels
  of :mod:`repro.fast`), which is what makes 20k–50k-node cells practical;
  since the backends are bit-identical, cached reference rows differ only
  in their timing fields;
* **engines** — ``engine="local"`` (default) runs the centralized solver;
  ``engine="sim"`` runs the full message-level pipeline
  (:func:`repro.dist.pipeline.distributed_two_ecss`) and adds
  rounds-vs-model columns (``measured_rounds``, ``priced_rounds``,
  ``max_ratio``, ``rounds_within_bound``) to each row.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

__all__ = [
    "CACHE_VERSION",
    "SweepReport",
    "SweepTask",
    "run_sweep",
    "run_task",
    "warm_worker",
]

#: Bump when the row or task schema changes; stale entries are recomputed.
#: v2: task gained the ``engine`` field; cache entries store the version
#: explicitly and reads verify the stored task field-by-field.
CACHE_VERSION = 2


@dataclass(frozen=True)
class SweepTask:
    """One grid cell: a seeded instance plus solver configuration."""

    family: str
    n: int
    seed: int
    eps: float
    variant: str = "improved"
    backend: str = "fast"
    validate: bool = True
    engine: str = "local"

    def fingerprint(self) -> str:
        """Stable cache key for this cell (includes the schema version)."""
        payload = json.dumps(
            {"v": CACHE_VERSION, **asdict(self)}, sort_keys=True
        )
        return hashlib.sha1(payload.encode()).hexdigest()

    def sort_key(self) -> tuple:
        """The grid key rows are ordered by in every report."""
        return (
            self.engine, self.family, self.n, self.eps, self.seed,
            self.variant, self.backend,
        )


@dataclass
class SweepReport:
    """What a sweep produced: rows plus cache and output bookkeeping."""

    rows: list[dict]
    cache_hits: int
    cache_misses: int
    json_path: str | None = None
    csv_path: str | None = None
    text_path: str | None = None


def warm_worker(engine: str = "local") -> None:
    """Pre-import the solver stack (process-pool initializer).

    First-use imports of ``repro.core``/``repro.graphs``/``repro.fast``
    cost tens of milliseconds; without warmup they landed inside the first
    cell's timed sections on every fresh pool worker, skewing small-n
    ``build_s``/``solve_s`` rows.  Idempotent (imports are cached), so
    :func:`run_task` also calls it defensively before starting its timers.
    """
    import repro.core.tecss  # noqa: F401
    import repro.fast  # noqa: F401
    import repro.graphs.families  # noqa: F401

    if engine == "sim":
        import repro.dist.pipeline  # noqa: F401


def run_task(task: SweepTask) -> dict:
    """Run one grid cell and return its result row (process-pool entry point)."""
    warm_worker(task.engine)
    from repro.core.tecss import approximate_two_ecss
    from repro.graphs.families import make_family_instance

    # The sim engine always executes the reference code path; normalize the
    # label here too so a directly-constructed task can't mislabel its row.
    backend = "reference" if task.engine == "sim" else task.backend

    t0 = time.perf_counter()
    graph = make_family_instance(task.family, task.n, seed=task.seed)
    build_s = time.perf_counter() - t0

    sim_columns: dict = {}
    t0 = time.perf_counter()
    if task.engine == "sim":
        from repro.dist.pipeline import distributed_two_ecss

        dist = distributed_two_ecss(
            graph,
            eps=task.eps,
            variant=task.variant,
            validate=task.validate,
        )
        res = dist.result
        sim_columns = {
            "D": dist.diameter,
            "measured_rounds": dist.measured_rounds,
            "priced_rounds": dist.priced_rounds,
            "max_ratio": dist.max_ratio,
            "rounds_within_bound": dist.within_bound,
        }
    else:
        res = approximate_two_ecss(
            graph,
            eps=task.eps,
            variant=task.variant,
            validate=task.validate,
            backend=backend,
        )
    solve_s = time.perf_counter() - t0
    aug = res.augmentation
    return {
        "engine": task.engine,
        "family": task.family,
        "n": res.n,
        "m": graph.number_of_edges(),
        "seed": task.seed,
        "eps": task.eps,
        "variant": task.variant,
        "backend": backend,
        "weight": res.weight,
        "mst_weight": res.mst_weight,
        "certified_ratio": res.certified_ratio,
        "guarantee": res.guarantee,
        "layers": aug.num_layers,
        "max_iters": max(aug.iterations_per_epoch.values(), default=0),
        **sim_columns,
        "build_s": build_s,
        "solve_s": solve_s,
    }


def _read_cache(cache_dir: str, task: SweepTask) -> dict | None:
    """Load one cached row, verifying it really belongs to ``task``.

    The filename is the task fingerprint, but the fingerprint is never
    *trusted*: the entry must carry the current :data:`CACHE_VERSION` and
    a stored task dict equal, field by field, to the requested task —
    otherwise (collision, schema drift, truncated write) the entry counts
    as a miss and the cell is recomputed.
    """
    path = os.path.join(cache_dir, f"{task.fingerprint()}.json")
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            entry = json.load(fh)
        if entry.get("version") != CACHE_VERSION:
            return None
        if entry.get("task") != asdict(task):
            return None
        return entry["row"]
    except (OSError, ValueError, KeyError):
        return None  # e.g. a truncated write from a killed run: recompute


def _write_cache(cache_dir: str, task: SweepTask, row: dict) -> None:
    """Atomically persist one cell (temp file + rename, never torn)."""
    path = os.path.join(cache_dir, f"{task.fingerprint()}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(
            {"version": CACHE_VERSION, "task": asdict(task), "row": row},
            fh,
            indent=2,
        )
    os.replace(tmp, path)


def _run_and_cache(cache_dir: str, task: SweepTask) -> dict:
    """Serial path: compute one cell and persist it immediately."""
    row = run_task(task)
    _write_cache(cache_dir, task, row)
    return row


def _grid(
    families: Iterable[str],
    sizes: Iterable[int],
    seeds: Iterable[int],
    eps_values: Iterable[float],
    variant: str,
    backend: str,
    validate: bool,
    engine: str,
) -> list[SweepTask]:
    """Materialize the task grid, sorted by grid key (report order)."""
    tasks = [
        SweepTask(family, n, seed, eps, variant, backend, validate, engine)
        for family in families
        for n in sizes
        for eps in eps_values
        for seed in seeds
    ]
    tasks.sort(key=SweepTask.sort_key)
    return tasks


def run_sweep(
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int] = (1,),
    eps_values: Sequence[float] = (0.5,),
    variant: str = "improved",
    backend: str = "fast",
    validate: bool = True,
    engine: str = "local",
    workers: int | None = None,
    cache_dir: str | None = None,
    name: str = "sweep",
    out_dir: str | None = None,
    write_outputs: bool = True,
) -> SweepReport:
    """Run (or resume) a sweep grid; returns rows plus cache statistics.

    Parameters
    ----------
    families, sizes, seeds, eps_values:
        The grid axes (crossed in full).
    variant, backend, validate:
        Solver configuration forwarded to
        :func:`repro.core.tecss.approximate_two_ecss`.
    engine:
        ``"local"`` (default) runs the centralized solver; ``"sim"`` runs
        the message-level pipeline
        (:func:`repro.dist.pipeline.distributed_two_ecss`, identical
        solution) and adds rounds-vs-model columns to every row.  The sim
        engine always executes the reference code path, so ``backend`` is
        pinned to ``"reference"`` for its cache keys.
    workers:
        Process-pool width; ``None`` lets the executor pick
        (``os.cpu_count()``), ``0`` or ``1`` runs serially in-process.
    cache_dir:
        Per-cell JSON cache directory (default
        ``benchmarks/out/sweep_cache``); delete it — or bump
        :data:`CACHE_VERSION` — to force recomputation.
    name, out_dir, write_outputs:
        When ``write_outputs`` is true, write ``<name>.txt/.json/.csv``
        under ``out_dir`` (default ``benchmarks/out``).

    Rows are returned (and written) in grid-key order —
    ``(engine, family, n, eps, seed, variant, backend)`` — regardless of
    axis order or pool completion order, so sweep outputs diff cleanly.
    """
    from repro.analysis.tables import (
        default_out_dir,
        format_table,
        write_csv,
        write_json,
        write_report,
    )
    from repro.fast import resolve_backend

    if engine not in ("local", "sim"):
        raise ValueError(f"unknown engine {engine!r}; choose 'local' or 'sim'")
    backend = "reference" if engine == "sim" else resolve_backend(backend)
    if cache_dir is None:
        cache_dir = os.path.join(default_out_dir(), "sweep_cache")
    os.makedirs(cache_dir, exist_ok=True)

    tasks = _grid(
        families, sizes, seeds, eps_values, variant, backend, validate, engine
    )
    rows_by_key: dict[str, dict] = {}
    pending: list[SweepTask] = []
    hits = 0
    for task in tasks:
        cached = _read_cache(cache_dir, task)
        if cached is not None:
            rows_by_key[task.fingerprint()] = cached
            hits += 1
        else:
            pending.append(task)

    if pending:
        if workers in (0, 1):
            warm_worker(engine)
            for task in pending:
                rows_by_key[task.fingerprint()] = _run_and_cache(cache_dir, task)
        else:
            # Cache each cell as soon as it completes, and harvest every
            # future even when some fail: a failing cell (or a kill) never
            # discards the finished ones — that is the crash-resume the
            # cache exists for.  Failures are reported together at the end.
            failures: list[tuple[SweepTask, BaseException]] = []
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=warm_worker,
                initargs=(engine,),
            ) as pool:
                futures = {pool.submit(run_task, task): task for task in pending}
                for future in as_completed(futures):
                    task = futures[future]
                    try:
                        row = future.result()
                    except Exception as exc:  # noqa: BLE001 - reported below
                        failures.append((task, exc))
                        continue
                    _write_cache(cache_dir, task, row)
                    rows_by_key[task.fingerprint()] = row
            if failures:
                detail = "; ".join(
                    f"{t.family}/n={t.n}/seed={t.seed}/eps={t.eps}: {e}"
                    for t, e in failures
                )
                raise RuntimeError(
                    f"{len(failures)} sweep cell(s) failed (completed cells "
                    f"are cached and will be reused): {detail}"
                ) from failures[0][1]

    rows = [rows_by_key[task.fingerprint()] for task in tasks]
    report = SweepReport(rows=rows, cache_hits=hits, cache_misses=len(pending))
    if write_outputs:
        report.text_path = write_report(
            name, format_table(rows, title=name), directory=out_dir
        )
        report.json_path = write_json(name, rows, directory=out_dir)
        report.csv_path = write_csv(name, rows, directory=out_dir)
    return report
