"""Parallel scenario sweeps: family × size × eps grids of the 2-ECSS solver.

The sweep engine behind ``python -m repro sweep``.  A grid of
:class:`SweepTask` cells (graph family, target size, seed, eps, variant,
backend) fans out over a process pool; every completed cell lands in an
on-disk cache keyed by the task fingerprint, so re-running a sweep — after
a crash, with more seeds, or with a finer eps grid — only computes the new
cells.  Results are row dicts written as text, JSON, and CSV via
:mod:`repro.analysis.tables`.

Design points worth knowing:

* **process pool, not threads** — the solver is pure Python + numpy and
  holds the GIL for most of a cell; ``ProcessPoolExecutor`` gives real
  parallelism.  ``workers=0`` runs serially in-process (deterministic
  profiles, simpler debugging, used by the tests);
* **cache keys** are SHA-1 fingerprints of the full task tuple plus a
  schema version (:data:`CACHE_VERSION`) — and reads *verify* the stored
  task against the requested one field-by-field, so a fingerprint
  collision or schema drift can never silently return a wrong row;
* **deterministic reports** — rows are sorted by grid key before writing,
  so two sweep outputs diff meaningfully no matter how the grid axes were
  ordered or which pool worker finished first;
* **warm workers** — pool workers pre-import the solver stack
  (:func:`warm_worker`), so ``build_s``/``solve_s`` measure the work, not
  first-use imports;
* **backends** — the default is ``backend="fast"`` (the vectorized kernels
  of :mod:`repro.fast`), which is what makes 20k–50k-node cells practical;
  since the backends are bit-identical, cached reference rows differ only
  in their timing fields;
* **engines** — ``engine="local"`` (default) runs the centralized solver;
  ``engine="sim"`` runs the full message-level pipeline
  (:func:`repro.dist.pipeline.distributed_two_ecss`) and adds
  rounds-vs-model columns (``measured_rounds``, ``priced_rounds``,
  ``max_ratio``, ``rounds_within_bound``) to each row.  Both names — and
  the backend names — are validated through the execution-backend
  registry (:mod:`repro.runtime.registry`), so unknown names fail with a
  one-line error listing what is registered;
* **shared plans** — cells are grouped by topology ``(family, n, seed)``
  and each group is driven through one
  :class:`repro.runtime.session.SolverSession` (:func:`run_task_group`):
  the eps/variant/backend/engine cells of a topology share a cached
  :class:`~repro.runtime.plan.SolverPlan` (validation, MST, virtual
  graph, diameter built once) instead of rebuilding per cell.  ``build_s``
  therefore records the *group's* shared graph + session construction
  time, identically on every row of the group, while the first computed
  cell's ``solve_s`` includes the lazy plan construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "CACHE_VERSION",
    "SweepReport",
    "SweepTask",
    "run_sweep",
    "run_task",
    "run_task_group",
    "warm_worker",
]

#: Bump when the row or task schema changes; stale entries are recomputed.
#: v2: task gained the ``engine`` field; cache entries store the version
#: explicitly and reads verify the stored task field-by-field.
#: v3: cells run through a shared per-topology SolverSession —
#: ``build_s`` now records the group's shared graph + session build time
#: and the first cell's ``solve_s`` includes the lazy plan construction.
#: v4: task gained the ``k`` field (k-ECSS sweeps) and every row gained a
#: ``k`` column.
CACHE_VERSION = 4


@dataclass(frozen=True)
class SweepTask:
    """One grid cell: a seeded instance plus solver configuration."""

    family: str
    n: int
    seed: int
    eps: float
    variant: str = "improved"
    backend: str = "fast"
    validate: bool = True
    engine: str = "local"
    k: int = 2

    def fingerprint(self) -> str:
        """Stable cache key for this cell (includes the schema version)."""
        payload = json.dumps(
            {"v": CACHE_VERSION, **asdict(self)}, sort_keys=True
        )
        return hashlib.sha1(payload.encode()).hexdigest()

    def sort_key(self) -> tuple:
        """The grid key rows are ordered by in every report."""
        return (
            self.engine, self.family, self.n, self.k, self.eps, self.seed,
            self.variant, self.backend,
        )


@dataclass
class SweepReport:
    """What a sweep produced: rows plus cache and output bookkeeping.

    ``session_stats`` maps each *computed* topology group (label
    ``family/n=../seed=..``) to its shared session's
    :meth:`~repro.runtime.session.SolverSession.stats` snapshot —
    plan-cache hits/misses/evictions and per-phase build times, printed
    by ``python -m repro sweep --debug``.  Cached-only groups have no
    entry (no session ran).
    """

    rows: list[dict]
    cache_hits: int
    cache_misses: int
    json_path: str | None = None
    csv_path: str | None = None
    text_path: str | None = None
    session_stats: dict = field(default_factory=dict)


def warm_worker(engine: str = "local") -> None:
    """Pre-import the solver stack (process-pool initializer).

    First-use imports of ``repro.core``/``repro.graphs``/``repro.fast``
    cost tens of milliseconds; without warmup they landed inside the first
    cell's timed sections on every fresh pool worker, skewing small-n
    ``build_s``/``solve_s`` rows.  Idempotent (imports are cached), so
    :func:`run_task` also calls it defensively before starting its timers.
    """
    import repro.core.tecss  # noqa: F401
    import repro.fast  # noqa: F401
    import repro.graphs.families  # noqa: F401

    if engine == "sim":
        import repro.dist.pipeline  # noqa: F401


def _group_key(task: SweepTask) -> tuple:
    """Cells sharing this key share one topology, hence one solver session."""
    return (task.family, task.n, task.seed)


def _solve_cell(session, task: SweepTask) -> dict:
    """Solve one cell on a (shared) session and flatten it to a row."""
    # The sim engine always executes the reference code path; normalize the
    # label here too so a directly-constructed task can't mislabel its row.
    backend = "reference" if task.engine == "sim" else task.backend

    sim_columns: dict = {}
    t0 = time.perf_counter()
    if task.engine == "sim":
        dist = session.solve(
            eps=task.eps,
            variant=task.variant,
            validate=task.validate,
            engine="sim",
        )
        res = dist.result
        sim_columns = {
            "D": dist.diameter,
            "measured_rounds": dist.measured_rounds,
            "priced_rounds": dist.priced_rounds,
            "max_ratio": dist.max_ratio,
            "rounds_within_bound": dist.within_bound,
        }
    else:
        res = session.solve(
            eps=task.eps,
            variant=task.variant,
            validate=task.validate,
            backend=backend,
            engine="local",
            k=task.k,
        )
    solve_s = time.perf_counter() - t0
    # A k > 2 cell returns a KEcssResult: the 2-ECSS columns (mst_weight,
    # layers, max_iters) come from its embedded base solve, while weight /
    # guarantee / certified_ratio describe the full k-ECSS subgraph.
    base = res.base if task.k > 2 else res
    aug = base.augmentation
    return {
        "engine": task.engine,
        "family": task.family,
        "n": res.n,
        "m": session.handle.m,
        "seed": task.seed,
        "k": task.k,
        "eps": task.eps,
        "variant": task.variant,
        "backend": backend,
        "weight": res.weight,
        "mst_weight": base.mst_weight,
        "certified_ratio": res.certified_ratio,
        "guarantee": res.guarantee,
        "layers": aug.num_layers,
        "max_iters": max(aug.iterations_per_epoch.values(), default=0),
        **sim_columns,
        "solve_s": solve_s,
    }


def run_task_group(
    tasks: Sequence[SweepTask], cache_dir: str | None = None
) -> list[dict]:
    """Run one topology's grid cells on a shared session (pool entry point).

    All tasks must share :func:`_group_key`.  The graph is built and the
    :class:`~repro.runtime.session.SolverSession` created once; every
    cell then reuses the session's cached
    :class:`~repro.runtime.plan.SolverPlan`.  Returns
    ``{"outcomes": [...], "session_stats": ...}``: one outcome dict per
    task, in order — ``{"row": ...}`` for a solved cell or
    ``{"error": ...}`` for a failed one — plus the shared session's
    :meth:`~repro.runtime.session.SolverSession.stats` snapshot (``None``
    when the session could not even be built).  With ``cache_dir``, each
    solved cell is persisted *as soon as it finishes* — a failing cell or
    a kill mid-group never discards the finished ones (that is the
    crash-resume the cache exists for).
    """
    if len({_group_key(t) for t in tasks}) != 1:
        raise ValueError("run_task_group needs tasks sharing one topology")
    warm_worker("sim" if any(t.engine == "sim" for t in tasks) else "local")
    from repro.graphs.families import make_family_instance
    from repro.runtime.session import SolverSession

    t0 = time.perf_counter()
    try:
        graph = make_family_instance(
            tasks[0].family, tasks[0].n, seed=tasks[0].seed
        )
        session = SolverSession(graph)
    except Exception as exc:  # noqa: BLE001 - reported per cell by the caller
        return {
            "outcomes": [
                {"error": f"{type(exc).__name__}: {exc}"} for _ in tasks
            ],
            "session_stats": None,
        }
    build_s = time.perf_counter() - t0

    outcomes: list[dict] = []
    for task in tasks:
        try:
            row = _solve_cell(session, task)
        except Exception as exc:  # noqa: BLE001 - reported by the caller
            outcomes.append({"error": f"{type(exc).__name__}: {exc}"})
            continue
        row["build_s"] = build_s
        if cache_dir is not None:
            _write_cache(cache_dir, task, row)
        outcomes.append({"row": row})
    return {"outcomes": outcomes, "session_stats": session.stats()}


def run_task(task: SweepTask) -> dict:
    """Run one grid cell and return its result row.

    Kept as the single-cell API (tests, ad hoc scripts) with the original
    exception behavior — solver errors propagate with their real type and
    traceback.  Sweeps go through :func:`run_task_group` so cells of one
    topology share a plan.
    """
    warm_worker(task.engine)
    from repro.graphs.families import make_family_instance
    from repro.runtime.session import SolverSession

    t0 = time.perf_counter()
    graph = make_family_instance(task.family, task.n, seed=task.seed)
    session = SolverSession(graph)
    build_s = time.perf_counter() - t0
    row = _solve_cell(session, task)
    row["build_s"] = build_s
    return row


def _read_cache(cache_dir: str, task: SweepTask) -> dict | None:
    """Load one cached row, verifying it really belongs to ``task``.

    The filename is the task fingerprint, but the fingerprint is never
    *trusted*: the entry must carry the current :data:`CACHE_VERSION` and
    a stored task dict equal, field by field, to the requested task —
    otherwise (collision, schema drift, truncated write) the entry counts
    as a miss and the cell is recomputed.
    """
    path = os.path.join(cache_dir, f"{task.fingerprint()}.json")
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            entry = json.load(fh)
        if entry.get("version") != CACHE_VERSION:
            return None
        if entry.get("task") != asdict(task):
            return None
        return entry["row"]
    except (OSError, ValueError, KeyError):
        return None  # e.g. a truncated write from a killed run: recompute


def _write_cache(cache_dir: str, task: SweepTask, row: dict) -> None:
    """Atomically persist one cell (temp file + rename, never torn)."""
    path = os.path.join(cache_dir, f"{task.fingerprint()}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(
            {"version": CACHE_VERSION, "task": asdict(task), "row": row},
            fh,
            indent=2,
        )
    os.replace(tmp, path)


def _grid(
    families: Iterable[str],
    sizes: Iterable[int],
    seeds: Iterable[int],
    eps_values: Iterable[float],
    variant: str,
    backend: str,
    validate: bool,
    engine: str,
    ks: Iterable[int] = (2,),
) -> list[SweepTask]:
    """Materialize the task grid, sorted by grid key (report order)."""
    tasks = [
        SweepTask(
            family, n, seed, eps, variant, backend, validate, engine, k
        )
        for family in families
        for n in sizes
        for k in ks
        for eps in eps_values
        for seed in seeds
    ]
    tasks.sort(key=SweepTask.sort_key)
    return tasks


def run_sweep(
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int] = (1,),
    eps_values: Sequence[float] = (0.5,),
    variant: str = "improved",
    backend: str = "fast",
    validate: bool = True,
    engine: str = "local",
    ks: Sequence[int] = (2,),
    workers: int | None = None,
    cache_dir: str | None = None,
    name: str = "sweep",
    out_dir: str | None = None,
    write_outputs: bool = True,
) -> SweepReport:
    """Run (or resume) a sweep grid; returns rows plus cache statistics.

    Parameters
    ----------
    families, sizes, seeds, eps_values:
        The grid axes (crossed in full).
    variant, backend, validate:
        Solver configuration forwarded to
        :meth:`repro.runtime.session.SolverSession.solve` (bit-identical
        to :func:`repro.core.tecss.approximate_two_ecss`); ``backend`` is
        validated through the execution-backend registry.
    engine:
        ``"local"`` (default) runs the centralized solver; ``"sim"`` runs
        the message-level pipeline
        (:func:`repro.dist.pipeline.distributed_two_ecss`, identical
        solution) and adds rounds-vs-model columns to every row.  The sim
        engine always executes the reference code path, so ``backend`` is
        pinned to ``"reference"`` for its cache keys.  Unknown engine
        names raise a one-line error listing the registered engines.
    ks:
        Connectivity targets, crossed with the grid (default ``(2,)``).
        ``k > 2`` cells run the iterated-augmentation k-ECSS layer
        (:mod:`repro.core.k_ecss`) and require an engine with the
        ``k-ecss`` capability — requesting ``k > 2`` on the sim engine is
        rejected up front.
    workers:
        Process-pool width; ``None`` lets the executor pick
        (``os.cpu_count()``), ``0`` or ``1`` runs serially in-process.
    cache_dir:
        Per-cell JSON cache directory (default
        ``benchmarks/out/sweep_cache``); delete it — or bump
        :data:`CACHE_VERSION` — to force recomputation.
    name, out_dir, write_outputs:
        When ``write_outputs`` is true, write ``<name>.txt/.json/.csv``
        under ``out_dir`` (default ``benchmarks/out``).

    Rows are returned (and written) in grid-key order —
    ``(engine, family, n, k, eps, seed, variant, backend)`` — regardless of
    axis order or pool completion order, so sweep outputs diff cleanly.
    """
    from repro.analysis.tables import (
        default_out_dir,
        format_table,
        write_csv,
        write_json,
        write_report,
    )
    from repro.runtime.registry import get_backend, resolve_compute

    spec = get_backend("engine", engine)  # one-line error if unregistered
    if any(k != 2 for k in ks) and not spec.has("k-ecss"):
        raise ValueError(
            f"ks={tuple(ks)} includes k != 2, which requires an engine "
            f"with the 'k-ecss' capability (e.g. 'local'); got {engine!r}"
        )
    backend = "reference" if engine == "sim" else resolve_compute(backend)
    if cache_dir is None:
        cache_dir = os.path.join(default_out_dir(), "sweep_cache")
    os.makedirs(cache_dir, exist_ok=True)

    tasks = _grid(
        families, sizes, seeds, eps_values, variant, backend, validate,
        engine, ks,
    )
    rows_by_key: dict[str, dict] = {}
    pending: list[SweepTask] = []
    session_stats: dict[str, dict] = {}
    hits = 0
    for task in tasks:
        cached = _read_cache(cache_dir, task)
        if cached is not None:
            rows_by_key[task.fingerprint()] = cached
            hits += 1
        else:
            pending.append(task)

    if pending:
        # Group pending cells by topology: each group runs on one shared
        # SolverSession (one graph build, one plan) via run_task_group.
        groups: dict[tuple, list[SweepTask]] = {}
        for task in pending:
            groups.setdefault(_group_key(task), []).append(task)
        group_list = list(groups.values())

        failures: list[tuple[SweepTask, str]] = []

        def harvest(group: Sequence[SweepTask], result: dict) -> None:
            """Collect solved rows, per-cell failures, and the group's
            session stats (cells were already persisted by
            run_task_group as they finished)."""
            for task, outcome in zip(group, result["outcomes"]):
                if "error" in outcome:
                    failures.append((task, outcome["error"]))
                    continue
                rows_by_key[task.fingerprint()] = outcome["row"]
            if result.get("session_stats") is not None:
                head = group[0]
                label = f"{head.family}/n={head.n}/seed={head.seed}"
                session_stats[label] = result["session_stats"]

        if workers in (0, 1):
            warm_worker(engine)
            for group in group_list:
                harvest(group, run_task_group(group, cache_dir))
        else:
            # Each cell is cached by its worker the moment it finishes,
            # and every future is harvested even when some fail: a failing
            # cell (or a kill) never discards the finished ones — that is
            # the crash-resume the cache exists for.  Failures are
            # reported together below.
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=warm_worker,
                initargs=(engine,),
            ) as pool:
                futures = {
                    pool.submit(run_task_group, group, cache_dir): group
                    for group in group_list
                }
                for future in as_completed(futures):
                    group = futures[future]
                    try:
                        outcomes = future.result()
                    except Exception as exc:  # noqa: BLE001 - reported below
                        msg = f"{type(exc).__name__}: {exc}"
                        failures.extend((t, msg) for t in group)
                        continue
                    harvest(group, outcomes)
        if failures:
            detail = "; ".join(
                f"{t.family}/n={t.n}/seed={t.seed}/eps={t.eps}: {e}"
                for t, e in failures
            )
            raise RuntimeError(
                f"{len(failures)} sweep cell(s) failed (completed cells "
                f"are cached and will be reused): {detail}"
            )

    rows = [rows_by_key[task.fingerprint()] for task in tasks]
    report = SweepReport(
        rows=rows,
        cache_hits=hits,
        cache_misses=len(pending),
        session_stats=session_stats,
    )
    if write_outputs:
        report.text_path = write_report(
            name, format_table(rows, title=name), directory=out_dir
        )
        report.json_path = write_json(name, rows, directory=out_dir)
        report.csv_path = write_csv(name, rows, directory=out_dir)
    return report
