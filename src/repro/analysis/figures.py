"""Programmatic regeneration of the paper's figures (as text renderings).

The paper's four figures are structural illustrations, not data plots; each
renderer below rebuilds the illustrated structure from a *real* run on a
real instance:

* Figures 1/2 — the layering of a tree and the two petals of a tree edge;
* Figure 3 — a dependent anchor pair (local below, global above) produced
  by the improved reverse-delete phase;
* Figure 4 — a 3-covered edge with its three anchors and the petal removed
  by the cleaning phase.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.forward import ForwardResult
from repro.core.instance import TAPInstance
from repro.core.reverse import ReverseResult
from repro.decomp.layering import Layering
from repro.trees.rooted import RootedTree

__all__ = [
    "render_layering",
    "render_petals_example",
    "render_anchor_dependencies",
    "render_cleaning_cases",
]


def render_layering(tree: RootedTree, layering: Layering) -> str:
    """ASCII tree with the layer number of every edge (Figure 1, left)."""
    lines = [f"layering: {layering.num_layers} layers, {len(layering.paths)} paths"]

    def walk(v: int, prefix: str, is_last: bool) -> None:
        if v != tree.root:
            tag = f"[layer {layering.layer[v]}]"
            connector = "`-" if is_last else "|-"
            lines.append(f"{prefix}{connector}{v} {tag}")
            prefix = prefix + ("  " if is_last else "| ")
        else:
            lines.append(f"{v} (root)")
        kids = tree.children[v]
        for i, c in enumerate(kids):
            walk(c, prefix, i == len(kids) - 1)

    walk(tree.root, "", True)
    return "\n".join(lines) + "\n"


def render_petals_example(
    inst: TAPInstance, t: int, x_eids: Sequence[int], hi: int, lo: int
) -> str:
    """Figure 1/2's right side: a tree edge and its two petals."""
    tree = inst.tree
    lines = [
        f"tree edge t = ({t}, {tree.parent[t]}), layer {inst.layering.layer[t]},"
        f" leaf(t) = {inst.layering.leaf_of(t)}",
        f"covering X-edges: "
        + ", ".join(
            f"e{eid}=({inst.edges[eid].dec}->{inst.edges[eid].anc})"
            for eid in x_eids
            if inst.covers(eid, t)
        ),
    ]
    if hi != -1:
        e = inst.edges[hi]
        lines.append(
            f"higher petal e1 = e{hi} ({e.dec}->{e.anc}), reaches depth "
            f"{tree.depth[e.anc]} (highest ancestor)"
        )
    if lo != -1:
        e = inst.edges[lo]
        u_e = tree.lca(inst.layering.leaf_of(t), e.dec)
        lines.append(
            f"lower petal  e2 = e{lo} ({e.dec}->{e.anc}), u_e = {u_e} at depth "
            f"{tree.depth[u_e]} (deepest reach below t)"
        )
    return "\n".join(lines) + "\n"


def render_anchor_dependencies(
    inst: TAPInstance, rev: ReverseResult, limit: int = 5
) -> str:
    """Figure 3: dependent anchor pairs — local anchor below, global above."""
    tree = inst.tree
    by_epoch: dict[int, list] = {}
    for a in rev.anchors:
        by_epoch.setdefault(a.epoch, []).append(a)
    found = []
    for epoch, anchors in sorted(by_epoch.items()):
        x_eids = rev.x_by_epoch.get(epoch, [])
        for i, a in enumerate(anchors):
            for b in anchors[i + 1 :]:
                shared = [
                    eid
                    for eid in x_eids
                    if inst.covers(eid, a.t) and inst.covers(eid, b.t)
                ]
                if shared:
                    deeper, upper = (
                        (a, b) if tree.depth[a.t] > tree.depth[b.t] else (b, a)
                    )
                    found.append((deeper, upper, shared[0]))
    lines = [f"dependent anchor pairs found: {len(found)}"]
    for deeper, upper, eid in found[:limit]:
        e = inst.edges[eid]
        lines.append(
            f"  t1 = edge {deeper.t} (kind={deeper.kind}, depth {tree.depth[deeper.t]})"
            f"  t2 = edge {upper.t} (kind={upper.kind}, depth {tree.depth[upper.t]})"
            f"  shared e = ({e.dec}->{e.anc})   [epoch {deeper.epoch}, iter {deeper.iteration}]"
        )
    if found:
        ok = all(d.kind == "local" and u.kind == "global" for d, u, _ in found)
        lines.append(f"Claim 4.15 structure (deeper=local, upper=global): {ok}")
    return "\n".join(lines) + "\n"


def render_cleaning_cases(
    inst: TAPInstance, fwd: ForwardResult, rev: ReverseResult, limit: int = 5
) -> str:
    """Figure 4: the 3-cover structures resolved by the cleaning phase."""
    tree = inst.tree
    lines = [f"cleaning removals: {len(rev.cleaning_removals)}"]
    globals_by_hi: dict[int, list] = {}
    for a in rev.anchors:
        if a.kind == "global":
            globals_by_hi.setdefault(a.hi, []).append(a)
    for t, eid in rev.cleaning_removals[:limit]:
        owners = [
            a for a in globals_by_hi.get(eid, []) if tree.is_strict_ancestor(t, a.t)
        ]
        e = inst.edges[eid]
        owner_txt = (
            f"global anchor t2 = edge {owners[0].t}" if owners else "owner unknown"
        )
        lines.append(
            f"  3-covered edge t = {t} (layer {inst.layering.layer[t]}): removed "
            f"higher petal e2 = ({e.dec}->{e.anc}) of {owner_txt}"
        )
    return "\n".join(lines) + "\n"
