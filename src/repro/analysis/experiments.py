"""Experiment runners: one function per DESIGN.md experiment id.

Each runner returns a list of row dicts; the benchmarks render them with
:func:`repro.analysis.tables.format_table`, assert the paper-claim *shape*,
and write the tables that EXPERIMENTS.md records.  Sizes default to values
that keep every experiment in the seconds range; the benchmarks may pass
larger sweeps.
"""

from __future__ import annotations

import math
import random
import time

import networkx as nx

from repro.baselines.arborescence import exact_vertical_tap, kt_tecss_3approx
from repro.baselines.exact_milp import exact_tap_milp, exact_two_ecss_milp
from repro.baselines.greedy_tap import greedy_tap
from repro.baselines.trivial import all_edges_solution, mst_plus_cheapest_cover
from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.reverse import reverse_delete
from repro.core.rounds import PrimitiveLog, RoundCostModel
from repro.core.tap import approximate_tap, solve_virtual_tap
from repro.core.tecss import approximate_two_ecss, rooted_mst
from repro.core.unweighted import unweighted_tap
from repro.decomp.layering import Layering
from repro.decomp.segments import SegmentDecomposition
from repro.graphs.families import make_family_instance
from repro.graphs.validation import normalize_graph
from repro.shortcuts.partition import mst_fragment_partition
from repro.shortcuts.providers import (
    BestOfShortcuts,
    SizeThresholdShortcuts,
    TreeRestrictedShortcuts,
)
from repro.shortcuts.subroutines import CoverCounter55, CoverDetector
from repro.shortcuts.tap_shortcut import shortcut_two_ecss
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.trees.rooted import RootedTree

__all__ = [
    "e01_tecss_approx",
    "e02_round_complexity",
    "e03_tap_approx",
    "e04_ablation",
    "e05_layering",
    "e06_unweighted",
    "e07_shortcut_algorithm",
    "e08_shortcut_tools",
    "e09_subroutines",
    "e10_forward_iterations",
    "e11_segments",
    "e12_comparison",
    "e13_sim_engine",
]

SMALL_FAMILIES = ("cycle_chords", "erdos_renyi", "grid", "hub_cycle", "ktree2")


def _links_of(graph: nx.Graph):
    g, _, _ = normalize_graph(graph)
    tree, mst_edges = rooted_mst(g)
    mst_set = set(mst_edges)
    links = [
        (min(u, v), max(u, v), float(d["weight"]))
        for u, v, d in g.edges(data=True)
        if tuple(sorted((u, v))) not in mst_set
    ]
    return g, tree, links


# ----------------------------------------------------------------------
# E1 — Theorem 1.1 quality
# ----------------------------------------------------------------------

def e01_tecss_approx(
    families=SMALL_FAMILIES, n_small: int = 16, n_large: int = 150, seeds=(1, 2),
    eps: float = 0.5, backend: str = "reference",
):
    """Approximation quality vs MILP optimum / certified bound.

    ``backend="fast"`` (with a large ``n_large``) runs the certified-bound
    rows on the vectorized kernels — 20k+-node instances stay practical.
    """
    rows = []
    for family in families:
        for seed in seeds:
            g = make_family_instance(family, n_small, seed=seed)
            res = approximate_two_ecss(g, eps=eps, backend=backend)
            opt = exact_two_ecss_milp(g)
            rows.append(
                {
                    "family": family,
                    "n": g.number_of_nodes(),
                    "opt": opt.weight,
                    "algo": res.weight,
                    "ratio_vs_opt": res.weight / opt.weight,
                    "guarantee": res.guarantee,
                    "within": res.weight <= res.guarantee * opt.weight + 1e-6,
                }
            )
        g = make_family_instance(family, n_large, seed=seeds[0])
        res = approximate_two_ecss(g, eps=eps, backend=backend)
        rows.append(
            {
                "family": family,
                "n": g.number_of_nodes(),
                "opt": float("nan"),
                "algo": res.weight,
                "ratio_vs_opt": res.certified_ratio,  # vs certified lower bound
                "guarantee": res.guarantee,
                "within": res.certified_ratio <= res.guarantee + 1e-6,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E2 — Theorem 1.1 round complexity
# ----------------------------------------------------------------------

def e02_round_complexity(
    families=("cycle_chords", "grid", "hub_cycle", "erdos_renyi"),
    sizes=(60, 120, 240, 480),
    eps: float = 0.5,
    seed: int = 1,
    backend: str = "reference",
):
    """Modeled rounds vs the Theorem 1.1 bound across sizes."""
    rows = []
    for family in families:
        for n in sizes:
            g = make_family_instance(family, n, seed=seed)
            res = approximate_two_ecss(g, eps=eps, backend=backend)
            model = RoundCostModel(res.n, res.diameter)
            rounds = res.modeled_rounds()
            bound = model.theorem_1_1_bound(eps)
            rows.append(
                {
                    "family": family,
                    "n": res.n,
                    "D": res.diameter,
                    "modeled_rounds": rounds,
                    "thm11_bound": bound,
                    "rounds/bound": rounds / bound,
                    "lower_bound": model.lower_bound(),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E3 — Theorem 4.19: TAP quality, including (2+eps) on G'
# ----------------------------------------------------------------------

def _adversarial_tap_instance(n: int, seed: int) -> TAPInstance:
    """Path-heavy tree with length-proportional link weights: the regime
    where greedy-style covers overpay and the ratio on G' is nontrivial."""
    rng = random.Random(seed)
    parent = [-1]
    for v in range(1, n):
        parent.append(v - 1 if rng.random() < 0.7 else rng.randrange(v))
    tree = RootedTree(parent, 0)
    links = []
    for v in range(1, tree.n):
        d = rng.randrange(tree.depth[v])
        anc = tree.ancestor_at_depth(v, d)
        links.append((v, anc, rng.choice([1.0, 3.0, 10.0]) * (tree.depth[v] - d)))
    for leaf in tree.leaves():
        links.append((leaf, 0, rng.uniform(20, 200)))
    return TAPInstance.from_links(tree, links)


def e03_tap_approx(
    sizes=(80, 160, 320), seeds=(1, 2, 3), eps: float = 0.5,
    backend: str = "reference",
):
    """TAP quality on G' vs the exact vertical-TAP optimum."""
    rows = []
    for kind in ("erdos_renyi", "adversarial"):
        for n in sizes:
            for seed in seeds:
                if kind == "erdos_renyi":
                    g = make_family_instance("erdos_renyi", n, seed=seed)
                    _, tree, links = _links_of(g)
                    inst = TAPInstance.from_links(tree, links, backend=backend)
                else:
                    inst = _adversarial_tap_instance(n, seed)
                fwd, rev = solve_virtual_tap(
                    inst, eps=eps / 2, variant="improved", backend=backend
                )
                opt_prime = exact_vertical_tap(inst.tree, inst.edges)
                w_b = inst.weight_of(rev.b)
                rows.append(
                    {
                        "kind": kind,
                        "n": n,
                        "seed": seed,
                        "virtual_w": w_b,
                        "opt_on_gprime": opt_prime.weight,
                        "ratio_on_gprime": w_b / opt_prime.weight,
                        "bound_2+eps": 2 + eps,
                        "within": w_b <= (2 + eps) * opt_prime.weight + 1e-6,
                    }
                )
    return rows


def e03_tap_vs_milp(n: int = 14, seeds=(1, 2, 3, 4), eps: float = 0.5):
    """Small-instance TAP ratio against the true optimum on G."""
    rows = []
    rng = random.Random(0)
    for seed in seeds:
        g = make_family_instance("cycle_chords", n, seed=seed)
        _, tree, links = _links_of(g)
        opt = exact_tap_milp(tree, links)
        res = approximate_tap(tree, links, eps=eps)
        rows.append(
            {
                "seed": seed,
                "n": tree.n,
                "opt": opt.weight,
                "algo": res.weight,
                "ratio": res.weight / opt.weight if opt.weight else 1.0,
                "bound_4+eps": 4 + eps,
                "within": res.weight <= (4 + eps) * opt.weight + 1e-6,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E4 — basic (c=4) vs improved (c=2) ablation
# ----------------------------------------------------------------------

def e04_ablation(sizes=(100, 200), seeds=(1, 2, 3), eps: float = 0.5):
    """Run the ablation on adversarial path-heavy instances with tiny
    segments — the regime where coverage actually reaches the c bounds and
    the cleaning phase fires (easy instances never separate the variants)."""
    rows = []
    for n in sizes:
        for seed in seeds:
            inst_src = _adversarial_tap_instance(n, seed)
            inst = TAPInstance(inst_src.tree, inst_src.edges, segment_size=5)
            out = {}
            for variant in ("basic", "improved"):
                fwd, rev = solve_virtual_tap(inst, eps=eps / 4, variant=variant)
                counts = inst.ops.coverage_counts(
                    inst.edges[e].pair for e in rev.b
                )
                max_cov = max(
                    (counts[t] for t in inst.tree.tree_edges() if fwd.y[t] > 0),
                    default=0,
                )
                out[variant] = (inst.weight_of(rev.b), max_cov, len(rev.cleaning_removals))
            rows.append(
                {
                    "n": n,
                    "seed": seed,
                    "w_basic": out["basic"][0],
                    "w_improved": out["improved"][0],
                    "maxcov_basic(<=4)": out["basic"][1],
                    "maxcov_improved(<=2)": out["improved"][1],
                    "cleanings": out["improved"][2],
                    "improvement": out["basic"][0] / max(out["improved"][0], 1e-12),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E5 — Claim 4.7: O(log n) layers
# ----------------------------------------------------------------------

def e05_layering(
    families=("cycle_chords", "grid", "erdos_renyi", "caterpillar", "hub_cycle"),
    sizes=(50, 100, 200, 400, 800),
    seed: int = 1,
):
    rows = []
    for family in families:
        for n in sizes:
            g = make_family_instance(family, n, seed=seed)
            _, tree, _ = _links_of(g)
            lay = Layering(tree)
            leaves = len(tree.leaves())
            rows.append(
                {
                    "family": family,
                    "n": tree.n,
                    "leaves": leaves,
                    "layers": lay.num_layers,
                    "log2_leaves": math.log2(max(2, leaves)),
                    "layers/log2": lay.num_layers / math.log2(max(2, leaves)),
                    "paths": len(lay.paths),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E6 — Section 3.6.1: unweighted TAP
# ----------------------------------------------------------------------

def e06_unweighted(sizes=(12, 60, 150), seeds=(1, 2, 3)):
    rows = []
    for n in sizes:
        for seed in seeds:
            g = make_family_instance("cycle_chords", n, seed=seed)
            _, tree, links = _links_of(g)
            pairs = [(u, v) for u, v, _ in links]
            res = unweighted_tap(tree, pairs)
            row = {
                "n": tree.n,
                "seed": seed,
                "aug_size": res.size,
                "virtual_size": res.virtual_size,
                "mis_lower_bound": len(res.mis),
                "ratio_on_gprime": res.certified_virtual_ratio,
                "within_2": res.certified_virtual_ratio <= 2 + 1e-9,
            }
            if n <= 16:
                opt = exact_tap_milp(tree, [(u, v, 1.0) for u, v in pairs])
                row["opt_on_g"] = opt.weight
                row["ratio_on_g"] = res.size / opt.weight if opt.weight else 1.0
            else:
                row["opt_on_g"] = float("nan")
                row["ratio_on_g"] = float("nan")
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E7 — Theorem 1.2: shortcut algorithm quality and round regime
# ----------------------------------------------------------------------

def e07_shortcut_algorithm(
    families=("grid", "torus", "ktree2", "erdos_renyi", "lollipop"),
    n: int = 300,
    seed: int = 1,
):
    rows = []
    for family in families:
        g = make_family_instance(family, n, seed=seed)
        res = shortcut_two_ecss(g, seed=seed + 1)
        gr_g, tree, links = _links_of(g)
        seq = greedy_tap(tree, links)
        model = RoundCostModel(res.n, res.diameter)
        rows.append(
            {
                "family": family,
                "n": res.n,
                "D": res.diameter,
                "sqrt_n": model.sqrt_n,
                "SC_pass": res.shortcut_quality,
                "SC/D": res.shortcut_quality / max(1, res.diameter),
                "iters": res.aug.iterations,
                "aug_w": res.aug.weight,
                "greedy_w": seq.weight,
                "aug/greedy": res.aug.weight / max(seq.weight, 1e-12),
            }
        )
    return rows


def e07_shortcut_quality(
    n: int = 400,
    seed: int = 2,
    families=("grid", "torus", "erdos_renyi", "lollipop", "theta"),
):
    """Measured (alpha, beta) per provider on sqrt(n)-part MST partitions."""
    rows = []
    for family in families:
        g = make_family_instance(family, n, seed=seed)
        nn = g.number_of_nodes()
        parts = max(2, math.isqrt(nn))
        partition = mst_fragment_partition(g, parts, seed=seed)
        d = nx.diameter(g)
        row = {"family": family, "n": nn, "D": d, "parts": len(partition)}
        for provider in (SizeThresholdShortcuts(), TreeRestrictedShortcuts()):
            a = provider.assign(g, partition)
            row[f"{provider.name}:a+b"] = a.alpha + a.beta
        row["ratio_tr/(D)"] = row["tree-restricted:a+b"] / max(1, d)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E8 — Theorems 5.1–5.3 tools
# ----------------------------------------------------------------------

def e08_shortcut_tools(sizes=(100, 200, 400, 800), family="grid", seed: int = 1):
    rows = []
    for n in sizes:
        g = make_family_instance(family, n, seed=seed)
        _, tree, _ = _links_of(g)
        start = time.perf_counter()
        hierarchy = FragmentHierarchy(tree, graph=None)
        tk = ShortcutToolkit(hierarchy)
        desc = tk.descendants_sum([1] * tree.n)
        anc = tk.ancestors_sum([1] * tree.n)
        hld = tk.heavy_light()
        elapsed = time.perf_counter() - start
        ok = (
            desc == tree.subtree_sizes()
            and all(anc[v] == tree.depth[v] + 1 for v in range(tree.n))
        )
        rows.append(
            {
                "n": tree.n,
                "levels": hierarchy.num_levels,
                "log2_n": math.log2(tree.n),
                "levels/log2": hierarchy.num_levels / math.log2(tree.n),
                "partwise_ops": tk.partwise_ops,
                "max_light_list": hld.max_light_list(),
                "correct": ok,
                "secs": elapsed,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E9 — Lemmas 5.4 / 5.5
# ----------------------------------------------------------------------

def e09_subroutines(n: int = 150, trials: int = 200, seed: int = 1):
    g = make_family_instance("erdos_renyi", n, seed=seed)
    _, tree, links = _links_of(g)
    tk = ShortcutToolkit(FragmentHierarchy(tree))
    det = CoverDetector(tk, seed=seed)
    counter = CoverCounter55(tk)
    rng = random.Random(seed + 1)
    pairs = [(u, v) for u, v, _ in links]
    false_pos = false_neg = checks = 0
    count_errors = 0
    for _ in range(trials):
        s = [p for p in pairs if rng.random() < 0.3]
        got = det.covered_edges(s)
        truth = set()
        for u, v in s:
            truth.update(tree.path_edges(u, v))
        for v in tree.tree_edges():
            checks += 1
            if got[v] and v not in truth:
                false_pos += 1
            if not got[v] and v in truth:
                false_neg += 1
        marked = [rng.random() < 0.4 for _ in range(tree.n)]
        counts = counter.counts(marked, pairs[:30])
        for (u, v), c in zip(pairs[:30], counts):
            if c != sum(1 for e in tree.path_edges(u, v) if marked[e]):
                count_errors += 1
    return [
        {
            "n": n,
            "trials": trials,
            "edge_checks": checks,
            "xor_false_positive": false_pos,
            "xor_false_negative": false_neg,
            "theory_fn_prob": 2.0 ** (-10 * max(1, (n - 1).bit_length())),
            "lemma55_count_errors": count_errors,
        }
    ]


# ----------------------------------------------------------------------
# E10 — Lemma 4.12 iteration bound
# ----------------------------------------------------------------------

def e10_forward_iterations(
    n: int = 200, eps_values=(0.05, 0.1, 0.25, 0.5, 1.0), seeds=(1, 2, 3)
):
    rows = []
    for eps in eps_values:
        worst = 0
        feasible = 0.0
        for seed in seeds:
            g = make_family_instance("erdos_renyi", n, seed=seed)
            _, tree, links = _links_of(g)
            inst = TAPInstance.from_links(tree, links)
            fwd = forward_phase(inst, eps=eps)
            worst = max(worst, fwd.max_iterations)
            from repro.core.certificates import validate_dual_feasibility

            feasible = max(
                feasible, validate_dual_feasibility(inst, fwd.y, eps)
            )
        bound = math.log(n) / math.log1p(eps) + 2
        rows.append(
            {
                "eps": eps,
                "max_iters_per_epoch": worst,
                "lemma412_bound": bound,
                "iters/bound": worst / bound,
                "max_dual_ratio": feasible,
                "dual_ok(<=1+eps)": feasible <= 1 + eps + 1e-9,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E11 — segment decomposition scale
# ----------------------------------------------------------------------

def e11_segments(sizes=(100, 400, 900, 1600), families=("erdos_renyi", "hub_cycle", "grid"), seed=1):
    rows = []
    for family in families:
        for n in sizes:
            g = make_family_instance(family, n, seed=seed)
            _, tree, _ = _links_of(g)
            dec = SegmentDecomposition(tree)
            stats = dec.stats()
            sq = math.sqrt(tree.n)
            rows.append(
                {
                    "family": family,
                    "n": tree.n,
                    "segments": int(stats["num_segments"]),
                    "segments/sqrt_n": stats["num_segments"] / sq,
                    "max_diam": int(stats["max_diameter"]),
                    "max_diam/sqrt_n": stats["max_diameter"] / sq,
                }
            )
    return rows


# ----------------------------------------------------------------------
# E13 — the batched simulation engine (repro.sim)
# ----------------------------------------------------------------------

def e13_sim_engine(
    families=("grid", "cycle_chords", "erdos_renyi", "hub_cycle"),
    sizes=(100, 400, 900),
    seed: int = 1,
):
    """Differential + performance sweep of the batched CONGEST engine.

    For each instance: run BFS on the legacy per-node ``Network`` and on
    ``repro.sim.BatchedNetwork``, assert identical measured ``RunStats``
    (the differential cross-check), record wall-clock speedup, and compare
    the measured rounds against the Level-M price of one aggregate and the
    Theorem 1.1 bound via :class:`~repro.sim.ScenarioRunner` pricing.
    """
    from repro.model.network import Network as LegacyNetwork
    from repro.model.programs import DistributedBFS
    from repro.sim import BatchedNetwork, ScenarioRunner, default_specs

    bfs_spec = default_specs()[0]
    runner = ScenarioRunner(engine="batched")
    rows = []
    for family in families:
        for n in sizes:
            g = make_family_instance(family, n, seed=seed)
            res = runner.run_one(g, bfs_spec, family=family, seed=seed)
            t0 = time.perf_counter()
            legacy_stats = LegacyNetwork(g).run(DistributedBFS(0))
            t_legacy = time.perf_counter() - t0
            t0 = time.perf_counter()
            batched_stats = BatchedNetwork(g).run(DistributedBFS(0))
            t_batched = time.perf_counter() - t0
            rows.append(
                {
                    "family": family,
                    "n": res.n,
                    "D": res.diameter,
                    "rounds": res.stats.rounds,
                    "messages": res.stats.messages,
                    "priced": res.priced_rounds,
                    "within_price": res.within_price,
                    "within_thm11": res.within_thm11,
                    "stats_equal": legacy_stats == batched_stats,
                    "t_legacy_ms": t_legacy * 1e3,
                    "t_batched_ms": t_batched * 1e3,
                    "speedup": t_legacy / max(t_batched, 1e-9),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E12 — the positioning table (Section 1.1)
# ----------------------------------------------------------------------

def e12_comparison(n: int = 200, seeds=(1, 2), eps: float = 0.5):
    """Head-to-head on the low-diameter / tall-MST instances where the
    paper's round regime separates from [4]'s O(h_MST)."""
    rows = []
    for seed in seeds:
        g = make_family_instance("hub_cycle", n, seed=seed)
        gg, _, _ = normalize_graph(g)
        res = approximate_two_ecss(g, eps=eps)
        kt = kt_tecss_3approx(g)
        _, tree, links = _links_of(g)
        seq = greedy_tap(tree, links)
        mst_w = res.mst_weight
        model = RoundCostModel(res.n, res.diameter)
        h_mst = tree.height
        # round regimes: ours Theorem 1.1; [4] O(h_MST + sqrt n log* n);
        # [8] O((D + sqrt n) log^2 n) randomized.
        rounds_ours = res.modeled_rounds()
        rounds_chd = h_mst + model.sqrt_n * model.log_star_n
        rounds_dory18 = (res.diameter + model.sqrt_n) * model.log_n**2
        rows.append(
            {
                "seed": seed,
                "n": res.n,
                "D": res.diameter,
                "h_MST": h_mst,
                "w_ours(5+eps)": res.weight,
                "w_CHD17(3)": kt.weight,
                "w_greedy(logn)": mst_w + seq.weight,
                "w_all_edges": all_edges_solution(g),
                "w_naive_cover": mst_plus_cheapest_cover(g),
                "rounds_ours": rounds_ours,
                "rounds_CHD17~h": rounds_chd,
                "rounds_Dory18": rounds_dory18,
            }
        )
    return rows
