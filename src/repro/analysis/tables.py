"""Tables and machine-readable reports for the experiment runners.

Row-dict lists (the interchange format of :mod:`repro.analysis.experiments`
and :mod:`repro.analysis.sweep`) render three ways: aligned plain text
(:func:`format_table`, written by :func:`write_report`), JSON
(:func:`write_json`) and CSV (:func:`write_csv`) for downstream tooling —
the sweep CLI emits all three.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Mapping, Sequence

__all__ = [
    "default_out_dir",
    "format_table",
    "rounds_vs_model_table",
    "write_report",
    "write_json",
    "write_csv",
]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping], title: str = "") -> str:
    """Render dict rows as an aligned text table (all rows share keys)."""
    if not rows:
        return f"{title}\n(no rows)\n"
    cols = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.append(header)
    out.append("-" * len(header))
    for r in cells:
        out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(out) + "\n"


def rounds_vs_model_table(results: Sequence, title: str = "rounds_vs_model") -> str:
    """Render measured-vs-priced round rows for distributed pipeline runs.

    ``results`` is a sequence of
    :class:`repro.dist.pipeline.DistTwoEcssResult`; each contributes its
    per-primitive comparison rows (measured engine rounds, Level-M price,
    ratio, bound check) plus a TOTAL row — the report form of the
    measured-rounds truth cross-check.
    """
    rows = [row for res in results for row in res.rows()]
    return format_table(rows, title=title)


def default_out_dir() -> str:
    """The repo's ``benchmarks/out`` directory (created on demand)."""
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "out")


def write_report(name: str, content: str, directory: str | None = None) -> str:
    """Write a benchmark's table to ``benchmarks/out/<name>.txt``."""
    if directory is None:
        directory = default_out_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(content)
    return path


def write_json(name: str, rows: Sequence[Mapping], directory: str | None = None) -> str:
    """Write row dicts to ``<directory>/<name>.json`` (benchmarks/out default)."""
    if directory is None:
        directory = default_out_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(list(rows), fh, indent=2, default=str)
        fh.write("\n")
    return path


def write_csv(name: str, rows: Sequence[Mapping], directory: str | None = None) -> str:
    """Write row dicts to ``<directory>/<name>.csv`` (union of keys, row order)."""
    if directory is None:
        directory = default_out_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path
