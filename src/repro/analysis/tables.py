"""Plain-text tables for the experiment reports (EXPERIMENTS.md rows)."""

from __future__ import annotations

import os
from typing import Mapping, Sequence

__all__ = ["format_table", "write_report"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping], title: str = "") -> str:
    """Render dict rows as an aligned text table (all rows share keys)."""
    if not rows:
        return f"{title}\n(no rows)\n"
    cols = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.append(header)
    out.append("-" * len(header))
    for r in cells:
        out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(out) + "\n"


def write_report(name: str, content: str, directory: str | None = None) -> str:
    """Write a benchmark's table to ``benchmarks/out/<name>.txt``."""
    if directory is None:
        directory = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "out")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(content)
    return path
