"""Scaling-fit helpers for the experiment reports.

``power_law_fit`` estimates the exponent ``b`` in ``y ~ a * x^b`` by
ordinary least squares on log-log points — used by the benches to check,
e.g., that measured rounds grow like ``sqrt(n)`` (exponent ~0.5) and not
linearly (exponent ~1), the quantitative form of the paper's separation
from the O(h_MST)-round baseline.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["power_law_fit", "geometric_mean"]


def power_law_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = a * x^b`` on log-log scale.

    Returns ``(a, b)``.  Requires positive inputs and at least two points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive values")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((x - mx) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("all x values identical")
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    b = sxy / sxx
    a = math.exp(my - b * mx)
    return a, b


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ratio aggregation)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
