"""Experiment runners, table formatting and figure renderers."""

from repro.analysis.tables import format_table, write_report
from repro.analysis.figures import (
    render_anchor_dependencies,
    render_cleaning_cases,
    render_layering,
)

__all__ = [
    "format_table",
    "write_report",
    "render_layering",
    "render_anchor_dependencies",
    "render_cleaning_cases",
]
