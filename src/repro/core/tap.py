"""Weighted tree augmentation: the paper's first algorithm end to end.

``approximate_tap`` chains the pieces of Sections 4.1–4.6:

1. build the virtual graph ``G'`` (links split at their LCA — Lemma 4.1),
2. run the primal-dual **forward phase** over the layering (Section 4.4),
3. run the **reverse-delete phase** (Section 4.5 / 4.6) to thin the cover,
4. map the chosen virtual edges back to original links.

Guarantees (all certified at runtime, see :mod:`repro.core.certificates`):
on the virtual instance the improved variant achieves ``(2 + eps)`` and the
basic one ``(4 + eps)``; mapping back doubles these to ``(4 + eps)`` /
``(8 + eps)`` for TAP on ``G`` (Theorem 4.19), and Claim 2.1 adds ``+1``
for 2-ECSS.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from repro import obs
from repro.core import certificates as cert
from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.result import TapResult
from repro.core.reverse import COVER_BOUND, reverse_delete
from repro.core.rounds import PrimitiveLog
from repro.core.virtual_graph import VirtualEdgeColumns, map_back
from repro.fast import resolve_backend
from repro.trees.rooted import RootedTree

__all__ = ["approximate_tap", "assemble_tap_result", "solve_virtual_tap"]


def solve_virtual_tap(
    inst: TAPInstance,
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    backend: str = "reference",
    hooks: Any = None,
) -> tuple[ForwardResult, ReverseResult]:
    """Solve TAP on an already-virtual instance; returns (fwd, rev).

    The dual-growth parameter is ``eps' = eps / c`` so the final factor on
    the virtual instance is ``c (1 + eps/c) <= c + eps`` (Lemma 3.1).

    ``backend`` selects the execution engine for both phases:
    ``"reference"`` (per-edge Python loops, the auditable baseline) or
    ``"fast"`` (vectorized kernels in :mod:`repro.fast`, bit-identical
    output, requires numpy).  ``hooks`` is forwarded to
    :func:`repro.core.reverse.reverse_delete` (the distributed pipeline's
    observation point for the global-MIS gather).
    """
    if variant not in COVER_BOUND:
        raise ValueError(f"variant must be one of {sorted(COVER_BOUND)}")
    backend = resolve_backend(backend)
    c = COVER_BOUND[variant]
    eps_prime = eps / c
    with obs.span("tap.forward", backend=backend):
        fwd = forward_phase(inst, eps=eps_prime, backend=backend)
    with obs.span("tap.reverse", backend=backend):
        rev = reverse_delete(
            inst, fwd, variant=variant, segmented=segmented,
            validate=validate, backend=backend, hooks=hooks,
        )
    if validate:
        with obs.span("tap.certificates"):
            certs = _certificates(backend)
            certs.validate_dual_feasibility(inst, fwd.y, eps_prime)
            certs.validate_tightness(inst, fwd.y, rev.b)
            certs.validate_cover(inst, rev.b)
            certs.validate_coverage_bound(inst, fwd.y, rev.b, c)
    return fwd, rev


def _certificates(backend: str) -> Any:
    """The certificate implementation for a backend (same checks, same
    return values; the fast one is vectorized)."""
    if backend == "fast":
        from repro.fast import certificates as fast_cert

        return fast_cert
    return cert


def approximate_tap(
    tree: RootedTree,
    links: Iterable[tuple[int, int, float]],
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    origins: Sequence[Hashable] | None = None,
    backend: str = "reference",
    instance: TAPInstance | None = None,
) -> TapResult:
    """Approximate weighted TAP on tree ``tree`` with candidate ``links``.

    Parameters
    ----------
    tree:
        The spanning tree to augment (vertices ``0..n-1``).
    links:
        Candidate links ``(u, v, weight)``; the graph ``tree + links`` must
        be 2-edge-connected.
    eps:
        The approximation slack; the factor is ``4 + eps`` on the original
        instance for the improved variant (``8 + eps`` for the basic one).
    variant:
        ``"improved"`` (c=2, Section 4.6) or ``"basic"`` (c=4, Section 3.5).
    segmented:
        Run the faithful distributed structure (global/local MIS over the
        segment decomposition) instead of the idealized sequential scans.
    validate:
        Check every proven invariant at runtime (slower; recommended).
    origins:
        Optional identities for the links (defaults to their ``(u, v)``).
    backend:
        ``"reference"`` (default: the auditable per-edge Python loops),
        ``"fast"`` (vectorized numpy kernels, bit-identical output), or
        ``"auto"`` (fast when numpy is importable).  Names are resolved
        through the backend registry
        (:func:`repro.runtime.registry.resolve_compute`).
    instance:
        A prebuilt :class:`~repro.core.instance.TAPInstance` for
        ``(tree, links)`` — a :class:`~repro.runtime.plan.SolverPlan`
        passes its cached instance here so repeated solves skip the
        virtual-graph construction; when given, ``tree``/``links``/
        ``origins`` are ignored and must describe the same instance.
    """
    backend = resolve_backend(backend)
    inst = (
        instance
        if instance is not None
        else TAPInstance.from_links(tree, links, origins, backend=backend)
    )
    fwd, rev = solve_virtual_tap(
        inst, eps=eps, variant=variant, segmented=segmented, validate=validate,
        backend=backend,
    )
    return assemble_tap_result(
        inst, fwd, rev, eps=eps, variant=variant, segmented=segmented,
        validate=validate, backend=backend,
    )


def assemble_tap_result(
    inst: TAPInstance,
    fwd: ForwardResult,
    rev: ReverseResult,
    eps: float,
    variant: str,
    segmented: bool,
    validate: bool,
    backend: str = "reference",
) -> TapResult:
    """Map a solved virtual instance back to a :class:`TapResult`.

    Shared by :func:`approximate_tap` and the distributed pipeline
    (:func:`repro.dist.pipeline.distributed_two_ecss`), so both paths
    assemble — and certify — the result with the same code.
    """
    c = COVER_BOUND[variant]
    eps_prime = eps / c

    chosen = sorted(rev.b)
    # Weight of the mapped-back solution: each origin counted once.
    weight_by_origin: dict[Hashable, float] = {}
    if isinstance(inst.edges, VirtualEdgeColumns):
        # Column gather: same origins, same float() weights, no VirtualEdge
        # materialization (same first-occurrence dedup as map_back).
        links_back = []
        for origin, w in inst.edges.origin_weight_pairs(chosen):
            if origin not in weight_by_origin:
                links_back.append(origin)
            weight_by_origin[origin] = w
    else:
        links_back = map_back(inst.edges, chosen)
        for eid in chosen:
            e = inst.edges[eid]
            weight_by_origin[e.origin] = e.weight
    weight = sum(weight_by_origin.values())

    log = PrimitiveLog()
    log.record("lca_labels")  # virtual-graph construction (Lemma 4.2)
    log.record("segments_build")
    log.record("layering_layer", inst.layering.num_layers)
    log.merge(fwd.log)
    log.merge(rev.log)

    max_cov = (
        _certificates(backend).validate_coverage_bound(inst, fwd.y, rev.b, c)
        if validate
        else -1
    )

    return TapResult(
        links=links_back,
        weight=weight,
        virtual_eids=chosen,
        virtual_weight=inst.weight_of(chosen),
        dual_bound=cert.dual_lower_bound(fwd.y, eps_prime),
        eps=eps,
        variant=variant,
        segmented=segmented,
        guarantee=c * (1.0 + eps_prime),
        iterations_per_epoch=fwd.iterations_per_epoch,
        num_layers=inst.layering.num_layers,
        max_coverage_of_dual_edges=max_cov,
        log=log,
    )
