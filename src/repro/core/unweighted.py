"""Unweighted TAP: the simple 2-approximation of Section 3.6.1.

Compute a maximal independent set of the tree edges with respect to *all*
virtual links (two tree edges are adjacent when one link covers both),
processing layers in ascending order; then add both petals of every MIS
member.  Every tree edge ends covered, and since the MIS members are
pairwise independent, any feasible augmentation needs at least one distinct
link per member — so ``|aug| <= 2 |MIS| <= 2 OPT'`` on the virtual instance,
hence a 4-approximation for unweighted TAP on ``G`` (matching [4] with a far
simpler analysis, as the paper notes).

The returned MIS size is a certified lower bound on the virtual optimum and
is used by the experiment suite for checked ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.instance import TAPInstance
from repro.core.virtual_graph import map_back
from repro.decomp.petals import PetalOracle
from repro.exceptions import InvariantViolation
from repro.trees.rooted import RootedTree

__all__ = ["UnweightedTapResult", "unweighted_tap"]


@dataclass
class UnweightedTapResult:
    """Output of :func:`unweighted_tap`: chosen links plus the MIS certificate."""

    links: list[Hashable]
    virtual_eids: list[int]
    mis: list[int]  # the independent tree edges (certified lower bound)
    num_layers: int

    @property
    def size(self) -> int:
        """Number of chosen original links."""
        return len(self.links)

    @property
    def virtual_size(self) -> int:
        """Number of chosen virtual edges (before collapsing origins)."""
        return len(self.virtual_eids)

    @property
    def certified_virtual_ratio(self) -> float:
        """Checked ratio vs the MIS lower bound on the virtual instance."""
        if not self.mis:
            return 1.0 if not self.virtual_eids else float("inf")
        return self.virtual_size / len(self.mis)


def unweighted_tap(
    tree: RootedTree,
    links: Iterable[tuple[int, int]],
    validate: bool = True,
    origins: Sequence[Hashable] | None = None,
) -> UnweightedTapResult:
    """2-approximate unweighted TAP on the virtual instance (4-approx on G)."""
    link_list = [(u, v, 1.0) for u, v in links]
    inst = TAPInstance.from_links(tree, link_list, origins)
    inst.check_feasible()
    t = inst.tree
    depth = t.depth
    oracle = PetalOracle(inst.ops, inst.layering, [e.pair for e in inst.edges])
    counter = inst.ops.make_coverage_counter()

    chosen: set[int] = set()
    mis: list[int] = []
    for i in range(1, inst.layering.num_layers + 1):
        candidates = [
            e for e in inst.layering.edges_in_layer(i) if not counter.is_covered(e)
        ]
        # Group per layer path, scan bottom-up; the carried higher-petal
        # ancestor guarantees in-chain independence (Section 3.6.1).
        groups: dict[int, list[int]] = {}
        for e in candidates:
            groups.setdefault(inst.layering.path_id[e], []).append(e)
        pending: list[int] = []
        for pid in sorted(groups):
            chain = sorted(groups[pid], key=lambda e: -depth[e])
            carried = float("inf")
            for e in chain:
                if counter.is_covered(e) or carried < depth[e]:
                    continue
                hi = oracle.higher(e)
                lo = oracle.lower(e)
                if hi == -1:  # pragma: no cover - feasibility checked above
                    raise InvariantViolation(f"edge {e} has no covering link")
                mis.append(e)
                pending.append(hi)
                if lo != -1:
                    pending.append(lo)
                carried = min(carried, depth[inst.edges[hi].anc])
        for eid in pending:
            if eid not in chosen:
                chosen.add(eid)
                edge = inst.edges[eid]
                counter.add_path(edge.dec, edge.anc)

    if validate:
        for e in t.tree_edges():
            if not counter.is_covered(e):
                raise InvariantViolation(f"tree edge {e} left uncovered")
        # MIS independence: no single link covers two MIS members.
        for a_i, a in enumerate(mis):
            for b in mis[a_i + 1 :]:
                if t.is_ancestor(a, b) or t.is_ancestor(b, a):
                    deeper, higher = (b, a) if t.is_ancestor(a, b) else (a, b)
                    hi = oracle.higher(deeper)
                    if hi != -1 and inst.covers(hi, higher):
                        raise InvariantViolation(
                            f"MIS members {a} and {b} share a covering link"
                        )

    return UnweightedTapResult(
        links=map_back(inst.edges, sorted(chosen)),
        virtual_eids=sorted(chosen),
        mis=mis,
        num_layers=inst.layering.num_layers,
    )
