"""The reverse-delete phase, basic (c=4) and improved (c=2) variants.

Paper Sections 3.5, 4.5 and 4.6.  Epochs run over layers in *reverse* order
``k = L .. 1``; epoch ``k`` rebuilds the cover ``Y`` from
``X = B + A_k`` so that

1. every tree edge first covered in forward epochs ``>= k`` (the set ``F``)
   is covered by ``Y``, and
2. every edge of ``R_i`` for ``i >= k`` — the edges holding positive dual —
   is covered at most ``c`` times,

with ``c = 4`` for the basic variant (each anchor contributes both petals)
and ``c = 2`` for the improved variant (each anchor contributes only its
higher petal, followed by the *cleaning phase* that removes the higher petal
of the global anchor below any 3-covered edge — Figure 4's two cases).

Two execution modes:

* ``segmented=True`` — faithful to the distributed algorithm: a global MIS
  over per-segment highway representatives (with guard candidates, see
  DESIGN.md) followed by parallel per-segment scans that cannot see each
  other's same-iteration additions (Claims 4.13 and 4.15 are about exactly
  this situation, and the tests verify them on this mode);
* ``segmented=False`` — the idealized sequential mode scanning whole layer
  paths; anchors are then trivially independent and the improved variant
  already achieves c = 2 without cleaning.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass, field

from repro.core.forward import ForwardResult
from repro.core.instance import TAPInstance
from repro.core.mis import (
    Anchor,
    EpochContext,
    build_segment_layer_highway,
    global_candidates,
    global_mis,
    local_groups,
    scan_chain,
)
from repro.core.rounds import PrimitiveLog
from repro.exceptions import InvariantViolation

__all__ = ["ReverseResult", "reverse_delete", "COVER_BOUND"]

COVER_BOUND = {"basic": 4, "improved": 2}


@dataclass
class ReverseResult:
    """The final cover ``B`` plus instrumentation for the structural claims."""

    b: set[int]
    anchors: list[Anchor] = field(default_factory=list)
    cleaning_removals: list[tuple[int, int]] = field(default_factory=list)
    log: PrimitiveLog = field(default_factory=PrimitiveLog)
    variant: str = "improved"
    segmented: bool = True
    x_by_epoch: dict[int, list[int]] = field(default_factory=dict)


def reverse_delete(
    inst: TAPInstance,
    fwd: ForwardResult,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    backend: str = "reference",
    hooks: Any = None,
) -> ReverseResult:
    """Run the reverse-delete phase on the forward phase's output.

    ``backend="fast"`` runs the *same* control flow (global MIS, local
    scans, cleaning — Claims 4.13/4.15/4.17 live here and are shared) over
    the vectorized epoch primitives of
    :class:`repro.fast.context.FastEpochContext`; petal indices and
    coverage counts are integer-exact in both backends, so the resulting
    cover ``B`` is identical.

    ``hooks`` is an optional observer (duck-typed): when it has an
    ``on_global_gather(ctx, layer, candidates)`` method it is invoked for
    every non-empty global-MIS candidate set, right where the distributed
    algorithm performs the Section 4.5.1 information gathering —
    :mod:`repro.dist.pipeline` uses this to run the gather message-level.
    """
    if variant not in COVER_BOUND:
        raise ValueError(f"variant must be one of {sorted(COVER_BOUND)}")
    from repro.fast import resolve_backend

    if resolve_backend(backend) == "fast":
        from repro.fast.context import FastEpochContext

        context_cls = FastEpochContext
    else:
        context_cls = EpochContext
    tree = inst.tree
    layering = inst.layering
    num_layers = layering.num_layers
    log = PrimitiveLog()
    add_lower = variant == "basic"

    a_by_epoch: dict[int, list[int]] = {}
    for eid, k in fwd.epoch_added.items():
        a_by_epoch.setdefault(k, []).append(eid)
    # Zero-weight links (epoch 0) stay in B forever: they are free, and they
    # are the only cover of tree edges first covered before epoch 1.
    always_in_b = sorted(a_by_epoch.get(0, []))

    fce = fwd.first_cover_epoch
    f_by_epoch: dict[int, list[int]] = {}
    for t in tree.tree_edges():
        f_by_epoch.setdefault(fce[t], []).append(t)

    in_f = [False] * tree.n
    f_layer: dict[int, list[int]] = {}

    slh = build_segment_layer_highway(inst) if segmented else {}
    if segmented:
        log.record("segments_build")

    b: set[int] = set(always_in_b)
    all_anchors: list[Anchor] = []
    cleaning_removals: list[tuple[int, int]] = []
    x_by_epoch: dict[int, list[int]] = {}

    for k in range(num_layers, 0, -1):
        for t in f_by_epoch.get(k, []):
            in_f[t] = True
            f_layer.setdefault(layering.layer[t], []).append(t)

        a_k = a_by_epoch.get(k, [])
        x_list = sorted(b.union(a_k))
        x_by_epoch[k] = x_list
        ctx = context_cls(inst, k, x_list)
        log.record("aggregate")  # each edge learns X-coverage
        for eid in always_in_b:
            ctx.add_to_y(eid)

        for i in range(k, num_layers + 1):
            h_tilde = [
                t for t in sorted(f_layer.get(i, [])) if not ctx.y_covers(t)
            ]
            if not h_tilde:
                continue
            log.record("petals")  # Claim 4.11 for layer i w.r.t. X

            if segmented:
                cands = global_candidates(ctx, i, slh)
                if cands:
                    log.record("global_mis_gather")
                    if hooks is not None and hasattr(hooks, "on_global_gather"):
                        hooks.on_global_gather(ctx, i, cands)
                for t in global_mis(ctx, cands):
                    hi = ctx.higher_petal(t)
                    lo = ctx.lower_petal(t) if add_lower else -1
                    all_anchors.append(
                        Anchor(t=t, kind="global", epoch=k, iteration=i,
                               hi=hi, lo=lo, in_f=in_f[t])
                    )
                    ctx.add_to_y(hi)
                    if add_lower:
                        ctx.add_to_y(lo)

            remaining = [t for t in h_tilde if not ctx.y_covers(t)]
            if remaining:
                groups = local_groups(ctx, remaining, segmented)
                pending_all: list[int] = []
                for chain in groups:
                    anchors, pending = scan_chain(ctx, chain, i, add_lower)
                    all_anchors.extend(anchors)
                    pending_all.extend(pending)
                log.record("segment_scan")  # all segments scan in parallel
                for eid in pending_all:
                    ctx.add_to_y(eid)
                log.record("aggregate")  # edges learn Y membership / coverage

        if variant == "improved":
            removals = _cleaning_phase(ctx, fwd.r_sets.get(k, []), all_anchors, k, validate)
            cleaning_removals.extend(removals)
            log.record("aggregate")
            log.record("broadcast")

        if validate:
            _validate_epoch(ctx, fwd, in_f, k, COVER_BOUND[variant])

        b = set(ctx.y_set)

    return ReverseResult(
        b=b,
        anchors=all_anchors,
        cleaning_removals=cleaning_removals,
        log=log,
        variant=variant,
        segmented=segmented,
        x_by_epoch=x_by_epoch,
    )


def _cleaning_phase(
    ctx: EpochContext,
    r_k: list[int],
    anchors: list[Anchor],
    epoch: int,
    validate: bool,
) -> list[tuple[int, int]]:
    """Remove the global anchor's higher petal below every 3-covered edge.

    Section 4.6: a tree edge ``t in R_k`` covered three times always has the
    Figure-4 structure — two anchors below it on its chain, the upper one
    global, plus one anchor above — and removing the below-global anchor's
    higher petal keeps everything else covered (Claim 4.17).
    """
    tree = ctx.inst.tree
    epoch_globals = [
        a for a in anchors if a.kind == "global" and a.epoch == epoch
    ]
    removals: list[tuple[int, int]] = []
    for t in sorted(r_k):
        count = ctx.counter.count(t)
        if count <= 2:
            continue
        if validate and count > 3:
            raise InvariantViolation(
                f"edge {t} in R_{epoch} covered {count} > 3 times before cleaning"
            )
        below = [
            a
            for a in epoch_globals
            if a.hi in ctx.y_set
            and tree.is_strict_ancestor(t, a.t)
            and ctx.inst.covers(a.hi, t)
        ]
        if validate and len(below) != 1:
            raise InvariantViolation(
                f"3-covered edge {t} has {len(below)} global anchors below "
                f"(expected exactly 1, the Figure-4 structure)"
            )
        for a in below[:1]:
            removals.append((t, a.hi))
    for _, eid in removals:
        ctx.remove_from_y(eid)
    return removals


def _validate_epoch(
    ctx: EpochContext,
    fwd: ForwardResult,
    in_f: list[bool],
    epoch: int,
    bound: int,
) -> None:
    """Check the two epoch invariants of Lemmas 3.2 / 4.18."""
    tree = ctx.inst.tree
    for t in tree.tree_edges():
        if in_f[t] and not ctx.y_covers(t):
            raise InvariantViolation(
                f"epoch {epoch}: F edge {t} left uncovered by Y"
            )
    for i, r_i in fwd.r_sets.items():
        if i < epoch:
            continue
        for t in r_i:
            c = ctx.counter.count(t)
            if c > bound:
                raise InvariantViolation(
                    f"epoch {epoch}: edge {t} in R_{i} covered {c} > {bound} times"
                )
