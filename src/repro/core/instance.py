"""The TAP instance container binding a tree to its virtual edges.

A :class:`TAPInstance` holds the rooted spanning tree, the vertical virtual
edges of ``G'`` (Section 4.1), and the shared decompositions (layering,
path operations, segments) that both phases of the algorithm use.  It also
performs the feasibility check: every tree edge must be covered by at least
one virtual edge, which is exactly 2-edge-connectivity of the input graph.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Hashable, Iterable, Sequence

from repro.decomp.layering import Layering
from repro.decomp.segments import SegmentDecomposition
from repro.exceptions import NotTwoEdgeConnectedError
from repro.core.virtual_graph import (
    VirtualEdge,
    VirtualEdgeColumns,
    build_virtual_edges,
)
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.pathops import TreePathOps
from repro.trees.rooted import RootedTree

__all__ = ["TAPInstance"]


class TAPInstance:
    """A weighted TAP instance on the virtual graph ``G'``.

    ``segment_size`` overrides the default ``sqrt(n)`` segment parameter —
    useful for stress-testing the cross-segment machinery (tiny segments
    force the global/local MIS interplay of Section 4.5.1).
    """

    def __init__(
        self,
        tree: RootedTree,
        edges: Sequence[VirtualEdge],
        segment_size: int | None = None,
    ) -> None:
        self.tree = tree
        # The fast backend hands over column-oriented edges; keep them as-is
        # (they satisfy the Sequence protocol and materialize lazily).
        self.edges = edges if isinstance(edges, VirtualEdgeColumns) else list(edges)
        self.segment_size = segment_size

    @cached_property
    def layering(self) -> Layering:
        """The junction-path layering (Section 3.2), built on first use.

        A pure function of the tree, so plan derivation
        (:meth:`repro.runtime.plan.SolverPlan._derive_instance`) and
        :meth:`fresh_copy` seed it from the source instance instead of
        recomputing.
        """
        return Layering(self.tree)

    @cached_property
    def hld(self) -> HeavyLightDecomposition:
        """Heavy-light decomposition, built lazily (the fast backend never
        touches it; the reference path operations do)."""
        return HeavyLightDecomposition(self.tree)

    @cached_property
    def ops(self) -> TreePathOps:
        """Reference batch path operations bound to the tree (lazy)."""
        return TreePathOps(self.tree, self.hld)

    @classmethod
    def from_links(
        cls,
        tree: RootedTree,
        links: Iterable[tuple[int, int, float]],
        origins: Sequence[Hashable] | None = None,
        segment_size: int | None = None,
        backend: str = "reference",
    ) -> "TAPInstance":
        """Build the instance from arbitrary (possibly non-vertical) links.

        ``backend="fast"`` (or ``"auto"`` with numpy available) splits the
        links at their LCAs with the vectorized batch-LCA kernel (identical
        integer results, see
        :func:`repro.core.virtual_graph.build_virtual_edges`) and pre-seeds
        the :attr:`arrays` cache so the kernels reuse one set of tree
        arrays across instance construction and both phases.
        """
        from repro.fast import resolve_backend

        backend = resolve_backend(backend)
        if backend == "fast":
            from repro.fast.treearrays import InstanceArrays, TreeArrays

            ta = TreeArrays(tree)
            edges = build_virtual_edges(
                tree, links, origins, backend, tree_arrays=ta
            )
            inst = cls(tree, edges, segment_size)
            inst.__dict__["arrays"] = InstanceArrays(inst, ta=ta)
            return inst
        return cls(
            tree, build_virtual_edges(tree, links, origins, backend), segment_size
        )

    def fresh_copy(self) -> "TAPInstance":
        """A new instance sharing the immutable artifacts, not the state.

        The tree, virtual edges, layering, HLD, segments and kernel
        arrays are deterministic functions of the instance and safe to
        share.  Deliberately *not* copied: ``ops``, because callers (the
        distributed pipeline's :class:`~repro.dist.ops.MeasuredOps`
        injection) replace it with per-run state that must not leak into
        other solves — and ``coverage``, because it is computed *through*
        ``ops`` (pre-seeding it would silently skip a message-level
        computation the measured pipeline is supposed to perform).  Used
        by :meth:`repro.runtime.plan.SolverPlan.private_instance`.
        """
        inst = TAPInstance(self.tree, self.edges, self.segment_size)
        for name in ("layering", "hld", "segments", "arrays"):
            if name in self.__dict__:
                inst.__dict__[name] = self.__dict__[name]
        return inst

    # ------------------------------------------------------------------

    @cached_property
    def segments(self) -> SegmentDecomposition:
        """The segment decomposition (Section 4.2.1), built on first use."""
        return SegmentDecomposition(self.tree, s=self.segment_size)

    @cached_property
    def arrays(self) -> Any:
        """Numpy views for the fast kernels (requires numpy; built once).

        See :class:`repro.fast.treearrays.InstanceArrays`; shared by the
        fast forward phase, every reverse-delete epoch, and the vectorized
        certificates.
        """
        from repro.fast.treearrays import InstanceArrays

        return InstanceArrays(self)

    @cached_property
    def coverage(self) -> list[int]:
        """How many virtual edges cover each tree edge (feasibility data)."""
        return self.ops.coverage_counts(e.pair for e in self.edges)

    def check_feasible(self) -> None:
        """Every tree edge must be covered by some virtual edge."""
        cov = self.coverage
        for t in self.tree.tree_edges():
            if cov[t] == 0:
                raise NotTwoEdgeConnectedError(
                    f"tree edge ({t}, {self.tree.parent[t]}) is covered by no "
                    "link; the underlying graph has a bridge"
                )

    # ------------------------------------------------------------------

    def weight_of(self, eids: Iterable[int]) -> float:
        """Total weight of the given virtual edges.

        Column-oriented edge stores are summed straight off the weight
        column — same ``float()`` casts in the same order as the
        object-level path, so the result is bit-identical.
        """
        edges = self.edges
        if isinstance(edges, VirtualEdgeColumns):
            w = edges.weight
            return sum(float(w[e]) for e in eids)
        return sum(edges[e].weight for e in eids)

    def covers(self, eid: int, t: int) -> bool:
        """Does virtual edge ``eid`` cover tree edge ``t``?"""
        e = self.edges[eid]
        return self.tree.covers_vertical(e.dec, e.anc, t)

    def covered_edges(self, eid: int) -> Iterable[int]:
        """The tree edges (child ids) covered by virtual edge ``eid``."""
        e = self.edges[eid]
        return self.tree.chain(e.dec, e.anc)

    @property
    def num_tree_edges(self) -> int:
        """Number of tree edges (``n - 1``)."""
        return self.tree.n - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TAPInstance(n={self.tree.n}, links={len(self.edges)}, "
            f"layers={self.layering.num_layers})"
        )
