"""A-posteriori certificates for the primal-dual algorithm (Lemma 3.1).

The algorithm's approximation guarantee is *checkable on every run*:

* dual feasibility up to ``(1 + eps)``: for every link ``e``,
  ``s(e) = sum of y over covered tree edges <= (1 + eps) w(e)``; dividing
  the duals by ``(1 + eps)`` therefore gives a feasible dual, whose value is
  a lower bound on the optimal TAP value of the *virtual* instance by weak
  LP duality;
* tightness of chosen links: every ``e`` in the cover satisfies
  ``s(e) >= w(e)``;
* bounded coverage: every tree edge with ``y(t) > 0`` is covered at most
  ``c`` times by the final cover ``B``.

Together these give ``w(B) <= c (1 + eps) OPT'`` — the exact chain of
inequalities in Lemma 3.1 — so the functions below both validate runs and
produce certified lower bounds for the experiment reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.instance import TAPInstance
from repro.exceptions import InvariantViolation

__all__ = [
    "dual_slacks",
    "validate_dual_feasibility",
    "validate_tightness",
    "validate_cover",
    "validate_coverage_bound",
    "dual_lower_bound",
    "certified_ratio",
]

_TOL = 1e-6


def dual_slacks(inst: TAPInstance, y: Sequence[float]) -> list[float]:
    """``s(e) / w(e)`` for every link (``inf`` for zero-weight links)."""
    cum = inst.ops.ancestor_sums(y)
    out = []
    for e in inst.edges:
        s_e = cum[e.dec] - cum[e.anc]
        out.append(s_e / e.weight if e.weight > 0 else float("inf"))
    return out


def validate_dual_feasibility(
    inst: TAPInstance, y: Sequence[float], eps: float
) -> float:
    """Check ``s(e) <= (1 + eps) w(e)`` for all positive-weight links.

    Returns the maximum ratio ``s(e)/w(e)`` observed.
    """
    worst = 0.0
    for e, ratio in zip(inst.edges, dual_slacks(inst, y)):
        if e.weight <= 0:
            continue
        worst = max(worst, ratio)
        if ratio > (1.0 + eps) * (1.0 + _TOL):
            raise InvariantViolation(
                f"dual constraint of link {e.eid} violated: s(e)/w(e) = "
                f"{ratio:.6f} > 1 + eps = {1 + eps}"
            )
    return worst


def validate_tightness(
    inst: TAPInstance, y: Sequence[float], chosen: Iterable[int]
) -> None:
    """Every chosen positive-weight link must be tight (``s(e) >= w(e)``)."""
    cum = inst.ops.ancestor_sums(y)
    for eid in chosen:
        e = inst.edges[eid]
        if e.weight <= 0:
            continue
        s_e = cum[e.dec] - cum[e.anc]
        if s_e < e.weight * (1.0 - _TOL):
            raise InvariantViolation(
                f"chosen link {eid} is not tight: s(e) = {s_e:.6f} < "
                f"w(e) = {e.weight:.6f}"
            )


def validate_cover(inst: TAPInstance, chosen: Iterable[int]) -> None:
    """The chosen links must cover every tree edge."""
    counts = inst.ops.coverage_counts(inst.edges[e].pair for e in chosen)
    for t in inst.tree.tree_edges():
        if counts[t] <= 0:
            raise InvariantViolation(
                f"tree edge ({t}, {inst.tree.parent[t]}) is not covered by "
                "the returned augmentation"
            )


def validate_coverage_bound(
    inst: TAPInstance, y: Sequence[float], chosen: Iterable[int], c: int
) -> int:
    """Every tree edge with positive dual is covered at most ``c`` times.

    Returns the maximum coverage observed over positive-dual edges.
    """
    counts = inst.ops.coverage_counts(inst.edges[e].pair for e in chosen)
    worst = 0
    for t in inst.tree.tree_edges():
        if y[t] > 0:
            worst = max(worst, counts[t])
            if counts[t] > c:
                raise InvariantViolation(
                    f"edge {t} with y > 0 covered {counts[t]} > {c} times"
                )
    return worst


def dual_lower_bound(y: Sequence[float], eps: float) -> float:
    """``sum(y) / (1 + eps)``: a certified lower bound on OPT of the virtual
    TAP instance (feasible dual value, weak duality)."""
    return sum(y) / (1.0 + eps)


def certified_ratio(weight: float, lower_bound: float) -> float:
    """Upper bound on the approximation ratio achieved by this run."""
    if lower_bound <= 0:
        return float("inf") if weight > 0 else 1.0
    return weight / lower_bound
