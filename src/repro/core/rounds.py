"""CONGEST round-cost accounting for the first algorithm (Level M of DESIGN.md).

The paper prices its building blocks as follows:

* MST (Kutten–Peleg):                     ``O(D + sqrt(n) log* n)``
* LCA labels + virtual graph (Sec 4.1):   ``O(D + sqrt(n) log* n)``
* segment decomposition (Sec 4.2.1):      ``O(D + sqrt(n) log* n)``
* layering, per layer (Claim 4.10):       ``O(D + sqrt(n))``
* one aggregate in either direction
  (Claims 4.5/4.6):                       ``O(D + sqrt(n))``
* petal computation (Claim 4.11):         two aggregates
* global-MIS information gathering
  (Sec 4.5.1):                            ``O(D + sqrt(n))``
* local segment scan:                     ``O(sqrt(n))``
* a broadcast / termination check:        ``O(D)``

Algorithms record *primitive invocations* in a :class:`PrimitiveLog` while
they run; :class:`RoundCostModel` prices the log with the measured ``n`` and
``D`` of the instance.  This keeps the reported rounds honest: every count is
driven by the actual number of iterations/epochs the algorithm needed, and
the per-primitive formulas are the paper's own.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["PrimitiveLog", "RoundCostModel", "log_star"]


def log_star(n: float) -> int:
    """Iterated logarithm base 2 (>= 1 for n >= 2)."""
    count = 0
    while n > 1:
        n = math.log2(n)
        count += 1
    return max(1, count)


@dataclass
class PrimitiveLog:
    """Counts of distributed primitives invoked during a run."""

    counts: Counter = field(default_factory=Counter)

    def record(self, primitive: str, times: int = 1) -> None:
        """Count ``times`` invocations of a named primitive."""
        self.counts[primitive] += times

    def merge(self, other: "PrimitiveLog") -> None:
        """Absorb another log's counts (phases merge into the run log)."""
        self.counts.update(other.counts)

    def __getitem__(self, primitive: str) -> int:
        return self.counts[primitive]


class RoundCostModel:
    """Prices a :class:`PrimitiveLog` using the paper's per-primitive costs.

    ``n`` is the vertex count and ``D`` the measured network diameter.  All
    costs drop O() constants (set to 1), so totals are comparable across
    instances and directly checkable against the theorem bounds' *shape*.
    """

    SETUP_PRIMITIVES = ("mst", "lca_labels", "segments_build")

    def __init__(self, n: int, diameter: int) -> None:
        self.n = max(2, n)
        self.diameter = max(1, diameter)
        self.sqrt_n = math.isqrt(self.n - 1) + 1
        self.log_n = math.log2(self.n)
        self.log_star_n = log_star(self.n)

    # -- per-primitive round costs ---------------------------------------

    def cost_of(self, primitive: str) -> float:
        """Rounds one invocation of ``primitive`` costs (paper's formulas)."""
        D, sq, ls = self.diameter, self.sqrt_n, self.log_star_n
        if primitive in ("mst", "lca_labels", "segments_build"):
            return D + sq * ls
        if primitive in (
            "aggregate",  # Claims 4.5 / 4.6, either direction
            "layering_layer",  # Claim 4.10, one layer
            "global_mis_gather",  # Sec 4.5.1 information gathering
        ):
            return D + sq
        if primitive == "petals":  # Claim 4.11: two aggregates
            return 2 * (D + sq)
        if primitive == "segment_scan":
            return sq
        if primitive == "broadcast":
            return D
        raise KeyError(f"unknown primitive {primitive!r}")

    def total_rounds(self, log: PrimitiveLog) -> float:
        """Total priced rounds of a primitive log."""
        return sum(self.cost_of(p) * c for p, c in log.counts.items())

    def breakdown(self, log: PrimitiveLog) -> dict[str, float]:
        """Per-primitive priced rounds plus a TOTAL row."""
        out = {p: self.cost_of(p) * c for p, c in log.counts.items()}
        out["TOTAL"] = sum(out.values())
        return out

    # -- the theorem bounds, for shape comparisons ------------------------

    def theorem_1_1_bound(self, eps: float) -> float:
        """``(D + sqrt(n)) log^2(n) / eps`` — the Theorem 1.1 round bound."""
        return (self.diameter + self.sqrt_n) * self.log_n**2 / eps

    def lower_bound(self) -> float:
        """The (tilde) Omega(D + sqrt(n)) lower bound of [4, 7]."""
        return self.diameter + self.sqrt_n / self.log_n
