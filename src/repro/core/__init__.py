"""The paper's primary contribution: (4+eps)-approx TAP and (5+eps)-approx 2-ECSS.

Public entry points:

* :func:`repro.core.tap.approximate_tap` — weighted tree augmentation.
* :func:`repro.core.tecss.approximate_two_ecss` — weighted 2-ECSS.
* :func:`repro.core.k_ecss.approximate_k_ecss` — weighted k-ECSS
  (``k >= 2``) by iterated augmentation rounds on the TAP machinery.
* :func:`repro.core.unweighted.unweighted_tap` — the simple Section 3.6.1
  2-approximation (on the virtual graph) for unweighted TAP.
"""

from repro.core.instance import TAPInstance
from repro.core.k_ecss import (
    MAX_K,
    approximate_k_ecss,
    assert_k_edge_connected,
)
from repro.core.result import KEcssResult, KEcssRound, TapResult, TwoEcssResult
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss
from repro.core.unweighted import unweighted_tap
from repro.core.virtual_graph import VirtualEdge, build_virtual_edges

__all__ = [
    "MAX_K",
    "TAPInstance",
    "TapResult",
    "TwoEcssResult",
    "KEcssResult",
    "KEcssRound",
    "approximate_tap",
    "approximate_two_ecss",
    "approximate_k_ecss",
    "assert_k_edge_connected",
    "unweighted_tap",
    "VirtualEdge",
    "build_virtual_edges",
]
