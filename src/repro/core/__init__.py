"""The paper's primary contribution: (4+eps)-approx TAP and (5+eps)-approx 2-ECSS.

Public entry points:

* :func:`repro.core.tap.approximate_tap` — weighted tree augmentation.
* :func:`repro.core.tecss.approximate_two_ecss` — weighted 2-ECSS.
* :func:`repro.core.unweighted.unweighted_tap` — the simple Section 3.6.1
  2-approximation (on the virtual graph) for unweighted TAP.
"""

from repro.core.instance import TAPInstance
from repro.core.result import TapResult, TwoEcssResult
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss
from repro.core.unweighted import unweighted_tap
from repro.core.virtual_graph import VirtualEdge, build_virtual_edges

__all__ = [
    "TAPInstance",
    "TapResult",
    "TwoEcssResult",
    "approximate_tap",
    "approximate_two_ecss",
    "unweighted_tap",
    "VirtualEdge",
    "build_virtual_edges",
]
