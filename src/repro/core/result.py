"""Result containers for the TAP and 2-ECSS solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.rounds import PrimitiveLog, RoundCostModel

__all__ = ["KEcssResult", "KEcssRound", "TapResult", "TwoEcssResult"]


@dataclass
class TapResult:
    """Output of :func:`repro.core.tap.approximate_tap`.

    ``links`` are the chosen original links (after mapping back from the
    virtual graph); ``virtual_eids`` the chosen virtual edges; the two
    weights can differ because duplicate origins collapse.

    ``dual_bound`` is a certified lower bound on the optimum of the
    *virtual* instance; ``OPT_TAP(G) >= dual_bound / 2`` by Lemma 4.1.
    """

    links: list[Hashable]
    weight: float
    virtual_eids: list[int]
    virtual_weight: float
    dual_bound: float
    eps: float
    variant: str
    segmented: bool
    guarantee: float  # the proven factor on the virtual instance (c (1+eps'))
    iterations_per_epoch: dict[int, int]
    num_layers: int
    max_coverage_of_dual_edges: int
    log: PrimitiveLog = field(default_factory=PrimitiveLog)

    @property
    def certified_virtual_ratio(self) -> float:
        """Checked upper bound on this run's ratio w.r.t. the virtual OPT."""
        if self.dual_bound <= 0:
            return 1.0 if self.virtual_weight == 0 else float("inf")
        return self.virtual_weight / self.dual_bound

    def modeled_rounds(self, n: int, diameter: int) -> float:
        """Level-M price of this run's primitive log on an (n, D) network."""
        return RoundCostModel(n, diameter).total_rounds(self.log)


@dataclass
class TwoEcssResult:
    """Output of :func:`repro.core.tecss.approximate_two_ecss`.

    The subgraph is ``MST + augmentation``; Claim 2.1 turns the TAP factor
    ``alpha`` into ``alpha + 1`` for 2-ECSS.
    """

    edges: list[tuple]
    weight: float
    mst_edges: list[tuple]
    mst_weight: float
    augmentation: TapResult
    diameter: int
    n: int
    guarantee: float  # 5 + eps for the improved variant
    mst_simulation: object | None = None  # RunStats when simulate_mst=True

    @property
    def certified_lower_bound(self) -> float:
        """max(w(MST), dual/2): both are valid lower bounds on OPT(2-ECSS)."""
        return max(self.mst_weight, self.augmentation.dual_bound / 2.0)

    @property
    def certified_ratio(self) -> float:
        """Checked upper bound on this run's approximation ratio."""
        lb = self.certified_lower_bound
        return self.weight / lb if lb > 0 else float("inf")

    def modeled_rounds(self) -> float:
        """Level-M price of the whole run (MST + labels + TAP phases)."""
        model = RoundCostModel(self.n, self.diameter)
        log = PrimitiveLog()
        log.record("mst")
        log.record("lca_labels")
        log.merge(self.augmentation.log)
        return model.total_rounds(log)

    def summary(self) -> str:
        """One-line human-readable report (used by the demo CLI)."""
        return (
            f"2-ECSS: n={self.n}, weight={self.weight:.2f} "
            f"(MST {self.mst_weight:.2f} + aug {self.augmentation.weight:.2f}), "
            f"guarantee {self.guarantee:.2f}, certified ratio <= "
            f"{self.certified_ratio:.3f}, modeled rounds {self.modeled_rounds():.0f}"
        )


@dataclass
class KEcssRound:
    """One connectivity-raising round of :func:`repro.core.k_ecss`.

    Round ``j`` lifts the running subgraph from ``(j-1)``- to
    ``j``-edge-connectivity; ``iterations`` counts the TAP sub-solves the
    round needed (each covers one Gomory–Hu contraction of the deficient
    cuts) and ``edges`` lists the caller-labeled edges the round added.
    """

    j: int
    iterations: int
    edges: list[tuple]
    weight: float


@dataclass
class KEcssResult:
    """Output of :func:`repro.core.k_ecss.approximate_k_ecss` for ``k >= 3``.

    The subgraph is ``base (2-ECSS) + rounds``; ``guarantee`` is the
    per-run proven factor ``base.guarantee + iterations * (2c + eps)``
    (each TAP sub-solve is a ``(2c + eps)``-approximation against an
    instance whose optimum is at most ``OPT_k``; see the module docstring
    of :mod:`repro.core.k_ecss`).
    """

    k: int
    edges: list[tuple]
    weight: float
    base: TwoEcssResult
    rounds: list[KEcssRound]
    diameter: int
    n: int
    guarantee: float
    degree_lower_bound: float

    @property
    def certified_lower_bound(self) -> float:
        """The larger of the 2-ECSS bound and the degree bound.

        Both are valid lower bounds on ``OPT(k-ECSS)``: every k-ECSS is a
        2-ECSS, and every k-ECSS has minimum degree ``k``, so its weight is
        at least half the sum over vertices of the ``k`` cheapest incident
        edge weights.
        """
        return max(self.base.certified_lower_bound, self.degree_lower_bound)

    @property
    def certified_ratio(self) -> float:
        """Checked upper bound on this run's approximation ratio."""
        lb = self.certified_lower_bound
        return self.weight / lb if lb > 0 else float("inf")

    def summary(self) -> str:
        """One-line human-readable report (used by the demo CLI)."""
        iterations = sum(r.iterations for r in self.rounds)
        return (
            f"{self.k}-ECSS: n={self.n}, weight={self.weight:.2f} "
            f"(2-ECSS {self.base.weight:.2f} + {len(self.rounds)} round(s), "
            f"{iterations} TAP solve(s)), guarantee {self.guarantee:.2f}, "
            f"certified ratio <= {self.certified_ratio:.3f}"
        )
