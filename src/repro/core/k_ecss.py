"""Minimum-weight k-ECSS via iterated augmentation on the TAP machinery.

The paper's 2-ECSS algorithm is the ``k = 2`` member of the k-ECSS family
Dory's companion paper (arXiv:1805.07764) solves by layering augmentation
rounds: 2-ECSS is MST + one tree-augmentation round, and each further round
raises the connectivity of the *current* subgraph by one.  This module
implements round ``j`` (lifting a ``(j-1)``-edge-connected ``H`` to
``j``-edge-connectivity) as a loop of TAP sub-solves on the shared
primal-dual machinery of :mod:`repro.core.tap`:

1. compute the **Gomory–Hu tree** of ``H`` under unit capacities; an edge
   of that tree with value ``< j`` witnesses a deficient cut (its value is
   exactly ``j - 1``, since ``H`` is ``(j-1)``-edge-connected);
2. **contract** the equivalence classes ``lambda_H(u, v) >= j`` — the
   components of the Gomory–Hu tree restricted to edges of value ``>= j``.
   Every deficient cut separates whole classes (a cut of ``j - 1`` edges
   cannot split a class), so the deficient Gomory–Hu edges form a tree on
   the classes in which *every* edge needs covering;
3. run :func:`repro.core.tap.approximate_tap` on that contracted tree with
   the candidate edges of ``G`` not yet in ``H`` (mapped through the
   contraction) as links, and add the chosen links to ``H``;
4. repeat until the Gomory–Hu tree has no deficient edge, i.e. ``H`` is
   ``j``-edge-connected.

**Feasibility.**  If ``G`` is ``k``-edge-connected, every deficient cut of
``H`` has at least ``j <= k`` crossing ``G``-edges but only ``j - 1`` in
``H``, so some candidate crosses it: the TAP instance of step 3 is
coverable, and each iteration adds at least one new edge — the loop
terminates after at most ``m`` iterations.  An uncoverable contracted tree
edge therefore proves ``G`` itself is not ``k``-edge-connected and raises
:class:`~repro.exceptions.NotKEdgeConnectedError`.

**Guarantee.**  For any deficient cut, the edges of an optimal k-ECSS not
in ``H`` cross it (``H`` has ``j - 1 < k`` edges there), so
``OPT_k setminus H`` projects to a feasible cover of the contracted tree:
the optimum of each TAP sub-instance is at most ``w(OPT_k)``, and each
sub-solve is a ``(2c + eps)``-approximation on its instance (Theorem 4.19
applied per iteration).  With ``T`` total iterations across rounds
``3..k`` the subgraph weight is at most

    ``w(MST) + (2c + eps) w(OPT_2) + T (2c + eps) w(OPT_k)
      <= (1 + (T + 1)(2c + eps)) w(OPT_k)``,

recorded per run as ``base.guarantee + T (2c + eps)`` — for ``k = 2``
(``T = 0``) exactly the paper's ``2c + 1 + eps``.  ``T`` depends on the
instance, so the guarantee is *per-run certified*, like the dual
certificates of :mod:`repro.core.certificates`.

Everything outside the TAP sub-solves (Gomory–Hu trees, contraction,
link mapping) is backend-independent, so results are bit-identical across
the ``reference`` and ``fast`` compute backends — the same contract the
2-ECSS path holds.
"""

from __future__ import annotations

import networkx as nx

from typing import Iterable, Sequence

from repro.core.result import KEcssResult, KEcssRound, TwoEcssResult
from repro.core.reverse import COVER_BOUND
from repro.core.tap import approximate_tap
from repro.exceptions import InvariantViolation, NotKEdgeConnectedError
from repro.graphs.validation import check_k_edge_connected, is_k_edge_connected
from repro.trees.rooted import RootedTree

__all__ = [
    "MAX_K",
    "approximate_k_ecss",
    "assemble_k_ecss",
    "assert_k_edge_connected",
    "augment_round",
    "degree_lower_bound",
]

#: Largest ``k`` the solver (and the serve protocol) accepts.  The rounds
#: are provably correct for any ``k``, but each one pays a Gomory–Hu tree
#: per iteration — beyond this the evaluation story (MILP differentials)
#: stops being checkable, so requests above it are rejected up front.
MAX_K = 8


def _unit_capacity_graph(n: int, edge_set: "Iterable[tuple[int, int]]") -> nx.Graph:
    """The subgraph ``H`` as an nx.Graph with explicit unit capacities.

    ``nx.gomory_hu_tree`` treats a *missing* capacity attribute as
    infinite, so every edge carries ``capacity=1`` — connectivity counts
    edges, never weights.  Edges are inserted sorted so the flow
    computations see one canonical graph regardless of set iteration
    order.
    """
    h = nx.Graph()
    h.add_nodes_from(range(n))
    h.add_edges_from((u, v, {"capacity": 1}) for u, v in sorted(edge_set))
    return h


def _deficient_contraction(
    n: int, edge_set: "Iterable[tuple[int, int]]", j: int
) -> "tuple[list[int], int, list[tuple[int, int]]] | None":
    """Contract the ``lambda >= j`` classes of ``H``; keep deficient cuts.

    Returns ``None`` when ``H`` is already ``j``-edge-connected, else
    ``(comp_of, num_classes, tree_edges)``: the node -> class map and the
    contracted Gomory–Hu tree, in which every edge is a deficient cut.
    Classes are numbered by their smallest member, so the contraction —
    and everything downstream of it — is deterministic.
    """
    ght = nx.gomory_hu_tree(_unit_capacity_graph(n, edge_set))
    deficient = [
        (u, v) for u, v, val in ght.edges(data="weight") if val < j
    ]
    if not deficient:
        return None
    keep = nx.Graph()
    keep.add_nodes_from(range(n))
    keep.add_edges_from(
        (u, v) for u, v, val in ght.edges(data="weight") if val >= j
    )
    comp_of = [0] * n
    for cid, comp in enumerate(sorted(nx.connected_components(keep), key=min)):
        for node in comp:
            comp_of[node] = cid
    num_classes = 1 + max(comp_of)
    # Contracting connected subtrees of a tree yields a tree: exactly the
    # deficient edges survive, one per class boundary.
    tree_edges = sorted(
        tuple(sorted((comp_of[u], comp_of[v]))) for u, v in deficient
    )
    return comp_of, num_classes, tree_edges


def _check_coverable(
    tree: RootedTree,
    links: "list[tuple[int, int, float]]",
    j: int,
    k: int,
) -> None:
    """Every contracted tree edge must be crossable by some candidate.

    An uncoverable edge is a cut of ``G`` with fewer than ``j <= k`` edges
    — proof that no k-ECSS exists (see module docstring), reported as the
    structured feasibility error rather than a solver failure deep inside
    the TAP machinery.
    """
    needed = set(tree.tree_edges())
    for u, v, _ in links:
        needed.difference_update(tree.path_edges(u, v))
        if not needed:
            return
    raise NotKEdgeConnectedError(
        f"a cut of the input graph has fewer than {j} edges; "
        f"no {k}-ECSS exists"
    )


def augment_round(
    n: int,
    chosen: set,
    candidates: "Iterable[tuple[int, int, float]]",
    j: int,
    k: int,
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    backend: str = "reference",
) -> dict:
    """Raise ``chosen`` (a ``(j-1)``-edge-connected edge set over nodes
    ``0..n-1``) to ``j``-edge-connectivity; mutates ``chosen`` in place.

    ``candidates`` lists every edge of ``G`` as sorted ``(u, v, w)``
    triples in a deterministic order (the graph's edge-iteration order);
    edges already in ``chosen`` are skipped.  Returns a round record
    ``{"j", "iterations", "edges", "weight"}`` with the added normalized
    edges sorted — the shape :func:`assemble_k_ecss` and the plan-level
    round memo (:meth:`repro.runtime.plan.SolverPlan.k_rounds`) share.
    """
    added: list[tuple[int, int]] = []
    weight = 0.0
    iterations = 0
    while True:
        contraction = _deficient_contraction(n, chosen, j)
        if contraction is None:
            break
        comp_of, num_classes, tree_edges = contraction
        tree = RootedTree.from_edges(num_classes, tree_edges, root=0)
        links: list[tuple[int, int, float]] = []
        origins: list[tuple[int, int]] = []
        for u, v, w in candidates:
            if (u, v) in chosen:
                continue
            cu, cv = comp_of[u], comp_of[v]
            if cu != cv:
                links.append((cu, cv, w))
                origins.append((u, v))
        _check_coverable(tree, links, j, k)
        tap = approximate_tap(
            tree, links, eps=eps, variant=variant, segmented=segmented,
            validate=validate, origins=origins, backend=backend,
        )
        iterations += 1
        new_edges = sorted(set(tap.links) - chosen)
        chosen.update(new_edges)
        added.extend(new_edges)
        weight += tap.weight
    return {
        "j": j,
        "iterations": iterations,
        "edges": sorted(added),
        "weight": weight,
    }


def degree_lower_bound(
    n: int, weighted_edges: "Iterable[tuple[int, int, float]]", k: int
) -> float:
    """``(1/2) sum_v (k cheapest incident weights at v)``: a k-ECSS bound.

    Every k-ECSS has minimum degree ``k`` and each edge is counted at its
    two endpoints, so half the sum of each vertex's ``k`` cheapest
    incident edge weights lower-bounds ``OPT(k-ECSS)``.  Vertices with
    fewer than ``k`` incident edges contribute what they have (the bound
    stays valid; such inputs are infeasible anyway).
    """
    incident: list[list[float]] = [[] for _ in range(n)]
    for u, v, w in weighted_edges:
        w = float(w)
        incident[u].append(w)
        incident[v].append(w)
    total = 0.0
    for weights in incident:
        weights.sort()
        total += sum(weights[:k])
    return total / 2.0


def assemble_k_ecss(
    g: nx.Graph | None,
    nodes: "Sequence | None",
    base: TwoEcssResult,
    base_edges: set,
    rounds: "Iterable[dict]",
    k: int,
    validate: bool = True,
    diameter: int | None = None,
    n: int | None = None,
    degree_bound: float = 0.0,
) -> KEcssResult:
    """Combine the 2-ECSS base and the augmentation rounds into a result.

    ``base_edges`` is the base subgraph as *normalized* sorted pairs (the
    MST plus the round-2 TAP links), ``rounds`` the records of
    :func:`augment_round` for ``j = 3..k`` in order.  ``g`` is only
    touched when ``validate`` is set (the final min-cut certificate), so
    plan-backed callers can pass ``None`` otherwise — mirroring
    :func:`repro.core.tecss.assemble_two_ecss`.
    """
    chosen = set(base_edges)
    round_objs: list[KEcssRound] = []
    extra_weight = 0.0
    iterations = 0
    for record in rounds:
        chosen.update(record["edges"])
        extra_weight += record["weight"]
        iterations += record["iterations"]
        round_objs.append(KEcssRound(
            j=record["j"],
            iterations=record["iterations"],
            edges=[(nodes[u], nodes[v]) for u, v in record["edges"]],
            weight=record["weight"],
        ))
    chosen_sorted = sorted(chosen)
    weight = base.weight + extra_weight

    if validate:
        sub = g.edge_subgraph(chosen_sorted).copy()
        sub.add_nodes_from(g.nodes())
        check_k_edge_connected(sub, k)

    if n is None:
        n = g.number_of_nodes()
    if diameter is None:
        diameter = nx.diameter(g) if n <= 4000 else -1

    tap_factor = COVER_BOUND[base.augmentation.variant] * 2 \
        + base.augmentation.eps
    return KEcssResult(
        k=k,
        edges=[(nodes[u], nodes[v]) for u, v in chosen_sorted],
        weight=weight,
        base=base,
        rounds=round_objs,
        diameter=diameter,
        n=n,
        guarantee=base.guarantee + iterations * tap_factor,
        degree_lower_bound=degree_bound,
    )


def approximate_k_ecss(
    graph: nx.Graph,
    k: int,
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    backend: str = "reference",
) -> "TwoEcssResult | KEcssResult":
    """Approximate minimum-weight k-edge-connected spanning subgraph.

    ``k = 2`` returns exactly what
    :func:`repro.core.tecss.approximate_two_ecss` returns (a
    :class:`~repro.core.result.TwoEcssResult`, bit-identical field by
    field); ``k >= 3`` returns a :class:`~repro.core.result.KEcssResult`
    whose rounds each lift connectivity by one (see module docstring).
    Raises :class:`~repro.exceptions.NotKEdgeConnectedError` when the
    input's edge connectivity is below ``k`` (``k = 2`` keeps the existing
    :class:`~repro.exceptions.NotTwoEdgeConnectedError`), and
    ``ValueError`` for ``k`` outside ``2..MAX_K``.

    Like the 2-ECSS one-shot, this is a thin wrapper over a fresh
    single-use :class:`repro.runtime.session.SolverSession`; repeated
    solves on one topology should hold a session and pass ``k`` to its
    ``solve``/``solve_many``, which reuses the cached plan artifacts *and*
    memoizes the augmentation rounds per ``(k, eps, variant, ...)``.
    """
    from repro.runtime.session import SolverSession

    return SolverSession(graph).solve(
        eps=eps,
        variant=variant,
        segmented=segmented,
        validate=validate,
        backend=backend,
        k=k,
    )


def assert_k_edge_connected(
    graph: nx.Graph, subgraph: "nx.Graph | Iterable", k: int
) -> None:
    """Certificate: ``subgraph`` is a spanning k-edge-connected subgraph.

    The reusable checker behind the k-ECSS test wall.  ``subgraph`` may be
    an ``nx.Graph`` or a bare edge iterable; the check verifies that

    * every edge of the subgraph is an edge of ``graph``,
    * the subgraph spans every node of ``graph``, and
    * its global min cut is at least ``k``
      (:func:`repro.graphs.validation.is_k_edge_connected`),

    raising :class:`~repro.exceptions.InvariantViolation` with the failing
    condition otherwise.  Deliberately independent of the solver: it never
    trusts solver-side bookkeeping, only the subgraph itself.
    """
    if isinstance(subgraph, nx.Graph):
        sub_edges = list(subgraph.edges())
    else:
        sub_edges = list(subgraph)
    sub = nx.Graph()
    sub.add_nodes_from(graph.nodes())
    for u, v in sub_edges:
        if not graph.has_edge(u, v):
            raise InvariantViolation(
                f"subgraph edge ({u!r}, {v!r}) is not an edge of the graph"
            )
        sub.add_edge(u, v)
    if isinstance(subgraph, nx.Graph):
        stray = set(subgraph.nodes()) - set(graph.nodes())
        if stray:
            raise InvariantViolation(
                f"subgraph has node(s) not in the graph: {sorted(map(repr, stray))}"
            )
    if not is_k_edge_connected(sub, k):
        raise InvariantViolation(
            f"subgraph is not {k}-edge-connected "
            f"(edge connectivity {_connectivity_of(sub)})"
        )


def _connectivity_of(sub: nx.Graph) -> int:
    """The measured connectivity for the certificate's error message."""
    if sub.number_of_nodes() < 2 or not nx.is_connected(sub):
        return 0
    return nx.edge_connectivity(sub)
