"""Anchor selection for the reverse-delete phase (paper Section 4.5.1).

The reverse-delete phase repeatedly needs a *maximal independent set* of
uncovered tree edges in the virtual conflict graph ``G_i`` (vertices: the
uncovered layer-``i`` edges ``H~_i``; edges: pairs covered by a common edge
of ``X``).  The distributed algorithm computes it in two parts:

* a **global part** over ``O(sqrt n)`` representatives: per segment, the
  highest and lowest layer-``i`` highway edges that are still uncovered —
  every vertex learns these representatives and their petals and simulates
  the same greedy MIS locally;
* a **local part**: each segment scans the portions of layer-``i`` paths it
  owns bottom-up, adding every still-uncovered edge as an anchor and carrying
  upward the highest ancestor already covered by petals added in the scan.

Because two same-layer tree edges can only conflict when one is an ancestor
of the other, and the higher petal of the deeper edge covers every
same-or-higher-layer neighbour above it (Claim 4.9), the conflict test
"some X-edge covers both" reduces to "the deeper edge's higher petal covers
the shallower edge" — this is what both the greedy MIS and the scans use.

Guard candidates: at epoch ``k`` a layer-``i`` highway edge can be uncovered
by the current ``Y`` and covered by ``X`` yet lie outside ``H~_i`` (it was
first covered in a forward epoch ``< k``).  Claim 4.13's independence proof
implicitly needs such edges as global-MIS candidates, so we include them (see
DESIGN.md, "Guard candidates in T'"); every stated coverage bound is
unaffected because anchors only ever live in layers ``>= k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.instance import TAPInstance
from repro.decomp.petals import PetalOracle
from repro.trees.pathops import CoverageCounter

__all__ = [
    "Anchor",
    "EpochContext",
    "build_segment_layer_highway",
    "global_mis",
    "scan_chain",
    "local_groups",
]


@dataclass(slots=True)
class Anchor:
    """One anchor chosen during the reverse-delete phase (instrumentation)."""

    t: int
    kind: str  # "global" or "local"
    epoch: int
    iteration: int  # the layer index i
    hi: int  # eid of the higher petal
    lo: int  # eid of the lower petal, or -1
    in_f: bool  # False for guard anchors (outside H~_i)


class EpochContext:
    """State shared by the iterations of one reverse-delete epoch.

    ``x_list`` fixes the epoch's edge set ``X = B + A_k`` (as instance edge
    ids); the petal oracle and the X-coverage counts are derived from it once.
    ``y_set``/``counter`` track the growing cover ``Y``.
    """

    __slots__ = (
        "inst",
        "epoch",
        "x_list",
        "x_index",
        "oracle",
        "y_set",
        "counter",
        "x_cov",
        "anchors",
        "_pairs",
    )

    def __init__(self, inst: TAPInstance, epoch: int, x_list: Sequence[int]) -> None:
        self.inst = inst
        self.epoch = epoch
        self.x_list = list(x_list)
        self._pairs: list[tuple[int, int]] | None = None
        self.oracle = self._make_oracle()
        self.y_set: set[int] = set()
        self.counter = self._make_counter()
        self.x_cov = self._make_x_coverage()
        self.anchors: list[Anchor] = []

    # -- construction hooks (overridden by the fast backend) ---------------

    def _x_pairs(self) -> list[tuple[int, int]]:
        """``X`` as (dec, anc) pairs, built lazily (the fast hooks work on
        the instance arrays and never materialize edge objects)."""
        if self._pairs is None:
            self._pairs = [self.inst.edges[eid].pair for eid in self.x_list]
        return self._pairs

    def _make_oracle(self) -> PetalOracle:
        """Petal oracle for the epoch's fixed edge set ``X`` (Claim 4.11)."""
        return PetalOracle(self.inst.ops, self.inst.layering, self._x_pairs())

    def _make_counter(self) -> CoverageCounter:
        """Incremental coverage counter tracking the growing cover ``Y``."""
        return self.inst.ops.make_coverage_counter()

    def _make_x_coverage(self) -> Any:
        """Per-tree-edge coverage counts of ``X`` (indexable by edge id)."""
        return self.inst.ops.coverage_counts(self._x_pairs())

    # -- petals (as instance eids) ----------------------------------------

    def higher_petal(self, t: int) -> int:
        """Instance eid of ``t``'s higher petal w.r.t. ``X`` (-1 if uncovered)."""
        i = self.oracle.higher(t)
        return self.x_list[i] if i != -1 else -1

    def lower_petal(self, t: int) -> int:
        """Instance eid of ``t``'s lower petal w.r.t. ``X`` (-1 if uncovered)."""
        i = self.oracle.lower(t)
        return self.x_list[i] if i != -1 else -1

    # -- Y maintenance ------------------------------------------------------

    def add_to_y(self, eid: int) -> None:
        """Add edge ``eid`` to the cover ``Y`` (idempotent; -1 is a no-op)."""
        if eid != -1 and eid not in self.y_set:
            self.y_set.add(eid)
            e = self.inst.edges[eid]
            self.counter.add_path(e.dec, e.anc)

    def remove_from_y(self, eid: int) -> None:
        """Remove edge ``eid`` from ``Y`` (the cleaning phase's operation)."""
        if eid in self.y_set:
            self.y_set.discard(eid)
            e = self.inst.edges[eid]
            self.counter.remove_path(e.dec, e.anc)

    def y_covers(self, t: int) -> bool:
        """Does the current cover ``Y`` cover tree edge ``t``?"""
        return self.counter.is_covered(t)

    # -- edge endpoint access (overridden by the fast backend) --------------

    def edge_anc(self, eid: int) -> int:
        """The anchor (top) endpoint of instance edge ``eid``."""
        return self.inst.edges[eid].anc

    def edge_path(self, eid: int) -> tuple[int, int]:
        """Instance edge ``eid`` as its ``(dec, anc)`` vertical path."""
        e = self.inst.edges[eid]
        return e.dec, e.anc

    def x_covers(self, t: int) -> bool:
        """Does the epoch's edge set ``X`` cover tree edge ``t``?"""
        return self.x_cov[t] > 0

    def conflicts(self, t1: int, t2: int) -> bool:
        """Is there an edge of ``X`` covering both ``t1`` and ``t2``?

        Exact for same-layer pairs (via Claim 4.9); both must be X-covered.
        """
        tree = self.inst.tree
        if t1 == t2:
            return True
        if tree.is_ancestor(t2, t1):
            deeper, higher = t1, t2
        elif tree.is_ancestor(t1, t2):
            deeper, higher = t2, t1
        else:
            return False
        hi = self.higher_petal(deeper)
        if hi == -1:
            return False
        dec, anc = self.edge_path(hi)
        return tree.covers_vertical(dec, anc, higher)


def build_segment_layer_highway(inst: TAPInstance) -> dict[tuple[int, int], list[int]]:
    """``(segment id, layer) -> highway edges of that layer, by depth asc``.

    A highway meets at most one layer-``i`` path (Claim 4.8 plus the highway
    being a vertical chain), so each list is one contiguous chain portion.
    """
    seg = inst.segments
    lay = inst.layering
    depth = inst.tree.depth
    table: dict[tuple[int, int], list[int]] = {}
    for t in inst.tree.tree_edges():
        if seg.on_highway[t]:
            table.setdefault((seg.seg_of_edge[t], lay.layer[t]), []).append(t)
    for lst in table.values():
        lst.sort(key=lambda t: depth[t])
    return table


def global_candidates(
    ctx: EpochContext,
    i: int,
    seg_layer_highway: dict[tuple[int, int], list[int]],
) -> list[int]:
    """The set ``T'``: per segment, the highest and lowest layer-``i`` highway
    edges that are uncovered by ``Y`` and covered by ``X`` (guards included).
    """
    out: set[int] = set()
    seg_ids = {key[0] for key in seg_layer_highway if key[1] == i}
    for sid in sorted(seg_ids):
        eligible = [
            t
            for t in seg_layer_highway[(sid, i)]
            if ctx.x_covers(t) and not ctx.y_covers(t)
        ]
        if eligible:
            out.add(eligible[0])  # highest (min depth)
            out.add(eligible[-1])  # lowest (max depth)
    return sorted(out)


def global_mis(ctx: EpochContext, candidates: Sequence[int]) -> list[int]:
    """Deterministic greedy MIS over the candidate edges ``T'``.

    All vertices of the distributed algorithm learn the same ``O(sqrt n)``
    candidates with their petals and simulate exactly this computation.

    The order is **deepest first**.  This matters for the improved variant:
    a rejected candidate conflicts with an already-chosen *deeper* anchor,
    whose *higher* petal then provably covers it (Claim 4.9) — exactly the
    property the proofs of Claims 4.13/4.15 use ("there is a global anchor
    whose higher petal covers t`").  With a shallowest-first order, rejected
    candidates can stay uncovered after the global part and spawn dependent
    local anchors in different segments, breaking the c=2/c=4 bounds.
    """
    depth = ctx.inst.tree.depth
    chosen: list[int] = []
    for t in sorted(candidates, key=lambda t: (-depth[t], t)):
        if not any(ctx.conflicts(t, g) for g in chosen):
            chosen.append(t)
    return chosen


def local_groups(
    ctx: EpochContext, candidates: Sequence[int], segmented: bool
) -> list[list[int]]:
    """Partition local-scan candidates into bottom-up chains.

    ``segmented=True`` groups by (segment, layer path) — the faithful
    distributed grouping, where segments scan in parallel and do not see
    each other's additions; ``False`` groups by layer path only (the
    idealized sequential scan used by the ``simple`` mode).
    """
    inst = ctx.inst
    depth = inst.tree.depth
    pid = inst.layering.path_id
    groups: dict[tuple, list[int]] = {}
    if segmented:
        seg_of = inst.segments.seg_of_edge
        for t in candidates:
            groups.setdefault((seg_of[t], pid[t]), []).append(t)
    else:
        for t in candidates:
            groups.setdefault((pid[t],), []).append(t)
    out = []
    for key in sorted(groups):
        # bottom-up; reverse=True keeps sorted() stable, same as -depth
        chain = sorted(groups[key], key=depth.__getitem__, reverse=True)
        out.append(chain)
    return out


def scan_chain(
    ctx: EpochContext,
    chain: Sequence[int],
    iteration: int,
    add_lower: bool,
) -> tuple[list[Anchor], list[int]]:
    """Scan one chain bottom-up; return new anchors and pending petal eids.

    Coverage is checked against the *snapshot* ``Y`` (via the live counter,
    which the caller must not update during parallel scans) plus the petals
    added below in this same scan, summarized — as in the paper — by the
    highest ancestor reached by an added higher petal.  Lower petals never
    reach higher than the higher petal, so only the latter is carried.
    """
    from repro.exceptions import InvariantViolation

    depth = ctx.inst.tree.depth
    y_covers = ctx.y_covers
    higher_petal = ctx.higher_petal
    anchors: list[Anchor] = []
    pending: list[int] = []
    carried_depth = float("inf")  # depth of the highest ancestor covered from below
    for t in chain:
        if y_covers(t) or carried_depth < depth[t]:
            continue
        hi = higher_petal(t)
        if hi == -1:  # pragma: no cover - H~_i edges are always X-covered
            raise InvariantViolation(f"local candidate {t} not covered by X")
        lo = ctx.lower_petal(t) if add_lower else -1
        anchors.append(
            Anchor(t=t, kind="local", epoch=ctx.epoch, iteration=iteration,
                   hi=hi, lo=lo, in_f=True)
        )
        pending.append(hi)
        carried_depth = min(carried_depth, depth[ctx.edge_anc(hi)])
        if add_lower and lo != -1 and lo != hi:
            pending.append(lo)
    return anchors, pending
