"""Weighted 2-ECSS via MST + tree augmentation (Theorem 1.1, Claim 2.1).

``approximate_two_ecss`` computes a minimum spanning tree, roots it, runs the
TAP approximation on the non-tree edges, and returns ``MST + augmentation``.
Since ``w(MST) <= OPT`` and ``OPT`` restricted to non-tree edges is a valid
augmentation, an ``alpha``-approximate TAP gives an ``(alpha+1)``-approximate
2-ECSS.  The ratio therefore depends on the reverse-delete ``variant``:

* ``variant="improved"`` — the c=2 cover bound of Section 4.6 gives a
  ``(2+eps)``-approximate cover on the virtual graph, ``4+eps`` for TAP on
  ``G`` after mapping back (Theorem 4.19), hence **``5 + eps`` for 2-ECSS**
  — the headline guarantee of Theorem 1.1;
* ``variant="basic"`` — the c=4 bound of Section 3.5 gives ``4+eps`` on the
  virtual graph, ``8+eps`` for TAP on ``G``, hence **``9 + eps`` for
  2-ECSS** (the Section 3 warm-up algorithm, kept for the E4 ablation).

``TwoEcssResult.guarantee`` records the variant-matched factor
(``2c + 1 + eps``); do not quote ``5 + eps`` for basic-variant runs.

The returned :class:`~repro.core.result.TwoEcssResult` carries a *certified*
lower bound (``max(w(MST), dual/2)``) so every run reports a checked ratio.
"""

from __future__ import annotations

import networkx as nx

from typing import Any, Sequence

from repro.core.result import TapResult, TwoEcssResult
from repro.core.reverse import COVER_BOUND
from repro.graphs.validation import check_two_edge_connected
from repro.trees.rooted import RootedTree

__all__ = [
    "approximate_two_ecss",
    "assemble_two_ecss",
    "nontree_links",
    "rooted_mst",
]


def rooted_mst(graph: nx.Graph) -> tuple[RootedTree, list[tuple]]:
    """Deterministic MST of a 0..n-1 graph, rooted at 0, plus its edge list."""
    mst = nx.minimum_spanning_tree(graph, weight="weight")
    edges = sorted(tuple(sorted(e)) for e in mst.edges())
    tree = RootedTree.from_edges(graph.number_of_nodes(), edges, root=0)
    return tree, edges


def nontree_links(
    graph: nx.Graph, mst_set: set[tuple[int, int]]
) -> list[tuple[int, int, float]]:
    """The candidate links: every non-MST edge as ``(u, v, weight)``."""
    links = []
    for u, v, data in graph.edges(data=True):
        key = tuple(sorted((u, v)))
        if key not in mst_set:
            links.append((key[0], key[1], float(data["weight"])))
    return links


def assemble_two_ecss(
    g: nx.Graph | None,
    nodes: "Sequence | None",
    mst_edges: list[tuple],
    tap: "TapResult",
    validate: bool = True,
    mst_simulation: Any = None,
    diameter: int | None = None,
    mst_weight: float | None = None,
    n: int | None = None,
    mst_edges_out: list | None = None,
) -> TwoEcssResult:
    """Combine MST + TAP augmentation into a validated :class:`TwoEcssResult`.

    Shared by :func:`approximate_two_ecss`, the session runtime
    (:class:`repro.runtime.session.SolverSession`) and the distributed
    pipeline (:func:`repro.dist.pipeline.distributed_two_ecss`): ``g`` is
    the normalized 0..n-1 graph, ``nodes`` the label mapping from
    :func:`~repro.graphs.validation.normalize_graph`, and ``tap`` the
    :class:`~repro.core.result.TapResult` of the augmentation.

    ``diameter`` lets a caller with a cached topology diameter (the
    session's :class:`~repro.runtime.handle.GraphHandle`) skip the
    recomputation; ``None`` keeps the original rule (``nx.diameter`` for
    ``n <= 4000``, else ``-1``).  ``mst_weight`` and ``n`` likewise let a
    plan-backed caller supply cached values; when all three are given and
    ``validate`` is off, ``g`` is never touched and may be ``None`` (the
    delta re-solve path skips materializing the nx.Graph entirely).  A
    supplied ``mst_weight`` must equal the in-order sum over
    ``mst_edges`` — the session computes it from the same weight objects
    in the same order, keeping results bit-identical.  ``mst_edges_out``
    optionally supplies the label-mapped MST edge list
    (``[(nodes[u], nodes[v]) for u, v in mst_edges]``) so a caller
    assembling many scenarios over one tree maps it once; the results of
    such a batch share the list, read-only by convention.
    """
    mst_set = set(mst_edges)
    if mst_weight is None:
        mst_weight = sum(g[u][v]["weight"] for u, v in mst_edges)
    if n is None:
        n = g.number_of_nodes()
    aug_edges = [tuple(sorted(link)) for link in tap.links]
    chosen = sorted(mst_set.union(aug_edges))
    weight = mst_weight + tap.weight

    if validate:
        sub = g.edge_subgraph(chosen).copy()
        sub.add_nodes_from(g.nodes())
        check_two_edge_connected(sub)

    # Map back to the caller's node labels.
    edges_out = [(nodes[u], nodes[v]) for u, v in chosen]
    mst_out = (
        [(nodes[u], nodes[v]) for u, v in mst_edges]
        if mst_edges_out is None
        else mst_edges_out
    )

    if diameter is None:
        diameter = nx.diameter(g) if n <= 4000 else -1

    return TwoEcssResult(
        edges=edges_out,
        weight=weight,
        mst_edges=mst_out,
        mst_weight=mst_weight,
        augmentation=tap,
        diameter=diameter,
        n=n,
        guarantee=COVER_BOUND[tap.variant] * 2 + 1 + tap.eps,
        mst_simulation=mst_simulation,
    )


def approximate_two_ecss(
    graph: nx.Graph,
    eps: float = 0.25,
    variant: str = "improved",
    segmented: bool = True,
    validate: bool = True,
    simulate_mst: bool = False,
    backend: str = "reference",
) -> TwoEcssResult:
    """Approximate minimum-weight 2-ECSS of a weighted graph.

    The guarantee is ``5 + eps`` with ``variant="improved"`` (Theorem 1.1)
    and ``9 + eps`` with ``variant="basic"`` (Section 3; see the module
    docstring for the derivation).  ``backend="fast"`` runs the TAP phases
    on the vectorized kernels of :mod:`repro.fast` with bit-identical
    results; ``"reference"`` (default) keeps the per-edge Python loops.

    The graph may have arbitrary hashable node labels; edges need ``weight``
    attributes.  Raises :class:`~repro.exceptions.NotTwoEdgeConnectedError`
    when no 2-ECSS exists.

    With ``simulate_mst=True`` the MST step runs as a genuine message-level
    Borůvka on the CONGEST simulator (fidelity Level S) instead of the
    centralized solver; the result is provably the same tree (unique MST
    under the lexicographic tie-break), and the measured simulation stats
    land in ``result.mst_simulation``.

    This function is a thin wrapper over a fresh single-use
    :class:`repro.runtime.session.SolverSession`; repeated solves on one
    topology (weight reassignments, eps/variant sweeps, failure
    scenarios) should hold a session and use its ``solve``/``solve_many``
    to reuse the cached :class:`~repro.runtime.plan.SolverPlan` — outputs
    are bit-identical either way.
    """
    from repro.runtime.session import SolverSession

    return SolverSession(graph).solve(
        eps=eps,
        variant=variant,
        segmented=segmented,
        validate=validate,
        backend=backend,
        simulate_mst=simulate_mst,
    )
