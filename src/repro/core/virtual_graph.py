"""The virtual graph ``G'`` of Khuller–Thurimella (paper Section 4.1).

Every non-tree edge ``{u, v}`` of ``G`` is replaced by one or two *virtual*
edges running between ancestors and descendants: if ``w = LCA(u, v)`` equals
one endpoint the edge is already vertical and is kept; otherwise it becomes
``{u, w}`` and ``{v, w}``, each carrying the original weight.  The virtual
edges cover exactly the same tree edges as the original (Lemma 4.1), and an
``alpha``-approximate augmentation in ``G'`` maps back to a
``2 alpha``-approximate augmentation in ``G`` by replacing every chosen
virtual edge with its original edge.

In the distributed algorithm each virtual edge is *simulated by its
descendant endpoint* using LCA labels; centrally we just record the pair.
"""

from __future__ import annotations

from collections.abc import Sequence as AbcSequence
from typing import Any, Hashable, Iterable, NamedTuple, Sequence

from repro.trees.rooted import RootedTree

__all__ = ["VirtualEdge", "VirtualEdgeColumns", "build_virtual_edges", "map_back"]


class VirtualEdge(NamedTuple):
    """A vertical non-tree edge of the virtual graph ``G'``.

    ``origin`` identifies the non-tree link of ``G`` this edge derives from
    (an arbitrary hashable, typically the original ``(u, v)`` pair); mapping a
    solution back to ``G`` simply collects origins.

    A ``NamedTuple`` rather than a dataclass: instances are created in bulk
    (two per non-tree link of ``G``), and tuple construction is several
    times cheaper than frozen-dataclass ``__init__`` — measurable on the
    50k-node sweeps.
    """

    eid: int
    dec: int
    anc: int
    weight: float
    origin: Hashable

    @property
    def pair(self) -> tuple[int, int]:
        """The vertical path ``(dec, anc)`` this edge covers."""
        return (self.dec, self.anc)


class VirtualEdgeColumns(AbcSequence):
    """A column-oriented, lazily materializing sequence of virtual edges.

    The fast backend builds ``G'`` as four flat arrays (``dec``, ``anc``,
    ``weight``, and the index of the originating link) instead of tens of
    thousands of :class:`VirtualEdge` objects; the kernels consume the
    arrays directly, while sequence indexing materializes (and caches)
    individual :class:`VirtualEdge` objects — identical, field for field,
    to what the reference constructor would have produced — for the sparse
    object-level accesses of the reverse-delete control flow and the result
    mapping.
    """

    __slots__ = ("dec", "anc", "weight", "link_of", "_links", "_origins", "_cache")

    def __init__(
        self,
        dec: Any,
        anc: Any,
        weight: Any,
        link_of: Any,
        links: "list[tuple[int, int, float]]",
        origins: "Sequence[Hashable] | None",
    ) -> None:
        self.dec = dec
        self.anc = anc
        self.weight = weight
        self.link_of = link_of
        self._links = links
        self._origins = origins
        self._cache: list[VirtualEdge | None] = [None] * len(dec)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, i: "int | slice") -> "VirtualEdge | list[VirtualEdge]":
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError("virtual edge index out of range")
        e = self._cache[i]
        if e is None:
            li = int(self.link_of[i])
            if self._origins is not None:
                origin = self._origins[li]
            else:
                u, v, _ = self._links[li]
                origin = (u, v)
            e = VirtualEdge(
                i, int(self.dec[i]), int(self.anc[i]), float(self.weight[i]), origin
            )
            self._cache[i] = e
        return e

    def origin_weight_pairs(
        self, eids: "Sequence[int]"
    ) -> "list[tuple[Hashable, float]]":
        """``(origin, weight)`` per edge id, straight off the columns.

        One fancy-index gather instead of materializing a
        :class:`VirtualEdge` per id — the result-assembly hot path.  The
        weights come back through ``tolist()``, i.e. the same ``float()``
        casts :meth:`__getitem__` performs, value for value.
        """
        ids = list(eids)
        if not ids:
            return []
        lis = self.link_of[ids].tolist()
        ws = self.weight[ids].tolist()
        if self._origins is not None:
            origins = self._origins
            return [(origins[li], w) for li, w in zip(lis, ws)]
        links = self._links
        return [(links[li][:2], w) for li, w in zip(lis, ws)]


def build_virtual_edges(
    tree: RootedTree,
    links: Iterable[tuple[int, int, float]],
    origins: Sequence[Hashable] | None = None,
    backend: str = "reference",
    tree_arrays: Any = None,
) -> Sequence[VirtualEdge]:
    """Split each link at its LCA into one or two vertical virtual edges.

    ``links`` yields ``(u, v, weight)`` with vertices of ``tree``; ``origins``
    optionally overrides the recorded origin of link ``i`` (defaults to
    ``(u, v)``).  Links that are tree edges (LCA equals one endpoint *and*
    the other endpoint is its child) still produce a valid — if useless —
    virtual edge covering that single tree edge, which is harmless.

    ``backend="fast"`` computes all LCAs in one vectorized binary-lifting
    batch (:func:`repro.fast.kernels.batch_lca`) and returns a
    column-oriented :class:`VirtualEdgeColumns`; LCA is pure integer
    arithmetic and the split rule is evaluated identically, so the
    resulting sequence materializes the same edges, element for element,
    as the reference loop.
    """
    links = list(links)
    if backend == "fast" and links:
        return _build_virtual_edge_columns(tree, links, origins, tree_arrays)
    out: list[VirtualEdge] = []
    for i, (u, v, weight) in enumerate(links):
        origin = origins[i] if origins is not None else (u, v)
        w = tree.lca(u, v)
        if w == u or w == v:
            dec = v if w == u else u
            if dec != w:
                out.append(VirtualEdge(len(out), dec, w, weight, origin))
        else:
            out.append(VirtualEdge(len(out), u, w, weight, origin))
            out.append(VirtualEdge(len(out), v, w, weight, origin))
    return out


def _build_virtual_edge_columns(
    tree: RootedTree,
    links: list[tuple[int, int, float]],
    origins: Sequence[Hashable] | None,
    tree_arrays: Any = None,
) -> VirtualEdgeColumns:
    """Vectorized virtual-edge construction (the fast-backend branch).

    Replays the reference split rule on whole arrays: a link whose LCA is
    one of its endpoints stays a single vertical edge (dropped when
    degenerate, i.e. a self-loop), any other link becomes the two edges
    ``(u, lca)`` and ``(v, lca)``, in link order.
    """
    from repro.fast import require_numpy
    from repro.fast.treearrays import TreeArrays

    np = require_numpy()
    ta = tree_arrays if tree_arrays is not None else TreeArrays(tree)
    us = np.asarray([u for u, _, _ in links], dtype=np.int64)
    vs = np.asarray([v for _, v, _ in links], dtype=np.int64)
    ws = np.asarray([w for _, _, w in links], dtype=np.float64)
    lca = ta.batch_lca(us, vs)

    is_u = lca == us
    vertical = is_u | (lca == vs)
    dec_vert = np.where(is_u, vs, us)
    keep_vert = vertical & (dec_vert != lca)
    split = ~vertical
    count = keep_vert.astype(np.int64) + 2 * split.astype(np.int64)
    off = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(count)))[:-1]
    total = int(count.sum())

    dec = np.empty(total, dtype=np.int64)
    anc = np.empty(total, dtype=np.int64)
    link_of = np.empty(total, dtype=np.int64)
    iv = np.flatnonzero(keep_vert)
    dec[off[iv]] = dec_vert[iv]
    anc[off[iv]] = lca[iv]
    link_of[off[iv]] = iv
    isp = np.flatnonzero(split)
    dec[off[isp]] = us[isp]
    anc[off[isp]] = lca[isp]
    link_of[off[isp]] = isp
    dec[off[isp] + 1] = vs[isp]
    anc[off[isp] + 1] = lca[isp]
    link_of[off[isp] + 1] = isp

    return VirtualEdgeColumns(dec, anc, ws[link_of], link_of, links, origins)


def map_back(edges: Sequence[VirtualEdge], chosen: Iterable[int]) -> list[Hashable]:
    """Map chosen virtual-edge ids back to (deduplicated) original links."""
    seen = set()
    out = []
    for eid in chosen:
        origin = edges[eid].origin
        if origin not in seen:
            seen.add(origin)
            out.append(origin)
    return out
