"""The virtual graph ``G'`` of Khuller–Thurimella (paper Section 4.1).

Every non-tree edge ``{u, v}`` of ``G`` is replaced by one or two *virtual*
edges running between ancestors and descendants: if ``w = LCA(u, v)`` equals
one endpoint the edge is already vertical and is kept; otherwise it becomes
``{u, w}`` and ``{v, w}``, each carrying the original weight.  The virtual
edges cover exactly the same tree edges as the original (Lemma 4.1), and an
``alpha``-approximate augmentation in ``G'`` maps back to a
``2 alpha``-approximate augmentation in ``G`` by replacing every chosen
virtual edge with its original edge.

In the distributed algorithm each virtual edge is *simulated by its
descendant endpoint* using LCA labels; centrally we just record the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.trees.rooted import RootedTree

__all__ = ["VirtualEdge", "build_virtual_edges", "map_back"]


@dataclass(frozen=True)
class VirtualEdge:
    """A vertical non-tree edge of the virtual graph ``G'``.

    ``origin`` identifies the non-tree link of ``G`` this edge derives from
    (an arbitrary hashable, typically the original ``(u, v)`` pair); mapping a
    solution back to ``G`` simply collects origins.
    """

    eid: int
    dec: int
    anc: int
    weight: float
    origin: Hashable

    @property
    def pair(self) -> tuple[int, int]:
        return (self.dec, self.anc)


def build_virtual_edges(
    tree: RootedTree,
    links: Iterable[tuple[int, int, float]],
    origins: Sequence[Hashable] | None = None,
) -> list[VirtualEdge]:
    """Split each link at its LCA into one or two vertical virtual edges.

    ``links`` yields ``(u, v, weight)`` with vertices of ``tree``; ``origins``
    optionally overrides the recorded origin of link ``i`` (defaults to
    ``(u, v)``).  Links that are tree edges (LCA equals one endpoint *and*
    the other endpoint is its child) still produce a valid — if useless —
    virtual edge covering that single tree edge, which is harmless.
    """
    out: list[VirtualEdge] = []
    for i, (u, v, weight) in enumerate(links):
        origin = origins[i] if origins is not None else (u, v)
        w = tree.lca(u, v)
        if w == u or w == v:
            dec = v if w == u else u
            if dec != w:
                out.append(VirtualEdge(len(out), dec, w, weight, origin))
        else:
            out.append(VirtualEdge(len(out), u, w, weight, origin))
            out.append(VirtualEdge(len(out), v, w, weight, origin))
    return out


def map_back(edges: Sequence[VirtualEdge], chosen: Iterable[int]) -> list[Hashable]:
    """Map chosen virtual-edge ids back to (deduplicated) original links."""
    seen = set()
    out = []
    for eid in chosen:
        origin = edges[eid].origin
        if origin not in seen:
            seen.add(origin)
            out.append(origin)
    return out
