"""The primal-dual forward phase (paper Sections 3.4 and 4.4).

Layers are processed in ascending order; epoch ``k`` raises the dual
variables ``y(t)`` of the still-uncovered layer-``k`` tree edges ``R_k``
until every one of them is covered by a tight non-tree edge:

* in the first iteration each ``t in R_k`` starts at
  ``y(t) = min over covering e of (w(e) - s(e)) / |S_e^k|`` where
  ``s(e) = sum of y over S_e`` and ``S_e^k`` are the uncovered layer-``k``
  edges covered by ``e`` — the largest uniform start that keeps every dual
  constraint feasible;
* each later iteration multiplies the ``y`` of still-uncovered edges by
  ``(1 + eps)``;
* an edge whose constraint becomes tight joins the augmentation ``A``.

Lemma 4.12's accounting, which the implementation records and the tests
check: at most ``O(log(n)/eps)`` iterations per epoch, every dual constraint
ends at most ``(1 + eps)``-violated, and every ``e in A`` is tight.

Every iteration of the distributed algorithm costs a constant number of
aggregates plus a broadcast (``O(D + sqrt n)`` rounds); the corresponding
primitives are recorded in the :class:`~repro.core.rounds.PrimitiveLog`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.instance import TAPInstance
from repro.core.rounds import PrimitiveLog
from repro.exceptions import InvariantViolation

__all__ = ["ForwardResult", "forward_phase"]

_REL_TOL = 1e-9


@dataclass
class ForwardResult:
    """Everything the reverse-delete phase and the certificates need."""

    y: list[float]
    added: list[int]  # eids in the order they became tight
    epoch_added: dict[int, int]  # eid -> epoch
    first_cover_epoch: list[int]  # per tree edge; 0 for the root slot
    r_sets: dict[int, list[int]]  # epoch -> R_k
    iterations_per_epoch: dict[int, int] = field(default_factory=dict)
    log: PrimitiveLog = field(default_factory=PrimitiveLog)

    @property
    def max_iterations(self) -> int:
        """Worst per-epoch iteration count (checked against Lemma 4.12)."""
        return max(self.iterations_per_epoch.values(), default=0)


def forward_phase(
    inst: TAPInstance,
    eps: float = 0.25,
    max_iter_slack: int = 8,
    backend: str = "reference",
) -> ForwardResult:
    """Run the forward phase; returns duals, the (over-)cover ``A`` and stats.

    ``max_iter_slack`` pads the proof's per-epoch iteration bound
    ``log_{1+eps}(n) + 2``; exceeding the padded bound raises
    :class:`InvariantViolation` (it would indicate an implementation bug).

    ``backend="fast"`` dispatches to the vectorized kernels
    (:func:`repro.fast.forward.forward_phase_fast`, requires numpy), whose
    output is bit-identical to this reference loop — the differential suite
    in ``tests/test_backend_differential.py`` holds the two to equality.
    """
    from repro.fast import resolve_backend

    if resolve_backend(backend) == "fast":
        from repro.fast.forward import forward_phase_fast

        return forward_phase_fast(inst, eps=eps, max_iter_slack=max_iter_slack)
    if eps <= 0:
        raise ValueError("eps must be positive")
    inst.check_feasible()

    tree = inst.tree
    ops = inst.ops
    edges = inst.edges
    layering = inst.layering
    n = tree.n

    y = [0.0] * n
    covered = [False] * n
    covered[tree.root] = True
    first_cover_epoch = [0] * n
    added: list[int] = []
    in_a = [False] * len(edges)
    epoch_added: dict[int, int] = {}
    r_sets: dict[int, list[int]] = {}
    iterations_per_epoch: dict[int, int] = {}
    log = PrimitiveLog()
    cover_counter = ops.make_coverage_counter()

    # Zero-weight links can never pay a positive dual; add them up front
    # (they only ever help the solution and cost nothing).
    for e in edges:
        if e.weight <= 0.0:
            in_a[e.eid] = True
            added.append(e.eid)
            epoch_added[e.eid] = 0
            cover_counter.add_path(e.dec, e.anc)
    if added:
        for t in tree.tree_edges():
            if cover_counter.is_covered(t):
                covered[t] = True
                # first_cover_epoch stays 0: covered before epoch 1

    iter_bound = math.ceil(math.log(max(2, n)) / math.log1p(eps)) + max_iter_slack

    def add_tight_edges(epoch: int, cum: list[float]) -> list[int]:
        """Collect edges whose dual constraint is (numerically) tight."""
        new = []
        for e in edges:
            if in_a[e.eid]:
                continue
            s_e = cum[e.dec] - cum[e.anc]
            if s_e >= e.weight * (1.0 - _REL_TOL):
                in_a[e.eid] = True
                epoch_added[e.eid] = epoch
                added.append(e.eid)
                new.append(e.eid)
        return new

    for k in range(1, layering.num_layers + 1):
        r_k = [t for t in layering.edges_in_layer(k) if not covered[t]]
        r_sets[k] = list(r_k)
        if not r_k:
            iterations_per_epoch[k] = 0
            continue

        remaining = set(r_k)
        iteration = 0
        while remaining:
            iteration += 1
            if iteration > iter_bound:
                raise InvariantViolation(
                    f"epoch {k} exceeded the Lemma 4.12 iteration bound "
                    f"({iter_bound}); eps={eps}"
                )
            cum = ops.ancestor_sums(y)
            log.record("aggregate")  # every non-tree edge computes s(e)
            if iteration == 1:
                # |S_e^k|: how many uncovered layer-k edges each link covers.
                z = [0.0] * n
                for t in remaining:  # lint: disable=det-set-iter -- element-wise writes to distinct indices; order-insensitive
                    z[t] = 1.0
                cum_z = ops.ancestor_sums(z)
                log.record("aggregate")
                # Every uncovered t learns min (w(e)-s(e))/|S_e^k| over
                # covering edges e — an aggregate of the covering links.
                updates = []
                for e in edges:
                    if in_a[e.eid]:
                        continue
                    cnt = round(cum_z[e.dec] - cum_z[e.anc])
                    if cnt <= 0:
                        continue
                    s_e = cum[e.dec] - cum[e.anc]
                    updates.append((e.dec, e.anc, ((e.weight - s_e) / cnt, e.eid)))
                start_vals = ops.chmin_over_paths(updates)
                log.record("aggregate")
                for t in remaining:  # lint: disable=det-set-iter -- per-index reads/writes, no cross-index dependence
                    val = start_vals.get(t)
                    if val == start_vals.identity:  # pragma: no cover
                        raise InvariantViolation(
                            f"uncovered edge {t} has no non-tight covering link"
                        )
                    y[t] = max(val[0], 0.0)
                cum = ops.ancestor_sums(y)
                log.record("aggregate")
            else:
                for t in remaining:  # lint: disable=det-set-iter -- independent scalar updates per index; order-insensitive
                    y[t] *= 1.0 + eps
                cum = ops.ancestor_sums(y)
                log.record("aggregate")

            new_edges = add_tight_edges(k, cum)
            for eid in new_edges:
                e = edges[eid]
                cover_counter.add_path(e.dec, e.anc)
            if new_edges:
                log.record("aggregate")  # tree edges learn whether A covers them
                for t in tree.tree_edges():
                    if not covered[t] and cover_counter.is_covered(t):
                        covered[t] = True
                        first_cover_epoch[t] = k
                        remaining.discard(t)
            log.record("broadcast")  # "is layer k fully covered?" over BFS tree

        iterations_per_epoch[k] = iteration

    return ForwardResult(
        y=y,
        added=added,
        epoch_added=epoch_added,
        first_cover_epoch=first_cover_epoch,
        r_sets=r_sets,
        iterations_per_epoch=iterations_per_epoch,
        log=log,
    )
