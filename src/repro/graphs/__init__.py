"""Weighted-graph inputs: generators, validation, and benchmark families."""

from repro.graphs.validation import (
    check_two_edge_connected,
    ensure_weights,
    find_bridges,
    is_two_edge_connected,
)
from repro.graphs.generators import (
    assign_weights,
    broom_graph,
    caterpillar_cycle,
    cycle_with_chords,
    erdos_renyi_2ec,
    grid_graph,
    hub_and_cycle,
    hypercube_graph,
    ktree_graph,
    lollipop_2ec,
    random_geometric_2ec,
    theta_graph,
    torus_graph,
    wheel_graph,
)
from repro.graphs.families import FAMILIES, make_family_instance

__all__ = [
    "check_two_edge_connected",
    "ensure_weights",
    "find_bridges",
    "is_two_edge_connected",
    "assign_weights",
    "hub_and_cycle",
    "broom_graph",
    "caterpillar_cycle",
    "cycle_with_chords",
    "erdos_renyi_2ec",
    "grid_graph",
    "hypercube_graph",
    "ktree_graph",
    "lollipop_2ec",
    "random_geometric_2ec",
    "theta_graph",
    "torus_graph",
    "wheel_graph",
    "FAMILIES",
    "make_family_instance",
]
