"""Input validation: connectivity, 2-edge-connectivity, weights.

2-edge-connectivity is the feasibility condition for both TAP and 2-ECSS
(paper, Section 2): a graph admits a 2-edge-connected spanning subgraph iff it
is itself 2-edge-connected, i.e. connected and bridgeless.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import (
    GraphFormatError,
    NotConnectedError,
    NotKEdgeConnectedError,
    NotTwoEdgeConnectedError,
)

__all__ = [
    "ensure_weights",
    "find_bridges",
    "is_two_edge_connected",
    "check_two_edge_connected",
    "is_k_edge_connected",
    "check_k_edge_connected",
    "normalize_graph",
]


def ensure_weights(graph: nx.Graph, default: float | None = None) -> nx.Graph:
    """Validate edge weights; optionally fill missing ones with ``default``.

    Raises :class:`GraphFormatError` on self-loops, missing weights (when no
    default is given) and non-positive weights.
    """
    for u, v, data in graph.edges(data=True):
        if u == v:
            raise GraphFormatError(f"self-loop at {u!r}")
        w = data.get("weight")
        if w is None:
            if default is None:
                raise GraphFormatError(f"edge ({u!r}, {v!r}) has no 'weight'")
            data["weight"] = default
            w = default
        if not (w >= 0):
            raise GraphFormatError(f"edge ({u!r}, {v!r}) has invalid weight {w!r}")
    return graph


def find_bridges(graph: nx.Graph) -> list[tuple]:
    """All bridges of the graph (edges whose removal disconnects it)."""
    return list(nx.bridges(graph))


def is_two_edge_connected(graph: nx.Graph) -> bool:
    """Connected, has at least 2 vertices, and bridgeless."""
    if graph.number_of_nodes() < 2:
        return False
    if not nx.is_connected(graph):
        return False
    return next(nx.bridges(graph), None) is None


def check_two_edge_connected(graph: nx.Graph) -> None:
    """Raise a descriptive error if the graph is not 2-edge-connected."""
    if graph.number_of_nodes() < 2:
        raise GraphFormatError("graph needs at least 2 vertices")
    if not nx.is_connected(graph):
        raise NotConnectedError("input graph is not connected")
    bridge = next(nx.bridges(graph), None)
    if bridge is not None:
        raise NotTwoEdgeConnectedError(
            f"input graph has a bridge {bridge!r}; no 2-ECSS exists"
        )


def is_k_edge_connected(graph: nx.Graph, k: int) -> bool:
    """Whether the graph's global edge connectivity is at least ``k``.

    ``k = 1`` is plain connectivity and ``k = 2`` delegates to the
    bridge-based :func:`is_two_edge_connected`; higher ``k`` runs the
    flow-based :func:`networkx.edge_connectivity` (weights are ignored —
    connectivity counts edges).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.number_of_nodes() < 2:
        return False
    if k == 1:
        return nx.is_connected(graph)
    if k == 2:
        return is_two_edge_connected(graph)
    if min((d for _, d in graph.degree()), default=0) < k:
        return False
    if not nx.is_connected(graph):
        return False
    return nx.edge_connectivity(graph) >= k


def check_k_edge_connected(graph: nx.Graph, k: int) -> None:
    """Raise a descriptive error if edge connectivity is below ``k``.

    ``k = 2`` raises exactly what :func:`check_two_edge_connected` raises
    (the feasibility errors existing callers dispatch on); ``k >= 3``
    raises :class:`~repro.exceptions.NotKEdgeConnectedError` carrying the
    measured connectivity.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == 2:
        check_two_edge_connected(graph)
        return
    if graph.number_of_nodes() < 2:
        raise GraphFormatError("graph needs at least 2 vertices")
    if not nx.is_connected(graph):
        raise NotConnectedError("input graph is not connected")
    if k == 1:
        return
    connectivity = nx.edge_connectivity(graph)
    if connectivity < k:
        raise NotKEdgeConnectedError(
            f"graph has edge connectivity {connectivity} < {k}; "
            f"no {k}-ECSS exists"
        )


def normalize_graph(graph: nx.Graph) -> tuple[nx.Graph, list, dict]:
    """Relabel nodes to ``0..n-1`` ints; return (graph, index->node, node->index)."""
    nodes = list(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    out = nx.Graph()
    out.add_nodes_from(range(len(nodes)))
    for u, v, data in graph.edges(data=True):
        out.add_edge(index[u], index[v], **data)
    return out, nodes, index
