"""Generators for weighted 2-edge-connected test networks.

Every generator returns a simple undirected :class:`networkx.Graph` with a
``weight`` attribute on every edge, guaranteed 2-edge-connected, with nodes
``0..n-1``.  All randomness is driven by an explicit ``seed``.

The families span the regimes the paper discusses:

* general worst-case graphs (``erdos_renyi_2ec``, ``cycle_with_chords``),
* planar / bounded-genus networks (``grid_graph``, ``random_geometric_2ec``,
  ``theta_graph``, ``wheel_graph``, ``caterpillar_cycle``),
* bounded treewidth (``ktree_graph``),
* small-diameter networks whose MST is very tall (``hub_and_cycle``) — the
  instances separating the paper's algorithm from the O(h_MST)-round
  algorithm of Censor-Hillel and Dory [4],
* long-diameter networks (``lollipop_2ec``, ``broom_graph``).
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.graphs.validation import is_two_edge_connected

__all__ = [
    "assign_weights",
    "broom_graph",
    "caterpillar_cycle",
    "cycle_with_chords",
    "erdos_renyi_2ec",
    "grid_graph",
    "hub_and_cycle",
    "hypercube_graph",
    "ktree_graph",
    "lollipop_2ec",
    "random_geometric_2ec",
    "theta_graph",
    "torus_graph",
    "wheel_graph",
]

WEIGHT_STYLES = ("unit", "uniform", "integer", "exponential")


def assign_weights(
    graph: nx.Graph, style: str = "uniform", seed: int = 0, scale: float = 100.0
) -> nx.Graph:
    """Assign edge weights in place and return the graph.

    Styles: ``unit`` (all 1), ``uniform`` (U(1, scale)), ``integer``
    (uniform integers in [1, scale]), ``exponential`` (heavy-tailed).
    """
    rng = random.Random(seed)
    for _, _, data in graph.edges(data=True):
        if style == "unit":
            data["weight"] = 1.0
        elif style == "uniform":
            data["weight"] = rng.uniform(1.0, scale)
        elif style == "integer":
            data["weight"] = float(rng.randint(1, int(scale)))
        elif style == "exponential":
            data["weight"] = 1.0 + rng.expovariate(1.0 / scale)
        else:
            raise ValueError(f"unknown weight style {style!r}")
    return graph


def _relabel(graph: nx.Graph) -> nx.Graph:
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def cycle_with_chords(
    n: int, extra: int | float = 0.5, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """Hamiltonian cycle plus random chords; always 2-edge-connected.

    ``extra`` is either an absolute chord count or a fraction of ``n``.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    rng = random.Random(seed)
    g = nx.cycle_graph(n)
    chords = int(extra * n) if isinstance(extra, float) else int(extra)
    tries = 0
    while chords > 0 and tries < 50 * n:
        u, v = rng.randrange(n), rng.randrange(n)
        tries += 1
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            chords -= 1
    return assign_weights(g, weight_style, seed + 1)


def erdos_renyi_2ec(
    n: int, p: float | None = None, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """Erdős–Rényi graph patched to 2-edge-connectivity.

    Defaults to ``p = 3 ln(n) / n`` (comfortably above the 2-connectivity
    threshold).  If the sample is not 2-edge-connected, random extra edges
    are added until it is — asymptotically this leaves the family unchanged.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    if p is None:
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
    rng = random.Random(seed)
    g = nx.gnp_random_graph(n, p, seed=seed)
    while not is_two_edge_connected(g):
        for _ in range(max(2, n // 10)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                g.add_edge(u, v)
    return assign_weights(g, weight_style, seed + 1)


def grid_graph(rows: int, cols: int, seed: int = 0, weight_style: str = "uniform") -> nx.Graph:
    """2D grid (planar); 2-edge-connected for rows, cols >= 2."""
    if rows < 2 or cols < 2:
        raise ValueError("need rows, cols >= 2")
    g = _relabel(nx.grid_2d_graph(rows, cols))
    return assign_weights(g, weight_style, seed)


def torus_graph(rows: int, cols: int, seed: int = 0, weight_style: str = "uniform") -> nx.Graph:
    """2D torus (bounded genus)."""
    if rows < 3 or cols < 3:
        raise ValueError("need rows, cols >= 3")
    g = _relabel(nx.grid_2d_graph(rows, cols, periodic=True))
    return assign_weights(g, weight_style, seed)


def hypercube_graph(dim: int, seed: int = 0, weight_style: str = "uniform") -> nx.Graph:
    """The ``dim``-dimensional hypercube; 2-edge-connected for dim >= 2."""
    if dim < 2:
        raise ValueError("need dim >= 2")
    g = _relabel(nx.hypercube_graph(dim))
    return assign_weights(g, weight_style, seed)


def ktree_graph(n: int, k: int = 2, seed: int = 0, weight_style: str = "uniform") -> nx.Graph:
    """A random k-tree: treewidth exactly ``k``; 2-edge-connected for k >= 2."""
    if k < 2 or n < k + 1:
        raise ValueError("need k >= 2 and n >= k + 1")
    rng = random.Random(seed)
    g = nx.complete_graph(k + 1)
    cliques = [tuple(range(k + 1))]
    for v in range(k + 1, n):
        base = rng.choice(cliques)
        drop = rng.randrange(k + 1)
        new_clique = tuple(x for i, x in enumerate(base) if i != drop) + (v,)
        for u in new_clique[:-1]:
            g.add_edge(u, v)
        cliques.append(new_clique)
    return assign_weights(g, weight_style, seed + 1)


def theta_graph(
    num_paths: int = 3, path_len: int = 10, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """Generalized theta graph: two hubs joined by internally disjoint paths.

    Planar, 2-edge-connected for ``num_paths >= 2``; diameter ~ ``path_len``.
    """
    if num_paths < 2 or path_len < 1:
        raise ValueError("need num_paths >= 2 and path_len >= 1")
    g = nx.Graph()
    s, t = 0, 1
    nxt = 2
    for _ in range(num_paths):
        prev = s
        for _ in range(path_len - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, t)
    return assign_weights(g, weight_style, seed)


def wheel_graph(n: int, seed: int = 0, weight_style: str = "uniform") -> nx.Graph:
    """Wheel: hub plus an (n-1)-cycle; planar, diameter 2."""
    if n < 4:
        raise ValueError("need n >= 4")
    g = nx.wheel_graph(n)
    return assign_weights(g, weight_style, seed)


def hub_and_cycle(
    n: int, seed: int = 0, cheap: float = 1.0, expensive: float = 1000.0
) -> nx.Graph:
    """Small diameter but very tall MST — the regime separating the paper
    from the O(h_MST)-round algorithm of [4].

    Vertices ``0..n-2`` form a cycle with cheap weights; vertex ``n-1`` is a
    hub joined to every cycle vertex with expensive weights.  The MST is the
    cheap path (height ~ n) plus one hub edge, while the network diameter is
    2.
    """
    if n < 5:
        raise ValueError("need n >= 5")
    rng = random.Random(seed)
    g = nx.Graph()
    m = n - 1
    for i in range(m):
        g.add_edge(i, (i + 1) % m, weight=cheap * (1.0 + 0.01 * rng.random()))
    hub = n - 1
    for i in range(m):
        g.add_edge(hub, i, weight=expensive * (1.0 + 0.01 * rng.random()))
    return g


def lollipop_2ec(
    clique_size: int, cycle_len: int, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """A clique welded to a long cycle ("2-edge-connected lollipop").

    Large diameter (~ cycle_len / 2) with a dense core; stresses the
    sqrt(n)-term of the round bounds.
    """
    if clique_size < 3 or cycle_len < 3:
        raise ValueError("need clique_size >= 3 and cycle_len >= 3")
    g = nx.complete_graph(clique_size)
    first = clique_size
    prev = 0
    for i in range(cycle_len - 1):
        g.add_edge(prev, first + i)
        prev = first + i
    g.add_edge(prev, 1)  # close the cycle through a second clique vertex
    return assign_weights(g, weight_style, seed)


def broom_graph(
    handle_len: int, brush: int, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """A long doubled handle ending in a dense brush (2-edge-connected).

    The handle is a ladder of triangles (so it has no bridges); the brush is
    a wheel.  Diameter ~ handle_len, with most vertices at one end.
    """
    if handle_len < 2 or brush < 4:
        raise ValueError("need handle_len >= 2 and brush >= 4")
    g = nx.Graph()
    # Triangle ladder handle over vertices 0..handle_len.
    for i in range(handle_len):
        g.add_edge(i, i + 1)
    for i in range(0, handle_len - 1):
        g.add_edge(i, i + 2)
    g.add_edge(handle_len - 1, handle_len)  # already there; keeps shape explicit
    base = handle_len + 1
    hub = base
    ring = list(range(base + 1, base + brush))
    for i, v in enumerate(ring):
        g.add_edge(hub, v)
        g.add_edge(v, ring[(i + 1) % len(ring)])
    g.add_edge(handle_len, hub)
    g.add_edge(handle_len - 1, ring[0])  # second attachment avoids a bridge
    return assign_weights(g, weight_style, seed)


def caterpillar_cycle(
    spine: int, legs: int = 1, seed: int = 0, weight_style: str = "uniform"
) -> nx.Graph:
    """A cycle spine with triangle legs (planar, 2-edge-connected).

    Each spine vertex receives ``legs`` triangles; the MST is bushy and the
    layering decomposition has many short first-layer paths.
    """
    if spine < 3 or legs < 0:
        raise ValueError("need spine >= 3 and legs >= 0")
    g = nx.cycle_graph(spine)
    nxt = spine
    for v in range(spine):
        for _ in range(legs):
            a, b = nxt, nxt + 1
            nxt += 2
            g.add_edge(v, a)
            g.add_edge(a, b)
            g.add_edge(b, v)
    return assign_weights(g, weight_style, seed)


def random_geometric_2ec(
    n: int, radius: float | None = None, seed: int = 0, weight_style: str = "euclidean"
) -> nx.Graph:
    """Random geometric graph patched to 2-edge-connectivity.

    With ``weight_style="euclidean"`` the weight of an edge is the distance
    between its endpoints (patched edges get the same treatment).
    """
    if n < 4:
        raise ValueError("need n >= 4")
    if radius is None:
        radius = 1.8 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))
    rng = random.Random(seed)
    pos = {i: (rng.random(), rng.random()) for i in range(n)}
    g = nx.random_geometric_graph(n, radius, seed=seed, pos=pos)
    order = sorted(range(n), key=lambda i: pos[i])
    idx = 0
    while not is_two_edge_connected(g):
        # Stitch along a space-filling order; keeps edges short.
        u, v = order[idx % n], order[(idx + 1) % n]
        if u != v:
            g.add_edge(u, v)
        idx += 1
        if idx > 3 * n:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                g.add_edge(u, v)
    if weight_style == "euclidean":
        for u, v, data in g.edges(data=True):
            (x1, y1), (x2, y2) = pos[u], pos[v]
            data["weight"] = max(1e-6, math.hypot(x1 - x2, y1 - y2))
    else:
        assign_weights(g, weight_style, seed + 1)
    return g
