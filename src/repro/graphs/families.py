"""A registry of graph families, parameterized by target size.

Benchmarks iterate over this registry so every experiment covers the same
spread of topologies: general, planar, bounded treewidth, small-diameter /
tall-MST, and long-diameter instances.
"""

from __future__ import annotations

import math
from typing import Callable

import networkx as nx

from repro.graphs import generators as gen

__all__ = ["FAMILIES", "make_family_instance"]


def _grid(n: int, seed: int) -> nx.Graph:
    side = max(2, int(round(math.sqrt(n))))
    return gen.grid_graph(side, side, seed=seed)


def _torus(n: int, seed: int) -> nx.Graph:
    side = max(3, int(round(math.sqrt(n))))
    return gen.torus_graph(side, side, seed=seed)


def _theta(n: int, seed: int) -> nx.Graph:
    paths = 4
    return gen.theta_graph(num_paths=paths, path_len=max(2, n // paths), seed=seed)


def _lollipop(n: int, seed: int) -> nx.Graph:
    clique = max(4, int(round(math.sqrt(n))))
    return gen.lollipop_2ec(clique, max(3, n - clique), seed=seed)


def _caterpillar(n: int, seed: int) -> nx.Graph:
    spine = max(3, n // 3)
    return gen.caterpillar_cycle(spine, legs=1, seed=seed)


FAMILIES: dict[str, Callable[[int, int], nx.Graph]] = {
    "cycle_chords": lambda n, seed: gen.cycle_with_chords(n, 0.6, seed=seed),
    "erdos_renyi": lambda n, seed: gen.erdos_renyi_2ec(n, seed=seed),
    "grid": _grid,
    "torus": _torus,
    "ktree2": lambda n, seed: gen.ktree_graph(n, k=2, seed=seed),
    "ktree4": lambda n, seed: gen.ktree_graph(n, k=4, seed=seed),
    "theta": _theta,
    "hub_cycle": lambda n, seed: gen.hub_and_cycle(n, seed=seed),
    "lollipop": _lollipop,
    "caterpillar": _caterpillar,
    "geometric": lambda n, seed: gen.random_geometric_2ec(n, seed=seed),
}


def make_family_instance(family: str, n: int, seed: int = 0) -> nx.Graph:
    """Build an instance of the named family with roughly ``n`` vertices."""
    try:
        ctor = FAMILIES[family]
    except KeyError:
        raise KeyError(f"unknown family {family!r}; known: {sorted(FAMILIES)}") from None
    return ctor(n, seed)
