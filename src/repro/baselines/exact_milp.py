"""Ground-truth optima via MILP (HiGHS through scipy) and brute force.

* ``exact_tap_milp`` — TAP as a set-cover integer program: one binary per
  link, one covering constraint per tree edge.
* ``exact_two_ecss_milp`` — 2-ECSS as a cut-covering integer program solved
  with *lazy separation*: start from degree constraints, repeatedly solve,
  find a violated 2-cut in the chosen subgraph (a connectivity or bridge
  violation) and add its constraint.  Every round adds a constraint the
  previous optimum violates, so the loop terminates; the final solution is a
  true optimum because only valid inequalities were added.
* ``exact_k_ecss_milp`` — the ``k >= 2`` generalization: degree constraints
  start at ``k`` and separation finds any global cut with fewer than ``k``
  chosen edges (components when disconnected, else a Stoer–Wagner minimum
  cut under unit edge weights).  The ground truth the k-ECSS differential
  suite (``tests/test_k_ecss.py``) measures approximation ratios against.
* ``brute_force_tap`` / ``brute_force_two_ecss`` — exhaustive search for
  tiny instances, used to cross-check the MILP encodings in the tests.

These are evaluation-side tools: NP-hardness caps them at small/medium
sizes, which is exactly how the experiments use them (DESIGN.md, E1/E3/E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.exceptions import NotTwoEdgeConnectedError, SolverError
from repro.graphs.validation import (
    check_k_edge_connected,
    check_two_edge_connected,
    ensure_weights,
)
from repro.trees.rooted import RootedTree

__all__ = [
    "exact_tap_milp",
    "exact_two_ecss_milp",
    "exact_k_ecss_milp",
    "brute_force_tap",
    "brute_force_two_ecss",
    "MilpResult",
]


@dataclass
class MilpResult:
    """Exact MILP optimum: weight, chosen edges, separation rounds used."""

    weight: float
    chosen: list
    iterations: int = 1  # separation rounds (2-ECSS only)


def _solve_binary_min(c: np.ndarray, a: sparse.csr_matrix, lb: np.ndarray) -> np.ndarray:
    constraints = LinearConstraint(a, lb, np.full(len(lb), np.inf))
    res = milp(
        c,
        constraints=constraints,
        integrality=np.ones_like(c),
        bounds=Bounds(0, 1),
    )
    if not res.success:  # pragma: no cover - inputs are pre-validated
        raise SolverError(f"MILP failed: {res.message}")
    return np.round(res.x).astype(int)


def exact_tap_milp(
    tree: RootedTree, links: Iterable[tuple[int, int, float]]
) -> MilpResult:
    """Exact minimum-weight TAP via the set-cover MILP."""
    link_list = list(links)
    if not link_list:
        raise NotTwoEdgeConnectedError("no links")
    rows, cols = [], []
    for j, (u, v, _) in enumerate(link_list):
        for t in tree.path_edges(u, v):
            rows.append(t)
            cols.append(j)
    m = len(link_list)
    a = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(tree.n, m)
    )
    covered_rows = np.asarray((a.sum(axis=1) > 0)).ravel()
    for t in tree.tree_edges():
        if not covered_rows[t]:
            raise NotTwoEdgeConnectedError(f"tree edge {t} is uncoverable")
    # Root row is all-zero; keep only real tree-edge rows.
    keep = [t for t in tree.tree_edges()]
    a = a[keep, :]
    c = np.array([w for _, _, w in link_list], dtype=float)
    x = _solve_binary_min(c, a, np.ones(a.shape[0]))
    chosen = [link_list[j][:2] for j in range(m) if x[j]]
    return MilpResult(weight=float(c @ x), chosen=chosen)


def exact_two_ecss_milp(graph: nx.Graph, max_rounds: int = 200) -> MilpResult:
    """Exact minimum-weight 2-ECSS via cut MILP with lazy separation."""
    ensure_weights(graph)
    check_two_edge_connected(graph)
    nodes = list(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    edges = [(index[u], index[v], float(d["weight"])) for u, v, d in graph.edges(data=True)]
    n, m = len(nodes), len(edges)
    c = np.array([w for _, _, w in edges])

    # Initial valid inequalities: every vertex has degree >= 2.
    rows, cols = [], []
    for j, (u, v, _) in enumerate(edges):
        rows.extend([u, v])
        cols.extend([j, j])
    a_rows = [sparse.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, m))]
    lbs = [np.full(n, 2.0)]

    for rounds in range(1, max_rounds + 1):
        a = sparse.vstack(a_rows).tocsr()
        lb = np.concatenate(lbs)
        x = _solve_binary_min(c, a, lb)
        sub = nx.Graph()
        sub.add_nodes_from(range(n))
        for j, (u, v, _) in enumerate(edges):
            if x[j]:
                sub.add_edge(u, v)
        violated = _find_violated_cut(sub, n)
        if violated is None:
            chosen = [
                (nodes[edges[j][0]], nodes[edges[j][1]]) for j in range(m) if x[j]
            ]
            return MilpResult(weight=float(c @ x), chosen=chosen, iterations=rounds)
        side = violated
        row = np.zeros(m)
        for j, (u, v, _) in enumerate(edges):
            if (u in side) != (v in side):
                row[j] = 1.0
        a_rows.append(sparse.csr_matrix(row))
        lbs.append(np.array([2.0]))
    raise SolverError(f"cut separation did not converge in {max_rounds} rounds")


def _find_violated_cut(sub: nx.Graph, n: int) -> set[int] | None:
    """A vertex set S with fewer than 2 chosen edges across (S, V-S)."""
    comps = list(nx.connected_components(sub))
    if len(comps) > 1:
        return set(comps[0])
    bridge = next(nx.bridges(sub), None)
    if bridge is not None:
        u, v = bridge
        sub2 = sub.copy()
        sub2.remove_edge(u, v)
        return set(nx.node_connected_component(sub2, u))
    return None


def exact_k_ecss_milp(
    graph: nx.Graph, k: int, max_rounds: int = 400
) -> MilpResult:
    """Exact minimum-weight k-ECSS via cut MILP with lazy separation.

    The ``k``-generalization of :func:`exact_two_ecss_milp`: degree
    constraints start at ``k``, and each separation round adds the
    constraint of a global cut crossed by fewer than ``k`` chosen edges
    (a connected component when the choice is disconnected, else a
    Stoer–Wagner minimum cut under unit edge weights).  Only valid
    inequalities of the k-ECSS polytope are ever added and every round
    cuts off the previous optimum, so the final solution is a true
    optimum.  Raises the structured feasibility error of
    :func:`~repro.graphs.validation.check_k_edge_connected` — never a
    disconnected "solution" — when the input's connectivity is below
    ``k``, and ``ValueError`` for ``k < 2``.
    """
    if isinstance(k, bool) or not isinstance(k, int) or k < 2:
        raise ValueError(f"k must be an int >= 2, got {k!r}")
    ensure_weights(graph)
    check_k_edge_connected(graph, k)
    nodes = list(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    edges = [
        (index[u], index[v], float(d["weight"]))
        for u, v, d in graph.edges(data=True)
    ]
    n, m = len(nodes), len(edges)
    c = np.array([w for _, _, w in edges])

    # Initial valid inequalities: every vertex has degree >= k.
    rows, cols = [], []
    for j, (u, v, _) in enumerate(edges):
        rows.extend([u, v])
        cols.extend([j, j])
    a_rows = [
        sparse.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, m))
    ]
    lbs = [np.full(n, float(k))]

    for rounds in range(1, max_rounds + 1):
        a = sparse.vstack(a_rows).tocsr()
        lb = np.concatenate(lbs)
        x = _solve_binary_min(c, a, lb)
        sub = nx.Graph()
        sub.add_nodes_from(range(n))
        for j, (u, v, _) in enumerate(edges):
            if x[j]:
                sub.add_edge(u, v, cutw=1)
        side = _find_violated_k_cut(sub, k)
        if side is None:
            chosen = [
                (nodes[edges[j][0]], nodes[edges[j][1]])
                for j in range(m) if x[j]
            ]
            return MilpResult(
                weight=float(c @ x), chosen=chosen, iterations=rounds
            )
        row = np.zeros(m)
        for j, (u, v, _) in enumerate(edges):
            if (u in side) != (v in side):
                row[j] = 1.0
        a_rows.append(sparse.csr_matrix(row))
        lbs.append(np.array([float(k)]))
    raise SolverError(
        f"cut separation did not converge in {max_rounds} rounds"
    )


def _find_violated_k_cut(sub: nx.Graph, k: int) -> set[int] | None:
    """A vertex set S with fewer than ``k`` chosen edges across (S, V-S)."""
    comps = list(nx.connected_components(sub))
    if len(comps) > 1:
        return set(comps[0])
    if sub.number_of_nodes() < 2:
        return None
    cut_value, (side, _) = nx.stoer_wagner(sub, weight="cutw")
    if cut_value < k:
        return set(side)
    return None


def brute_force_tap(
    tree: RootedTree, links: Iterable[tuple[int, int, float]], max_links: int = 18
) -> MilpResult:
    """Exhaustive TAP optimum for tiny instances."""
    link_list = list(links)
    if len(link_list) > max_links:
        raise SolverError(f"brute force capped at {max_links} links")
    need = set(tree.tree_edges())
    covers = [frozenset(tree.path_edges(u, v)) for u, v, _ in link_list]
    best_w, best = float("inf"), None
    for r in range(len(link_list) + 1):
        for subset in combinations(range(len(link_list)), r):
            got = set()
            for j in subset:
                got |= covers[j]
            if got >= need:
                w = sum(link_list[j][2] for j in subset)
                if w < best_w:
                    best_w, best = w, subset
    if best is None:
        raise NotTwoEdgeConnectedError("no feasible augmentation")
    return MilpResult(weight=best_w, chosen=[link_list[j][:2] for j in best])


def brute_force_two_ecss(graph: nx.Graph, max_edges: int = 18) -> MilpResult:
    """Exhaustive 2-ECSS optimum for tiny instances."""
    ensure_weights(graph)
    check_two_edge_connected(graph)
    edges = list(graph.edges(data="weight"))
    if len(edges) > max_edges:
        raise SolverError(f"brute force capped at {max_edges} edges")
    best_w, best = float("inf"), None
    nodes = list(graph.nodes())
    for r in range(len(edges) + 1):
        for subset in combinations(range(len(edges)), r):
            w = sum(edges[j][2] for j in subset)
            if w >= best_w:
                continue
            sub = nx.Graph()
            sub.add_nodes_from(nodes)
            sub.add_edges_from((edges[j][0], edges[j][1]) for j in subset)
            if (
                nx.is_connected(sub)
                and next(nx.bridges(sub), None) is None
            ):
                best_w, best = w, subset
    if best is None:  # pragma: no cover - guarded by the 2ECC check
        raise NotTwoEdgeConnectedError("no feasible 2-ECSS")
    return MilpResult(
        weight=best_w, chosen=[(edges[j][0], edges[j][1]) for j in best]
    )
