"""Exact vertical-link TAP via Edmonds' arborescence, and the classical
2-approximation for weighted TAP built on it.

Frederickson–JáJá (1981) / Khuller–Thurimella (1993, the paper's [22]):
weighted TAP where every link runs between an ancestor and a descendant
reduces *exactly* to a minimum-weight spanning out-arborescence:

* direct every tree edge from child to parent with weight 0;
* direct every link from its upper endpoint to its lower endpoint with its
  weight;
* delete the root's incoming arcs (forcing it to be the arborescence root).

A chosen link-arc ``anc -> dec`` "pays" for the tree path ``dec .. anc``; the
up-arcs let the arborescence walk back up for free.  Any out-arborescence
from the root induces a feasible cover (the last link-arc on the path to
``v`` must start strictly above ``v``, else the path would revisit a vertex),
and any cover induces an arborescence of the same weight — so Edmonds'
algorithm computes the exact optimum.

Splitting arbitrary links at their LCA (Lemma 4.1) loses at most a factor 2,
giving the classical 2-approximation for weighted TAP and, with an MST, the
3-approximation for weighted 2-ECSS — the quality regime of
Censor-Hillel–Dory [OPODIS'17] that the paper compares against.

``exact_vertical_tap`` doubles as the *exact optimum of the virtual
instance*, which the experiments use to certify the ``(2 + eps)``-on-``G'``
claim at sizes far beyond what a MILP can handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.core.tecss import rooted_mst
from repro.core.virtual_graph import VirtualEdge, build_virtual_edges, map_back
from repro.exceptions import NotTwoEdgeConnectedError, SolverError
from repro.graphs.validation import check_two_edge_connected, ensure_weights, normalize_graph
from repro.trees.rooted import RootedTree

__all__ = [
    "exact_vertical_tap",
    "tap_2approx_arborescence",
    "kt_tecss_3approx",
    "ArborescenceTapResult",
]


@dataclass
class ArborescenceTapResult:
    """Exact vertical-TAP cover: chosen virtual-edge ids and total weight."""

    eids: list[int]
    weight: float


def exact_vertical_tap(
    tree: RootedTree, vedges: Sequence[VirtualEdge]
) -> ArborescenceTapResult:
    """Exact minimum-weight cover of the tree by vertical links."""
    d = nx.DiGraph()
    d.add_nodes_from(range(tree.n))
    for v in tree.tree_edges():
        p = tree.parent[v]
        if p != tree.root:
            d.add_edge(v, p, weight=0.0, eid=-1)
    # The root's incoming up-arcs are omitted above, forcing the root.
    for e in vedges:
        cur = d.get_edge_data(e.anc, e.dec)
        if cur is None or e.weight < cur["weight"]:
            d.add_edge(e.anc, e.dec, weight=float(e.weight), eid=e.eid)
    try:
        arb = nx.minimum_spanning_arborescence(d, attr="weight", preserve_attrs=True)
    except nx.NetworkXException as exc:
        raise NotTwoEdgeConnectedError(
            "no arborescence: some tree edge is covered by no link"
        ) from exc
    eids = sorted(
        data["eid"] for _, _, data in arb.edges(data=True) if data["eid"] != -1
    )
    weight = sum(vedges[i].weight for i in eids)
    return ArborescenceTapResult(eids=eids, weight=weight)


def tap_2approx_arborescence(
    tree: RootedTree, links: Iterable[tuple[int, int, float]]
) -> tuple[list[tuple[int, int]], float]:
    """The classical 2-approximation for weighted TAP (FJ'81 / KT'93).

    Splits links at LCAs, solves the vertical instance exactly, maps back.
    """
    link_list = list(links)
    vedges = build_virtual_edges(tree, link_list)
    res = exact_vertical_tap(tree, vedges)
    origins = map_back(vedges, res.eids)
    weights = {}
    for u, v, w in link_list:
        weights.setdefault((u, v), w)
    weight = sum(weights[o] for o in origins)
    return origins, weight


@dataclass
class KtTecssResult:
    """Khuller–Thurimella 3-approximation output (MST + exact TAP)."""

    edges: list[tuple]
    weight: float
    mst_weight: float
    aug_weight: float


def kt_tecss_3approx(graph: nx.Graph) -> KtTecssResult:
    """MST + 2-approximate TAP = the classical 3-approximation for 2-ECSS."""
    ensure_weights(graph)
    check_two_edge_connected(graph)
    g, nodes, _ = normalize_graph(graph)
    tree, mst_edges = rooted_mst(g)
    mst_set = set(mst_edges)
    links = [
        (min(u, v), max(u, v), float(d["weight"]))
        for u, v, d in g.edges(data=True)
        if tuple(sorted((u, v))) not in mst_set
    ]
    aug, aug_weight = tap_2approx_arborescence(tree, links)
    mst_weight = sum(g[u][v]["weight"] for u, v in mst_edges)
    chosen = sorted(mst_set.union(tuple(sorted(l)) for l in aug))
    return KtTecssResult(
        edges=[(nodes[u], nodes[v]) for u, v in chosen],
        weight=mst_weight + aug_weight,
        mst_weight=mst_weight,
        aug_weight=aug_weight,
    )
