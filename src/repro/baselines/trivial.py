"""Trivial baselines: sanity anchors for the experiment tables."""

from __future__ import annotations

import networkx as nx

from repro.core.tecss import rooted_mst
from repro.graphs.validation import check_two_edge_connected, ensure_weights, normalize_graph

__all__ = ["all_edges_solution", "mst_plus_cheapest_cover"]


def all_edges_solution(graph: nx.Graph) -> float:
    """Weight of keeping the whole graph (the do-nothing upper bound)."""
    ensure_weights(graph)
    return float(graph.size(weight="weight"))


def mst_plus_cheapest_cover(graph: nx.Graph) -> float:
    """MST plus, for every tree edge, the cheapest non-tree link covering it.

    A natural heuristic with *no* approximation guarantee (a single tree
    edge's cheapest cover may be re-bought n times); the experiments use it
    to show why the paper's coverage discipline matters.
    """
    ensure_weights(graph)
    check_two_edge_connected(graph)
    g, _, _ = normalize_graph(graph)
    tree, mst_edges = rooted_mst(g)
    mst_set = set(mst_edges)
    best: dict[int, tuple[float, tuple[int, int]]] = {}
    for u, v, d in g.edges(data=True):
        if tuple(sorted((u, v))) in mst_set:
            continue
        w = float(d["weight"])
        for t in tree.path_edges(u, v):
            cur = best.get(t)
            if cur is None or w < cur[0]:
                best[t] = (w, (min(u, v), max(u, v)))
    chosen = {link for _, link in best.values()}
    mst_weight = sum(g[u][v]["weight"] for u, v in mst_edges)
    return mst_weight + sum(g[u][v]["weight"] for u, v in chosen)
