"""Sequential greedy set-cover TAP — the classical ``H_n``-approximation.

The elements are the tree edges, the sets are the candidate links (a link
covers the tree edges on its tree path), and greedy repeatedly picks the link
maximizing *newly covered edges per unit weight*.  This is the quality regime
of the randomized ``O(log n)``-approximation of Dory [PODC'18] that
Theorem 1.1 improves on, and the sequential skeleton that Section 5
parallelizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import NotTwoEdgeConnectedError
from repro.trees.rooted import RootedTree

__all__ = ["GreedyTapResult", "greedy_tap"]


@dataclass
class GreedyTapResult:
    """Greedy set-cover TAP baseline: picked links and their total weight."""

    links: list[tuple[int, int]]
    weight: float
    picks: int


def greedy_tap(
    tree: RootedTree, links: Iterable[tuple[int, int, float]]
) -> GreedyTapResult:
    """Greedy weighted TAP; ratio at most ``H(n) <= ln n + 1``."""
    link_list = list(links)
    cover_sets = [frozenset(tree.path_edges(u, v)) for u, v, _ in link_list]
    uncovered = set(tree.tree_edges())
    coverable: set[int] = set()
    for s in cover_sets:
        coverable |= s
    if uncovered - coverable:
        raise NotTwoEdgeConnectedError("links cannot cover every tree edge")

    chosen: list[int] = []
    weight = 0.0
    remaining = list(range(len(link_list)))
    while uncovered:
        best = None
        best_ratio = None
        for idx in remaining:
            gain = len(cover_sets[idx] & uncovered)
            if gain == 0:
                continue
            w = link_list[idx][2]
            # cost-effectiveness: covered edges per unit weight; for
            # zero-weight links the ratio is +infinite (always best).
            ratio = (gain / w) if w > 0 else float("inf")
            if best_ratio is None or ratio > best_ratio or (
                ratio == best_ratio and idx < best
            ):
                best, best_ratio = idx, ratio
        if best is None:  # pragma: no cover - guarded by the feasibility check
            raise NotTwoEdgeConnectedError("greedy stalled with uncovered edges")
        chosen.append(best)
        weight += link_list[best][2]
        uncovered -= cover_sets[best]
        remaining.remove(best)

    return GreedyTapResult(
        links=[(link_list[i][0], link_list[i][1]) for i in chosen],
        weight=weight,
        picks=len(chosen),
    )
