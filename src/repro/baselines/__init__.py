"""Baselines and exact solvers for the experiment suite.

* :mod:`repro.baselines.greedy_tap` — sequential greedy set-cover TAP, the
  ``O(log n)``-approximation quality regime of Dory [PODC'18].
* :mod:`repro.baselines.arborescence` — exact TAP on vertical links via
  Edmonds' minimum arborescence, yielding the classical 2-approximation for
  weighted TAP (Frederickson–JáJá / Khuller–Thurimella) and 3-approximation
  for 2-ECSS — the quality regime of Censor-Hillel–Dory [OPODIS'17].
* :mod:`repro.baselines.exact_milp` — ground-truth optima via HiGHS MILP
  (set-cover formulation for TAP, cut formulation with lazy separation for
  2-ECSS) plus brute force for cross-checks.
* :mod:`repro.baselines.trivial` — sanity anchors.
"""

from repro.baselines.arborescence import (
    exact_vertical_tap,
    kt_tecss_3approx,
    tap_2approx_arborescence,
)
from repro.baselines.exact_milp import (
    brute_force_tap,
    brute_force_two_ecss,
    exact_k_ecss_milp,
    exact_tap_milp,
    exact_two_ecss_milp,
)
from repro.baselines.greedy_tap import greedy_tap
from repro.baselines.trivial import all_edges_solution, mst_plus_cheapest_cover

__all__ = [
    "exact_vertical_tap",
    "kt_tecss_3approx",
    "tap_2approx_arborescence",
    "brute_force_tap",
    "brute_force_two_ecss",
    "exact_k_ecss_milp",
    "exact_tap_milp",
    "exact_two_ecss_milp",
    "greedy_tap",
    "all_edges_solution",
    "mst_plus_cheapest_cover",
]
