"""``repro.sim`` — the batched, array-backed CONGEST simulation engine.

Why a second engine
===================

The legacy :class:`repro.model.network.Network` steps *every* node *every*
round through a per-node Python loop and rebuilds all message buffers from
scratch each round.  That is the right reference semantics — simple enough
to audit against Section 2 of the paper — but it caps experiments at toy
sizes: a BFS over a 2000-node grid costs ``diameter * n`` program steps even
though only the wavefront does any work.

:class:`~repro.sim.engine.BatchedNetwork` keeps the exact same external
contract (:class:`~repro.model.network.NodeProgram` protocol, the same
:class:`~repro.model.network.Context` objects, the same
:class:`~repro.model.network.RunStats`, the same
:class:`~repro.exceptions.SimulationError` conditions) but reorganizes the
data layout and the scheduling:

* **CSR adjacency** — neighbor lists, edge weights, and directed edge ids
  live in flat preallocated arrays (numpy-backed when numpy is importable,
  pure-Python lists otherwise), built once at construction;
* **double-buffered inboxes** — per-node inbox dicts come in a front and
  a back buffer: sends are written straight into the back buffer during
  the step loop and the buffers swap at the round edge, so there is no
  staging list and no per-round rebuild of all n inboxes;
* **pluggable schedulers** (:mod:`repro.sim.schedulers`) —
  :class:`~repro.sim.schedulers.SynchronousScheduler` mirrors the legacy
  engine call-for-call, while the default
  :class:`~repro.sim.schedulers.EventDrivenScheduler` steps only *woken*
  nodes (nodes that received a message, or whose last
  ``wants_to_continue`` was true) and detects global quiescence early;
* **per-round traces** — ``BatchedNetwork(..., trace=True)`` records a
  :class:`~repro.sim.engine.RoundRecord` per round (messages, words,
  stepped nodes, dropped messages) for message/word accounting plots;
* **failure injection** (:mod:`repro.sim.failures`) — a
  :class:`~repro.sim.failures.FailurePlan` drops messages crossing named
  edges in named rounds (transient-loss model: sends are still validated
  against the CONGEST budget and counted, delivery is suppressed).

Choosing a backend
==================

Use ``BatchedNetwork`` (the default everywhere in this repo) unless you are
writing a differential test, in which case run the same program on the
legacy ``Network`` as the oracle.  The event-driven scheduler is
bit-for-bit identical to the legacy engine for *event-driven* programs —
programs whose ``step`` with an empty inbox, after returning an empty
outbox with ``wants_to_continue`` false, would return an empty outbox and
leave state (and any RNG in it) untouched.  Every program in
:mod:`repro.model.programs` obeys this; a program that must act
spontaneously each round just keeps ``wants_to_continue`` true, which keeps
it in the active set.  ``scheduler="sync"`` removes even that caveat at the
cost of the per-node loop.

:class:`~repro.sim.runner.ScenarioRunner` sweeps graph families × sizes ×
seeds, runs a program spec on each instance, and emits
:class:`~repro.sim.runner.ScenarioResult` rows cross-checking the measured
:class:`~repro.model.network.RunStats` against the Level-M
:class:`~repro.core.rounds.RoundCostModel` prices (and the Theorem 1.1
bound shape).
"""

from repro.model.network import Context, NodeProgram, Payload, RunStats
from repro.sim.engine import BatchedNetwork, RoundRecord
from repro.sim.failures import FailurePlan, random_failure_plan
from repro.sim.programs import RandomGossip
from repro.sim.runner import ProgramSpec, ScenarioResult, ScenarioRunner, default_specs
from repro.sim.schedulers import EventDrivenScheduler, SynchronousScheduler

__all__ = [
    "BatchedNetwork",
    "Context",
    "EventDrivenScheduler",
    "FailurePlan",
    "NodeProgram",
    "Payload",
    "ProgramSpec",
    "RandomGossip",
    "RoundRecord",
    "RunStats",
    "ScenarioResult",
    "ScenarioRunner",
    "SynchronousScheduler",
    "default_specs",
    "random_failure_plan",
]
