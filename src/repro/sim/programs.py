"""Seeded random node programs for differential and fuzz testing.

:class:`RandomGossip` is deliberately adversarial-but-lawful: every node
runs an independent deterministic RNG (seeded by ``(program seed, node)``)
and makes random forwarding decisions, so any divergence between two
engines — in stepping order, delivery, or quiescence — snowballs into
different message counts within a round or two.  It obeys the event-driven
contract (RNG is only consumed in ``setup`` and when processing a
non-empty inbox or an armed burst), which is exactly what makes it a fair
differential workload for the event-driven scheduler against the legacy
every-node-every-round loop.
"""

from __future__ import annotations

import random

from repro.model.network import Context, Payload

__all__ = ["RandomGossip"]


class RandomGossip:
    """Random token gossip with TTLs; terminates within ``ttl`` + O(1) rounds.

    Each node starts (with probability ``start_frac``) holding a token
    ``(ttl, value)``.  On receipt of a token with positive TTL a node
    re-emits it, decremented and value-mixed, to a random subset of at most
    ``fanout`` neighbors, each kept with probability ``forward_prob``.
    Inbox iteration is sorted by sender so behavior is independent of dict
    insertion order.
    """

    def __init__(
        self,
        seed: int,
        start_frac: float = 0.35,
        ttl: int = 6,
        fanout: int = 2,
        forward_prob: float = 0.85,
    ) -> None:
        self.seed = seed
        self.start_frac = start_frac
        self.ttl = ttl
        self.fanout = fanout
        self.forward_prob = forward_prob

    def setup(self, ctx: Context) -> None:
        """Seed the node RNG and (maybe) arm an initial token burst."""
        rng = random.Random(self.seed * 1_000_003 + ctx.node)
        burst: list[tuple[int, int]] = []
        if rng.random() < self.start_frac:
            burst.append((self.ttl, rng.randrange(1 << 16)))
        ctx.state.update(rng=rng, burst=burst, seen=0)

    def _emit(self, ctx: Context, tokens: list[tuple[int, int]]) -> dict[int, Payload]:
        rng = ctx.state["rng"]
        out: dict[int, Payload] = {}
        for ttl, value in tokens:
            if ttl <= 0 or not ctx.neighbors:
                continue
            k = min(self.fanout, len(ctx.neighbors))
            for u in rng.sample(ctx.neighbors, k):
                if rng.random() < self.forward_prob:
                    # last writer wins on a shared receiver, like any
                    # outbox dict; payload stays within 2 words
                    out[u] = (ttl - 1, (value * 31 + u) % (1 << 16))
        return out

    def step(self, ctx: Context, inbox: dict[int, Payload]) -> dict[int, Payload]:
        """Forward received (and burst) tokens to random neighbor subsets."""
        st = ctx.state
        tokens: list[tuple[int, int]] = []
        if st["burst"]:
            tokens.extend(st["burst"])
            st["burst"] = []
        for sender in sorted(inbox):
            ttl, value = inbox[sender]
            st["seen"] += 1
            tokens.append((int(ttl), int(value)))
        if not tokens:
            return {}
        return self._emit(ctx, tokens)

    def wants_to_continue(self, ctx: Context) -> bool:
        """Stay scheduled only while an unsent burst is armed."""
        return bool(ctx.state["burst"])

    @staticmethod
    def results(network) -> list[int]:
        """Per-node count of tokens seen — a behavioral fingerprint."""
        return [c.state["seen"] for c in network.contexts]
