"""Round schedulers for :class:`~repro.sim.engine.BatchedNetwork`.

A scheduler answers one question per round: *which nodes get a ``step``
call?*  The engine feeds it the set of nodes ``woken`` by a delivery this
round and the set whose last ``wants_to_continue`` was true; the scheduler
returns the node ids to step, in ascending order (ascending order keeps
inbox dict insertion order identical to the legacy engine, which steps
senders ``0..n-1``).

``SynchronousScheduler`` steps everyone — the legacy ``Network`` semantics,
valid for arbitrary programs.  ``EventDrivenScheduler`` steps only the
woken/continuing nodes, which is bit-for-bit equivalent for event-driven
programs (see the :mod:`repro.sim` module docstring for the contract) and
turns idle rounds from O(n) into O(active).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["SynchronousScheduler", "EventDrivenScheduler", "resolve_scheduler"]


class SynchronousScheduler:
    """Step every node every round (exact legacy-`Network` scheduling)."""

    name = "sync"
    tracks_activity = False  # the engine may skip woken-set bookkeeping

    def select(self, n: int, woken: set[int], continuing: set[int]) -> Iterable[int]:
        """Every node, every round, in ascending order."""
        return range(n)


class EventDrivenScheduler:
    """Step only nodes that received a message or asked to continue."""

    name = "event"
    tracks_activity = True

    def select(self, n: int, woken: set[int], continuing: set[int]) -> Iterable[int]:
        """The woken/continuing nodes, ascending (legacy-identical order)."""
        if not continuing:
            return sorted(woken)
        if not woken:
            return sorted(continuing)
        return sorted(woken | continuing)


_BY_NAME = {
    "sync": SynchronousScheduler,
    "synchronous": SynchronousScheduler,
    "event": EventDrivenScheduler,
    "event-driven": EventDrivenScheduler,
}


def resolve_scheduler(spec) -> SynchronousScheduler | EventDrivenScheduler:
    """Accept a scheduler instance or one of the names in ``_BY_NAME``."""
    if spec is None:
        return EventDrivenScheduler()
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; choose from {sorted(_BY_NAME)}"
            ) from None
    if hasattr(spec, "select"):
        return spec
    raise TypeError(f"not a scheduler: {spec!r}")
