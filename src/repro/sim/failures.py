"""Failure injection for the batched engine: per-round edge drops.

The model is *transient message loss*: a failed edge still exists (its
endpoints remain neighbors, sends across it are validated against the
CONGEST bandwidth budget and counted as sent), but messages crossing it in
a failed round are silently lost.  This matches the classic lossy-CONGEST
setting where an adversary kills links round by round, and it composes with
any :class:`~repro.model.network.NodeProgram` without protocol changes —
programs observe failures only as missing inbox entries.

Rounds are 1-based and match ``RunStats.rounds``: a message staged while
``rounds == k`` (i.e. sent in the k-th counted round) is dropped iff the
plan fails its edge in round ``k``.  Failed edges are undirected by
default: ``(u, v)`` kills both directions unless ``symmetric=False``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FailurePlan", "random_failure_plan"]


@dataclass
class FailurePlan:
    """Which directed edges are down in which rounds.

    ``by_round`` maps a 1-based round number to a set of directed
    ``(sender, receiver)`` pairs; ``always`` holds pairs down in every
    round.  Use :meth:`fail` to populate (it normalizes symmetry), or the
    module helper :func:`random_failure_plan` for seeded random drops.

    A plan is *pure configuration*: the engine never mutates it, so one
    plan can be shared across networks, runs, and
    :class:`~repro.sim.runner.ScenarioRunner` repeats without conflating
    their statistics.  Per-run drop counts live in the measured
    :class:`~repro.model.network.RunStats` (``stats.dropped``) and on the
    engine (``net.dropped``, reset at the start of every ``run``).
    """

    by_round: dict[int, set[tuple[int, int]]] = field(default_factory=dict)
    always: set[tuple[int, int]] = field(default_factory=set)

    def fail(
        self,
        u: int,
        v: int,
        rounds: range | list[int] | tuple[int, ...] | None = None,
        symmetric: bool = True,
    ) -> "FailurePlan":
        """Mark edge ``(u, v)`` down in ``rounds`` (every round if None)."""
        pairs = [(u, v), (v, u)] if symmetric else [(u, v)]
        if rounds is None:
            self.always.update(pairs)
        else:
            for r in rounds:
                if r < 1:
                    raise ValueError(f"rounds are 1-based; got {r}")
                self.by_round.setdefault(r, set()).update(pairs)
        return self

    def is_down(self, round_no: int, sender: int, receiver: int) -> bool:
        """Is the directed edge ``sender -> receiver`` down in this round?"""
        pair = (sender, receiver)
        if pair in self.always:
            return True
        hits = self.by_round.get(round_no)
        return hits is not None and pair in hits

    def empty(self) -> bool:
        """True when the plan fails nothing (the engine then skips checks)."""
        return not self.always and not self.by_round


def random_failure_plan(
    graph,
    p: float,
    max_rounds: int,
    seed: int = 0,
    symmetric: bool = True,
) -> FailurePlan:
    """Seeded plan failing each edge independently with prob ``p`` per round."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1]; got {p}")
    rng = random.Random(seed)
    plan = FailurePlan()
    edges = sorted(tuple(sorted(e)) for e in graph.edges())
    for r in range(1, max_rounds + 1):
        for u, v in edges:
            if rng.random() < p:
                plan.fail(u, v, rounds=[r], symmetric=symmetric)
    return plan
