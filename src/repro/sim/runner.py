"""ScenarioRunner: sweep graph families × sizes × seeds through the engine.

Each run produces a :class:`ScenarioResult` that pairs the *measured*
:class:`~repro.model.network.RunStats` with the *priced* rounds of the
Level-M :class:`~repro.core.rounds.RoundCostModel`: the program spec
declares which paper primitives one run of it corresponds to (e.g. one BFS
is at most one tree aggregate, Claim 4.5/4.6), the runner builds the
matching :class:`~repro.core.rounds.PrimitiveLog`, and the result records
whether the measured rounds stay under the Level-M price and under the
Theorem 1.1 bound shape.  This is the cross-check that keeps the cost model
honest at scale — the per-instance generalization of
``tests/test_model_vs_cost.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.core.rounds import PrimitiveLog, RoundCostModel
from repro.graphs.families import make_family_instance
from repro.model.network import NodeProgram, RunStats
from repro.model.programs import DistributedBFS, FloodMin

__all__ = ["ProgramSpec", "ScenarioResult", "ScenarioRunner", "default_specs"]


@dataclass(frozen=True)
class ProgramSpec:
    """A named node program plus its Level-M price declaration.

    ``build`` maps a prepared graph (0..n-1 nodes, weighted) to a fresh
    program instance; ``primitives`` maps
    :class:`~repro.core.rounds.RoundCostModel` primitive names to how many
    invocations one run of the program is charged as.
    """

    name: str
    build: Callable[[nx.Graph], NodeProgram]
    primitives: Mapping[str, int]


def _flood_min(graph: nx.Graph) -> FloodMin:
    return FloodMin(
        values=[(v,) for v in range(graph.number_of_nodes())],
        active={v: sorted(graph.neighbors(v)) for v in graph.nodes()},
    )


def default_specs() -> tuple[ProgramSpec, ...]:
    """BFS and flood-min: both run within one aggregate's price (D+sqrt n)."""
    return (
        ProgramSpec("bfs", lambda g: DistributedBFS(0), {"aggregate": 1}),
        ProgramSpec("flood_min", _flood_min, {"aggregate": 1}),
    )


@dataclass
class ScenarioResult:
    """One instance × program run: measured stats plus Level-M cross-checks.

    ``within_price`` compares the measured rounds against the Level-M price
    of the spec's declared primitives; ``within_thm11`` against the
    Theorem 1.1 bound shape — both must hold for the cost model to be
    honest on this instance.
    """

    family: str
    n: int
    seed: int
    program: str
    stats: RunStats
    diameter: int
    priced_rounds: float
    thm11_bound: float
    within_price: bool
    within_thm11: bool
    log: PrimitiveLog = field(repr=False, default_factory=PrimitiveLog)

    def row(self) -> dict:
        """Flatten for :func:`repro.analysis.tables.format_table`."""
        return {
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "program": self.program,
            "D": self.diameter,
            "rounds": self.stats.rounds,
            "messages": self.stats.messages,
            "max_words": self.stats.max_words,
            "quiescent": self.stats.quiescent,
            "dropped": self.stats.dropped,
            "priced": self.priced_rounds,
            "thm11": self.thm11_bound,
            "within_price": self.within_price,
            "within_thm11": self.within_thm11,
        }


class ScenarioRunner:
    """Runs program specs over instances and cross-checks the cost model.

    ``engine`` is the name of a registered *network* backend
    (:mod:`repro.runtime.registry`: ``"batched"`` — the default CSR
    engine — or ``"legacy"``, the per-node oracle loop) or any callable
    ``(graph, words_per_edge) -> network`` — the hook differential tests
    use to aim the same sweep at the oracle engine.  Unknown names raise
    a one-line error listing the registered network backends.

    ``failures`` (an immutable :class:`~repro.sim.failures.FailurePlan`)
    is applied to every network the runner builds, and requires a backend
    with the ``failure-injection`` capability flag — dropping the plan
    silently would report a clean run as a lossy one.  This is how the
    dist-layer primitive specs (:func:`repro.dist.specs.dist_specs`) are
    swept under lossy-CONGEST conditions; per-run drop counts land in
    each result's ``stats.dropped``.
    """

    def __init__(
        self,
        engine: str | Callable = "batched",
        words_per_edge: int = 4,
        eps: float = 0.5,
        scheduler=None,
        failures=None,
    ) -> None:
        if isinstance(engine, str):
            from repro.runtime.registry import get_backend

            spec = get_backend("network", engine)
            if failures is not None and not spec.has("failure-injection"):
                raise ValueError(
                    f"failure injection requires a network backend with "
                    f"the 'failure-injection' capability (e.g. 'batched'); "
                    f"got {engine!r}"
                )
            self._make = lambda g, w: spec.factory(
                g, w, scheduler=scheduler, failures=failures
            )
        elif callable(engine):
            if failures is not None:
                raise ValueError(
                    "failure injection requires a registered network "
                    "backend with the 'failure-injection' capability "
                    "(e.g. 'batched'); got a bare callable"
                )
            self._make = engine
        else:
            raise ValueError(f"unknown engine {engine!r}")
        self.words_per_edge = words_per_edge
        self.eps = eps

    def run_one(
        self,
        graph: nx.Graph,
        spec: ProgramSpec,
        family: str = "custom",
        seed: int = 0,
        max_rounds: int | None = None,
    ) -> ScenarioResult:
        """Run one program spec on one prepared graph and price the rounds.

        Missing edge weights default to 1.0; the measured
        :class:`~repro.model.network.RunStats` are compared against the
        spec's declared primitive price and the Theorem 1.1 bound.
        """
        for _, _, data in graph.edges(data=True):
            data.setdefault("weight", 1.0)
        net = self._make(graph, self.words_per_edge)
        stats = net.run(spec.build(graph), max_rounds=max_rounds)
        diameter = nx.diameter(graph)
        model = RoundCostModel(net.n, diameter)
        log = PrimitiveLog()
        for primitive, count in spec.primitives.items():
            log.record(primitive, count)
        priced = model.total_rounds(log)
        bound = model.theorem_1_1_bound(self.eps)
        return ScenarioResult(
            family=family,
            n=net.n,
            seed=seed,
            program=spec.name,
            stats=stats,
            diameter=diameter,
            priced_rounds=priced,
            thm11_bound=bound,
            within_price=stats.rounds <= priced,
            within_thm11=stats.rounds <= bound,
            log=log,
        )

    def sweep(
        self,
        families: Iterable[str],
        sizes: Iterable[int],
        seeds: Iterable[int],
        specs: Sequence[ProgramSpec] | None = None,
    ) -> list[ScenarioResult]:
        """Cross every family × size × seed with every spec; collect results.

        For parallel *solver* sweeps with caching see
        :func:`repro.analysis.sweep.run_sweep`; this in-process sweep is
        about engine behavior (rounds/messages vs the cost model).
        """
        specs = tuple(specs) if specs is not None else default_specs()
        results = []
        for family in families:
            for n in sizes:
                for seed in seeds:
                    graph = make_family_instance(family, n, seed=seed)
                    for spec in specs:
                        results.append(
                            self.run_one(graph, spec, family=family, seed=seed)
                        )
        return results
