"""The batched CONGEST engine: CSR adjacency + event-driven round loop.

Semantics are those of :class:`repro.model.network.Network` (the reference
oracle, kept for differential tests): same :class:`Context` objects, same
``NodeProgram`` protocol, same :class:`RunStats` fields, same
:class:`~repro.exceptions.SimulationError` conditions in the same order
(non-neighbor send, non-tuple payload, non-numeric word, bandwidth budget).
What changes is the data layout and the scheduling:

* adjacency is built once into CSR arrays (``indptr``/``indices``/
  ``weights``; numpy-backed when numpy is importable, list-backed
  otherwise) instead of being re-queried from networkx;
* inbox dicts are double-buffered per node: sends are written straight
  into the back buffer during the step loop (no staging list, no n fresh
  dicts per round) and the buffers swap at the round edge;
* the scheduler picks which nodes to step: the default
  :class:`~repro.sim.schedulers.EventDrivenScheduler` steps only nodes
  that received a message or asked to continue, so idle regions of the
  graph cost nothing — this is where the order-of-magnitude speedup over
  the legacy per-node loop comes from.

Word checks run through a fast-path type set (``int``/``float``/``bool``)
with an ``isinstance(x, numbers.Number)`` fallback, so numpy scalars and
other exotic numerics are accepted exactly as the legacy engine accepts
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Number

import networkx as nx

from repro.exceptions import SimulationError
from repro.model.network import Context, NodeProgram, Payload, RunStats
from repro.sim.failures import FailurePlan
from repro.sim.schedulers import resolve_scheduler

try:  # optional fast path: compact arrays for the CSR adjacency
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = ["BatchedNetwork", "RoundRecord"]

_FAST_WORD_TYPES = frozenset((int, float, bool))


@dataclass
class RoundRecord:
    """Per-round accounting emitted when ``trace=True``."""

    round: int
    stepped: int  # nodes that got a step() call this round
    messages: int  # messages sent (validated + counted)
    words: int  # total words sent
    delivered: int  # messages actually delivered (sent - dropped)
    dropped: int  # messages lost to failure injection


class BatchedNetwork:
    """A CONGEST network over an undirected weighted graph (0..n-1 nodes).

    Drop-in replacement for :class:`repro.model.network.Network`: exposes
    the same ``graph``/``n``/``words_per_edge``/``contexts`` attributes and
    the same ``run``/``reset_state`` methods, so program helpers like
    ``DistributedBFS.results(net)`` and :class:`repro.model.mst.BoruvkaMST`
    work unchanged.

    Parameters
    ----------
    scheduler:
        ``"event"`` (default), ``"sync"``, or a scheduler instance from
        :mod:`repro.sim.schedulers`.
    failures:
        an optional :class:`~repro.sim.failures.FailurePlan`; messages
        crossing a failed edge are validated and counted but not delivered.
    trace:
        when true, ``self.trace`` holds one :class:`RoundRecord` per
        counted round of the most recent ``run``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        words_per_edge: int = 4,
        scheduler=None,
        failures: FailurePlan | None = None,
        trace: bool = False,
    ) -> None:
        self.graph = graph
        self.n = graph.number_of_nodes()
        if set(graph.nodes()) != set(range(self.n)):
            raise SimulationError("network nodes must be 0..n-1")
        self.words_per_edge = words_per_edge
        self.scheduler = resolve_scheduler(scheduler)
        self.failures = failures
        self.trace: list[RoundRecord] | None = [] if trace else None
        self.dropped = 0

        # ---- CSR adjacency ------------------------------------------------
        nbrs = [sorted(graph.neighbors(v)) for v in range(self.n)]
        indptr = [0] * (self.n + 1)
        for v in range(self.n):
            indptr[v + 1] = indptr[v] + len(nbrs[v])
        indices: list[int] = []
        csr_weights: list[float] = []
        for v in range(self.n):
            row = graph[v]
            for u in nbrs[v]:
                indices.append(u)
                csr_weights.append(float(row[u].get("weight", 1.0)))

        self.contexts = [
            Context(
                node=v,
                neighbors=tuple(nbrs[v]),
                edge_weights=dict(
                    zip(nbrs[v], csr_weights[indptr[v] : indptr[v + 1]])
                ),
                n=self.n,
            )
            for v in range(self.n)
        ]

        if _np is not None:
            self.indptr = _np.asarray(indptr, dtype=_np.int64)
            self.indices = _np.asarray(indices, dtype=_np.int64)
            self.csr_weights = _np.asarray(csr_weights, dtype=_np.float64)
        else:
            self.indptr = indptr
            self.indices = indices
            self.csr_weights = csr_weights

        # Double-buffered inbox dicts: programs read the front buffer while
        # sends are written straight into the back buffer (no staging
        # list), and the buffers swap at the round edge.  A stepped node's
        # front dict is handed to the program for keeps and replaced.
        self._inboxes: list[dict[int, Payload]] = [{} for _ in range(self.n)]
        self._inboxes_back: list[dict[int, Payload]] = [{} for _ in range(self.n)]

    # -- mirrors of the legacy API ----------------------------------------

    def reset_state(self) -> None:
        """Clear every node's program state (contexts are reused across runs)."""
        for ctx in self.contexts:
            ctx.state = {}

    def degree(self, v: int) -> int:
        """Number of neighbors of node ``v`` (CSR row length)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def adjacency(self):
        """The raw CSR triple ``(indptr, indices, weights)``."""
        return self.indptr, self.indices, self.csr_weights

    def _check_payload(self, sender: int, receiver: int, payload: Payload) -> int:
        if not isinstance(payload, tuple):
            raise SimulationError(
                f"node {sender} sent a non-tuple payload to {receiver}"
            )
        for x in payload:
            if type(x) not in _FAST_WORD_TYPES and not isinstance(x, Number):
                raise SimulationError(
                    f"node {sender} sent non-numeric word {x!r} to {receiver}"
                )
        words = len(payload)
        if words > self.words_per_edge:
            raise SimulationError(
                f"node {sender} sent {words} words to {receiver}; the CONGEST "
                f"budget is {self.words_per_edge} words (O(log n) bits)"
            )
        return words

    # -- the round loop -----------------------------------------------------

    def run(self, program: NodeProgram, max_rounds: int | None = None) -> RunStats:
        """Drive the program to quiescence; returns measured statistics.

        Statistics match the legacy engine field-for-field: ``rounds``
        counts rounds in which a message was sent or a node asked to
        continue; the final silent round is uncounted; hitting
        ``max_rounds`` leaves ``quiescent`` false.
        """
        n = self.n
        limit = max_rounds if max_rounds is not None else 20 * n + 50
        contexts = self.contexts
        for ctx in contexts:
            program.setup(ctx)

        stats = RunStats()
        front = self._inboxes
        back = self._inboxes_back
        for buf in (front, back):  # drop leftovers from a truncated run
            for v in range(n):
                if buf[v]:
                    buf[v] = {}
        trace = self.trace
        if trace is not None:
            trace.clear()
        failures = self.failures
        inject = failures is not None and not failures.empty()
        scheduler = self.scheduler
        # custom schedulers only have to provide select(); absent the
        # tracks_activity hint we conservatively keep the woken set
        track_woken = getattr(scheduler, "tracks_activity", True)
        self.dropped = 0  # per-run mirror of stats.dropped (plans stay immutable)
        step = program.step
        wants = program.wants_to_continue

        woken: set[int] = set(range(n))  # round 1 steps everyone, like setup
        continuing: set[int] = set()

        for _ in range(limit):
            # Sends land directly in the back buffer: a node stepped later
            # this round still reads the front buffer, preserving the
            # synchronous delivered-next-round semantics without staging.
            new_continuing: set[int] = set()
            new_woken: set[int] = set()
            stepped = 0
            msg_count = 0
            round_words = 0
            dropped = 0
            round_no = stats.rounds + 1  # the round these sends belong to
            for v in scheduler.select(n, woken, continuing):
                ctx = contexts[v]
                inbox = front[v]
                out = step(ctx, inbox) or {}
                # the program may retain the dict it was handed (legacy hands
                # out fresh dicts every round); give it away unconditionally
                # so later deliveries never mutate a retained inbox
                front[v] = {}
                stepped += 1
                if out:
                    ew = ctx.edge_weights
                    for receiver, payload in out.items():
                        if receiver not in ew:
                            raise SimulationError(
                                f"node {v} sent to non-neighbor {receiver}"
                            )
                        words = self._check_payload(v, receiver, payload)
                        msg_count += 1
                        if words > stats.max_words:
                            stats.max_words = words
                        round_words += words
                        if inject and failures.is_down(round_no, v, receiver):
                            dropped += 1
                        else:
                            back[receiver][v] = payload
                            if track_woken:
                                new_woken.add(receiver)
                if wants(ctx):
                    new_continuing.add(v)

            stats.messages += msg_count
            if not msg_count and not new_continuing:
                # Unstepped nodes are idle by the event-driven contract;
                # scan them anyway (wants is a pure predicate) so a
                # contract-violating program is woken, not wrongly halted.
                stragglers = {v for v in range(n) if wants(contexts[v])}
                if not stragglers:
                    stats.quiescent = True
                    break
                new_continuing = stragglers

            stats.rounds += 1
            if dropped:
                stats.dropped += dropped
                self.dropped += dropped
            front, back = back, front
            woken = new_woken
            continuing = new_continuing
            if trace is not None:
                trace.append(
                    RoundRecord(
                        round=round_no,
                        stepped=stepped,
                        messages=msg_count,
                        words=round_words,
                        delivered=msg_count - dropped,
                        dropped=dropped,
                    )
                )
        return stats
