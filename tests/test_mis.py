"""Unit tests for the anchor/MIS machinery (repro.core.mis)."""

from __future__ import annotations

import random

import pytest

from repro.core.instance import TAPInstance
from repro.core.mis import (
    EpochContext,
    build_segment_layer_highway,
    global_candidates,
    global_mis,
    local_groups,
    scan_chain,
)
from repro.trees.rooted import RootedTree

from conftest import random_tap_instance, random_tree, random_vertical_edges


def path_instance(n=30, m=40, seed=1, segment_size=4) -> TAPInstance:
    rng = random.Random(seed)
    tree = random_tree(n, shape="path")
    links = []
    for _ in range(m):
        dec = rng.randrange(1, n)
        anc = rng.randrange(0, dec)
        links.append((dec, anc, rng.uniform(1, 50)))
    links.append((n - 1, 0, 100.0))
    return TAPInstance.from_links(tree, links, segment_size=segment_size)


class TestConflicts:
    def test_conflict_requires_same_chain(self):
        inst = random_tap_instance(40, 80, seed=2)
        ctx = EpochContext(inst, 1, list(range(len(inst.edges))))
        tree = inst.tree
        for t1 in list(tree.tree_edges())[:20]:
            for t2 in list(tree.tree_edges())[:20]:
                if not (tree.is_ancestor(t1, t2) or tree.is_ancestor(t2, t1)):
                    assert not ctx.conflicts(t1, t2)

    def test_conflict_exact_vs_brute_force(self):
        inst = path_instance(seed=3)
        x = list(range(len(inst.edges)))
        ctx = EpochContext(inst, 1, x)
        tree = inst.tree
        lay = inst.layering
        for t1 in tree.tree_edges():
            for t2 in tree.tree_edges():
                if lay.layer[t1] != lay.layer[t2]:
                    continue  # the petal argument is exact for same-layer pairs
                expected = any(
                    inst.covers(eid, t1) and inst.covers(eid, t2) for eid in x
                )
                assert ctx.conflicts(t1, t2) == expected

    def test_self_conflict(self):
        inst = path_instance(seed=4)
        ctx = EpochContext(inst, 1, list(range(len(inst.edges))))
        assert ctx.conflicts(5, 5)


class TestGlobalMis:
    def test_result_is_independent_and_maximal(self):
        inst = path_instance(seed=5)
        x = list(range(len(inst.edges)))
        ctx = EpochContext(inst, 1, x)
        slh = build_segment_layer_highway(inst)
        cands = global_candidates(ctx, 1, slh)
        mis = global_mis(ctx, cands)
        for i, a in enumerate(mis):
            for b in mis[i + 1 :]:
                assert not ctx.conflicts(a, b)
        for c in cands:
            if c not in mis:
                assert any(ctx.conflicts(c, g) for g in mis)

    def test_deepest_first_rejection_coverage(self):
        # The property the deepest-first order buys (DESIGN.md): every
        # rejected candidate is covered by a *chosen* anchor's higher petal.
        inst = path_instance(seed=6)
        x = list(range(len(inst.edges)))
        ctx = EpochContext(inst, 1, x)
        slh = build_segment_layer_highway(inst)
        cands = global_candidates(ctx, 1, slh)
        mis = global_mis(ctx, cands)
        for c in cands:
            if c in mis:
                continue
            assert any(
                ctx.higher_petal(g) != -1 and inst.covers(ctx.higher_petal(g), c)
                for g in mis
            ), f"rejected candidate {c} uncovered by chosen higher petals"

    def test_candidates_are_highway_extremes(self):
        inst = path_instance(seed=7)
        ctx = EpochContext(inst, 1, list(range(len(inst.edges))))
        slh = build_segment_layer_highway(inst)
        cands = global_candidates(ctx, 1, slh)
        # on a path every edge is a highway edge; candidates come in at most
        # two per segment
        per_segment: dict[int, int] = {}
        for t in cands:
            sid = inst.segments.seg_of_edge[t]
            per_segment[sid] = per_segment.get(sid, 0) + 1
        assert all(c <= 2 for c in per_segment.values())


class TestScanChain:
    def test_carried_petal_blocks_covered_edges(self):
        # Chain 9..1 on a path of 10; one link (9, 0) covers everything:
        # only the deepest candidate becomes an anchor.
        tree = random_tree(10, shape="path")
        inst = TAPInstance.from_links(tree, [(9, 0, 1.0)])
        ctx = EpochContext(inst, 1, [0])
        chain = sorted(tree.tree_edges(), key=lambda t: -tree.depth[t])
        anchors, pending = scan_chain(ctx, chain, 1, add_lower=False)
        assert len(anchors) == 1
        assert anchors[0].t == 9
        assert pending == [0]

    def test_gaps_require_new_anchors(self):
        # Two disjoint short links: both chain ends become anchors.
        tree = random_tree(10, shape="path")
        inst = TAPInstance.from_links(tree, [(5, 0, 1.0), (9, 4, 1.0)])
        ctx = EpochContext(inst, 1, [0, 1])
        chain = sorted(tree.tree_edges(), key=lambda t: -tree.depth[t])
        anchors, pending = scan_chain(ctx, chain, 1, add_lower=False)
        assert [a.t for a in anchors] == [9, 4]

    def test_add_lower_appends_both_petals(self):
        tree = random_tree(8, shape="path")
        inst = TAPInstance.from_links(tree, [(7, 3, 1.0), (5, 0, 1.0)])
        ctx = EpochContext(inst, 1, [0, 1])
        chain = sorted(tree.tree_edges(), key=lambda t: -tree.depth[t])
        anchors, pending = scan_chain(ctx, chain, 1, add_lower=True)
        assert anchors[0].t == 7
        assert set(pending) >= {0}

    def test_respects_existing_y(self):
        tree = random_tree(10, shape="path")
        inst = TAPInstance.from_links(tree, [(9, 0, 1.0), (9, 5, 1.0)])
        ctx = EpochContext(inst, 1, [0, 1])
        ctx.add_to_y(0)  # everything covered already
        chain = sorted(tree.tree_edges(), key=lambda t: -tree.depth[t])
        anchors, pending = scan_chain(ctx, chain, 1, add_lower=False)
        assert anchors == [] and pending == []


class TestLocalGroups:
    def test_groups_are_bottom_up_chains(self):
        inst = random_tap_instance(50, 100, seed=8, segment_size=5)
        ctx = EpochContext(inst, 1, list(range(len(inst.edges))))
        candidates = [t for t in inst.tree.tree_edges()][:30]
        for segmented in (True, False):
            groups = local_groups(ctx, candidates, segmented)
            flat = [t for g in groups for t in g]
            assert sorted(flat) == sorted(candidates)
            for g in groups:
                depths = [inst.tree.depth[t] for t in g]
                assert depths == sorted(depths, reverse=True)

    def test_segmented_groups_refine_path_groups(self):
        inst = random_tap_instance(60, 120, seed=9, segment_size=4)
        ctx = EpochContext(inst, 1, list(range(len(inst.edges))))
        candidates = list(inst.tree.tree_edges())
        seg_groups = local_groups(ctx, candidates, True)
        path_groups = local_groups(ctx, candidates, False)
        assert len(seg_groups) >= len(path_groups)
