"""Unit tests for repro.trees.rooted.RootedTree."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NotATreeError
from repro.trees.rooted import RootedTree

from conftest import TREE_SHAPES, brute_force_lca, random_tree


class TestConstruction:
    def test_single_vertex(self):
        t = RootedTree([-1], 0)
        assert t.n == 1
        assert t.height == 0
        assert list(t.tree_edges()) == []

    def test_path(self):
        t = random_tree(5, shape="path")
        assert t.depth == [0, 1, 2, 3, 4]
        assert t.height == 4
        assert t.children[0] == [1]
        assert t.leaves() == [4]

    def test_star(self):
        t = random_tree(6, shape="star")
        assert t.height == 1
        assert sorted(t.leaves()) == [1, 2, 3, 4, 5]
        assert t.is_junction(0)
        assert not t.is_junction(3)

    def test_root_parent_self_allowed(self):
        t = RootedTree([0, 0], 0)
        assert t.parent[0] == -1

    def test_rejects_cycle(self):
        with pytest.raises(NotATreeError):
            RootedTree([-1, 2, 1], 0)

    def test_rejects_disconnected(self):
        # vertex 2 points to itself, unreachable from the root
        with pytest.raises(NotATreeError):
            RootedTree([-1, 0, 2], 0)

    def test_rejects_bad_root(self):
        with pytest.raises(NotATreeError):
            RootedTree([-1, 0], 5)

    def test_from_edges(self):
        t = RootedTree.from_edges(4, [(0, 1), (1, 2), (1, 3)], root=0)
        assert t.parent[2] == 1
        assert t.depth[3] == 2

    def test_from_edges_rejects_extra_edge(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(3, [(0, 1), (1, 2), (2, 0)])

    def test_from_edges_rejects_forest(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(4, [(0, 1), (1, 2)], root=0)

    def test_nonzero_root(self):
        t = RootedTree.from_edges(4, [(0, 1), (1, 2), (2, 3)], root=3)
        assert t.root == 3
        assert t.depth[0] == 3


class TestOrderAndIntervals:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_preorder_parents_first(self, shape):
        t = random_tree(60, seed=3, shape=shape)
        seen = set()
        for v in t.order:
            p = t.parent[v]
            assert p == -1 or p in seen
            seen.add(v)
        assert len(seen) == t.n

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_interval_ancestor_test(self, shape):
        t = random_tree(40, seed=5, shape=shape)
        for u in range(t.n):
            ancestors = set()
            x = u
            while x != -1:
                ancestors.add(x)
                x = t.parent[x]
            for w in range(t.n):
                assert t.is_ancestor(w, u) == (w in ancestors)
                assert t.is_strict_ancestor(w, u) == (w in ancestors and w != u)

    def test_subtree_sizes(self):
        t = random_tree(50, seed=9)
        sizes = t.subtree_sizes()
        assert sizes[t.root] == t.n
        for v in range(t.n):
            assert sizes[v] == 1 + sum(sizes[c] for c in t.children[v])


class TestLca:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_lca_matches_brute_force(self, shape):
        t = random_tree(35, seed=7, shape=shape)
        for u in range(t.n):
            for v in range(t.n):
                assert t.lca(u, v) == brute_force_lca(t, u, v)

    def test_lca_random_large(self):
        t = random_tree(800, seed=11)
        rng = random.Random(1)
        for _ in range(500):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            assert t.lca(u, v) == brute_force_lca(t, u, v)

    def test_ancestor_at_depth(self):
        t = random_tree(100, seed=2)
        for v in range(t.n):
            x = v
            for d in range(t.depth[v], -1, -1):
                assert t.ancestor_at_depth(v, d) == x
                x = t.parent[x]

    def test_ancestor_at_depth_rejects_deeper(self):
        t = random_tree(10, seed=2)
        leaf = t.leaves()[0]
        with pytest.raises(ValueError):
            t.ancestor_at_depth(t.root, t.depth[leaf] + 1)


class TestPathsAndCoverage:
    def test_chain(self):
        t = random_tree(30, seed=4)
        for v in range(t.n):
            chain = list(t.chain(v, t.root))
            assert len(chain) == t.depth[v]
            if chain:
                assert chain[0] == v
                assert t.parent[chain[-1]] == t.root

    def test_chain_rejects_non_ancestor(self):
        t = random_tree(30, seed=4, shape="star")
        with pytest.raises(ValueError):
            list(t.chain(1, 2))

    def test_covers_vertical_matches_chain(self):
        t = random_tree(25, seed=8)
        for dec in range(t.n):
            for d in range(t.depth[dec] + 1):
                anc = t.ancestor_at_depth(dec, d)
                on_chain = set(t.chain(dec, anc))
                for tt in t.tree_edges():
                    assert t.covers_vertical(dec, anc, tt) == (tt in on_chain)

    def test_path_vertices_and_edges(self):
        t = random_tree(40, seed=10)
        rng = random.Random(0)
        for _ in range(100):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            verts = t.path_vertices(u, v)
            assert verts[0] == u and verts[-1] == v
            # consecutive vertices are adjacent in the tree
            for a, b in zip(verts, verts[1:]):
                assert t.parent[a] == b or t.parent[b] == a
            edges = t.path_edges(u, v)
            assert len(edges) == len(verts) - 1
            assert len(set(edges)) == len(edges)

    def test_path_same_vertex(self):
        t = random_tree(10, seed=1)
        assert t.path_vertices(3, 3) == [3]
        assert t.path_edges(3, 3) == []
