"""Shared test helpers: random trees, random vertical-edge instances."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.trees.rooted import RootedTree


def random_tree(n: int, seed: int = 0, shape: str = "uniform") -> RootedTree:
    """A random rooted tree on ``n`` vertices.

    Shapes: ``uniform`` (random attachment), ``path``, ``star``,
    ``caterpillar`` (path with pendant leaves), ``binary`` (random binary),
    ``broom`` (path ending in a star).
    """
    rng = random.Random(seed)
    parent = [-1] * n
    if shape == "uniform":
        for v in range(1, n):
            parent[v] = rng.randrange(v)
    elif shape == "path":
        for v in range(1, n):
            parent[v] = v - 1
    elif shape == "star":
        for v in range(1, n):
            parent[v] = 0
    elif shape == "caterpillar":
        spine = max(1, n // 2)
        for v in range(1, spine):
            parent[v] = v - 1
        for v in range(spine, n):
            parent[v] = rng.randrange(spine)
    elif shape == "binary":
        slots = [0, 0]
        for v in range(1, n):
            i = rng.randrange(len(slots))
            parent[v] = slots[i]
            slots[i] = v  # replace one slot; keeps branching factor <= 2-ish
            slots.append(v)
            if len(slots) > 64:
                slots.pop(rng.randrange(len(slots)))
    elif shape == "broom":
        spine = max(1, (2 * n) // 3)
        for v in range(1, spine):
            parent[v] = v - 1
        for v in range(spine, n):
            parent[v] = spine - 1
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return RootedTree(parent, 0)


TREE_SHAPES = ["uniform", "path", "star", "caterpillar", "binary", "broom"]


def random_vertical_edges(
    tree: RootedTree, m: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Random ``(dec, anc)`` vertical non-tree edges (anc strict ancestor)."""
    rng = random.Random(seed)
    out = []
    candidates = [v for v in range(tree.n) if tree.depth[v] >= 1]
    for _ in range(m):
        dec = rng.choice(candidates)
        d = rng.randrange(tree.depth[dec])
        anc = tree.ancestor_at_depth(dec, d)
        out.append((dec, anc))
    return out


def random_tap_links(
    tree: RootedTree, m: int, seed: int = 0, unweighted: bool = False
) -> list[tuple[int, int, float]]:
    """Random links making a feasible weighted TAP instance.

    A mix of vertical and arbitrary links plus a leaf-to-root link per leaf
    (so every tree edge is coverable).
    """
    rng = random.Random(seed)

    def w() -> float:
        return 1.0 if unweighted else rng.uniform(1.0, 100.0)

    links: list[tuple[int, int, float]] = []
    for dec, anc in random_vertical_edges(tree, m // 2, seed=seed + 1):
        links.append((dec, anc, w()))
    for _ in range(m - m // 2):
        u, v = rng.randrange(tree.n), rng.randrange(tree.n)
        if u != v:
            links.append((u, v, w()))
    for leaf in tree.leaves():
        links.append((leaf, tree.root, 2.0 if unweighted else rng.uniform(50, 200)))
    return links


def random_tap_instance(
    n: int,
    m: int,
    seed: int = 0,
    shape: str = "uniform",
    segment_size: int | None = None,
):
    """A feasible TAPInstance on a random tree (import-light helper)."""
    from repro.core.instance import TAPInstance

    tree = random_tree(n, seed=seed, shape=shape)
    links = random_tap_links(tree, m, seed=seed + 17)
    return TAPInstance.from_links(tree, links, segment_size=segment_size)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


def brute_force_lca(tree: RootedTree, u: int, v: int) -> int:
    """Reference LCA by walking parents."""
    anc_u = set()
    x = u
    while x != -1:
        anc_u.add(x)
        x = tree.parent[x]
    x = v
    while x not in anc_u:
        x = tree.parent[x]
    return x


def tree_as_networkx(tree: RootedTree) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(tree.n))
    for v in tree.tree_edges():
        g.add_edge(v, tree.parent[v])
    return g
