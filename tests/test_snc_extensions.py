"""Tests for the tau-SNC extension (Section 3.6.1's generalization)."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest

from repro.extensions.snc import (
    interval_cover_instance,
    snc_unweighted_cover,
    vertex_cover_instance,
)


def brute_force_vertex_cover(edges) -> int:
    vertices = sorted({v for e in edges for v in e})
    for k in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, k):
            s = set(subset)
            if all(u in s or v in s for u, v in edges):
                return k
    return len(vertices)


def brute_force_interval_cover(points, intervals) -> int:
    for k in range(len(intervals) + 1):
        for subset in itertools.combinations(intervals, k):
            if all(any(a <= p <= b for a, b in subset) for p in points):
                return k
    raise AssertionError("infeasible")


class TestVertexCover:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_two_approx_vs_brute_force(self, seed):
        g = nx.gnp_random_graph(10, 0.35, seed=seed)
        edges = list(g.edges())
        if not edges:
            return
        inst = vertex_cover_instance(edges)
        res = snc_unweighted_cover(inst)
        opt = brute_force_vertex_cover(edges)
        assert len(res.chosen) <= 2 * opt
        # result is a valid cover
        s = set(res.chosen)
        assert all(u in s or v in s for u, v in edges)

    def test_mis_is_a_matching(self):
        g = nx.gnp_random_graph(14, 0.3, seed=7)
        inst = vertex_cover_instance(list(g.edges()))
        res = snc_unweighted_cover(inst)
        used = [v for e in res.mis for v in e]
        assert len(used) == len(set(used)), "MIS elements must form a matching"

    def test_certified_ratio_at_most_tau(self):
        g = nx.gnp_random_graph(20, 0.25, seed=9)
        inst = vertex_cover_instance(list(g.edges()))
        res = snc_unweighted_cover(inst)
        assert res.certified_ratio <= res.tau + 1e-9

    def test_star_graph(self):
        edges = [(0, i) for i in range(1, 6)]
        res = snc_unweighted_cover(vertex_cover_instance(edges))
        # matching has one edge; cover = its 2 endpoints; OPT = 1
        assert len(res.mis) == 1
        assert len(res.chosen) == 2


class TestIntervalCover:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_two_approx_vs_brute_force(self, seed):
        rng = random.Random(seed)
        points = sorted(rng.uniform(0, 10) for _ in range(8))
        intervals = []
        for _ in range(10):
            a = rng.uniform(0, 9)
            intervals.append((a, a + rng.uniform(0.5, 4)))
        # ensure feasibility
        intervals.append((min(points) - 1, max(points) + 1))
        inst = interval_cover_instance(points, intervals)
        res = snc_unweighted_cover(inst)
        opt = brute_force_interval_cover(points, intervals)
        assert len(res.chosen) <= 2 * opt
        assert res.certified_ratio <= 2 + 1e-9
        chosen = set(res.chosen)
        assert all(any(a <= p <= b for a, b in chosen) for p in points)

    def test_single_big_interval(self):
        inst = interval_cover_instance([1, 2, 3], [(0, 5)])
        res = snc_unweighted_cover(inst)
        assert res.chosen == [(0, 5)]
        assert len(res.mis) == 1

    def test_uncoverable_point(self):
        inst = interval_cover_instance([100.0], [(0, 5)])
        with pytest.raises(ValueError):
            snc_unweighted_cover(inst)

    def test_disjoint_points_need_many(self):
        points = [0, 10, 20, 30]
        intervals = [(p - 1, p + 1) for p in points]
        res = snc_unweighted_cover(interval_cover_instance(points, intervals))
        assert len(res.mis) == 4
        assert len(res.chosen) == 4
        assert res.certified_ratio == pytest.approx(1.0)
