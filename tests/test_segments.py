"""Tests for the segment decomposition (paper Section 4.2.1)."""

from __future__ import annotations

import math

import pytest

from repro.decomp.segments import SegmentDecomposition

from conftest import TREE_SHAPES, random_tree


@pytest.mark.parametrize("shape", TREE_SHAPES)
class TestInvariants:
    def test_edges_partitioned(self, shape):
        t = random_tree(120, seed=1, shape=shape)
        dec = SegmentDecomposition(t)
        for v in t.tree_edges():
            assert 0 <= dec.seg_of_edge[v] < dec.num_segments
        assert dec.seg_of_edge[t.root] == -1
        # Each highway edge is in exactly the segment listing it.
        for seg in dec.segments:
            for e in seg.highway_edges:
                assert dec.seg_of_edge[e] == seg.sid
                assert dec.on_highway[e]

    def test_highway_is_vertical_chain(self, shape):
        t = random_tree(120, seed=2, shape=shape)
        dec = SegmentDecomposition(t)
        for seg in dec.segments:
            assert seg.highway[0] == seg.r
            assert seg.highway[-1] == seg.d
            for a, b in zip(seg.highway, seg.highway[1:]):
                assert t.parent[b] == a

    def test_r_is_ancestor_of_all_segment_vertices(self, shape):
        t = random_tree(120, seed=3, shape=shape)
        dec = SegmentDecomposition(t)
        for seg in dec.segments:
            for v in list(seg.highway) + seg.attached:
                assert t.is_ancestor(seg.r, v)

    def test_boundary_property(self, shape):
        # Only r_S and d_S may touch other segments via tree edges.
        t = random_tree(120, seed=4, shape=shape)
        dec = SegmentDecomposition(t)
        for v in t.tree_edges():
            sid = dec.seg_of_edge[v]
            p = t.parent[v]
            # The edge (v, p) is inside segment sid; if p's other edges lie in
            # different segments, p must be a boundary vertex of sid.
            neighbours = set()
            if p != t.root:
                neighbours.add(dec.seg_of_edge[p])
            for c in t.children[p]:
                neighbours.add(dec.seg_of_edge[c])
            if any(s != sid for s in neighbours):
                seg = dec.segments[sid]
                assert p in (seg.r, seg.d) or p not in (
                    set(seg.highway[1:-1]) | set(seg.attached)
                )

    def test_attached_subtrees_do_not_leave_segment(self, shape):
        t = random_tree(120, seed=5, shape=shape)
        dec = SegmentDecomposition(t)
        for seg in dec.segments:
            for u in seg.attached:
                # every child of an attached vertex is attached to the same segment
                for c in t.children[u]:
                    assert dec.seg_of_edge[c] == seg.sid

    def test_counts_and_diameters(self, shape):
        n = 400
        t = random_tree(n, seed=6, shape=shape)
        dec = SegmentDecomposition(t)
        stats = dec.stats()
        s = dec.s
        # O(sqrt n) segments of diameter O(sqrt n); constants per DESIGN.md.
        assert stats["num_segments"] <= 4 * math.sqrt(n) + 4
        assert stats["max_diameter"] <= 3 * s + 2


class TestSkeleton:
    def test_skeleton_parent_points_up(self):
        t = random_tree(200, seed=7)
        dec = SegmentDecomposition(t)
        for d, r in dec.skeleton_parent.items():
            assert t.is_strict_ancestor(r, d)

    def test_boundaries_are_rs_or_ds(self):
        t = random_tree(200, seed=8)
        dec = SegmentDecomposition(t)
        for seg in dec.segments:
            assert seg.r in dec.boundary
            assert seg.d in dec.boundary

    def test_tiny_trees(self):
        for n in (1, 2, 3, 5):
            t = random_tree(n, seed=9)
            dec = SegmentDecomposition(t)
            covered = [dec.seg_of_edge[v] for v in t.tree_edges()]
            assert all(c >= 0 for c in covered)

    def test_custom_s(self):
        t = random_tree(300, seed=10)
        dec = SegmentDecomposition(t, s=10)
        for seg in dec.segments:
            assert len(seg.highway_edges) <= 10
