"""Engine-contract tests for ``repro.sim``: the batched engine must enforce
the CONGEST budget, reject malformed sends, and truncate at ``max_rounds``
exactly as the legacy ``Network`` does — same exception type, same message
shape.  Plus the batched-only surface: traces, schedulers, CSR adjacency.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import SimulationError
from repro.graphs import cycle_with_chords, grid_graph
from repro.model.network import Network
from repro.model.programs import DistributedBFS
from repro.sim import (
    BatchedNetwork,
    EventDrivenScheduler,
    RandomGossip,
    SynchronousScheduler,
)
from repro.sim.schedulers import resolve_scheduler

ENGINES = [Network, BatchedNetwork, lambda g, **kw: BatchedNetwork(g, scheduler="sync", **kw)]
ENGINE_IDS = ["legacy", "batched-event", "batched-sync"]


def _weighted(g: nx.Graph) -> nx.Graph:
    for _, _, d in g.edges(data=True):
        d.setdefault("weight", 1.0)
    return g


class _OneShot:
    """Sends a fixed outbox from node 0 in round 1, then stops."""

    def __init__(self, outbox):
        self.outbox = outbox

    def setup(self, ctx):
        ctx.state["sent"] = False

    def step(self, ctx, inbox):
        if ctx.node == 0 and not ctx.state["sent"]:
            ctx.state["sent"] = True
            return self.outbox
        return {}

    def wants_to_continue(self, ctx):
        return False


class _Ticker:
    """Pure state machine that counts down without ever messaging."""

    def __init__(self, ticks):
        self.ticks = ticks

    def setup(self, ctx):
        ctx.state["left"] = self.ticks if ctx.node == 0 else 0

    def step(self, ctx, inbox):
        if ctx.state["left"]:
            ctx.state["left"] -= 1
        return {}

    def wants_to_continue(self, ctx):
        return ctx.state["left"] > 0


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
class TestBudgetEnforcementParity:
    def test_oversized_payload(self, engine):
        net = engine(_weighted(nx.path_graph(3)), words_per_edge=2)
        with pytest.raises(SimulationError, match="budget is 2 words"):
            net.run(_OneShot({1: (1, 2, 3)}))

    def test_non_tuple_payload(self, engine):
        net = engine(_weighted(nx.path_graph(3)))
        with pytest.raises(SimulationError, match="non-tuple payload"):
            net.run(_OneShot({1: [1, 2]}))

    def test_non_numeric_word(self, engine):
        net = engine(_weighted(nx.path_graph(3)))
        with pytest.raises(SimulationError, match="non-numeric word"):
            net.run(_OneShot({1: ("x",)}))

    def test_non_neighbor_send(self, engine):
        net = engine(_weighted(nx.path_graph(3)))
        with pytest.raises(SimulationError, match="sent to non-neighbor 2"):
            net.run(_OneShot({2: (1,)}))

    def test_numpy_scalars_accepted(self, engine):
        np = pytest.importorskip("numpy")
        net = engine(_weighted(nx.path_graph(3)))
        stats = net.run(_OneShot({1: (np.int64(4), np.float64(0.5))}))
        assert stats.messages == 1
        assert stats.max_words == 2

    def test_non_compact_node_labels(self, engine):
        g = nx.Graph()
        g.add_edge(0, 7, weight=1.0)
        with pytest.raises(SimulationError, match="0..n-1"):
            engine(g)

    def test_max_rounds_truncation(self, engine):
        net = engine(_weighted(nx.path_graph(4)))
        stats = net.run(_Ticker(ticks=50), max_rounds=5)
        assert stats.rounds == 5
        assert not stats.quiescent

    def test_quiescence_uncounted_final_round(self, engine):
        # ticks=3: the step that zeroes the counter happens in an uncounted
        # silent round, so only 2 rounds are billed — in both engines
        net = engine(_weighted(nx.path_graph(4)))
        stats = net.run(_Ticker(ticks=3))
        assert stats.rounds == 2
        assert stats.quiescent
        assert stats.messages == 0


class TestBatchedSurface:
    def test_trace_accounts_every_message(self):
        g = cycle_with_chords(25, 10, seed=4)
        net = BatchedNetwork(g, trace=True)
        stats = net.run(RandomGossip(seed=3))
        assert len(net.trace) == stats.rounds
        assert sum(r.messages for r in net.trace) == stats.messages
        assert all(r.dropped == 0 and r.delivered == r.messages for r in net.trace)
        assert [r.round for r in net.trace] == list(range(1, stats.rounds + 1))
        assert max((r.words // max(r.messages, 1) for r in net.trace), default=0) \
            <= net.words_per_edge

    def test_trace_resets_between_runs(self):
        g = cycle_with_chords(20, 5, seed=1)
        net = BatchedNetwork(g, trace=True)
        net.run(DistributedBFS(0))
        first = list(net.trace)
        net.reset_state()
        stats = net.run(DistributedBFS(0))
        assert len(net.trace) == stats.rounds
        assert [r.messages for r in net.trace] == [r.messages for r in first]

    def test_retained_inbox_never_mutated(self):
        # a program that stashes the (possibly empty) inbox dict it was
        # handed must never see the engine write later deliveries into it —
        # the legacy engine hands out fresh dicts every round

        class Hoarder:
            def setup(self, ctx):
                ctx.state.update(kept=None, pinged=False)

            def step(self, ctx, inbox):
                if ctx.state["kept"] is None:
                    ctx.state["kept"] = inbox  # retain round-1 empty inbox
                if ctx.node == 0 and not ctx.state["pinged"]:
                    ctx.state["pinged"] = True
                    return {u: (1,) for u in ctx.neighbors}
                return {}

            def wants_to_continue(self, ctx):
                return False

        for make in (Network, BatchedNetwork):
            net = make(_weighted(nx.path_graph(4)))
            net.run(Hoarder())
            assert [c.state["kept"] for c in net.contexts] == [{}] * 4

    def test_reuse_after_truncation(self):
        # leftover undelivered inboxes from a truncated run must not leak
        # into the next run
        g = _weighted(nx.path_graph(10))
        net = BatchedNetwork(g)
        net.run(DistributedBFS(0), max_rounds=2)
        net.reset_state()
        stats = net.run(DistributedBFS(0))
        oracle = Network(g).run(DistributedBFS(0))
        assert stats == oracle

    def test_csr_adjacency_matches_graph(self):
        g = grid_graph(5, 6, seed=2)
        net = BatchedNetwork(g)
        indptr, indices, weights = net.adjacency()
        for v in g.nodes():
            lo, hi = int(indptr[v]), int(indptr[v + 1])
            assert net.degree(v) == g.degree(v) == hi - lo
            row = [int(u) for u in indices[lo:hi]]
            assert row == sorted(g.neighbors(v))
            for u, w in zip(row, weights[lo:hi]):
                assert float(w) == pytest.approx(g[v][u]["weight"])

    def test_scheduler_resolution(self):
        assert isinstance(resolve_scheduler(None), EventDrivenScheduler)
        assert isinstance(resolve_scheduler("sync"), SynchronousScheduler)
        assert isinstance(resolve_scheduler("event-driven"), EventDrivenScheduler)
        sched = SynchronousScheduler()
        assert resolve_scheduler(sched) is sched
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("chaotic")
        with pytest.raises(TypeError, match="not a scheduler"):
            resolve_scheduler(42)

    def test_event_scheduler_skips_idle_nodes(self):
        # on a long path, BFS wavefronts touch O(1) nodes per round — the
        # event scheduler must step far fewer nodes than rounds * n
        g = _weighted(nx.path_graph(60))
        net = BatchedNetwork(g, trace=True)
        stats = net.run(DistributedBFS(0))
        total_steps = sum(r.stepped for r in net.trace)
        assert total_steps < stats.rounds * net.n / 4
        sync = BatchedNetwork(g, scheduler="sync", trace=True)
        sync_stats = sync.run(DistributedBFS(0))
        assert sync_stats == stats
        assert sum(r.stepped for r in sync.trace) == sync_stats.rounds * net.n
