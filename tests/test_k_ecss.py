"""The k-ECSS differential wall: every backend vs the MILP ground truth.

Three layers of trust, mirroring the 2-ECSS suite:

* **optimality band** — for ``k in {2, 3, 4}`` and every registered
  compute backend, the iterated-augmentation solver's weight sits between
  the :func:`repro.baselines.exact_milp.exact_k_ecss_milp` optimum and
  ``guarantee * optimum`` on seeded instances with ``n <= 12``;
* **feasibility exact** — every output passes the independent
  :func:`repro.core.k_ecss.assert_k_edge_connected` certificate;
* **k = 2 is the existing algorithm** — ``approximate_k_ecss(g, 2)`` is
  bit-identical to :func:`repro.core.tecss.approximate_two_ecss` through
  the core, runtime, and serve serializer entry points.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.baselines.exact_milp import exact_k_ecss_milp, exact_two_ecss_milp
from repro.core.k_ecss import (
    MAX_K,
    approximate_k_ecss,
    assert_k_edge_connected,
    degree_lower_bound,
)
from repro.core.result import KEcssResult
from repro.core.tecss import approximate_two_ecss
from repro.exceptions import NotKEdgeConnectedError
from repro.graphs import cycle_with_chords
from repro.runtime.registry import (
    backend_names,
    get_backend,
    resolve_compute,
)
from repro.runtime.session import SolverSession
from repro.serve.protocol import result_to_payload


def _runnable_compute_backends() -> list[str]:
    """Every registered compute backend that can execute here."""
    names = []
    for name in backend_names("compute"):
        try:
            resolve_compute(name)
        except Exception:
            continue  # e.g. "fast" without numpy
        names.append(name)
    return names


COMPUTE_BACKENDS = _runnable_compute_backends()


def k_connected_instance(n: int, k: int, seed: int) -> nx.Graph:
    """A seeded weighted graph with edge connectivity >= k (n <= 12)."""
    rng = random.Random(seed)
    for attempt in range(200):
        g = nx.gnp_random_graph(n, 0.6, seed=seed * 1000 + attempt)
        if g.number_of_edges() and nx.edge_connectivity(g) >= k:
            for u, v in sorted(g.edges()):
                g[u][v]["weight"] = round(rng.uniform(1.0, 20.0), 3)
            return g
    raise AssertionError(f"no {k}-connected instance at n={n}, seed={seed}")


class TestDifferentialWall:
    @pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_weight_in_optimality_band(self, backend, k, seed):
        g = k_connected_instance(8 + 2 * (seed % 3), k, seed)
        res = approximate_k_ecss(g, k, backend=backend)
        assert_k_edge_connected(g, res.edges, k)
        opt = exact_k_ecss_milp(g, k)
        assert opt.weight <= res.weight + 1e-9
        assert res.weight <= res.guarantee * opt.weight + 1e-9

    @pytest.mark.parametrize("k", [3, 4])
    def test_certified_lower_bound_is_a_lower_bound(self, k):
        g = k_connected_instance(10, k, seed=7)
        res = approximate_k_ecss(g, k)
        opt = exact_k_ecss_milp(g, k)
        assert res.certified_lower_bound <= opt.weight + 1e-9
        assert res.certified_ratio >= 1.0 - 1e-9
        triples = [(u, v, d["weight"]) for u, v, d in g.edges(data=True)]
        assert res.degree_lower_bound == pytest.approx(
            degree_lower_bound(g.number_of_nodes(), triples, k)
        )

    def test_k2_milp_equals_two_ecss_milp(self):
        g = k_connected_instance(9, 2, seed=4)
        assert exact_k_ecss_milp(g, 2).weight == pytest.approx(
            exact_two_ecss_milp(g).weight, rel=1e-9
        )


class TestK2BitIdentity:
    @pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
    def test_core_runtime_serializer_agree(self, backend):
        g = cycle_with_chords(24, 10, seed=5)
        want = result_to_payload(
            approximate_two_ecss(g, eps=0.5, backend=backend)
        )
        via_k = result_to_payload(
            approximate_k_ecss(g, 2, eps=0.5, backend=backend)
        )
        via_session = result_to_payload(
            SolverSession(g).solve(eps=0.5, backend=backend, k=2)
        )
        assert via_k == want
        assert via_session == want


class TestBackendBitIdentity:
    @pytest.mark.parametrize("k", [3, 4])
    def test_all_backends_identical(self, k):
        if len(COMPUTE_BACKENDS) < 2:
            pytest.skip("only one runnable compute backend")
        g = k_connected_instance(11, k, seed=9)
        payloads = [
            result_to_payload(approximate_k_ecss(g, k, backend=b))
            for b in COMPUTE_BACKENDS
        ]
        assert all(p == payloads[0] for p in payloads[1:])


class TestSessionReuse:
    def test_k_round_memo_is_bit_identical(self):
        g = k_connected_instance(10, 4, seed=2)
        session = SolverSession(g)
        r3 = session.solve(k=3)
        r4 = session.solve(k=4)  # extends the cached rounds of the k=3 solve
        assert isinstance(r3, KEcssResult) and isinstance(r4, KEcssResult)
        assert r4.rounds[0].edges == r3.rounds[0].edges
        fresh = SolverSession(g).solve(k=4)
        assert result_to_payload(r4) == result_to_payload(fresh)
        one_shot = approximate_k_ecss(g, 4)
        assert result_to_payload(r4) == result_to_payload(one_shot)
        times = session.stats()["build_times_s"]
        assert "kecss:3" in times and "kecss:4" in times

    def test_sim_engine_rejects_k(self):
        g = k_connected_instance(10, 3, seed=3)
        with pytest.raises(ValueError, match="k-ecss"):
            SolverSession(g).solve(engine="sim", k=3)


class TestValidation:
    def test_infeasible_input_raises(self):
        g = cycle_with_chords(16, 2, seed=1)  # 2- but not 3-edge-connected
        assert nx.edge_connectivity(g) < 3
        with pytest.raises(NotKEdgeConnectedError):
            approximate_k_ecss(g, 3)

    @pytest.mark.parametrize("k", [0, 1, -2, 2.5, True, MAX_K + 1])
    def test_bad_k_rejected(self, k):
        g = cycle_with_chords(12, 3, seed=1)
        with pytest.raises(ValueError):
            approximate_k_ecss(g, k)

    def test_engine_capability_is_enforced_in_registry(self):
        assert get_backend("engine", "local").has("k-ecss")
        assert not get_backend("engine", "sim").has("k-ecss")
        for name in COMPUTE_BACKENDS:
            concrete = resolve_compute(name)
            assert get_backend("compute", concrete).has("k-ecss")
