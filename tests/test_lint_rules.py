"""Fixture tests for the static-analysis suite (``tools.lint``).

Each rule family gets a positive fixture (a file that must trigger the
rule) and a negative fixture (the corrected idiom, which must lint
clean).  The fixtures live in ``tests/lint_fixtures/`` and masquerade as
in-scope modules via ``# lint: module=<dotted>`` directives, so scoped
rules (determinism, typed-def, serve contract) see them as solver/serve
code without the fixtures living under ``src/``.

Beyond the per-rule pairs, this module covers the suppression machinery
(a reasoned ``# lint: disable=`` comment moves a finding to the
suppressed bucket), baseline reproducibility (``--update-baseline``
output is byte-stable and matches the committed file), and the repo-wide
gate (``lint_paths()`` with the committed baseline reports zero
findings — the same invariant ``make lint`` enforces).
"""

from __future__ import annotations

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

sys.path.insert(0, REPO_ROOT)

from tools.lint.engine import (  # noqa: E402
    BASELINE_PATH,
    LintResult,
    lint_paths,
    load_project,
    render_baseline,
)
from tools.lint.registry import RULES  # noqa: E402


def run_fixture(name: str, docs: tuple = None) -> LintResult:
    """Lint a single fixture file with the baseline disabled.

    ``docs`` defaults to the repo docs (README + ARCHITECTURE) so
    documentation-consistency rules see the real error-code table; the
    CLI fixtures pass ``docs=()`` because the real docs describe the
    real subcommand surface, not the fixture's.
    """
    path = os.path.join(FIXTURES, name)
    assert os.path.exists(path), f"missing fixture {name}"
    return lint_paths(paths=[path], use_baseline=False, docs=docs)


def rules_hit(result: LintResult) -> set:
    """The distinct rule names among a result's findings."""
    return {f.rule for f in result.findings}


#: (rule, positive fixture, negative fixture) triples — one per rule.
RULE_FIXTURES = [
    ("det-set-iter", "det_set_iter_bad.py", "det_set_iter_good.py"),
    (
        "det-unseeded-random",
        "det_unseeded_random_bad.py",
        "det_unseeded_random_good.py",
    ),
    (
        "det-unstable-sort",
        "det_unstable_sort_bad.py",
        "det_unstable_sort_good.py",
    ),
    ("det-wallclock", "det_wallclock_bad.py", "det_wallclock_good.py"),
    # The repro.obs package-level exemption: a solver module reading the
    # wall clock still fires; the identical read under repro.obs is clean.
    (
        "det-wallclock",
        "obs_wallclock_solver_bad.py",
        "obs_wallclock_exempt_good.py",
    ),
    ("async-blocking-call", "async_blocking_bad.py", "async_blocking_good.py"),
    (
        "async-unawaited-coroutine",
        "async_unawaited_bad.py",
        "async_unawaited_good.py",
    ),
    ("reg-capability", "reg_capability_bad.py", "reg_capability_good.py"),
    ("proto-error-code", "proto_error_code_bad.py", "proto_error_code_good.py"),
    (
        "serve-exception-contract",
        "serve_contract_bad.py",
        "serve_contract_good.py",
    ),
    ("hyg-mutable-default",
     "hyg_mutable_default_bad.py", "hyg_mutable_default_good.py"),
    ("hyg-assert", "hyg_assert_bad.py", "hyg_assert_good.py"),
    ("lint-suppression", "suppression_bad.py", "suppression_good.py"),
    ("typed-def", "typed_def_bad.py", "typed_def_good.py"),
]

CLI_FIXTURES = [("cli-commands", "cli_commands_bad.py", "cli_commands_good.py")]


@pytest.mark.parametrize("rule,bad,good", RULE_FIXTURES)
def test_rule_catches_positive_fixture(rule, bad, good):
    """The broken fixture triggers exactly its target rule."""
    result = run_fixture(bad)
    hit = rules_hit(result)
    assert rule in hit, f"{bad}: expected a {rule} finding, got {sorted(hit)}"


@pytest.mark.parametrize("rule,bad,good", RULE_FIXTURES)
def test_rule_passes_negative_fixture(rule, bad, good):
    """The corrected fixture lints completely clean (all rules)."""
    result = run_fixture(good)
    assert not result.findings, (
        f"{good}: expected a clean lint, got "
        f"{[str(f) for f in result.findings]}"
    )


@pytest.mark.parametrize("rule,bad,good", CLI_FIXTURES)
def test_cli_rule_fixtures(rule, bad, good):
    """CLI drift fixtures run with docs detached from the real repo."""
    result = run_fixture(bad, docs=())
    assert rule in rules_hit(result)
    result = run_fixture(good, docs=())
    assert not result.findings


def test_positive_fixtures_trigger_only_their_rule():
    """Positive fixtures are surgical: no collateral findings."""
    for rule, bad, _ in RULE_FIXTURES:
        hit = rules_hit(run_fixture(bad))
        assert hit == {rule}, f"{bad}: expected only {rule}, got {sorted(hit)}"


def test_issue_required_fixtures_present():
    """The three acceptance-criteria breakages are each caught."""
    assert "det-set-iter" in rules_hit(run_fixture("det_set_iter_bad.py"))
    assert "async-blocking-call" in rules_hit(
        run_fixture("async_blocking_bad.py")
    )
    assert "reg-capability" in rules_hit(run_fixture("reg_capability_bad.py"))


def test_suppression_moves_finding_to_suppressed_bucket():
    """A reasoned disable comment suppresses without hiding the count."""
    result = run_fixture("suppression_good.py")
    assert not result.findings
    assert [f.rule for f in result.suppressed] == ["det-set-iter"]


def test_malformed_suppressions_are_findings():
    """Unknown rule names and missing reasons are themselves flagged."""
    result = run_fixture("suppression_bad.py")
    messages = [f.message for f in result.findings]
    assert any("unknown rule" in m for m in messages)
    assert any("without a reason" in m for m in messages)


def test_every_registered_rule_has_a_fixture_pair():
    """New rules must ship fixtures: registry and table stay in sync."""
    covered = {rule for rule, _, _ in RULE_FIXTURES + CLI_FIXTURES}
    assert covered == set(RULES), (
        f"rules without fixtures: {sorted(set(RULES) - covered)}; "
        f"fixtures for unregistered rules: {sorted(covered - set(RULES))}"
    )


def test_fixture_modules_masquerade_in_scope():
    """Every fixture declares a dotted module via `# lint: module=`."""
    paths = [
        os.path.join(FIXTURES, name)
        for name in sorted(os.listdir(FIXTURES))
        if name.endswith(".py")
    ]
    project = load_project(paths=paths, docs=())
    for module in project.modules:
        assert module.dotted.startswith("repro."), (
            f"{module.rel_path} resolves to {module.dotted!r}; fixtures "
            "must masquerade via `# lint: module=repro...`"
        )


def test_baseline_is_reproducible_and_committed():
    """`--update-baseline` output is byte-identical to the checked-in file."""
    result = lint_paths(root=REPO_ROOT, use_baseline=True)
    rendered = render_baseline(result.all_raw())
    baseline_file = os.path.join(REPO_ROOT, BASELINE_PATH)
    with open(baseline_file, "r", encoding="utf-8") as fh:
        committed = fh.read()
    assert rendered == committed, (
        "tools/lint/baseline.json is stale; regenerate with "
        "`python -m tools.lint --update-baseline`"
    )
    # And it is valid JSON with the documented shape.
    payload = json.loads(committed)
    assert payload["version"] == 1
    assert isinstance(payload["findings"], list)


def test_repo_lints_clean_against_baseline():
    """The repo-wide gate: zero unbaselined findings, zero stale entries."""
    result = lint_paths(root=REPO_ROOT, use_baseline=True)
    assert result.ok, (
        f"{len(result.findings)} unbaselined finding(s), "
        f"{len(result.stale_baseline)} stale baseline entr(ies): "
        f"{[str(f) for f in result.findings[:10]]}"
    )
    assert result.checked_modules > 50  # src/repro + tools are both scanned
