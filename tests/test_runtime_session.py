"""The runtime layer: registry, handles, and session-reuse bit-identity.

The heart of this file is the seeded fuzz suite: for every registered
compute backend, repeated :class:`~repro.runtime.session.SolverSession`
solves — reweighted, eps/variant-swept, failure-injected, engine-crossed —
must be **bit-identical** to a fresh one-shot call with the same
parameters.  A fresh one-shot call builds a fresh single-use plan, so the
comparison is precisely "plan reuse vs rebuild".
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.core.tecss import approximate_two_ecss
from repro.dist.pipeline import distributed_two_ecss
from repro.exceptions import GraphFormatError, NotTwoEdgeConnectedError
from repro.fast import HAVE_NUMPY
from repro.graphs import cycle_with_chords
from repro.graphs.families import make_family_instance
from repro.runtime import (
    BackendSpec,
    GraphHandle,
    SolveQuery,
    SolverPlan,
    SolverSession,
    UnknownBackendError,
    backend_names,
    get_backend,
    register_backend,
    resolve_compute,
)
from repro.runtime.registry import unregister_backend
from repro.sim.failures import random_failure_plan

COMPUTE_BACKENDS = ["reference"] + (["fast"] if HAVE_NUMPY else [])


def _reweighted(graph, seed):
    """A copy of ``graph`` with fresh seeded weights (same edge order)."""
    rng = random.Random(seed)
    out = graph.copy()
    weights = {}
    for u, v, data in out.edges(data=True):
        w = round(rng.uniform(0.5, 9.5), 3)
        data["weight"] = w
        weights[(u, v)] = w
    return out, weights


def _assert_same_result(a, b):
    """Field-by-field bit-identity of two TwoEcssResult objects."""
    assert a.edges == b.edges
    assert a.weight == b.weight
    assert a.mst_edges == b.mst_edges
    assert a.mst_weight == b.mst_weight
    assert a.diameter == b.diameter
    assert a.n == b.n
    assert a.guarantee == b.guarantee
    ta, tb = a.augmentation, b.augmentation
    assert ta.links == tb.links
    assert ta.weight == tb.weight
    assert ta.virtual_eids == tb.virtual_eids
    assert ta.virtual_weight == tb.virtual_weight
    assert ta.dual_bound == tb.dual_bound
    assert ta.guarantee == tb.guarantee
    assert ta.iterations_per_epoch == tb.iterations_per_epoch
    assert ta.num_layers == tb.num_layers
    assert ta.max_coverage_of_dual_edges == tb.max_coverage_of_dual_edges


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_default_names(self):
        assert set(backend_names("compute")) == {"auto", "fast", "reference"}
        assert set(backend_names("engine")) == {"local", "sim"}
        assert set(backend_names("network")) == {"batched", "legacy"}

    def test_unknown_name_is_one_line_listing(self):
        with pytest.raises(UnknownBackendError) as err:
            get_backend("compute", "warp-drive")
        msg = str(err.value)
        assert "\n" not in msg
        assert "warp-drive" in msg
        for name in backend_names("compute"):
            assert name in msg

    def test_unknown_backend_error_is_value_error(self):
        with pytest.raises(ValueError):
            get_backend("engine", "quantum")

    def test_resolve_compute(self):
        assert resolve_compute("reference") == "reference"
        expected = "fast" if HAVE_NUMPY else "reference"
        assert resolve_compute("auto") == expected

    def test_capability_flags(self):
        assert get_backend("engine", "sim").has("failure-injection")
        assert not get_backend("engine", "local").has("failure-injection")
        assert get_backend("network", "batched").has("failure-injection")
        if HAVE_NUMPY:
            assert get_backend("compute", "fast").has("vectorized")

    def test_register_and_unregister(self):
        spec = BackendSpec(
            name="test-dummy", kind="engine", description="a test entry",
            capabilities=frozenset({"test"}),
        )
        register_backend(spec)
        try:
            assert get_backend("engine", "test-dummy") is spec
            with pytest.raises(ValueError, match="already registered"):
                register_backend(spec)
        finally:
            unregister_backend("engine", "test-dummy")
        with pytest.raises(UnknownBackendError):
            get_backend("engine", "test-dummy")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_backend(BackendSpec("x", "flux-capacitor", "nope"))


# ---------------------------------------------------------------------------
# handles and plans
# ---------------------------------------------------------------------------


class TestGraphHandle:
    def test_normalization_matches_one_shot(self):
        g = cycle_with_chords(20, 8, seed=3)
        relabeled = {v: f"node-{v}" for v in g.nodes()}
        import networkx as nx

        g = nx.relabel_nodes(g, relabeled)
        handle = GraphHandle.from_graph(g)
        assert handle.n == 20
        assert handle.m == g.number_of_edges()
        assert sorted(handle.nodes) == sorted(g.nodes())
        # The session path must match the one-shot API on labeled graphs.
        _assert_same_result(
            SolverSession(handle).solve(eps=0.5),
            approximate_two_ecss(g, eps=0.5),
        )

    def test_invalid_inputs_rejected_at_handle_time(self):
        import networkx as nx

        bridge = nx.path_graph(4)
        for _, _, d in bridge.edges(data=True):
            d["weight"] = 1.0
        with pytest.raises(NotTwoEdgeConnectedError):
            GraphHandle.from_graph(bridge)
        unweighted = nx.cycle_graph(4)
        with pytest.raises(GraphFormatError):
            GraphHandle.from_graph(unweighted)

    def test_reweight_shapes_and_validation(self):
        g = cycle_with_chords(16, 5, seed=1)
        handle = GraphHandle.from_graph(g)
        doubled = handle.reweight([2 * w for w in handle.weights])
        assert doubled.weights == tuple(2 * w for w in handle.weights)
        assert doubled.topology_key == handle.topology_key
        assert doubled.weights_key != handle.weights_key
        by_edge = {e: 1.0 for e in handle.edge_list}
        flat = handle.reweight(by_edge)
        assert set(flat.weights) == {1.0}
        with pytest.raises(GraphFormatError):
            handle.reweight([1.0])  # wrong length
        with pytest.raises(GraphFormatError):
            handle.reweight([-1.0] * handle.m)  # negative weight
        with pytest.raises(GraphFormatError):
            handle.reweight({})  # missing edges

    def test_integer_weights_preserved(self):
        import networkx as nx

        g = nx.cycle_graph(6)
        for _, _, d in g.edges(data=True):
            d["weight"] = 3  # int, not float
        handle = GraphHandle.from_graph(g)
        assert all(isinstance(w, int) for w in handle.weights)
        res = approximate_two_ecss(g, eps=0.5)
        assert res.mst_weight == 15 and isinstance(res.mst_weight, int)

    def test_reweight_mapping_interpretation_is_all_or_nothing(self):
        # Labels [2, 0, 1] make normalized ids differ from int labels; a
        # mapping keyed by ids must not bind through the label scheme.
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from([2, 0, 1])
        g.add_edge(2, 0, weight=1.0)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=1.0)
        handle = GraphHandle.from_graph(g)  # index: 2->0, 0->1, 1->2
        by_ids = {(0, 1): 5.0, (1, 2): 6.0, (2, 0): 7.0}
        clone = handle.reweight(by_ids)
        # Labels cover every edge too (triangle on {0,1,2}), so the label
        # interpretation wins deterministically; nx adjacency order from
        # node 2 yields label-edges (2,0), (2,1), (0,1) -> 7.0, 6.0, 5.0.
        assert list(clone.weights) == [7.0, 6.0, 5.0]
        # A mapping only coherent under ids resolves via ids.
        relabeled = {v: f"v{v}" for v in g.nodes()}
        gh = GraphHandle.from_graph(nx.relabel_nodes(g, relabeled))
        clone2 = gh.reweight({(0, 1): 5.0, (1, 2): 6.0, (0, 2): 7.0})
        assert sorted(clone2.weights) == [5.0, 6.0, 7.0]

    def test_reweight_shares_topology_caches(self):
        g = cycle_with_chords(16, 5, seed=2)
        handle = GraphHandle.from_graph(g)
        d = handle.diameter
        clone = handle.reweight([1.0] * handle.m)
        assert clone._shared["diameter"] == d  # shared, not recomputed
        # The share is by reference, both ways: a cache computed on a
        # clone *after* cloning must reach the base handle too.
        clone2 = handle.reweight([2.0] * handle.m)
        pi = clone2._pair_index
        assert handle._pair_index is pi
        assert clone._pair_index is pi

    def test_csr_is_consistent(self):
        g = cycle_with_chords(12, 4, seed=5)
        handle = GraphHandle.from_graph(g)
        indptr, indices, weights = handle.csr
        assert int(indptr[-1]) == 2 * handle.m
        gn = handle.graph
        for v in range(handle.n):
            neigh = sorted(int(u) for u in indices[indptr[v]:indptr[v + 1]])
            assert neigh == sorted(gn.neighbors(v))


class TestSolverPlan:
    def test_artifacts_built_once(self):
        g = cycle_with_chords(24, 10, seed=4)
        plan = SolverPlan.for_graph(g)
        assert plan.instance("reference") is plan.instance("reference")
        assert plan.instance_builds == 1
        if HAVE_NUMPY:
            assert plan.instance("auto") is plan.instance("fast")
            assert plan.instance_builds == 2

    def test_private_instance_isolation(self):
        g = cycle_with_chords(24, 10, seed=4)
        plan = SolverPlan.for_graph(g)
        shared = plan.instance("reference")
        private = plan.private_instance("reference")
        assert private is not shared
        assert private.tree is shared.tree
        assert private.edges[0] is shared.edges[0]  # contents shared
        private.__dict__["ops"] = object()  # the dist pipeline's injection
        assert "ops" not in shared.__dict__ or shared.ops is not private.ops


# ---------------------------------------------------------------------------
# session reuse: the seeded fuzz suite (bit-identity vs one-shot)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
def test_fuzz_repeated_solves_match_one_shot(backend):
    """eps/variant sweeps on a reused plan == fresh one-shot per query."""
    rng = random.Random(20190723)
    for family, n in (("cycle_chords", 26), ("grid", 30), ("hub_cycle", 24)):
        seed = rng.randrange(1000)
        graph = make_family_instance(family, n, seed=seed)
        session = SolverSession(graph, backend=backend)
        for _ in range(3):
            eps = rng.choice([0.1, 0.25, 0.5, 1.0])
            variant = rng.choice(["improved", "basic"])
            got = session.solve(eps=eps, variant=variant)
            want = approximate_two_ecss(
                graph, eps=eps, variant=variant, backend=backend
            )
            _assert_same_result(got, want)
        stats = session.stats()
        assert stats["plans_built"] == 1
        assert stats["plan_hits"] == stats["solves"] - 1


@pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
def test_fuzz_reweighted_solves_match_one_shot(backend):
    """Weight reassignments on one topology == one-shot on reweighted graphs."""
    rng = random.Random(42)
    graph = make_family_instance("cycle_chords", 28, seed=7)
    session = SolverSession(graph, backend=backend)
    for trial in range(3):
        reweighted, weights = _reweighted(graph, seed=rng.randrange(1000))
        got = session.solve(eps=0.5, weights=weights)
        want = approximate_two_ecss(reweighted, eps=0.5, backend=backend)
        _assert_same_result(got, want)
    # Baseline weights still solve correctly after reweighted queries.
    _assert_same_result(
        session.solve(eps=0.5),
        approximate_two_ecss(graph, eps=0.5, backend=backend),
    )


def test_fuzz_failure_injected_solves_match_one_shot():
    """Lossy sim solves on a reused plan == fresh lossy one-shot runs."""
    graph = make_family_instance("cycle_chords", 22, seed=3)
    session = SolverSession(graph)
    for seed in (1, 2):
        plan = random_failure_plan(graph, p=0.25, max_rounds=12, seed=seed)
        got = session.solve(eps=0.5, engine="sim", failures=plan)
        want = distributed_two_ecss(graph, eps=0.5, failures=plan)
        _assert_same_result(got.result, want.result)
        assert got.measured_rounds == want.measured_rounds
        assert got.mismatch_counts == want.mismatch_counts
        # Lossy or not, the solution is the reference solution.
        _assert_same_result(
            got.result, approximate_two_ecss(graph, eps=0.5)
        )


def test_sim_engine_solves_match_one_shot_pipeline():
    graph = make_family_instance("grid", 25, seed=5)
    session = SolverSession(graph)
    got = session.solve(eps=0.5, engine="sim")
    want = distributed_two_ecss(graph, eps=0.5)
    _assert_same_result(got.result, want.result)
    assert got.measured_rounds == want.measured_rounds
    assert got.priced_rounds == want.priced_rounds
    assert got.comparison == want.comparison
    # A second sim solve reuses the plan and measures identical rounds.
    again = session.solve(eps=0.5, engine="sim")
    assert again.measured_rounds == want.measured_rounds


def test_solve_many_matches_individual_solves():
    graph = make_family_instance("cycle_chords", 24, seed=9)
    queries = [
        SolveQuery(eps=0.25),
        SolveQuery(eps=0.5, variant="basic"),
        dict(eps=1.0, backend="reference"),
    ]
    session = SolverSession(graph)
    batch = session.solve_many(queries)
    assert len(batch) == 3
    _assert_same_result(batch[0], approximate_two_ecss(graph, eps=0.25))
    _assert_same_result(
        batch[1], approximate_two_ecss(graph, eps=0.5, variant="basic")
    )
    _assert_same_result(
        batch[2], approximate_two_ecss(graph, eps=1.0, backend="reference")
    )


def test_simulate_mst_matches_one_shot():
    g = cycle_with_chords(30, 12, seed=7)
    session = SolverSession(g)
    got = session.solve(eps=0.5, simulate_mst=True)
    want = approximate_two_ecss(g, eps=0.5, simulate_mst=True)
    _assert_same_result(got, want)
    assert got.mst_simulation.rounds == want.mst_simulation.rounds


class TestSessionValidation:
    def test_unknown_backend_and_engine(self):
        g = cycle_with_chords(12, 4, seed=1)
        session = SolverSession(g)
        with pytest.raises(UnknownBackendError, match="compute"):
            session.solve(backend="warp-drive")
        with pytest.raises(UnknownBackendError, match="engine"):
            session.solve(engine="quantum")

    def test_failures_require_capability(self):
        g = cycle_with_chords(12, 4, seed=1)
        plan = random_failure_plan(g, p=0.5, max_rounds=3, seed=1)
        with pytest.raises(ValueError, match="failure-injection"):
            SolverSession(g).solve(engine="local", failures=plan)

    def test_plan_lru_eviction(self):
        g = cycle_with_chords(12, 4, seed=1)
        session = SolverSession(g, max_plans=1)
        session.solve(eps=0.5)
        session.solve(eps=0.5, weights=[1.0] * g.number_of_edges())
        session.solve(eps=0.5)  # original weights: plan was evicted, rebuilt
        assert session.stats()["plans_built"] == 3
        assert len(session._plans) == 1

    def test_stats_lru_eviction_accounting(self):
        """stats() counts evictions and keeps evicted plans' build times."""
        g = cycle_with_chords(14, 5, seed=2)
        m = g.number_of_edges()
        session = SolverSession(g, max_plans=1)
        session.solve(eps=0.5)
        session.solve(eps=0.5, weights=[1.0] * m)   # evicts plan 1
        session.solve(eps=0.5, weights=[2.0] * m)   # evicts plan 2
        session.solve(eps=0.5, weights=[2.0] * m)   # hit on the live plan
        stats = session.stats()
        assert stats["solves"] == 4
        assert stats["plans_built"] == stats["plan_misses"] == 3
        assert stats["plan_hits"] == 1
        assert stats["plan_evictions"] == 2
        assert stats["plans_cached"] == 1 and stats["max_plans"] == 1
        # Build times aggregate over evicted plans too: the MST was built
        # three times (once per plan) even though only one plan survives.
        times = stats["build_times_s"]
        assert set(times) >= {"mst", "links", "diameter"}
        assert any(k.startswith("instance:") for k in times)
        live = sum(
            sum(p.build_times.values()) for p in session._plans.values()
        )
        assert sum(times.values()) > live  # evicted seconds were kept

    def test_stats_is_a_snapshot(self):
        g = cycle_with_chords(12, 4, seed=3)
        session = SolverSession(g)
        before = session.stats()
        session.solve(eps=0.5)
        assert before["solves"] == 0  # mutating the session later is fine
        assert session.stats()["solves"] == 1


# ---------------------------------------------------------------------------
# satellite wiring: deprecation, CLI, public API
# ---------------------------------------------------------------------------


def test_legacy_network_emits_deprecation_warning():
    import networkx as nx

    from repro.model.network import Network

    g = nx.cycle_graph(4)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    with pytest.warns(DeprecationWarning, match="BatchedNetwork"):
        Network(g)


def test_cli_unknown_backend_is_one_line_error(capsys, tmp_path):
    from repro.__main__ import main

    rc = main([
        "sweep", "--families", "cycle_chords", "--sizes", "20",
        "--backend", "warp-drive", "--workers", "0",
        "--cache-dir", str(tmp_path / "c"), "--out-dir", str(tmp_path / "o"),
    ])
    assert rc == 2
    err = capsys.readouterr().err.strip()
    assert "warp-drive" in err and "reference" in err
    assert "\n" not in err  # one line on stderr, no traceback


def test_cli_unknown_engine_is_one_line_error(capsys, tmp_path):
    from repro.__main__ import main

    rc = main([
        "sweep", "--families", "cycle_chords", "--sizes", "20",
        "--engine", "quantum", "--workers", "0",
        "--cache-dir", str(tmp_path / "c"), "--out-dir", str(tmp_path / "o"),
    ])
    assert rc == 2
    err = capsys.readouterr().err.strip()
    assert "quantum" in err and "sim" in err and "local" in err


def test_cli_backends_command(capsys):
    from repro.__main__ import main

    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("reference", "fast", "auto", "local", "sim", "batched",
                 "legacy"):
        assert name in out
    assert "failure-injection" in out


def test_top_level_exports():
    assert repro.SolverSession is SolverSession
    assert repro.SolveQuery is SolveQuery
