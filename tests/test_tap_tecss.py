"""End-to-end tests for approximate_tap and approximate_two_ecss."""

from __future__ import annotations

import networkx as nx
import pytest

import repro
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss, rooted_mst
from repro.exceptions import NotTwoEdgeConnectedError
from repro.graphs import (
    cycle_with_chords,
    erdos_renyi_2ec,
    grid_graph,
    hub_and_cycle,
    is_two_edge_connected,
)

from conftest import random_tap_links, random_tree


class TestTap:
    @pytest.mark.parametrize("variant", ["improved", "basic"])
    @pytest.mark.parametrize("segmented", [True, False])
    def test_solution_is_valid_augmentation(self, variant, segmented):
        # Every tree edge must lie on the tree path of some chosen link
        # (links parallel to tree edges are legitimate in TAP, so the check
        # is on path coverage, not simple-graph bridges).
        tree = random_tree(60, seed=1)
        links = random_tap_links(tree, 120, seed=2)
        res = approximate_tap(tree, links, eps=0.3, variant=variant, segmented=segmented)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())

    def test_certified_virtual_ratio_within_guarantee(self):
        for seed in range(5):
            tree = random_tree(50, seed=seed)
            links = random_tap_links(tree, 100, seed=seed + 30)
            res = approximate_tap(tree, links, eps=0.5)
            assert res.certified_virtual_ratio <= res.guarantee + 1e-9
            assert res.guarantee == pytest.approx(2 * (1 + 0.25))

    def test_weight_consistency(self):
        tree = random_tree(40, seed=3)
        links = random_tap_links(tree, 80, seed=4)
        res = approximate_tap(tree, links, eps=0.3)
        weights = {}
        for u, v, w in links:
            weights.setdefault((u, v), w)
        assert res.weight == pytest.approx(
            sum(weights[link] for link in set(res.links))
        )
        assert res.weight <= res.virtual_weight + 1e-9

    def test_improved_beats_or_matches_basic_guarantee(self):
        tree = random_tree(50, seed=5)
        links = random_tap_links(tree, 100, seed=6)
        imp = approximate_tap(tree, links, eps=0.3, variant="improved")
        bas = approximate_tap(tree, links, eps=0.3, variant="basic")
        assert imp.guarantee < bas.guarantee
        # both certified against the same kind of dual bound
        assert imp.certified_virtual_ratio <= imp.guarantee + 1e-9
        assert bas.certified_virtual_ratio <= bas.guarantee + 1e-9

    def test_eps_scaling_in_iterations(self):
        tree = random_tree(60, seed=7)
        links = random_tap_links(tree, 120, seed=8)
        small = approximate_tap(tree, links, eps=0.05)
        large = approximate_tap(tree, links, eps=1.0)
        assert max(small.iterations_per_epoch.values()) >= max(
            large.iterations_per_epoch.values()
        )


class TestTwoEcss:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: cycle_with_chords(40, 15, seed=1),
            lambda: erdos_renyi_2ec(50, seed=2),
            lambda: grid_graph(6, 6, seed=3),
            lambda: hub_and_cycle(30, seed=4),
        ],
    )
    def test_output_two_edge_connected_and_certified(self, maker):
        g = maker()
        res = approximate_two_ecss(g, eps=0.4)
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.edges)
        assert is_two_edge_connected(sub)
        assert res.certified_ratio <= res.guarantee + 1e-9
        assert res.weight == pytest.approx(
            sum(g[u][v]["weight"] for u, v in res.edges)
        )

    def test_subgraph_spans_all_vertices(self):
        g = erdos_renyi_2ec(40, seed=5)
        res = approximate_two_ecss(g, eps=0.4)
        touched = {u for e in res.edges for u in e}
        assert touched == set(g.nodes())

    def test_mst_contained(self):
        g = cycle_with_chords(30, 10, seed=6)
        res = approximate_two_ecss(g, eps=0.4)
        assert set(map(tuple, res.mst_edges)) <= set(map(tuple, res.edges))

    def test_arbitrary_node_labels(self):
        g = nx.relabel_nodes(cycle_with_chords(20, 8, seed=7), lambda i: f"node{i}")
        res = approximate_two_ecss(g, eps=0.4)
        assert all(isinstance(u, str) for e in res.edges for u in e)

    def test_bridge_graph_rejected(self):
        g = nx.cycle_graph(5)
        g.add_edge(0, 99, weight=1.0)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        with pytest.raises(NotTwoEdgeConnectedError):
            approximate_two_ecss(g)

    def test_guarantee_values(self):
        g = cycle_with_chords(25, 10, seed=8)
        imp = approximate_two_ecss(g, eps=0.25, variant="improved")
        bas = approximate_two_ecss(g, eps=0.25, variant="basic")
        assert imp.guarantee == pytest.approx(5.25)
        assert bas.guarantee == pytest.approx(9.25)

    def test_package_level_export(self):
        g = cycle_with_chords(20, 8, seed=9)
        res = repro.approximate_two_ecss(g, eps=0.5)
        assert res.summary().startswith("2-ECSS")
        assert res.modeled_rounds() > 0


class TestRootedMst:
    def test_mst_weight_matches_networkx(self):
        g = erdos_renyi_2ec(40, seed=10)
        tree, edges = rooted_mst(g)
        w = sum(g[u][v]["weight"] for u, v in edges)
        assert w == pytest.approx(
            nx.minimum_spanning_tree(g).size(weight="weight")
        )
        assert tree.n == g.number_of_nodes()
