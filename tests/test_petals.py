"""Tests for petal computation, including Claim 4.9."""

from __future__ import annotations

import random

import pytest

from repro.decomp.layering import Layering
from repro.decomp.petals import compute_petals
from repro.trees.pathops import TreePathOps
from repro.trees.rooted import RootedTree

from conftest import TREE_SHAPES, random_tree, random_vertical_edges


def covering_indices(tree: RootedTree, x_edges, t: int) -> list[int]:
    return [
        i for i, (dec, anc) in enumerate(x_edges) if tree.covers_vertical(dec, anc, t)
    ]


@pytest.mark.parametrize("shape", TREE_SHAPES)
class TestPetalDefinitions:
    def test_higher_petal_is_highest_ancestor(self, shape):
        t = random_tree(60, seed=1, shape=shape)
        lay = Layering(t)
        ops = TreePathOps(t)
        x = random_vertical_edges(t, 80, seed=2)
        petals = compute_petals(ops, lay, x, t.tree_edges())
        for v in t.tree_edges():
            cov = covering_indices(t, x, v)
            if not cov:
                assert petals.higher[v] == -1
                assert petals.lower[v] == -1
                continue
            hi = petals.higher[v]
            assert hi in cov
            best_depth = min(t.depth[x[i][1]] for i in cov)
            assert t.depth[x[hi][1]] == best_depth

    def test_lower_petal_maximizes_ue_depth(self, shape):
        t = random_tree(60, seed=3, shape=shape)
        lay = Layering(t)
        ops = TreePathOps(t)
        x = random_vertical_edges(t, 80, seed=4)
        petals = compute_petals(ops, lay, x, t.tree_edges())
        for v in t.tree_edges():
            cov = covering_indices(t, x, v)
            if not cov:
                continue
            lo = petals.lower[v]
            assert lo in cov
            leaf = lay.leaf_of(v)
            u_depths = {i: t.depth[t.lca(leaf, x[i][0])] for i in cov}
            assert u_depths[lo] == max(u_depths.values())

    def test_petals_cover_their_edge(self, shape):
        t = random_tree(60, seed=5, shape=shape)
        lay = Layering(t)
        ops = TreePathOps(t)
        x = random_vertical_edges(t, 60, seed=6)
        petals = compute_petals(ops, lay, x, t.tree_edges())
        for v in t.tree_edges():
            for idx in petals.petals_of(v):
                dec, anc = x[idx]
                assert t.covers_vertical(dec, anc, v)


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_claim_4_9_small_neighbourhood_cover(shape, seed):
    """Claim 4.9: petals of t cover every tree edge that edges of X covering t
    cover in layers >= layer(t)."""
    t = random_tree(50, seed=seed, shape=shape)
    lay = Layering(t)
    ops = TreePathOps(t)
    x = random_vertical_edges(t, 70, seed=seed + 100)
    petals = compute_petals(ops, lay, x, t.tree_edges())
    for v in t.tree_edges():
        cov = covering_indices(t, x, v)
        if not cov:
            continue
        petal_edges = [x[i] for i in petals.petals_of(v)]
        for i in cov:
            dec, anc = x[i]
            for t2 in t.chain(dec, anc):
                if lay.layer[t2] < lay.layer[v]:
                    continue
                assert any(
                    t.covers_vertical(pd, pa, t2) for pd, pa in petal_edges
                ), (
                    f"edge {t2} (layer {lay.layer[t2]}) covered by X edge {i} "
                    f"through t={v} (layer {lay.layer[v]}) but not by petals"
                )


def test_petal_batching_respects_target_subset():
    t = random_tree(40, seed=9)
    lay = Layering(t)
    ops = TreePathOps(t)
    x = random_vertical_edges(t, 30, seed=10)
    subset = [v for v in t.tree_edges() if v % 3 == 0]
    petals = compute_petals(ops, lay, x, subset)
    assert set(petals.higher) == set(subset)
    assert set(petals.lower) == set(subset)


def test_duplicate_petal_deduplicated():
    # A single covering edge is both petals; petals_of returns it once.
    t = random_tree(10, shape="path")
    lay = Layering(t)
    ops = TreePathOps(t)
    x = [(9, 0)]
    petals = compute_petals(ops, lay, x, [5])
    assert petals.higher[5] == 0
    assert petals.lower[5] == 0
    assert petals.petals_of(5) == (0,)
